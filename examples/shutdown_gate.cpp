// Example: the C-SNZI as a standalone primitive — a shutdown gate.
//
// A server tracks in-flight requests.  Workers "arrive" when they start a
// request and "depart" when done; shutdown "closes" the gate so no new
// request can start, then waits for the surplus to drain.  This is exactly
// the reader/writer protocol of the paper's locks (§2: readers use
// Arrive/Depart, writers use Close/Open) without any lock around it — and
// because it is a SNZI, a thousand workers checking in and out do not
// serialize on a single counter.
#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "platform/spin.hpp"
#include "snzi/csnzi.hpp"

namespace {

class ShutdownGate {
 public:
  // Try to register one unit of in-flight work; fails iff shutting down.
  std::optional<oll::CSnzi<>::Ticket> enter() {
    auto ticket = gate_.arrive();
    if (!ticket.arrived()) return std::nullopt;
    return ticket;
  }

  void leave(const oll::CSnzi<>::Ticket& ticket) {
    if (!gate_.depart(ticket)) {
      // Last departure after close: wake the shutdown waiter.
      drained_.store(true, std::memory_order_release);
    }
  }

  // Forbid new entries, then wait until all in-flight work has left.
  void shutdown() {
    if (gate_.close()) {
      // Closed with zero surplus: nothing in flight.
      return;
    }
    oll::spin_until(
        [&] { return drained_.load(std::memory_order_acquire); });
  }

 private:
  oll::CSnzi<> gate_;
  std::atomic<bool> drained_{false};
};

}  // namespace

int main() {
  ShutdownGate gate;
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      while (true) {
        auto ticket = gate.enter();
        if (!ticket) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          return;  // shutting down
        }
        served.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();  // "handle the request"
        gate.leave(*ticket);
      }
    });
  }

  // Let traffic flow, then shut down.
  while (served.load(std::memory_order_relaxed) < 50000) {
    std::this_thread::yield();
  }
  gate.shutdown();
  // After shutdown() returns, no request is in flight and none can start.
  for (auto& t : workers) t.join();

  std::printf("served %llu requests, %llu arrivals refused at shutdown\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(rejected.load()));
  return 0;
}
