// Example: a hot-reloadable configuration store — the classic read-mostly
// workload the paper's locks are built for.  Many worker threads consult the
// configuration on every request; a rare admin thread updates it.
//
// Demonstrates:
//   * the ROLL lock (reader-preference keeps request latency flat while an
//     update is queued),
//   * write-upgrade on the GOLL lock (§3.2.1): validate under a read lock,
//     then upgrade in place only if still sole reader, avoiding the classic
//     release-and-reacquire race.
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/oll.hpp"

namespace {

struct Config {
  int max_connections = 100;
  int timeout_ms = 250;
  std::map<std::string, std::string> feature_flags;
  std::uint64_t version = 1;
};

// The store: data + lock defined together.
class ConfigStore {
 public:
  template <typename F>
  auto read(F&& f) const {
    oll::ReadGuard g(lock_);
    return f(config_);
  }

  void update(int max_conn, int timeout) {
    oll::WriteGuard g(lock_);
    config_.max_connections = max_conn;
    config_.timeout_ms = timeout;
    ++config_.version;
  }

 private:
  Config config_;
  mutable oll::RollLock<> lock_;
};

// A counter bumped lazily under a lock, using GOLL's upgrade: check under a
// read lock (cheap, shared), upgrade only when the bump is actually needed.
class LazyInitRegistry {
 public:
  // Returns the flag value, initializing it exactly once on first use.
  std::string get_or_init(const std::string& key) {
    lock_.lock_shared();
    auto it = flags_.find(key);
    if (it != flags_.end()) {
      std::string v = it->second;
      lock_.unlock_shared();
      return v;
    }
    // Miss: try to upgrade in place.  If we are the sole reader this is
    // race-free; otherwise fall back to release + exclusive reacquire.
    if (!lock_.try_upgrade()) {
      lock_.unlock_shared();
      lock_.lock();
    }
    auto [pos, inserted] = flags_.emplace(key, "default:" + key);
    std::string v = pos->second;
    if (inserted) ++initializations_;
    lock_.unlock();
    return v;
  }

  int initializations() const { return initializations_; }

 private:
  oll::GollLock<> lock_;
  std::map<std::string, std::string> flags_;
  int initializations_ = 0;
};

}  // namespace

int main() {
  ConfigStore store;
  std::atomic<std::uint64_t> requests{0};
  std::atomic<bool> stop{false};

  // 6 request workers hammering reads.
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&] {
      std::uint64_t handled = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const int budget = store.read(
            [](const Config& c) { return c.max_connections + c.timeout_ms; });
        handled += static_cast<std::uint64_t>(budget > 0);
      }
      requests.fetch_add(handled);
    });
  }

  // The admin thread pushes 50 config updates.
  std::thread admin([&] {
    for (int i = 1; i <= 50; ++i) {
      store.update(100 + i, 250 + i);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });

  admin.join();
  for (auto& w : workers) w.join();

  const auto version =
      store.read([](const Config& c) { return c.version; });
  std::printf("served %llu requests across %llu config versions\n",
              static_cast<unsigned long long>(requests.load()),
              static_cast<unsigned long long>(version));

  // Lazy-init registry: concurrent first access initializes exactly once.
  LazyInitRegistry registry;
  std::vector<std::thread> initers;
  for (int t = 0; t < 8; ++t) {
    initers.emplace_back([&] {
      for (const char* key : {"search", "cache", "tracing", "search"}) {
        (void)registry.get_or_init(key);
      }
    });
  }
  for (auto& t : initers) t.join();
  std::printf("registry initialized %d unique flags (expected 3)\n",
              registry.initializations());
  return registry.initializations() == 3 ? 0 : 1;
}
