// Example: a concurrent phone book built on RwProtected<T> — the CP.50
// "define a mutex together with the data it guards" pattern, with the lock
// implementation chosen by workload.
//
// Lookups dominate (reads); inserts and deletions are rare (writes).  The
// FOLL lock gives FIFO fairness so a burst of lookups cannot starve an
// insert indefinitely.
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/oll.hpp"
#include "platform/rng.hpp"

namespace {

class PhoneBook {
 public:
  void insert(const std::string& name, const std::string& number) {
    entries_.write([&](auto& m) { m[name] = number; });
  }

  bool erase(const std::string& name) {
    return entries_.write([&](auto& m) { return m.erase(name) > 0; });
  }

  std::optional<std::string> lookup(const std::string& name) const {
    return entries_.read([&](const auto& m) -> std::optional<std::string> {
      auto it = m.find(name);
      if (it == m.end()) return std::nullopt;
      return it->second;
    });
  }

  std::size_t size() const {
    return entries_.read([](const auto& m) { return m.size(); });
  }

 private:
  oll::RwProtected<std::map<std::string, std::string>, oll::FollLock<>>
      entries_;
};

std::string name_for(std::uint64_t i) {
  return "person-" + std::to_string(i % 500);
}

}  // namespace

int main() {
  PhoneBook book;
  for (int i = 0; i < 500; ++i) {
    book.insert(name_for(i), "555-" + std::to_string(1000 + i));
  }

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> mutations{0};

  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      oll::Xoshiro256ss rng(t + 1);
      for (int i = 0; i < 20000; ++i) {
        const auto key = name_for(rng.next_below(600));  // some misses
        if (rng.bernoulli(98, 100)) {
          if (book.lookup(key)) {
            hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            misses.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (rng.bernoulli(1, 2)) {
          book.insert(key, "555-0000");
          mutations.fetch_add(1, std::memory_order_relaxed);
        } else {
          book.erase(key);
          mutations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::printf("lookups: %llu hits, %llu misses; %llu mutations; %zu entries\n",
              static_cast<unsigned long long>(hits.load()),
              static_cast<unsigned long long>(misses.load()),
              static_cast<unsigned long long>(mutations.load()),
              book.size());
  return 0;
}
