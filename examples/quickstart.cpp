// Quickstart: protect a shared map with the paper's FOLL lock.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/oll.hpp"

int main() {
  // The FOLL lock (§4.2): FIFO-fair, scales under read contention because
  // successive readers share one queue node through a C-SNZI.
  oll::FollLock<> lock;
  std::map<std::string, int> table;  // guarded by `lock`

  // A writer seeds the table.
  {
    oll::WriteGuard guard(lock);
    table["answer"] = 42;
    table["threads"] = 8;
  }

  // Many readers, one occasional writer.
  std::vector<std::thread> threads;
  std::atomic<long> total_reads{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      long reads = 0;
      for (int i = 0; i < 10000; ++i) {
        if (t == 0 && i % 1000 == 0) {
          oll::WriteGuard guard(lock);
          table["answer"] += 1;
        } else {
          oll::ReadGuard guard(lock);
          reads += table.at("answer");
        }
      }
      total_reads.fetch_add(reads);
    });
  }
  for (auto& th : threads) th.join();

  {
    oll::ReadGuard guard(lock);
    std::printf("answer=%d threads=%d checksum=%ld\n", table.at("answer"),
                table.at("threads"), total_reads.load());
  }

  // The same works with any lock in the library via the factory:
  auto any = oll::make_rwlock(oll::LockKind::kRoll);
  any->lock_shared();
  std::printf("also locked %s for reading\n", any->name());
  any->unlock_shared();
  return 0;
}
