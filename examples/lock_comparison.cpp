// Example: measuring your own workload against every lock in the library.
//
// Uses the benchmark harness as a library: picks the right reader-writer
// lock for a given read ratio empirically rather than by folklore.  Run:
//
//   ./build/examples/lock_comparison            # real mode, this machine
//   ./build/examples/lock_comparison --mode=sim # simulated T5440 topology
#include <cstdio>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const bool sim = flags.get("mode", "real") == "sim";
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", sim ? 64 : 4));
  const auto acquires = flags.get_u64("acquires", sim ? 500 : 20000);

  std::printf("workload: %u threads, %llu acquires each, mode=%s\n\n",
              threads, static_cast<unsigned long long>(acquires),
              sim ? "simulated T5440" : "real");
  std::printf("%-20s %14s %14s %14s\n", "lock", "reads 100%", "reads 95%",
              "reads 50%");

  for (oll::LockKind kind : oll::all_lock_kinds()) {
    if (sim && kind == oll::LockKind::kStdShared) continue;
    std::printf("%-20s", oll::lock_kind_name(kind));
    for (std::uint32_t read_pct : {100u, 95u, 50u}) {
      oll::bench::WorkloadConfig cfg;
      cfg.threads = threads;
      cfg.read_pct = read_pct;
      cfg.acquires_per_thread = acquires;
      const auto result = oll::bench::run_workload(
          kind, cfg, sim ? oll::bench::Mode::kSim : oll::bench::Mode::kReal);
      std::printf(" %11.3e/s", result.throughput());
    }
    std::printf("\n");
  }
  std::printf("\n(acquires/s; higher is better)\n");
  return 0;
}
