// google-benchmark microbenchmarks for the C-SNZI object itself: the cost of
// each operation at the root and through the tree, single-threaded and with
// thread contention — the "time overhead ... in the absence of contention"
// claim of §6 and the substrate costs behind every lock number.
#include <benchmark/benchmark.h>

#include "platform/memory.hpp"
#include "snzi/csnzi.hpp"
#include "snzi/orig_snzi.hpp"

namespace {

using oll::ArrivalPolicy;
using oll::CSnzi;
using oll::CSnziOptions;

CSnziOptions policy_opts(ArrivalPolicy p) {
  CSnziOptions o;
  o.policy = p;
  return o;
}

// Attach the arrival-path mix to the benchmark output (per-op, summed over
// threads; ops approximated as iterations x threads, exact at 1 thread).
void report_arrival_mix(benchmark::State& state, const oll::CSnziStatsSnapshot& s) {
  const double ops = static_cast<double>(state.iterations()) *
                     static_cast<double>(state.threads());
  if (ops == 0) return;
  state.counters["direct/op"] =
      benchmark::Counter(static_cast<double>(s.direct_arrivals) / ops);
  state.counters["tree/op"] =
      benchmark::Counter(static_cast<double>(s.tree_arrivals) / ops);
  state.counters["sticky/op"] =
      benchmark::Counter(static_cast<double>(s.sticky_arrivals) / ops);
  state.counters["rootread/op"] =
      benchmark::Counter(static_cast<double>(s.root_reads) / ops);
  state.counters["casfail/op"] =
      benchmark::Counter(static_cast<double>(s.root_cas_failures) / ops);
}

void BM_ArriveDepart_Root(benchmark::State& state) {
  CSnzi<> c(policy_opts(ArrivalPolicy::kAlwaysRoot));
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_Root);

void BM_ArriveDepart_Tree(benchmark::State& state) {
  CSnzi<> c(policy_opts(ArrivalPolicy::kAlwaysTree));
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_Tree);

void BM_ArriveDepart_TreeDeep(benchmark::State& state) {
  CSnziOptions o = policy_opts(ArrivalPolicy::kAlwaysTree);
  o.leaves = 64;
  o.levels = static_cast<std::uint32_t>(state.range(0));
  o.fanout = 4;
  CSnzi<> c(o);
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_TreeDeep)->Arg(1)->Arg(2)->Arg(3);

void BM_ArriveDepart_Adaptive(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
  report_arrival_mix(state, c.stats());
}
BENCHMARK(BM_ArriveDepart_Adaptive);

void BM_Query(benchmark::State& state) {
  CSnzi<> c;
  auto t = c.arrive();
  for (auto _ : state) {
    auto q = c.query();
    benchmark::DoNotOptimize(q);
  }
  c.depart(t);
}
BENCHMARK(BM_Query);

void BM_CloseOpen(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.close());
    c.open();
  }
}
BENCHMARK(BM_CloseOpen);

void BM_CloseIfEmptyOpen(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.close_if_empty());
    c.open();
  }
}
BENCHMARK(BM_CloseIfEmptyOpen);

// Original PODC'07 SNZI (half-increment protocol) vs the simplified Lev et
// al. algorithm the paper uses — the §2.2 engine choice, measured.
void BM_OrigSnzi_ArriveDepart(benchmark::State& state) {
  oll::CSnziOptions o;
  o.leaves = 64;
  oll::OrigSnzi<> s(o);
  for (auto _ : state) {
    auto t = s.arrive();
    benchmark::DoNotOptimize(t);
    s.depart(t);
  }
}
BENCHMARK(BM_OrigSnzi_ArriveDepart);

void BM_OrigSnzi_Contended(benchmark::State& state) {
  static oll::OrigSnzi<>* s = nullptr;
  if (state.thread_index() == 0) s = new oll::OrigSnzi<>();
  for (auto _ : state) {
    auto t = s->arrive();
    benchmark::DoNotOptimize(t);
    s->depart(t);
  }
  if (state.thread_index() == 0) {
    delete s;
    s = nullptr;
  }
}
BENCHMARK(BM_OrigSnzi_Contended)->Threads(2)->Threads(4)->Threads(8);

// Multithreaded arrive/depart: contention on the adaptive policy (threads
// share the host's cores; on this reproduction host this measures the
// algorithmic path, not true parallel scalability — see DESIGN.md §3).
void BM_ArriveDepart_Contended(benchmark::State& state) {
  static CSnzi<>* c = nullptr;
  if (state.thread_index() == 0) c = new CSnzi<>();
  for (auto _ : state) {
    auto t = c->arrive();
    benchmark::DoNotOptimize(t);
    c->depart(t);
  }
  if (state.thread_index() == 0) {
    report_arrival_mix(state, c->stats());
    delete c;
    c = nullptr;
  }
}
BENCHMARK(BM_ArriveDepart_Contended)->Threads(2)->Threads(4)->Threads(8);

// The same contended loop with the sticky window disabled: every tree
// arrival re-reads the root word first (the seed behaviour).  The delta
// against BM_ArriveDepart_Contended is the sticky fast path's win.
void BM_ArriveDepart_Contended_StickyOff(benchmark::State& state) {
  static CSnzi<>* c = nullptr;
  if (state.thread_index() == 0) {
    CSnziOptions o;
    o.sticky_arrivals = 0;
    c = new CSnzi<>(o);
  }
  for (auto _ : state) {
    auto t = c->arrive();
    benchmark::DoNotOptimize(t);
    c->depart(t);
  }
  if (state.thread_index() == 0) {
    report_arrival_mix(state, c->stats());
    delete c;
    c = nullptr;
  }
}
BENCHMARK(BM_ArriveDepart_Contended_StickyOff)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8);

// Saturated-leaf tree arrivals (adaptive, threshold 0, one shared leaf kept
// hot by a standing arrival): with the sticky window armed the steady state
// performs zero root-word accesses per op; with sticky=0 every arrival still
// loads the root first.  The delta is the per-op root access — a remote-LLC
// read on real multi-chip hardware, and the §2.2 fast path this PR adds.
void BM_TreeArrive_SaturatedLeaf(benchmark::State& state) {
  static CSnzi<>* c = nullptr;
  static CSnzi<>::Ticket standing;
  if (state.thread_index() == 0) {
    CSnziOptions o;
    o.leaves = 1;  // every thread shares the one leaf
    o.root_cas_fail_threshold = 0;  // adaptive: tree from the first arrival
    o.sticky_arrivals = static_cast<std::uint32_t>(state.range(0));
    c = new CSnzi<>(o);
    standing = c->arrive();  // leaf never drains during the loop
  }
  for (auto _ : state) {
    auto t = c->arrive();
    benchmark::DoNotOptimize(t);
    c->depart(t);
  }
  if (state.thread_index() == 0) {
    report_arrival_mix(state, c->stats());
    c->depart(standing);
    delete c;
    c = nullptr;
  }
}
BENCHMARK(BM_TreeArrive_SaturatedLeaf)
    ->ArgName("sticky")
    ->Arg(0)
    ->Arg(64)
    ->Threads(1)
    ->Threads(8);

}  // namespace

BENCHMARK_MAIN();
