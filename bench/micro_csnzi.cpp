// google-benchmark microbenchmarks for the C-SNZI object itself: the cost of
// each operation at the root and through the tree, single-threaded and with
// thread contention — the "time overhead ... in the absence of contention"
// claim of §6 and the substrate costs behind every lock number.
#include <benchmark/benchmark.h>

#include "platform/memory.hpp"
#include "snzi/csnzi.hpp"
#include "snzi/orig_snzi.hpp"

namespace {

using oll::ArrivalPolicy;
using oll::CSnzi;
using oll::CSnziOptions;

CSnziOptions policy_opts(ArrivalPolicy p) {
  CSnziOptions o;
  o.policy = p;
  return o;
}

void BM_ArriveDepart_Root(benchmark::State& state) {
  CSnzi<> c(policy_opts(ArrivalPolicy::kAlwaysRoot));
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_Root);

void BM_ArriveDepart_Tree(benchmark::State& state) {
  CSnzi<> c(policy_opts(ArrivalPolicy::kAlwaysTree));
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_Tree);

void BM_ArriveDepart_TreeDeep(benchmark::State& state) {
  CSnziOptions o = policy_opts(ArrivalPolicy::kAlwaysTree);
  o.leaves = 64;
  o.levels = static_cast<std::uint32_t>(state.range(0));
  o.fanout = 4;
  CSnzi<> c(o);
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_TreeDeep)->Arg(1)->Arg(2)->Arg(3);

void BM_ArriveDepart_Adaptive(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    auto t = c.arrive();
    benchmark::DoNotOptimize(t);
    c.depart(t);
  }
}
BENCHMARK(BM_ArriveDepart_Adaptive);

void BM_Query(benchmark::State& state) {
  CSnzi<> c;
  auto t = c.arrive();
  for (auto _ : state) {
    auto q = c.query();
    benchmark::DoNotOptimize(q);
  }
  c.depart(t);
}
BENCHMARK(BM_Query);

void BM_CloseOpen(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.close());
    c.open();
  }
}
BENCHMARK(BM_CloseOpen);

void BM_CloseIfEmptyOpen(benchmark::State& state) {
  CSnzi<> c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.close_if_empty());
    c.open();
  }
}
BENCHMARK(BM_CloseIfEmptyOpen);

// Original PODC'07 SNZI (half-increment protocol) vs the simplified Lev et
// al. algorithm the paper uses — the §2.2 engine choice, measured.
void BM_OrigSnzi_ArriveDepart(benchmark::State& state) {
  oll::CSnziOptions o;
  o.leaves = 64;
  oll::OrigSnzi<> s(o);
  for (auto _ : state) {
    auto t = s.arrive();
    benchmark::DoNotOptimize(t);
    s.depart(t);
  }
}
BENCHMARK(BM_OrigSnzi_ArriveDepart);

void BM_OrigSnzi_Contended(benchmark::State& state) {
  static oll::OrigSnzi<>* s = nullptr;
  if (state.thread_index() == 0) s = new oll::OrigSnzi<>();
  for (auto _ : state) {
    auto t = s->arrive();
    benchmark::DoNotOptimize(t);
    s->depart(t);
  }
  if (state.thread_index() == 0) {
    delete s;
    s = nullptr;
  }
}
BENCHMARK(BM_OrigSnzi_Contended)->Threads(2)->Threads(4)->Threads(8);

// Multithreaded arrive/depart: contention on the adaptive policy (threads
// share the host's cores; on this reproduction host this measures the
// algorithmic path, not true parallel scalability — see DESIGN.md §3).
void BM_ArriveDepart_Contended(benchmark::State& state) {
  static CSnzi<>* c = nullptr;
  if (state.thread_index() == 0) c = new CSnzi<>();
  for (auto _ : state) {
    auto t = c->arrive();
    benchmark::DoNotOptimize(t);
    c->depart(t);
  }
  if (state.thread_index() == 0) {
    delete c;
    c = nullptr;
  }
}
BENCHMARK(BM_ArriveDepart_Contended)->Threads(2)->Threads(4)->Threads(8);

}  // namespace

BENCHMARK_MAIN();
