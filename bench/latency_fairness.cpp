// Acquisition-latency percentiles in virtual time: the fairness story behind
// the Figure 5 throughput numbers.
//
// Throughput hides tails: ROLL buys its off-chip throughput by letting
// readers overtake waiting writers (§4.3), which should show up as LOW
// reader latency tails and HIGHER writer tails than FOLL's strict FIFO.
// This bench measures per-acquisition latency as the delta of the acquiring
// thread's virtual clock across lock_shared()/lock(), on the simulated
// T5440, and prints p50/p95/p99/max per lock and operation class.
//
// Flags: --threads=N (64) --read_pct=P (95) --acquires=N (500)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "platform/stats.hpp"
#include "platform/thread_id.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace {

struct Samples {
  std::vector<double> read_latency;
  std::vector<double> write_latency;
};

Samples run_lock(oll::LockKind kind, std::uint32_t threads,
                 std::uint32_t read_pct, std::uint64_t acquires) {
  oll::sim::Machine machine(oll::sim::t5440_topology(),
                            oll::sim::t5440_costs(),
                            std::max<std::uint32_t>(threads, 512));
  oll::LockFactoryOptions opts;
  opts.max_threads = threads + 1;
  opts.csnzi.leaf_shift = 3;
  opts.csnzi.root_cas_fail_threshold = 1;
  auto lock = oll::make_rwlock<oll::sim::SimMemory>(kind, opts);

  std::vector<Samples> per_thread(threads);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      oll::ScopedThreadIndex index(w);
      oll::sim::ThreadGuard guard(machine, w);
      oll::sim::ThreadContext& ctx = guard.context();
      oll::Xoshiro256ss rng(w + 1);
      ready.fetch_add(1, std::memory_order_acq_rel);
      oll::spin_until([&] { return go.load(std::memory_order_acquire); });
      if (w % 2 == 1) std::this_thread::yield();  // phase stagger
      for (std::uint64_t i = 0; i < acquires; ++i) {
        const bool read = rng.bernoulli(read_pct, 100);
        const std::uint64_t before = ctx.clock();
        if (read) {
          lock->lock_shared();
          per_thread[w].read_latency.push_back(
              static_cast<double>(ctx.clock() - before));
          std::this_thread::yield();
          if (rng.bernoulli(1, 2)) std::this_thread::yield();
          lock->unlock_shared();
        } else {
          lock->lock();
          per_thread[w].write_latency.push_back(
              static_cast<double>(ctx.clock() - before));
          lock->unlock();
        }
        std::this_thread::yield();
      }
    });
  }
  oll::spin_until([&] {
    return ready.load(std::memory_order_acquire) == threads;
  });
  go.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  Samples all;
  for (auto& s : per_thread) {
    all.read_latency.insert(all.read_latency.end(), s.read_latency.begin(),
                            s.read_latency.end());
    all.write_latency.insert(all.write_latency.end(),
                             s.write_latency.begin(), s.write_latency.end());
  }
  return all;
}

void print_row(const char* lock, const char* op, std::vector<double>& xs) {
  if (xs.empty()) return;
  std::printf("%-14s %-6s %8zu %10.0f %10.0f %10.0f %12.0f\n", lock, op,
              xs.size(), oll::percentile(xs, 50), oll::percentile(xs, 95),
              oll::percentile(xs, 99), oll::percentile(xs, 100));
}

}  // namespace

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", 64));
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 95));
  const std::uint64_t acquires = flags.get_u64("acquires", 500);

  std::printf("# Acquisition latency (virtual cycles) on the simulated "
              "T5440: %u threads, %u%% reads\n",
              threads, read_pct);
  std::printf("%-14s %-6s %8s %10s %10s %10s %12s\n", "lock", "op", "n",
              "p50", "p95", "p99", "max");
  for (oll::LockKind kind : oll::figure5_lock_kinds()) {
    Samples s = run_lock(kind, threads, read_pct, acquires);
    print_row(oll::lock_kind_name(kind), "read", s.read_latency);
    print_row(oll::lock_kind_name(kind), "write", s.write_latency);
  }
  std::printf("\n# Expectation (§4.3): ROLL read tails beat FOLL's; ROLL "
              "write tails exceed FOLL's (reader preference).\n");
  return 0;
}
