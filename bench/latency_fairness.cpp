// Acquisition-latency percentiles in virtual time: the fairness story behind
// the Figure 5 throughput numbers.
//
// Throughput hides tails: ROLL buys its off-chip throughput by letting
// readers overtake waiting writers (§4.3), which should show up as LOW
// reader latency tails and HIGHER writer tails than FOLL's strict FIFO.
// This bench measures per-acquisition latency as the delta of the acquiring
// thread's virtual clock across lock_shared()/lock(), on the simulated
// T5440, and prints p50/p95/p99/max per lock and operation class.
//
// Flags: --threads=N (64) --read_pct=P (95) --acquires=N (500)
//   --hist             also print the locks' internal latency histograms
//                      (lock_stats.hpp) next to the externally-sampled rows
//   --stats_json=FILE  write internal counters + percentiles as JSON
//   --trace=FILE       write a lock-event trace (Chrome/Perfetto JSON)
//   --watchdog         stuck-acquisition watchdog (harness/watchdog.hpp):
//                      dump lock state + trace rings to stderr when an
//                      acquisition stalls.  Virtual cycles do not bound wall
//                      time, so the threshold here is a fixed 2 s of wall
//                      clock rather than the fig5 binaries' histogram-scaled
//                      one.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "harness/trace_export.hpp"
#include "harness/watchdog.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "platform/stats.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"
#include "platform/trace.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace {

struct Samples {
  std::vector<double> read_latency;
  std::vector<double> write_latency;
  oll::LockStatsSnapshot stats;  // the lock's own counters/histograms
};

Samples run_lock(oll::LockKind kind, std::uint32_t threads,
                 std::uint32_t read_pct, std::uint64_t acquires,
                 bool watchdog_enabled) {
  oll::sim::Machine machine(oll::sim::t5440_topology(),
                            oll::sim::t5440_costs(),
                            std::max<std::uint32_t>(threads, 512));
  oll::LockFactoryOptions opts;
  opts.max_threads = threads + 1;
  opts.csnzi.leaf_shift = 3;
  opts.csnzi.root_cas_fail_threshold = 1;
  auto lock = oll::make_rwlock<oll::sim::SimMemory>(kind, opts);

  // Wall-clock stall detector; the virtual-time histograms cannot feed it
  // (cycles do not bound wall time), so it runs floor-only.
  std::unique_ptr<oll::bench::Watchdog> watchdog;
  if (watchdog_enabled) {
    oll::bench::WatchdogOptions wopts;
    wopts.use_histogram = false;
    wopts.floor_ns = 2'000'000'000;  // 2 s
    wopts.poll_interval_ms = 100;
    watchdog = std::make_unique<oll::bench::Watchdog>(*lock, wopts, threads);
    watchdog->start();
  }

  std::vector<Samples> per_thread(threads);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      oll::ScopedThreadIndex index(w);
      oll::sim::ThreadGuard guard(machine, w);
      oll::sim::ThreadContext& ctx = guard.context();
      oll::Xoshiro256ss rng(w + 1);
      ready.fetch_add(1, std::memory_order_acq_rel);
      oll::spin_until([&] { return go.load(std::memory_order_acquire); });
      if (w % 2 == 1) std::this_thread::yield();  // phase stagger
      for (std::uint64_t i = 0; i < acquires; ++i) {
        const bool read = rng.bernoulli(read_pct, 100);
        const std::uint64_t before = ctx.clock();
        oll::bench::Watchdog* wd = watchdog.get();
        if (wd != nullptr) wd->begin_acquire(w, !read);
        if (read) {
          lock->lock_shared();
          if (wd != nullptr) wd->end_acquire(w);
          per_thread[w].read_latency.push_back(
              static_cast<double>(ctx.clock() - before));
          std::this_thread::yield();
          if (rng.bernoulli(1, 2)) std::this_thread::yield();
          lock->unlock_shared();
        } else {
          lock->lock();
          if (wd != nullptr) wd->end_acquire(w);
          per_thread[w].write_latency.push_back(
              static_cast<double>(ctx.clock() - before));
          lock->unlock();
        }
        std::this_thread::yield();
      }
    });
  }
  oll::spin_until([&] {
    return ready.load(std::memory_order_acquire) == threads;
  });
  go.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  if (watchdog) watchdog->stop();

  Samples all;
  for (auto& s : per_thread) {
    all.read_latency.insert(all.read_latency.end(), s.read_latency.begin(),
                            s.read_latency.end());
    all.write_latency.insert(all.write_latency.end(),
                             s.write_latency.begin(), s.write_latency.end());
  }
  all.stats = lock->stats();  // quiescent: workers joined
  return all;
}

// Sort-once percentile extraction (platform/stats.hpp Percentiles); the old
// free-function form re-sorted the sample vector for every percentile.
void print_row(const char* lock, const char* op, std::vector<double> xs) {
  if (xs.empty()) return;
  const oll::Percentiles p(std::move(xs));
  std::printf("%-14s %-6s %8zu %10.0f %10.0f %10.0f %12.0f\n", lock, op,
              p.count(), p.at(50), p.at(95), p.at(99), p.at(100));
}

// Same table shape, fed from the lock's internal log2 histogram.
void print_hist_row(const char* lock, const char* op,
                    const oll::HistogramSnapshot& h) {
  if (h.empty()) return;
  std::printf("%-14s %-6s %8llu %10.0f %10.0f %10.0f %12llu\n", lock, op,
              static_cast<unsigned long long>(h.count), h.percentile(50),
              h.percentile(95), h.percentile(99),
              static_cast<unsigned long long>(h.max));
}

// Timestamp source for the locks' internal timers: this worker's virtual
// clock (same base as the externally-sampled columns).
std::uint64_t sim_trace_clock() {
  const oll::sim::ThreadContext* ctx = oll::sim::ThreadContext::current();
  return ctx != nullptr ? ctx->clock() : oll::now_ns();
}

}  // namespace

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", 64));
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 95));
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const bool hist = flags.has("hist");
  const bool watchdog = flags.has("watchdog");
  const std::string stats_json = flags.get("stats_json", "");
  const std::string trace_path = flags.get("trace", "");

  // The internal observability layer shares the virtual time base with the
  // externally-sampled columns.
  if (hist || !stats_json.empty() || !trace_path.empty()) {
    oll::trace_set_clock(&sim_trace_clock);
    oll::latency_timing_enable();
  }
  if (!trace_path.empty()) oll::trace_enable();

  std::printf("# Acquisition latency (virtual cycles) on the simulated "
              "T5440: %u threads, %u%% reads\n",
              threads, read_pct);
  std::printf("%-14s %-6s %8s %10s %10s %10s %12s\n", "lock", "op", "n",
              "p50", "p95", "p99", "max");
  struct Row {
    oll::LockKind kind;
    Samples samples;
  };
  std::vector<Row> rows;
  std::vector<oll::bench::TraceRun> trace_runs;
  const std::vector<oll::LockKind> kinds = oll::bench::parse_lock_list(
      flags, "locks", oll::figure5_lock_kinds());
  for (oll::LockKind kind : kinds) {
    Samples s = run_lock(kind, threads, read_pct, acquires, watchdog);
    print_row(oll::lock_kind_name(kind), "read", s.read_latency);
    print_row(oll::lock_kind_name(kind), "write", s.write_latency);
    if (hist) {
      print_hist_row(oll::lock_kind_name(kind), "read*",
                     s.stats.read_acquire);
      print_hist_row(oll::lock_kind_name(kind), "write*",
                     s.stats.write_acquire);
    }
    if (!trace_path.empty()) {
      oll::bench::TraceRun run;
      run.name = std::string(oll::lock_kind_name(kind)) + " t=" +
                 std::to_string(threads) + " r=" + std::to_string(read_pct);
      run.dump = oll::trace_drain();
      run.ts_scale = 1e-3 / 1.4;  // virtual cycles @1.4GHz -> microseconds
      trace_runs.push_back(std::move(run));
    }
    rows.push_back({kind, std::move(s)});
  }
  if (hist) {
    std::printf("# read*/write* rows: the locks' internal log2-histogram "
                "view of the same acquisitions\n");
  }
  std::printf("\n# Expectation (§4.3): ROLL read tails beat FOLL's; ROLL "
              "write tails exceed FOLL's (reader preference).\n");

  if (!trace_path.empty()) {
    oll::trace_disable();
    if (!oll::bench::write_chrome_trace_file(trace_path, trace_runs)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (!stats_json.empty()) {
    // Same document shape as the fig5 binaries' --stats_json (schema v3,
    // docs/STATS_SCHEMA.md), via the single shared writer.
    std::vector<oll::bench::StatsJsonRow> json_rows;
    for (const Row& r : rows) {
      json_rows.push_back({oll::lock_kind_name(r.kind), r.samples.stats, 0});
    }
    if (!oll::bench::write_stats_json_file(
            stats_json, oll::bench::Mode::kSim, "cycles", threads, read_pct,
            acquires, !trace_path.empty(), json_rows)) {
      std::fprintf(stderr, "failed to write %s\n", stats_json.c_str());
      return 1;
    }
  }
  oll::latency_timing_disable();
  return 0;
}
