// Figure 5(e): throughput at 50% reads / 50% writes.
// Paper result: the distributed queue locks (FOLL/ROLL/KSUH) behave alike —
// near-constant on-chip and off-chip throughput with a drop at 64 threads;
// GOLL and Solaris-like hold constant but lower throughput on-chip.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(e): 50% reads", 50, argc, argv);
}
