// Figure 5(f): throughput at 0% reads (pure mutual exclusion).
// Paper result: same regime as 50% reads — queue locks near-constant with a
// 64-thread drop, GOLL and Solaris-like constant but lower.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(f): 0% reads", 0, argc, argv);
}
