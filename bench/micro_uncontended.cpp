// Single-thread acquire/release latency for every lock in the library —
// the "keeps the acquisition overhead small in the absence of read
// contention" claim (abstract, §2): the OLL fast paths must stay comparable
// to the central-lockword locks when only one thread runs.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/factory.hpp"

namespace {

using oll::AnyRwLock;
using oll::LockKind;

void read_acquire_release(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  for (auto _ : state) {
    lock->lock_shared();
    lock->unlock_shared();
  }
}

void write_acquire_release(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  for (auto _ : state) {
    lock->lock();
    lock->unlock();
  }
}

}  // namespace

#define OLL_BENCH_LOCK(name, kind)                                      \
  void BM_Read_##name(benchmark::State& s) {                            \
    read_acquire_release(s, LockKind::kind);                            \
  }                                                                     \
  BENCHMARK(BM_Read_##name);                                            \
  void BM_Write_##name(benchmark::State& s) {                           \
    write_acquire_release(s, LockKind::kind);                           \
  }                                                                     \
  BENCHMARK(BM_Write_##name);

OLL_BENCH_LOCK(GOLL, kGoll)
OLL_BENCH_LOCK(FOLL, kFoll)
OLL_BENCH_LOCK(ROLL, kRoll)
OLL_BENCH_LOCK(KSUH, kKsuh)
OLL_BENCH_LOCK(Solaris, kSolarisLike)
OLL_BENCH_LOCK(McsRw, kMcsRw)
OLL_BENCH_LOCK(BigReader, kBigReader)
OLL_BENCH_LOCK(Central, kCentral)
OLL_BENCH_LOCK(StdShared, kStdShared)
// BRAVO wrappers: the read numbers here are the bias fast path (one CAS +
// one store on a private table slot, zero shared-state RMWs).
OLL_BENCH_LOCK(BravoGoll, kBravoGoll)
OLL_BENCH_LOCK(BravoRoll, kBravoRoll)
OLL_BENCH_LOCK(BravoCentral, kBravoCentral)
// Versioned wrappers: the pessimistic paths below carry the version bump;
// BM_OptRead_* is the store-free begin/validate window itself.
OLL_BENCH_LOCK(OptGoll, kOptGoll)
OLL_BENCH_LOCK(OptBravoGoll, kOptBravoGoll)
OLL_BENCH_LOCK(OptCentral, kOptCentral)

namespace {

void opt_read_window(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  std::uint64_t failures = 0;
  for (auto _ : state) {
    const std::uint64_t stamp = lock->opt_read_begin();
    benchmark::DoNotOptimize(stamp);
    if (!lock->opt_read_validate(stamp)) ++failures;
  }
  if (failures != 0) state.SkipWithError("uncontended validation failed");
}

}  // namespace

#define OLL_BENCH_OPT(name, kind)                                       \
  void BM_OptRead_##name(benchmark::State& s) {                         \
    opt_read_window(s, LockKind::kind);                                 \
  }                                                                     \
  BENCHMARK(BM_OptRead_##name);

OLL_BENCH_OPT(OptGoll, kOptGoll)
OLL_BENCH_OPT(OptBravoGoll, kOptBravoGoll)
OLL_BENCH_OPT(OptCentral, kOptCentral)

BENCHMARK_MAIN();
