// Single-thread acquire/release latency for every lock in the library —
// the "keeps the acquisition overhead small in the absence of read
// contention" claim (abstract, §2): the OLL fast paths must stay comparable
// to the central-lockword locks when only one thread runs.
//
// Telemetry overhead experiment (DESIGN.md §14): set OLL_TELEMETRY_MS=N in
// the environment to run the whole suite with a live telemetry exporter
// ticking every N ms (census armed, registry sampled).  Comparing against a
// run without the variable — or against an OLL_REGISTRY=0 build — bounds
// the observability tax on the uncontended fast path (EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/factory.hpp"
#include "harness/telemetry.hpp"

namespace {

using oll::AnyRwLock;
using oll::LockKind;

void read_acquire_release(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  for (auto _ : state) {
    lock->lock_shared();
    lock->unlock_shared();
  }
}

void write_acquire_release(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  for (auto _ : state) {
    lock->lock();
    lock->unlock();
  }
}

}  // namespace

#define OLL_BENCH_LOCK(name, kind)                                      \
  void BM_Read_##name(benchmark::State& s) {                            \
    read_acquire_release(s, LockKind::kind);                            \
  }                                                                     \
  BENCHMARK(BM_Read_##name);                                            \
  void BM_Write_##name(benchmark::State& s) {                           \
    write_acquire_release(s, LockKind::kind);                           \
  }                                                                     \
  BENCHMARK(BM_Write_##name);

OLL_BENCH_LOCK(GOLL, kGoll)
OLL_BENCH_LOCK(FOLL, kFoll)
OLL_BENCH_LOCK(ROLL, kRoll)
OLL_BENCH_LOCK(KSUH, kKsuh)
OLL_BENCH_LOCK(Solaris, kSolarisLike)
OLL_BENCH_LOCK(McsRw, kMcsRw)
OLL_BENCH_LOCK(BigReader, kBigReader)
OLL_BENCH_LOCK(Central, kCentral)
OLL_BENCH_LOCK(StdShared, kStdShared)
// BRAVO wrappers: the read numbers here are the bias fast path (one CAS +
// one store on a private table slot, zero shared-state RMWs).
OLL_BENCH_LOCK(BravoGoll, kBravoGoll)
OLL_BENCH_LOCK(BravoRoll, kBravoRoll)
OLL_BENCH_LOCK(BravoCentral, kBravoCentral)
// Versioned wrappers: the pessimistic paths below carry the version bump;
// BM_OptRead_* is the store-free begin/validate window itself.
OLL_BENCH_LOCK(OptGoll, kOptGoll)
OLL_BENCH_LOCK(OptBravoGoll, kOptBravoGoll)
OLL_BENCH_LOCK(OptCentral, kOptCentral)

namespace {

void opt_read_window(benchmark::State& state, LockKind kind) {
  auto lock = oll::make_rwlock(kind);
  std::uint64_t failures = 0;
  for (auto _ : state) {
    const std::uint64_t stamp = lock->opt_read_begin();
    benchmark::DoNotOptimize(stamp);
    if (!lock->opt_read_validate(stamp)) ++failures;
  }
  if (failures != 0) state.SkipWithError("uncontended validation failed");
}

}  // namespace

#define OLL_BENCH_OPT(name, kind)                                       \
  void BM_OptRead_##name(benchmark::State& s) {                         \
    opt_read_window(s, LockKind::kind);                                 \
  }                                                                     \
  BENCHMARK(BM_OptRead_##name);

OLL_BENCH_OPT(OptGoll, kOptGoll)
OLL_BENCH_OPT(OptBravoGoll, kOptBravoGoll)
OLL_BENCH_OPT(OptCentral, kOptCentral)

int main(int argc, char** argv) {
  std::unique_ptr<oll::TelemetryExporter> telemetry;
  if (const char* ms = std::getenv("OLL_TELEMETRY_MS"); ms != nullptr) {
    oll::TelemetryOptions topts;
    topts.interval_ms = std::strtoull(ms, nullptr, 10);
    if (topts.interval_ms == 0) topts.interval_ms = 100;
    if (const char* c = std::getenv("OLL_TELEMETRY_CENSUS"); c != nullptr) {
      topts.census = std::strtoul(c, nullptr, 10) != 0;
    }
    telemetry = std::make_unique<oll::TelemetryExporter>(topts);
    telemetry->start();
    std::fprintf(stderr,
                 "micro_uncontended: telemetry exporter armed, tick=%llu ms"
                 " census=%d\n",
                 static_cast<unsigned long long>(topts.interval_ms),
                 topts.census ? 1 : 0);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (telemetry != nullptr) telemetry->stop();
  return 0;
}
