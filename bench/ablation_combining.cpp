// Flat-combining / delegation ablation (DESIGN.md §15): what each piece of
// the delegated writer path buys on the write-heavy Figure 5 workloads.
//
//   cohort baseline — GOLL with the cohort metalock, plain lock()/unlock()
//                     writes.  In sim mode plain write sections carry no
//                     in-section yield, so under the round-robin host they
//                     are never observed held (all-fast-path regime) — this
//                     row is the no-waiting reference, not the contended
//                     incumbent
//   delegated, no combine — same lock, writes routed through with_write();
//                     with the combining pool off the closure degrades to
//                     acquire-execute-release.  Delegated sections yield
//                     in-section (harness/driver.cpp), so writers genuinely
//                     overlap and wait — THIS is the contended cohort-
//                     metalock incumbent the combining rows must beat
//   combine         — combining pool on, pointer-width C-SNZI root
//   combine+dwcas   — the full goll-combining factory kind (combining pool
//                     + 16-byte fused root); on builds without DWCAS
//                     support this silently equals the row above
//   dwcas only      — fused root without combining, to split the credit
//
// plus a combining-budget sweep (max slots drained per release) at
// write-only.  fig5f (0% reads) and fig5c (95% reads) are the workloads
// the writer path actually gates; the thread counts straddle the paper's
// 64-thread (one-chip) cliff.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  bool delegate;                  // route writes through with_write()
  bool combine;                   // enable the combining pool
  bool dwcas;                     // 16-byte fused C-SNZI root
  std::uint32_t combine_budget;   // 0 = lock default
};

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint32_t read_pct, std::uint64_t acquires,
                   std::uint32_t reps) {
  double sum = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    ob::WorkloadConfig w;
    w.threads = threads;
    w.read_pct = read_pct;
    w.acquires_per_thread = acquires;
    w.seed = 42 + rep;
    w.combine = v.combine;
    w.dwcas_root = v.dwcas;
    w.delegate_writes = v.delegate;
    if (v.combine_budget != 0) w.combine_budget = v.combine_budget;
    sum += ob::run_workload(oll::LockKind::kGoll, w, ob::Mode::kSim)
               .throughput();
  }
  return sum / reps;
}

void run_table(const char* title, std::uint32_t read_pct,
               const std::vector<Variant>& variants,
               const std::vector<std::uint32_t>& threads,
               std::uint64_t acquires, std::uint32_t reps) {
  ob::print_variant_table(
      std::string(title) + " (read_pct=" + std::to_string(read_pct) + ")",
      variants, threads, [&](const Variant& v, std::uint32_t t) {
        return run_variant(v, t, read_pct, acquires, reps);
      });
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 300);
  const auto reps = static_cast<std::uint32_t>(flags.get_u64("reps", 1));
  const std::vector<std::uint32_t> thread_counts = {8, 32, 64};

  const std::vector<Variant> pieces = {
      {"cohort baseline (no delegation)", false, false, false, 0},
      {"delegated, no combine", true, false, false, 0},
      {"combine, pointer root", true, true, false, 0},
      {"combine + dwcas root (goll-combining)", true, true, true, 0},
      {"dwcas root only", true, false, true, 0},
  };

  std::cout << "# Flat-combining ablation: GOLL lock, simulated T5440\n"
            << "# (DESIGN.md §15: delegated writes execute on the current "
               "holder, in-cache)\n";
  run_table("fig5f write-only", 0, pieces, thread_counts, acquires, reps);
  run_table("fig5c 95% reads", 95, pieces, thread_counts, acquires, reps);

  const std::vector<Variant> budgets = {
      {"combine budget 1", true, true, true, 1},
      {"combine budget 8", true, true, true, 8},
      {"combine budget 64 (default)", true, true, true, 64},
      {"combine budget 256", true, true, true, 256},
  };
  run_table("combine budget sweep, write-only", 0, budgets, thread_counts,
            acquires, reps);
  return 0;
}
