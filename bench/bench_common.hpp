// Shared flag->config plumbing for the bench binaries.
//
// Before this header existed, every sweep binary re-parsed the same dozen
// flags by hand (fig5a-f via fig5_common.hpp, fig5_all and traffic_table
// with their own copies); index_traversal would have been the seventh.
// The helpers below are the single home for that boilerplate:
//
//   * parse_lock_list()      --locks=a,b,c -> vector<LockKind>
//   * parse_sweep_flags()    the full SweepConfig flag set (mode, threads,
//                            acquires, reps, cs_work, warmup, leaf_map,
//                            sticky, metalock, cohort_budget, combine,
//                            dwcas_root, combine_budget, delegate_writes,
//                            timeout_ns, fault_profile, watchdog, pin);
//                            returns 0 on
//                            success, 2 (usage error) after printing a
//                            message for a malformed value
//   * run_observability_flags()  the post-sweep --hist/--stats_json/--trace
//                            pass (DESIGN.md §9)
//   * start_telemetry_flags()    the continuous exporter
//                            (--telemetry_interval_ms/--metrics_out/
//                            --metrics_port, DESIGN.md §14)
//
// Flag semantics are documented once, in fig5_common.hpp's header comment.
#pragma once

#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "platform/fault.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace oll::bench {

// Parse a comma-separated --<key>= lock list; unknown names are skipped
// with a note.  Returns `fallback` when the flag is absent or nothing
// parsed.
inline std::vector<LockKind> parse_lock_list(
    const Flags& flags, const std::string& key,
    std::vector<LockKind> fallback) {
  if (!flags.has(key)) return fallback;
  std::vector<LockKind> kinds;
  std::stringstream ss(flags.get(key, ""));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (auto kind = parse_lock_kind(item)) {
      kinds.push_back(*kind);
    } else {
      std::cerr << "# unknown lock kind '" << item << "' skipped\n";
    }
  }
  return kinds.empty() ? fallback : kinds;
}

// Fill every SweepConfig field the common flag set controls (everything
// except read_pct and locks, which each binary owns).  Returns 0, or 2
// after printing a usage error for a malformed value.
inline int parse_sweep_flags(const Flags& flags, SweepConfig& cfg) {
  cfg.mode = flags.get("mode", "sim") == "real" ? Mode::kReal : Mode::kSim;
  const std::uint32_t default_max = cfg.mode == Mode::kSim ? 256 : 16;
  const auto max_threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", default_max));
  cfg.thread_counts = default_thread_counts(max_threads);
  cfg.acquires_per_thread = flags.get_u64("acquires", 0);
  cfg.repetitions = static_cast<std::uint32_t>(flags.get_u64("reps", 1));
  cfg.cs_work = flags.get_u64("cs_work", 0);
  cfg.warmup_acquires = flags.get_u64("warmup", 0);
  if (flags.has("leaf_map")) {
    LeafMapping m;
    if (parse_leaf_mapping(flags.get("leaf_map", ""), m)) {
      cfg.leaf_mapping = m;
    } else {
      std::cerr
          << "unknown --leaf_map (want auto|static|thread|smt|llc|numa)\n";
      return 2;
    }
  }
  if (flags.has("sticky")) {
    cfg.sticky_arrivals =
        static_cast<std::uint32_t>(flags.get_u64("sticky", 64));
  }
  if (flags.has("metalock")) {
    if (auto k = parse_metalock_kind(flags.get("metalock", ""))) {
      cfg.metalock = *k;
    } else {
      std::cerr << "unknown --metalock (want tatas|mcs|cohort)\n";
      return 2;
    }
  }
  if (flags.has("cohort_budget")) {
    cfg.cohort_budget =
        static_cast<std::uint32_t>(flags.get_u64("cohort_budget", 32));
  }
  cfg.combine = flags.has("combine");
  cfg.dwcas_root = flags.has("dwcas_root");
  if (flags.has("combine_budget")) {
    cfg.combine_budget =
        static_cast<std::uint32_t>(flags.get_u64("combine_budget", 64));
  }
  cfg.delegate_writes = flags.has("delegate_writes");
  cfg.timeout_ns = flags.get_u64("timeout_ns", 0);
  if (flags.has("fault_profile")) {
    const std::string profile = flags.get("fault_profile", "off");
    FaultProfile parsed;
    if (!fault_profile_from_name(profile.c_str(), &parsed)) {
      std::cerr
          << "unknown --fault_profile (want off|jitter|cas|preempt|chaos)\n";
      return 2;
    }
    cfg.fault_profile = profile;
  }
  cfg.watchdog = flags.has("watchdog");
  if (cfg.watchdog && cfg.mode == Mode::kSim) {
    std::cerr << "# --watchdog is wall-clock based; ignored in sim mode\n";
  }
  cfg.pin_threads = flags.has("pin");
  if (cfg.pin_threads && cfg.mode == Mode::kSim) {
    std::cerr << "# --pin is host-affinity based; ignored in sim mode\n";
  }
  return 0;
}

// The optional post-sweep observability pass.  Returns 0 (also when no
// observability flag was given) or 1 on export failure.
inline int run_observability_flags(const Flags& flags,
                                   const SweepConfig& cfg) {
  if (!flags.has("hist") && !flags.has("stats_json") && !flags.has("trace")) {
    return 0;
  }
  ObservabilityConfig obs;
  obs.sweep = cfg;
  obs.threads = static_cast<std::uint32_t>(flags.get_u64("obs_threads", 0));
  obs.stats_json_path = flags.get("stats_json", "");
  obs.trace_path = flags.get("trace", "");
  obs.ring_capacity =
      static_cast<std::uint32_t>(flags.get_u64("trace_ring", 1u << 13));
  if (!run_observability_pass(std::cout, obs)) {
    std::cerr << "observability export failed\n";
    return 1;
  }
  return 0;
}

// --- sim-variant ablation plumbing ---------------------------------------
//
// The ablation binaries (ablation_csnzi, ablation_metalock,
// ablation_queue_policy, ablation_combining, ...) all do the same three
// things: build a hand-tuned lock the factory does not expose, run it on a
// fresh simulated T5440, and print a "variant,t8,t64,..." CSV table.  Each
// used to carry its own copy of that plumbing; these helpers are its single
// home.

// The harness driver's sim-mode C-SNZI tuning (leaf placement derived from
// the simulated machine's topology, SMT siblings sharing a leaf).  Ablation
// variants start from this base so "default" rows match the fig5 binaries.
inline CSnziOptions sim_csnzi_base() {
  CSnziOptions o;
  o.topology = &sim::t5440_cpu_topology();
  o.topology_mapping = LeafMapping::kSmtCluster;
  o.leaves = 64;
  o.root_cas_fail_threshold = 1;
  return o;
}

// Run one hand-built lock variant on a fresh simulated T5440.  LockT must
// be instantiated over sim::SimMemory.
template <typename LockT, typename OptsT>
inline RunResult run_sim_variant(const char* name, const OptsT& opts,
                                 const WorkloadConfig& w) {
  sim::Machine machine(sim::t5440_topology(), sim::t5440_costs(),
                       std::max<std::uint32_t>(w.threads, 512));
  RwLockAdapter<LockT> lock(name, opts);
  return run_sim_workload_on(lock, w, machine);
}

// CSV table shared by the ablation binaries: one row per variant (anything
// with a `.name`), one column per thread count, cells produced by
// `cell(variant, threads)`.
template <typename V, typename CellFn>
inline void print_variant_table(const std::string& title,
                                const std::vector<V>& variants,
                                const std::vector<std::uint32_t>& threads,
                                CellFn cell) {
  std::cout << "# " << title << "\nvariant";
  for (auto t : threads) std::cout << ",t" << t;
  std::cout << "\n";
  for (const V& v : variants) {
    std::cout << "\"" << v.name << "\"";
    for (auto t : threads) {
      std::cout << "," << std::scientific << cell(v, t);
    }
    std::cout << "\n" << std::flush;
  }
}

// Start the continuous telemetry exporter when any of its flags was given
// (DESIGN.md §14).  Returns null otherwise.  Keep the returned handle
// alive for the duration of the run; its destructor takes a final tick.
inline std::unique_ptr<TelemetryExporter> start_telemetry_flags(
    const Flags& flags) {
  TelemetryFlagValues v;
  v.interval_ms = flags.get_u64("telemetry_interval_ms", 100);
  v.metrics_out = flags.get("metrics_out", "");
  if (flags.has("metrics_port")) {
    v.metrics_port = static_cast<int>(flags.get_u64("metrics_port", 0));
  }
  auto exp = make_telemetry_exporter(v);
  if (exp != nullptr && exp->bound_port() >= 0) {
    std::cerr << "# telemetry: serving metrics on http://127.0.0.1:"
              << exp->bound_port() << "/metrics\n";
  }
  return exp;
}

}  // namespace oll::bench
