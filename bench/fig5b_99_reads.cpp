// Figure 5(b): throughput at 99% reads / 1% writes.
// Paper result: FOLL and ROLL scale while on-chip and beat KSUH everywhere;
// FOLL drops ~10x past 64 threads (FIFO handoffs pay off-chip latency) while
// ROLL keeps most of its 64-thread performance; GOLL scales slowly to ~48
// threads, then queue-mutex contention drops it; Solaris-like decays from 2
// threads on.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(b): 99% reads", 99, argc, argv);
}
