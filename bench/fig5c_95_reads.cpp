// Figure 5(c): throughput at 95% reads / 5% writes.
// Paper result: ROLL and FOLL keep scaling on-chip and are >2x KSUH at 64
// threads and >5x at 256; GOLL now behaves like the Solaris-like lock
// (queue-mutex cost dominates); all queue locks drop once off-chip.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(c): 95% reads", 95, argc, argv);
}
