// Metalock ablation: the GOLL writer-arbitration path under the three
// selectable metalocks (locks/cohort_mcs_lock.hpp):
//
//   tatas   — the seed's globally-spinning test-and-test-and-set lock
//   mcs     — local-spin MCS queue (one remote line written per release)
//   cohort  — two-level cohort MCS + the wait queue's domain-preferring
//             writer wakes (consecutive holders stay in one LLC domain)
//
// Each variant runs the write-heavy Figure 5 workloads the metalock actually
// gates — fig5f (write-only) and fig5c (95% reads) — on a GOLL lock over the
// simulated T5440, and prints one series row per (variant, workload).  A
// cohort-budget sweep at the bottom shows the fairness/locality trade.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "locks/goll_lock.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  oll::MetalockKind kind;
  std::uint32_t cohort_budget;
};

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint32_t read_pct, std::uint64_t acquires) {
  oll::GollOptions g;
  g.max_threads = threads + 1;
  g.csnzi = ob::sim_csnzi_base();
  g.metalock.kind = v.kind;
  g.metalock.cohort_budget = v.cohort_budget;
  g.metalock.topology = &oll::sim::t5440_cpu_topology();
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = read_pct;
  w.acquires_per_thread = acquires;
  return ob::run_sim_variant<oll::GollLock<oll::sim::SimMemory>>(v.name, g, w)
      .throughput();
}

void run_table(const char* title, std::uint32_t read_pct,
               const std::vector<Variant>& variants,
               const std::vector<std::uint32_t>& thread_counts,
               std::uint64_t acquires) {
  ob::print_variant_table(
      std::string(title) + " (read_pct=" + std::to_string(read_pct) + ")",
      variants, thread_counts, [&](const Variant& v, std::uint32_t t) {
        return run_variant(v, t, read_pct, acquires);
      });
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 300);
  const std::vector<std::uint32_t> thread_counts = {8, 32, 64};

  const std::vector<Variant> kinds = {
      {"tatas (seed metalock)", oll::MetalockKind::kTatas, 32},
      {"mcs (local-spin queue)", oll::MetalockKind::kMcs, 32},
      {"cohort (budget 32)", oll::MetalockKind::kCohort, 32},
  };

  std::cout << "# Metalock ablation: GOLL lock, simulated T5440\n"
            << "# (writer arbitration: TATAS vs MCS vs NUMA cohort handoff)\n";
  run_table("fig5f write-only", 0, kinds, thread_counts, acquires);
  run_table("fig5c 95% reads", 95, kinds, thread_counts, acquires);

  const std::vector<Variant> budgets = {
      {"cohort budget 1 (near-FIFO)", oll::MetalockKind::kCohort, 1},
      {"cohort budget 8", oll::MetalockKind::kCohort, 8},
      {"cohort budget 32 (default)", oll::MetalockKind::kCohort, 32},
      {"cohort budget 128", oll::MetalockKind::kCohort, 128},
  };
  run_table("cohort budget sweep, write-only", 0, budgets, thread_counts,
            acquires);
  return 0;
}
