// Figure 5(d): throughput at 80% reads / 20% writes.
// Paper result: ROLL continues to scale on-chip; FOLL levels off at ~32
// threads; off-chip, both converge toward the remaining locks.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(d): 80% reads", 80, argc, argv);
}
