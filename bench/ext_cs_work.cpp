// Extension experiment (no paper counterpart): throughput vs critical-
// section length.
//
// The paper's methodology uses empty critical sections (§5.1), which
// maximizes lock-overhead contrast.  As the critical section grows, lock
// overhead amortizes and all designs converge — this bench locates that
// crossover on the simulated T5440, which tells a practitioner how much
// real work inside the section still justifies an OLL lock over a simple
// central one.
//
// Flags: --threads=N (64) --read_pct=P (100) --acquires=N (300)
#include <cstdio>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", 64));
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 100));
  const std::uint64_t acquires = flags.get_u64("acquires", 300);
  const std::vector<std::uint64_t> cs_cycles = {0, 100, 1000, 10000};

  std::printf("# Throughput vs critical-section work (virtual cycles), "
              "simulated T5440: %u threads, %u%% reads\n",
              threads, read_pct);
  std::printf("%-14s", "lock");
  for (auto cs : cs_cycles) {
    std::printf(" %13s", ("cs=" + std::to_string(cs)).c_str());
  }
  std::printf("\n");

  for (oll::LockKind kind : oll::figure5_lock_kinds()) {
    std::printf("%-14s", oll::lock_kind_name(kind));
    for (auto cs : cs_cycles) {
      oll::bench::WorkloadConfig cfg;
      cfg.threads = threads;
      cfg.read_pct = read_pct;
      cfg.acquires_per_thread = acquires;
      cfg.cs_work = cs;
      const auto r =
          oll::bench::run_workload(kind, cfg, oll::bench::Mode::kSim);
      std::printf(" %13.3e", r.throughput());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n# Reading: with cs=10000 cycles (~7 us) even the central "
              "locks approach the OLL numbers\n# at high read ratios — the "
              "paper's gains matter most for short read sections.\n");
  return 0;
}
