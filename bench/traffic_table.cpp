// Coherence-traffic table: the §1 argument quantified.
//
// The paper's entire case is about WHO WRITES CENTRAL CACHE LINES HOW
// OFTEN: "this lockword becomes a significant source of unnecessary
// contention ... since it must be updated by every thread every time it
// acquires and releases the lock."  The simulated-memory counters expose
// exactly that: per acquisition, how many atomic RMWs a lock performs and
// how many of them migrate a line between cores or chips.
//
// Flags: --threads=N (256) --read_pct=P (100) --acquires=N (500)
//        --locks=a,b,c (figure-5 legend set)
//        plus the telemetry trio (--metrics_out/--metrics_port/
//        --telemetry_interval_ms, fig5_common.hpp)
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", 256));
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 100));
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const std::vector<oll::LockKind> kinds = oll::bench::parse_lock_list(
      flags, "locks", oll::figure5_lock_kinds());

  auto telemetry = oll::bench::start_telemetry_flags(flags);

  std::printf("# Per-acquisition coherence traffic, simulated T5440: "
              "%u threads, %u%% reads\n",
              threads, read_pct);
  std::printf("# core  = same-core transfers (SMT siblings, ~free)\n");
  std::printf("# chip  = cross-core transfers through the shared L2\n");
  std::printf("# xchip = cross-chip transfers through a coherency hub\n");
  std::printf("%-14s %8s %8s %8s %8s %10s %12s\n", "lock", "rmw", "core",
              "chip", "xchip", "casfail", "acquires/s");

  for (oll::LockKind kind : kinds) {
    oll::bench::WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.read_pct = read_pct;
    cfg.acquires_per_thread = acquires;
    const auto r =
        oll::bench::run_workload(kind, cfg, oll::bench::Mode::kSim);
    const double n = static_cast<double>(std::max<std::uint64_t>(
        r.total_acquires, 1));
    std::printf("%-14s %8.2f %8.2f %8.3f %8.3f %10.2f %12.3e\n",
                oll::lock_kind_name(kind),
                static_cast<double>(r.counters.rmws) / n,
                static_cast<double>(r.counters.samecore_transfers) / n,
                static_cast<double>(r.counters.onchip_transfers) / n,
                static_cast<double>(r.counters.offchip_transfers) / n,
                static_cast<double>(r.counters.emulated_cas_failures) / n,
                r.throughput());
  }
  std::printf("\n# Expectation (§1): the OLL locks' chip/xchip columns stay "
              "near zero under reads;\n# KSUH and Solaris-like migrate "
              "central lines on every acquisition.\n");
  return 0;
}
