// Oversubscription degradation bench (DESIGN.md §16): what each waiting
// discipline costs when software threads outnumber hardware contexts.
//
// The paper's evaluation assumes a dedicated hardware thread per software
// thread (§5.1) and spins without ever blocking.  This bench measures what
// that assumption costs when it breaks: worker counts of 4x/16x hardware
// concurrency run the fig5c (95% reads) and fig5f (write-only) mixes under
// three GOLL waiting disciplines —
//   pure  WaitStrategy::kSpin with the yield escalation disabled
//         (set_pure_spin, platform/spin.hpp): the paper-faithful
//         discipline.  Every handoff to a descheduled waiter burns whole
//         scheduler quanta; throughput collapses as mult grows.
//   spin  WaitStrategy::kSpin as shipped: spin 64 pauses, then
//         sched_yield.  The seed's own oversubscription mitigation —
//         survives, but every waiter still wakes to burn a timeslice
//         polling a flag that has not changed.
//   park  WaitStrategy::kSpinThenPark: adaptive spin, then futex park.
//         Waiters leave the runnable set entirely; CPU-seconds/op stays
//         near the dedicated-core cost.
// Each cell reports wall-clock throughput AND process CPU time per op
// (getrusage) over a fixed-duration measurement window.
//
// Real mode only: oversubscription is a host-scheduler phenomenon, and the
// sim's virtual clock cannot express it.
//
// Output: a CSV row per (mix, multiplier, policy) plus one "# parkstat
// mix=... mult=..." comment line per (mix, multiplier) cell, which
// scripts/bench_smoke.py scrapes into the gated park.* series of
// BENCH_<n>.json.  ratio_pure = park/pure throughput (the tentpole's
// ">= 3x at 16x" claim); ratio_yield = park/spin (how much the futex path
// adds over the yield mitigation).
//
// Flags: --mults=4,16   oversubscription multipliers (x hw_concurrency)
//        --secs=S       measurement window per configuration (float ok)
//        --cs_work=N    dummy iterations inside the critical section
//        --skip_pure=1  omit the pure-spin rows (they are slow by design)
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hpp"
#include "locks/goll_lock.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"

namespace oll::bench {
namespace {

enum class Policy { kPure, kSpin, kPark };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kPure: return "pure";
    case Policy::kSpin: return "spin";
    case Policy::kPark: return "park";
  }
  return "?";
}

struct RunOut {
  double ops_per_s = 0;
  double cpu_us_per_op = 0;
  double wall_s = 0;
  double cpu_s = 0;
  std::uint64_t ops = 0;
  std::uint64_t parks = 0;
};

double cpu_seconds_now() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           1e-6 * static_cast<double>(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

inline std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RunOut run_one(std::uint32_t threads, double secs, std::uint32_t read_pct,
               std::uint64_t cs_work, Policy policy) {
  // pure is kSpin with the escalation disabled process-wide for the run;
  // SpinWait objects latch the flag at construction, and every waiter
  // constructs its SpinWait after go.
  set_pure_spin(policy == Policy::kPure);
  GollOptions g;
  g.max_threads = threads;
  g.wait_strategy = policy == Policy::kPark ? WaitStrategy::kSpinThenPark
                                            : WaitStrategy::kSpin;
  GollLock<> lock(g);

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<std::uint64_t> sink{0};

  auto worker = [&](std::uint32_t w) {
    ScopedThreadIndex index(w);
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL * (w + 1);
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    std::uint64_t local = 0;
    std::uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool read = (splitmix64(rng) % 100) < read_pct;
      if (read) {
        lock.lock_shared();
        for (std::uint64_t k = 0; k < cs_work; ++k) local += k;
        lock.unlock_shared();
      } else {
        lock.lock();
        for (std::uint64_t k = 0; k < cs_work; ++k) local += k;
        lock.unlock();
      }
      ++ops;
    }
    sink.fetch_add(local, std::memory_order_relaxed);
    total_ops.fetch_add(ops, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const double cpu0 = cpu_seconds_now();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true, std::memory_order_relaxed);
  // The join covers the drain: queued waiters still receive their grants
  // (a chain of handoffs) before the last worker exits.  Wall and CPU
  // include the drain, which only penalizes the slow disciplines.
  for (auto& t : pool) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double cpu1 = cpu_seconds_now();
  set_pure_spin(false);

  RunOut out;
  out.ops = total_ops.load(std::memory_order_relaxed);
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.cpu_s = cpu1 - cpu0;
  out.ops_per_s =
      out.wall_s > 0 ? static_cast<double>(out.ops) / out.wall_s : 0;
  out.cpu_us_per_op =
      out.ops > 0 ? out.cpu_s * 1e6 / static_cast<double>(out.ops) : 0;
  out.parks = lock.stats().parks;
  return out;
}

struct Mix {
  const char* name;
  std::uint32_t read_pct;
};

}  // namespace
}  // namespace oll::bench

int main(int argc, char** argv) {
  using namespace oll;
  using namespace oll::bench;
  const Flags flags(argc, argv);

  const std::uint32_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> mults;
  {
    std::stringstream ss(flags.get("mults", "4,16"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      mults.push_back(static_cast<std::uint32_t>(std::stoul(item)));
    }
  }
  const double secs = std::stod(flags.get("secs", "1.0"));
  const std::uint64_t cs_work = flags.get_u64("cs_work", 16);
  const bool skip_pure = flags.get_u64("skip_pure", 0) != 0;
  const Mix mixes[] = {{"fig5c", 95}, {"fig5f", 0}};

  std::printf("# oversubscribe: cores=%u secs=%.2f cs_work=%llu\n", cores,
              secs, static_cast<unsigned long long>(cs_work));
  std::printf(
      "mix,mult,threads,policy,ops_per_s,cpu_us_per_op,ops,wall_s,cpu_s,"
      "parks\n");
  for (const Mix& mix : mixes) {
    for (std::uint32_t mult : mults) {
      const std::uint32_t threads =
          std::min<std::uint32_t>(mult * cores, kMaxThreads);
      RunOut out[3];
      const auto emit_row = [&](Policy p, const RunOut& o) {
        std::printf("%s,%u,%u,%s,%.6e,%.4f,%llu,%.4f,%.4f,%llu\n", mix.name,
                    mult, threads, policy_name(p), o.ops_per_s,
                    o.cpu_us_per_op, static_cast<unsigned long long>(o.ops),
                    o.wall_s, o.cpu_s,
                    static_cast<unsigned long long>(o.parks));
        std::fflush(stdout);
      };
      for (Policy p : {Policy::kPure, Policy::kSpin, Policy::kPark}) {
        if (p == Policy::kPure && skip_pure) continue;
        RunOut& o = out[static_cast<int>(p)];
        o = run_one(threads, secs, mix.read_pct, cs_work, p);
        emit_row(p, o);
      }
      const RunOut& pure = out[0];
      const RunOut& spin = out[1];
      const RunOut& park = out[2];
      // One scrapeable line per cell.  ratio_pure is the tentpole claim
      // (park vs paper-faithful spin); ratio_yield compares against the
      // seed's yield mitigation.  Ratios are self-normalizing across
      // hosts, which is what makes them gateable.
      std::printf(
          "# parkstat mix=%s mult=%u threads=%u ratio_pure=%.4f "
          "ratio_yield=%.4f pure_ops_per_s=%.6e spin_ops_per_s=%.6e "
          "park_ops_per_s=%.6e pure_cpu_us_per_op=%.4f "
          "spin_cpu_us_per_op=%.4f park_cpu_us_per_op=%.4f park_parks=%llu\n",
          mix.name, mult, threads,
          pure.ops_per_s > 0 ? park.ops_per_s / pure.ops_per_s : 0.0,
          spin.ops_per_s > 0 ? park.ops_per_s / spin.ops_per_s : 0.0,
          pure.ops_per_s, spin.ops_per_s, park.ops_per_s,
          pure.cpu_us_per_op, spin.cpu_us_per_op, park.cpu_us_per_op,
          static_cast<unsigned long long>(park.parks));
      std::fflush(stdout);
    }
  }
  return 0;
}
