// Figure 5(a): throughput under a 100%-read workload, threads 1..256.
// Paper result: all three OLL locks scale linearly to 256 threads; the KSUH
// lock collapses ~10x past 64 threads; the Solaris-like lock decays steadily.
#include "fig5_common.hpp"

int main(int argc, char** argv) {
  return oll::bench::run_fig5("Figure 5(a): 100% reads", 100, argc, argv);
}
