// Ablation benches for the C-SNZI design choices the paper discusses:
//
//  1. Arrival policy (§2.2 / §5.1): adaptive vs always-root vs always-tree.
//     "Arriving and departing at the leaves is expensive [without
//     contention] ... so we arrive and depart directly at the root."
//  2. Root-CAS failure threshold for the adaptive switch.
//  3. Leaf locality: the topology-derived mappings (per-thread vs
//     SMT-cluster vs LLC-cluster) against the seed's static leaf_shift.
//  4. Sticky arrivals: the root-read-free tree fast path vs re-reading the
//     root on every arrival.
//
// Each variant runs the Figure 5(a) read-only workload on a GOLL lock over
// the simulated T5440 and prints one series row.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "locks/goll_lock.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  oll::CSnziOptions csnzi;
};

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint64_t acquires) {
  oll::GollOptions g;
  g.max_threads = threads + 1;
  g.csnzi = v.csnzi;
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = 100;
  w.acquires_per_thread = acquires;
  return ob::run_sim_variant<oll::GollLock<oll::sim::SimMemory>>(v.name, g, w)
      .throughput();
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const std::vector<std::uint32_t> thread_counts = {1, 8, 64, 256};

  std::vector<Variant> variants;
  variants.push_back(
      {"adaptive (paper, smt-cluster leaves)", ob::sim_csnzi_base()});
  {
    Variant v{"always-root (central counter)", ob::sim_csnzi_base()};
    v.csnzi.policy = oll::ArrivalPolicy::kAlwaysRoot;
    variants.push_back(v);
  }
  {
    Variant v{"always-tree (no root fast path)", ob::sim_csnzi_base()};
    v.csnzi.policy = oll::ArrivalPolicy::kAlwaysTree;
    variants.push_back(v);
  }
  {
    Variant v{"adaptive, switch threshold 4", ob::sim_csnzi_base()};
    v.csnzi.root_cas_fail_threshold = 4;
    variants.push_back(v);
  }
  // Leaf-mapping ablation: how threads cluster onto leaves.
  {
    Variant v{"per-thread leaves (256, no sharing)", ob::sim_csnzi_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kPerThread;
    v.csnzi.leaves = 256;
    variants.push_back(v);
  }
  {
    Variant v{"llc-cluster leaves (64 threads/leaf)", ob::sim_csnzi_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kLlcCluster;
    variants.push_back(v);
  }
  {
    Variant v{"static leaf_shift=3 (seed heuristic)", ob::sim_csnzi_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kStaticShift;
    v.csnzi.leaf_shift = 3;
    variants.push_back(v);
  }
  // Sticky fast path: re-read the root on every arrival instead.
  {
    Variant v{"sticky off (root read per arrival)", ob::sim_csnzi_base()};
    v.csnzi.sticky_arrivals = 0;
    variants.push_back(v);
  }
  {
    Variant v{"two-level tree (fanout 8)", ob::sim_csnzi_base()};
    v.csnzi.levels = 2;
    v.csnzi.fanout = 8;
    variants.push_back(v);
  }

  std::cout << "# C-SNZI ablation: GOLL lock, 100% reads, simulated T5440\n"
            << "# (paper §2.2 arrival policy / §5.1 tuning discussion)\n";
  ob::print_variant_table("arrival/leaf/sticky variants", variants,
                          thread_counts, [&](const Variant& v, auto t) {
                            return run_variant(v, t, acquires);
                          });
  return 0;
}
