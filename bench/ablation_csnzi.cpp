// Ablation benches for the C-SNZI design choices the paper discusses:
//
//  1. Arrival policy (§2.2 / §5.1): adaptive vs always-root vs always-tree.
//     "Arriving and departing at the leaves is expensive [without
//     contention] ... so we arrive and depart directly at the root."
//  2. Root-CAS failure threshold for the adaptive switch.
//  3. Leaf locality: the topology-derived mappings (per-thread vs
//     SMT-cluster vs LLC-cluster) against the seed's static leaf_shift.
//  4. Sticky arrivals: the root-read-free tree fast path vs re-reading the
//     root on every arrival.
//
// Each variant runs the Figure 5(a) read-only workload on a GOLL lock over
// the simulated T5440 and prints one series row.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "locks/goll_lock.hpp"
#include "sim/memory.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  oll::CSnziOptions csnzi;
};

oll::CSnziOptions sim_base() {
  oll::CSnziOptions o;
  // Mirror the harness driver's sim-mode tuning: leaf placement derived
  // from the simulated machine's topology (SMT siblings share a leaf).
  o.topology = &oll::sim::t5440_cpu_topology();
  o.topology_mapping = oll::LeafMapping::kSmtCluster;
  o.leaves = 64;
  o.root_cas_fail_threshold = 1;
  return o;
}

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint64_t acquires) {
  oll::sim::Machine machine(oll::sim::t5440_topology(),
                            oll::sim::t5440_costs(),
                            std::max<std::uint32_t>(threads, 512));
  oll::GollOptions g;
  g.max_threads = threads + 1;
  g.csnzi = v.csnzi;
  oll::RwLockAdapter<oll::GollLock<oll::sim::SimMemory>> lock(v.name, g);
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = 100;
  w.acquires_per_thread = acquires;
  return ob::run_sim_workload_on(lock, w, machine).throughput();
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const std::vector<std::uint32_t> thread_counts = {1, 8, 64, 256};

  std::vector<Variant> variants;
  variants.push_back({"adaptive (paper, smt-cluster leaves)", sim_base()});
  {
    Variant v{"always-root (central counter)", sim_base()};
    v.csnzi.policy = oll::ArrivalPolicy::kAlwaysRoot;
    variants.push_back(v);
  }
  {
    Variant v{"always-tree (no root fast path)", sim_base()};
    v.csnzi.policy = oll::ArrivalPolicy::kAlwaysTree;
    variants.push_back(v);
  }
  {
    Variant v{"adaptive, switch threshold 4", sim_base()};
    v.csnzi.root_cas_fail_threshold = 4;
    variants.push_back(v);
  }
  // Leaf-mapping ablation: how threads cluster onto leaves.
  {
    Variant v{"per-thread leaves (256, no sharing)", sim_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kPerThread;
    v.csnzi.leaves = 256;
    variants.push_back(v);
  }
  {
    Variant v{"llc-cluster leaves (64 threads/leaf)", sim_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kLlcCluster;
    variants.push_back(v);
  }
  {
    Variant v{"static leaf_shift=3 (seed heuristic)", sim_base()};
    v.csnzi.topology_mapping = oll::LeafMapping::kStaticShift;
    v.csnzi.leaf_shift = 3;
    variants.push_back(v);
  }
  // Sticky fast path: re-read the root on every arrival instead.
  {
    Variant v{"sticky off (root read per arrival)", sim_base()};
    v.csnzi.sticky_arrivals = 0;
    variants.push_back(v);
  }
  {
    Variant v{"two-level tree (fanout 8)", sim_base()};
    v.csnzi.levels = 2;
    v.csnzi.fanout = 8;
    variants.push_back(v);
  }

  std::cout << "# C-SNZI ablation: GOLL lock, 100% reads, simulated T5440\n"
            << "# (paper §2.2 arrival policy / §5.1 tuning discussion)\n"
            << "variant";
  for (auto t : thread_counts) std::cout << ",t" << t;
  std::cout << "\n";

  for (const Variant& v : variants) {
    std::cout << "\"" << v.name << "\"";
    for (auto t : thread_counts) {
      std::cout << "," << std::scientific << run_variant(v, t, acquires);
    }
    std::cout << "\n" << std::flush;
  }
  return 0;
}
