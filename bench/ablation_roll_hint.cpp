// Ablation for the ROLL lock's §4.3 optimization: "we also maintain in the
// lock object a pointer to the last known reader node with threads still
// busy-waiting ... The optimization reduces the number of searches."
//
// Variants: hint + traversal (full ROLL), hint only, traversal only,
// neither (degenerates to FOLL-like behavior for mid-queue readers).
// Workload: 95% reads — enough writers that reader nodes queue mid-list.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "locks/roll_lock.hpp"
#include "sim/memory.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  bool use_hint;
  std::uint32_t max_scan_hops;
};

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint64_t acquires) {
  oll::sim::Machine machine(oll::sim::t5440_topology(),
                            oll::sim::t5440_costs(),
                            std::max<std::uint32_t>(threads, 512));
  oll::RollOptions r;
  r.max_threads = threads + 1;
  r.use_hint = v.use_hint;
  r.max_scan_hops = v.max_scan_hops;
  r.csnzi.leaf_shift = 3;
  r.csnzi.leaves = 64;
  r.csnzi.root_cas_fail_threshold = 1;
  oll::RwLockAdapter<oll::RollLock<oll::sim::SimMemory>> lock(v.name, r);
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = 95;
  w.acquires_per_thread = acquires;
  return ob::run_sim_workload_on(lock, w, machine).throughput();
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const std::vector<std::uint32_t> thread_counts = {8, 64, 256};

  const std::vector<Variant> variants = {
      {"hint + traversal (ROLL)", true, 8},
      {"hint only", true, 0},
      {"traversal only", false, 8},
      {"neither (FOLL-like joining)", false, 0},
  };

  std::cout << "# ROLL hint/traversal ablation: 95% reads, simulated T5440\n"
            << "# (paper §4.3 last-reader-node pointer optimization)\n"
            << "variant";
  for (auto t : thread_counts) std::cout << ",t" << t;
  std::cout << "\n";
  for (const Variant& v : variants) {
    std::cout << "\"" << v.name << "\"";
    for (auto t : thread_counts) {
      std::cout << "," << std::scientific << run_variant(v, t, acquires);
    }
    std::cout << "\n" << std::flush;
  }
  return 0;
}
