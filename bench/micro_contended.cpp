// google-benchmark multithreaded microbenchmarks: acquire/release throughput
// under real host contention for every lock, at read-only and mixed ratios.
// (On a small host this measures algorithmic path lengths under
// oversubscription, not parallel scalability — the Figure 5 binaries with
// the simulated topology cover that.)
//
// Benchmarks are registered at runtime over the factory's kind list (plus
// --locks=a,b,c to subset it), so new factory kinds show up here without
// code changes.  The *_delegated rows route writes through
// AnyRwLock::with_write() — on combining kinds the closure may execute on
// the current holder's thread (DESIGN.md §15); on the rest it degrades to
// acquire-execute-release.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "platform/rng.hpp"

namespace {

using oll::AnyRwLock;
using oll::LockKind;

// One shared lock per benchmark; thread 0 owns setup/teardown (benchmarks
// run sequentially, so a single static slot suffices).
std::unique_ptr<AnyRwLock> g_lock;

void bm_contended(benchmark::State& state, LockKind kind, unsigned read_pct) {
  if (state.thread_index() == 0) g_lock = oll::make_rwlock(kind);
  oll::Xoshiro256ss rng(state.thread_index() + 1);
  for (auto _ : state) {
    if (rng.bernoulli(read_pct, 100)) {
      g_lock->lock_shared();
      g_lock->unlock_shared();
    } else {
      g_lock->lock();
      g_lock->unlock();
    }
  }
  if (state.thread_index() == 0) g_lock.reset();
}

// Same mix, writes as delegable closures.  The closure body is a single
// increment of caller-stack state: the cost measured is the delegation
// protocol itself.
void bm_delegated(benchmark::State& state, LockKind kind, unsigned read_pct) {
  if (state.thread_index() == 0) g_lock = oll::make_rwlock(kind);
  oll::Xoshiro256ss rng(state.thread_index() + 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (rng.bernoulli(read_pct, 100)) {
      g_lock->lock_shared();
      g_lock->unlock_shared();
    } else {
      g_lock->with_write(
          [](void* p) { ++*static_cast<std::uint64_t*>(p); }, &sink);
    }
  }
  benchmark::DoNotOptimize(sink);
  if (state.thread_index() == 0) g_lock.reset();
}

}  // namespace

int main(int argc, char** argv) {
  // Our flags first (--locks=...); google-benchmark then consumes its own.
  oll::bench::Flags flags(argc, argv);
  const std::vector<LockKind> kinds =
      oll::bench::parse_lock_list(flags, "locks", oll::all_lock_kinds());

  for (LockKind kind : kinds) {
    const std::string base = std::string("BM_") + oll::lock_kind_name(kind);
    benchmark::RegisterBenchmark((base + "_reads100").c_str(), bm_contended,
                                 kind, 100)
        ->Threads(1)
        ->Threads(4);
    benchmark::RegisterBenchmark((base + "_reads90").c_str(), bm_contended,
                                 kind, 90)
        ->Threads(4);
    benchmark::RegisterBenchmark((base + "_delegated_reads90").c_str(),
                                 bm_delegated, kind, 90)
        ->Threads(4);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
