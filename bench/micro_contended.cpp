// google-benchmark multithreaded microbenchmarks: acquire/release throughput
// under real host contention for every lock, at read-only and mixed ratios.
// (On a small host this measures algorithmic path lengths under
// oversubscription, not parallel scalability — the Figure 5 binaries with
// the simulated topology cover that.)
#include <benchmark/benchmark.h>

#include <memory>

#include "core/factory.hpp"
#include "platform/rng.hpp"

namespace {

using oll::AnyRwLock;
using oll::LockKind;

// One shared lock per benchmark; thread 0 owns setup/teardown.
template <LockKind K, unsigned ReadPct>
void BM_Contended(benchmark::State& state) {
  static std::unique_ptr<AnyRwLock> lock;
  if (state.thread_index() == 0) lock = oll::make_rwlock(K);
  oll::Xoshiro256ss rng(state.thread_index() + 1);
  for (auto _ : state) {
    if (rng.bernoulli(ReadPct, 100)) {
      lock->lock_shared();
      lock->unlock_shared();
    } else {
      lock->lock();
      lock->unlock();
    }
  }
  if (state.thread_index() == 0) lock.reset();
}

}  // namespace

#define OLL_CONTENDED(name, kind)                                       \
  BENCHMARK(BM_Contended<LockKind::kind, 100>)                          \
      ->Name("BM_" #name "_reads100")                                   \
      ->Threads(1)                                                      \
      ->Threads(4);                                                     \
  BENCHMARK(BM_Contended<LockKind::kind, 90>)                           \
      ->Name("BM_" #name "_reads90")                                    \
      ->Threads(4);

OLL_CONTENDED(GOLL, kGoll)
OLL_CONTENDED(FOLL, kFoll)
OLL_CONTENDED(ROLL, kRoll)
OLL_CONTENDED(KSUH, kKsuh)
OLL_CONTENDED(Solaris, kSolarisLike)
OLL_CONTENDED(McsRw, kMcsRw)
OLL_CONTENDED(Central, kCentral)
OLL_CONTENDED(StdShared, kStdShared)

BENCHMARK_MAIN();
