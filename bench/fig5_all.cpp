// Regenerates all six subfigures of the paper's Figure 5 in one run.
// Flags as in fig5_common.hpp; additionally --out=<dir> writes one CSV per
// subfigure (fig5a.csv .. fig5f.csv) next to printing to stdout.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"

namespace ob = oll::bench;

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  struct Sub {
    const char* id;
    const char* name;
    std::uint32_t read_pct;
  };
  const std::vector<Sub> subs = {
      {"fig5a", "Figure 5(a): 100% reads", 100},
      {"fig5b", "Figure 5(b): 99% reads", 99},
      {"fig5c", "Figure 5(c): 95% reads", 95},
      {"fig5d", "Figure 5(d): 80% reads", 80},
      {"fig5e", "Figure 5(e): 50% reads", 50},
      {"fig5f", "Figure 5(f): 0% reads", 0},
  };

  for (const Sub& sub : subs) {
    ob::SweepConfig cfg;
    cfg.read_pct = sub.read_pct;
    cfg.mode =
        flags.get("mode", "sim") == "real" ? ob::Mode::kReal : ob::Mode::kSim;
    const std::uint32_t default_max = cfg.mode == ob::Mode::kSim ? 256 : 16;
    cfg.thread_counts = ob::default_thread_counts(
        static_cast<std::uint32_t>(flags.get_u64("threads", default_max)));
    cfg.acquires_per_thread = flags.get_u64("acquires", 0);
    cfg.repetitions = static_cast<std::uint32_t>(flags.get_u64("reps", 1));
    cfg.locks = oll::figure5_lock_kinds();

    ob::print_header(std::cout, sub.name, cfg);
    ob::SweepResult result = ob::run_sweep(cfg, /*verbose=*/false);
    ob::print_series(std::cout, result);
    std::cout << "\n";

    if (flags.has("out")) {
      std::ofstream csv(flags.get("out", ".") + "/" + sub.id + ".csv");
      ob::print_header(csv, sub.name, cfg);
      ob::print_series(csv, result);
    }
  }
  return 0;
}
