// Regenerates all six subfigures of the paper's Figure 5 in one run.
// Flags as in fig5_common.hpp; additionally --out=<dir> writes one CSV per
// subfigure (fig5a.csv .. fig5f.csv) next to printing to stdout.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace ob = oll::bench;

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  struct Sub {
    const char* id;
    const char* name;
    std::uint32_t read_pct;
  };
  auto telemetry = ob::start_telemetry_flags(flags);
  const std::vector<Sub> subs = {
      {"fig5a", "Figure 5(a): 100% reads", 100},
      {"fig5b", "Figure 5(b): 99% reads", 99},
      {"fig5c", "Figure 5(c): 95% reads", 95},
      {"fig5d", "Figure 5(d): 80% reads", 80},
      {"fig5e", "Figure 5(e): 50% reads", 50},
      {"fig5f", "Figure 5(f): 0% reads", 0},
  };

  for (const Sub& sub : subs) {
    ob::SweepConfig cfg;
    cfg.read_pct = sub.read_pct;
    if (int rc = ob::parse_sweep_flags(flags, cfg); rc != 0) return rc;
    cfg.locks = ob::parse_lock_list(flags, "locks",
                                    oll::figure5_lock_kinds());

    ob::print_header(std::cout, sub.name, cfg);
    ob::SweepResult result = ob::run_sweep(cfg, /*verbose=*/false);
    ob::print_series(std::cout, result);
    std::cout << "\n";

    if (flags.has("out")) {
      std::ofstream csv(flags.get("out", ".") + "/" + sub.id + ".csv");
      ob::print_header(csv, sub.name, cfg);
      ob::print_series(csv, result);
    }
  }
  return 0;
}
