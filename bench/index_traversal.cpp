// B-tree-style index latch-coupling scenario (DESIGN.md §13).
//
// Readers descend a fixed-fanout tree of per-node latches from the root to
// a leaf.  With an optimistic kind (opt-goll, opt-bravo-goll, opt-central)
// the descent performs NO shared-line stores: each node is read inside an
// opt_read_begin()/opt_read_validate() window, and any validation failure
// restarts the whole descent from the root — the optimistic-lock-coupling
// discipline: a stale parent may have routed us to a node a writer has
// since changed, so no partial path can be trusted.  After the root lock's
// opt_max_retries() restarts the reader falls back to pessimistic
// hand-over-hand latch coupling, which is also the only discipline the
// non-optimistic kinds ever use — so an opt-goll vs goll/bravo-goll sweep
// compares read paths over identical structure and work.
//
// Writers pick a uniformly random node, take its write latch, and bump a
// two-word payload: a, then b, with a scheduler yield between the stores in
// sim mode to widen the torn window.  The two words are equal whenever no
// writer is mid-update, so a VALIDATED read observing a != b is a torn read
// the version protocol failed to catch and aborts the process — the bench
// doubles as an end-to-end OCC oracle.
//
// Output: fig5-style CSV ("threads,KIND,..." with traversals/s cells; one
// column per lock) followed by "# optstat key=value ..." comment lines
// carrying the optimistic counters per cell.  parse_fig5_csv skips #-lines,
// so the same file feeds both the throughput parser and bench_smoke's
// optstat scraper.
//
// Flags: the common sweep set (bench_common.hpp; --acquires means
// traversals per thread here) plus
//   --read_pct=P   traversal (vs node-update) percentage, default 100
//   --fanout=N     children per internal node, default 8
//   --depth=N      levels below the root, default 2 (=> 73 nodes), max 9
//   --locks=...    default opt-goll,bravo-goll,goll
//   --trace=FILE   arm event tracing and export a Chrome trace of every
//                  cell (opt_read slices, opt_validation_fail/opt_fallback
//                  instants, acquire-site tags); --trace_ring sizes the
//                  per-thread rings
// plus the telemetry set (--telemetry_interval_ms / --metrics_out /
// --metrics_port, bench_common.hpp).  The cs_work / timeout_ns / watchdog /
// pin sweep flags have no meaning for this workload and are ignored.
#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "harness/trace_export.hpp"
#include "platform/fault.hpp"
#include "platform/lock_registry.hpp"
#include "platform/trace.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace {

using oll::bench::Mode;

constexpr double kSimHz = 1.4e9;  // UltraSPARC T2+ clock (§5.1)

// Timestamp source for simulated traces: the calling thread's virtual
// clock (the same contract as the harness driver's sim clock).  Harness
// code without a ThreadContext falls back to real time.
std::uint64_t sim_trace_clock() {
  const oll::sim::ThreadContext* ctx = oll::sim::ThreadContext::current();
  return ctx != nullptr ? ctx->clock() : oll::now_ns();
}

struct TreeShape {
  std::uint32_t fanout = 8;
  std::uint32_t depth = 2;
  std::size_t inner = 0;  // nodes[i] is internal iff i < inner
  std::size_t total = 0;

  void finalize() {
    std::size_t level_nodes = 1;
    inner = 0;
    total = 1;
    for (std::uint32_t l = 0; l < depth; ++l) {
      inner = total;
      level_nodes *= fanout;
      total += level_nodes;
    }
  }
};

// One latch-protected node.  Line-aligned so the simulated coherence model
// charges each node's payload to its own line (the locks already pad
// internally) — what we want to show is that the OPTIMISTIC read path adds
// zero shared-line stores, not that nodes accidentally share lines.
template <typename M>
struct alignas(128) Node {
  std::unique_ptr<oll::AnyRwLock> lock;
  typename M::template Atomic<std::uint64_t> a{0};
  typename M::template Atomic<std::uint64_t> b{0};
};

template <typename M>
struct Tree {
  TreeShape shape;
  std::vector<Node<M>> nodes;
};

struct CellConfig {
  std::uint32_t threads = 0;
  std::uint32_t read_pct = 100;
  std::uint64_t ops_per_thread = 0;
  std::uint64_t seed = 42;
  std::string fault_profile;
};

struct WorkerTotals {
  std::uint64_t traversals = 0;
  std::uint64_t writes = 0;
  std::uint64_t restarts = 0;   // whole-descent optimistic restarts
  std::uint64_t fallbacks = 0;  // descents that went pessimistic
};

struct CellResult {
  double seconds = 0.0;
  WorkerTotals totals;
  oll::LockStatsSnapshot stats;  // summed over every node latch
  double throughput() const {
    const std::uint64_t ops = totals.traversals + totals.writes;
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

[[noreturn]] void die_torn(const char* where, std::uint64_t a,
                           std::uint64_t b) {
  std::fprintf(stderr,
               "index_traversal: torn payload (%s): a=%llu b=%llu\n", where,
               static_cast<unsigned long long>(a),
               static_cast<unsigned long long>(b));
  std::abort();
}

// Child choice at `level` derived from the per-operation draw so a
// restarted descent retraces the same logical key's path.  7 bits per
// level bounds --depth at 9.
std::size_t child_at(std::uint64_t path, std::uint32_t level,
                     std::uint32_t fanout) {
  return static_cast<std::size_t>((path >> (7 * level)) % fanout);
}

// One optimistic root-to-leaf descent.  Returns false on any validation
// failure (caller restarts from the root).  Payload loads are relaxed and
// side-effect free until validated — the copy discipline rw_protected.hpp
// documents; a failed window's values are discarded unread.
template <typename M>
bool optimistic_descend(Tree<M>& tree, std::uint64_t path,
                        std::uint64_t& checksum) {
  // Acquire-site tag: trace records and census waits emitted below carry
  // this file:line, so the contention table can tell the three disciplines
  // apart (platform/lock_registry.hpp).
  oll::ScopedLockSite site(OLL_LOCK_SITE());
  std::size_t idx = 0;
  std::uint32_t level = 0;
  for (;;) {
    Node<M>& n = tree.nodes[idx];
    const std::uint64_t stamp = n.lock->opt_read_begin();
    if (stamp == oll::kInvalidOptStamp) return false;
    const std::uint64_t a = n.a.load(std::memory_order_relaxed);
    const std::uint64_t b = n.b.load(std::memory_order_relaxed);
    if (!n.lock->opt_read_validate(stamp)) return false;
    // Validated => the window was writer-free, so the pair must be
    // consistent.  This is the bench's end-to-end oracle.
    if (a != b) die_torn("validated optimistic read", a, b);
    checksum += a;
    if (idx >= tree.shape.inner) return true;
    idx = idx * tree.shape.fanout + 1 +
          child_at(path, level++, tree.shape.fanout);
  }
}

// Pessimistic hand-over-hand latch coupling: hold the parent's shared
// latch until the child's is acquired.  Acquisition order is strictly
// root-to-leaf, so coupling cannot deadlock against writers (which take a
// single latch).
template <typename M>
void pessimistic_descend(Tree<M>& tree, std::uint64_t path,
                         std::uint64_t& checksum) {
  oll::ScopedLockSite site(OLL_LOCK_SITE());
  std::size_t idx = 0;
  std::uint32_t level = 0;
  tree.nodes[0].lock->lock_shared();
  for (;;) {
    Node<M>& n = tree.nodes[idx];
    const std::uint64_t a = n.a.load(std::memory_order_relaxed);
    const std::uint64_t b = n.b.load(std::memory_order_relaxed);
    if (a != b) die_torn("read under shared latch", a, b);
    checksum += a;
    if (idx >= tree.shape.inner) {
      n.lock->unlock_shared();
      return;
    }
    const std::size_t next = idx * tree.shape.fanout + 1 +
                             child_at(path, level++, tree.shape.fanout);
    tree.nodes[next].lock->lock_shared();
    n.lock->unlock_shared();
    idx = next;
  }
}

// Update a uniformly random node under its write latch.  The yield between
// the two stores (sim mode) widens the window in which a racing optimistic
// reader could observe a != b — validation must catch every such window.
template <typename M>
void write_node(Tree<M>& tree, oll::Xoshiro256ss& rng, bool simulated) {
  oll::ScopedLockSite site(OLL_LOCK_SITE());
  Node<M>& n = tree.nodes[rng.next_below(tree.nodes.size())];
  n.lock->lock();
  n.a.store(n.a.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  if (simulated) std::this_thread::yield();
  n.b.store(n.b.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  n.lock->unlock();
}

template <typename M>
void traversal_loop(Tree<M>& tree, const CellConfig& cfg, std::uint32_t w,
                    bool simulated, WorkerTotals& out) {
  oll::Xoshiro256ss rng(cfg.seed * 0x9e3779b97f4a7c15ULL + w + 1);
  oll::AnyRwLock& root = *tree.nodes[0].lock;
  const bool optimistic = root.supports_optimistic();
  const std::uint32_t retries = root.opt_max_retries();
  std::uint64_t checksum = 0;
  // Offset odd workers so sim interleavings are not lockstep (driver.cpp
  // uses the same trick).
  if (simulated && (w & 1u) != 0) std::this_thread::yield();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    if (rng.bernoulli(cfg.read_pct, 100)) {
      const std::uint64_t path = rng.next();
      bool done = false;
      if (optimistic) {
        for (std::uint32_t attempt = 0; attempt <= retries && !done;
             ++attempt) {
          if (attempt != 0) {
            ++out.restarts;
            if (simulated) std::this_thread::yield();
          }
          done = optimistic_descend(tree, path, checksum);
        }
        if (!done) {
          // Attribute the descent's give-up to the root latch: that is the
          // latch whose retry budget governed the loop.
          root.count_opt_fallback();
          ++out.fallbacks;
        }
      }
      if (!done) pessimistic_descend(tree, path, checksum);
      ++out.traversals;
    } else {
      write_node(tree, rng, simulated);
      ++out.writes;
    }
    if (simulated) std::this_thread::yield();
  }
  // Keep the checksum observable so the descents cannot be optimized out.
  if (checksum == ~std::uint64_t{0}) std::fprintf(stderr, "#\n");
}

template <typename M>
Tree<M> make_tree(oll::LockKind kind, const TreeShape& shape,
                  std::uint32_t threads, bool simulated) {
  oll::LockFactoryOptions opts;
  opts.max_threads = std::max<std::uint32_t>(threads + 1, 64);
  if (simulated) {
    // Same simulated-topology tuning as the harness driver (DESIGN.md §3):
    // SMT siblings share a C-SNZI leaf; one emulated CAS failure is the
    // contention signal; cohort domains follow the 4-chip shape.
    opts.csnzi.topology = &oll::sim::t5440_cpu_topology();
    opts.csnzi.topology_mapping = oll::LeafMapping::kSmtCluster;
    opts.csnzi.leaves = 64;
    opts.csnzi.root_cas_fail_threshold = 1;
    opts.metalock.topology = &oll::sim::t5440_cpu_topology();
  }
  Tree<M> tree;
  tree.shape = shape;
  tree.nodes = std::vector<Node<M>>(shape.total);
  for (auto& n : tree.nodes) {
    n.lock = oll::make_rwlock<M>(kind, opts);
    if (n.lock == nullptr) {
      std::fprintf(stderr, "index_traversal: kind %s not available here\n",
                   oll::lock_kind_name(kind));
      std::exit(2);
    }
  }
  return tree;
}

template <typename M>
CellResult run_cell(oll::LockKind kind, const TreeShape& shape,
                    const CellConfig& cfg, oll::sim::Machine* machine) {
  const bool simulated = machine != nullptr;
  if (simulated) machine->reset();
  Tree<M> tree = make_tree<M>(kind, shape, cfg.threads, simulated);

  bool faults_armed = false;
  if (!cfg.fault_profile.empty()) {
    oll::FaultProfile profile;
    if (oll::fault_profile_from_name(cfg.fault_profile.c_str(), &profile)) {
      oll::fault_enable(profile, cfg.seed);
      faults_armed = true;
    }
  }

  std::vector<WorkerTotals> totals(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  for (std::uint32_t w = 0; w < cfg.threads; ++w) {
    threads.emplace_back([&, w] {
      oll::ScopedThreadIndex index(w);
      std::unique_ptr<oll::sim::ThreadGuard> guard;
      if (simulated) {
        guard = std::make_unique<oll::sim::ThreadGuard>(*machine, w);
        // SCHED_RR makes sched_yield a true rotation so sim workers
        // genuinely interleave (see driver.cpp); fall back silently.
        sched_param prio{};
        prio.sched_priority = 1;
        (void)pthread_setschedparam(pthread_self(), SCHED_RR, &prio);
      }
      ready.fetch_add(1, std::memory_order_acq_rel);
      oll::spin_until([&] { return go.load(std::memory_order_acquire); });
      traversal_loop(tree, cfg, w, simulated, totals[w]);
    });
  }
  oll::spin_until(
      [&] { return ready.load(std::memory_order_acquire) == cfg.threads; });
  oll::Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double wall_s = wall.elapsed_s();
  if (faults_armed) oll::fault_disable();

  CellResult r;
  for (const auto& t : totals) {
    r.totals.traversals += t.traversals;
    r.totals.writes += t.writes;
    r.totals.restarts += t.restarts;
    r.totals.fallbacks += t.fallbacks;
  }
  for (const auto& n : tree.nodes) r.stats += n.lock->stats();
  r.seconds = simulated
                  ? static_cast<double>(machine->max_clock()) / kSimHz
                  : wall_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  oll::bench::SweepConfig scfg;
  scfg.read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 100));
  if (int rc = oll::bench::parse_sweep_flags(flags, scfg); rc != 0) {
    return rc;
  }
  const std::vector<oll::LockKind> kinds = oll::bench::parse_lock_list(
      flags, "locks",
      {oll::LockKind::kOptGoll, oll::LockKind::kBravoGoll,
       oll::LockKind::kGoll});
  TreeShape shape;
  shape.fanout = static_cast<std::uint32_t>(flags.get_u64("fanout", 8));
  shape.depth = static_cast<std::uint32_t>(flags.get_u64("depth", 2));
  if (shape.fanout < 2 || shape.fanout > 128 || shape.depth > 9) {
    std::fprintf(stderr, "want 2 <= --fanout <= 128 and --depth <= 9\n");
    return 2;
  }
  shape.finalize();
  const bool simulated = scfg.mode == Mode::kSim;
  auto telemetry = oll::bench::start_telemetry_flags(flags);
  const std::string trace_path = flags.get("trace", "");
  const bool want_trace = !trace_path.empty();
  // Perfetto timestamps are microseconds; sim records are virtual cycles.
  const double ts_scale =
      simulated ? 1e-3 / (kSimHz * 1e-9) : 1e-3;
  if (want_trace) {
    if (simulated) oll::trace_set_clock(&sim_trace_clock);
    oll::TraceOptions topts;
    topts.ring_capacity = static_cast<std::uint32_t>(
        flags.get_u64("trace_ring", std::uint64_t{1} << 13));
    oll::trace_enable(topts);
  }
  // A traversal touches depth+1 latches, so default to fewer operations
  // than the flat fig5 sweeps for comparable cell cost.
  const std::uint64_t ops =
      scfg.acquires_per_thread != 0
          ? scfg.acquires_per_thread
          : (scfg.read_pct <= 50 ? std::uint64_t{100} : std::uint64_t{300});

  std::printf("# Index traversal: latch-coupled tree, fanout=%u depth=%u "
              "(%zu nodes), %u%% traversals, %llu ops/thread, mode=%s%s\n",
              shape.fanout, shape.depth, shape.total, scfg.read_pct,
              static_cast<unsigned long long>(ops),
              simulated ? "sim" : "real",
              scfg.fault_profile.empty()
                  ? ""
                  : (", faults=" + scfg.fault_profile).c_str());
  std::printf("# Optimistic kinds restart the descent on validation "
              "failure; others couple shared latches hand-over-hand.\n");
  std::printf("threads");
  for (oll::LockKind kind : kinds) {
    std::printf(",%s", oll::lock_kind_name(kind));
  }
  std::printf("\n");

  std::unique_ptr<oll::sim::Machine> machine;
  if (simulated) {
    const std::uint32_t max_threads = scfg.thread_counts.back();
    machine = std::make_unique<oll::sim::Machine>(
        oll::sim::t5440_topology(), oll::sim::t5440_costs(),
        std::max<std::uint32_t>(max_threads, 512));
  }

  std::vector<std::string> optstat_lines;
  std::vector<oll::bench::TraceRun> trace_runs;
  for (std::uint32_t threads : scfg.thread_counts) {
    std::printf("%u", threads);
    for (oll::LockKind kind : kinds) {
      double tput_sum = 0.0;
      CellResult agg;
      for (std::uint32_t rep = 0; rep < scfg.repetitions; ++rep) {
        CellConfig cell;
        cell.threads = threads;
        cell.read_pct = scfg.read_pct;
        cell.ops_per_thread = ops;
        cell.seed = scfg.seed ^ (std::uint64_t{threads} << 32) ^ rep;
        cell.fault_profile = scfg.fault_profile;
        CellResult r =
            simulated
                ? run_cell<oll::sim::SimMemory>(kind, shape, cell,
                                                machine.get())
                : run_cell<oll::RealMemory>(kind, shape, cell, nullptr);
        tput_sum += r.throughput();
        agg.totals.traversals += r.totals.traversals;
        agg.totals.writes += r.totals.writes;
        agg.totals.restarts += r.totals.restarts;
        agg.totals.fallbacks += r.totals.fallbacks;
        agg.stats += r.stats;
      }
      std::printf(",%.6e",
                  tput_sum / static_cast<double>(scfg.repetitions));
      char line[256];
      std::snprintf(
          line, sizeof(line),
          "# optstat lock=%s threads=%u traversals=%llu writes=%llu "
          "opt_reads=%llu opt_failures=%llu opt_fallbacks=%llu "
          "restarts=%llu",
          oll::lock_kind_name(kind), threads,
          static_cast<unsigned long long>(agg.totals.traversals),
          static_cast<unsigned long long>(agg.totals.writes),
          static_cast<unsigned long long>(agg.stats.opt_reads),
          static_cast<unsigned long long>(agg.stats.opt_validation_failures),
          static_cast<unsigned long long>(agg.stats.opt_fallbacks),
          static_cast<unsigned long long>(agg.totals.restarts));
      optstat_lines.emplace_back(line);
      if (want_trace) {
        // Drain per (lock, thread count) cell so each gets its own process
        // row in the export.
        oll::bench::TraceRun run;
        run.name = std::string(oll::lock_kind_name(kind)) +
                   " t=" + std::to_string(threads);
        run.dump = oll::trace_drain();
        run.ts_scale = ts_scale;
        trace_runs.push_back(std::move(run));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  for (const std::string& line : optstat_lines) {
    std::printf("%s\n", line.c_str());
  }
  if (want_trace) {
    oll::trace_disable();
    if (!oll::bench::write_chrome_trace_file(trace_path, trace_runs)) {
      std::fprintf(stderr, "index_traversal: cannot write --trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "index_traversal: wrote Chrome trace to %s\n",
                 trace_path.c_str());
  }
  return 0;
}
