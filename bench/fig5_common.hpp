// Shared main() body for the Figure 5 bench binaries: one binary per
// subfigure, each parameterized only by the read percentage.
//
// Flags (all optional):
//   --mode=sim|real     default sim (virtual-time T5440 model; DESIGN.md §3)
//   --threads=N         cap the thread sweep (default: 256 sim / 16 real)
//   --acquires=N        acquisitions per thread (default: paper-scaled)
//   --reps=N            repetitions to average (default 1; paper uses 3)
//   --locks=a,b,c       subset of goll,foll,roll,ksuh,solaris,...; the
//                       BRAVO reader-bias wrappers sweep as bravo-goll,
//                       bravo-foll, bravo-roll, bravo-central
//   --cs_work=N         work units inside the critical section (default 0)
//   --leaf_map=K        C-SNZI leaf mapping: auto|static|thread|smt|llc|numa
//                       (default: mode default — smt on the sim topology)
//   --sticky=N          C-SNZI sticky arrival window (0 disables; default 64)
//   --metalock=K        writer-arbitration metalock: tatas|mcs|cohort
//                       (default cohort; see locks/cohort_mcs_lock.hpp)
//   --cohort_budget=N   max consecutive intra-domain handoffs (default 32)
//   --warmup=N          per-thread warmup acquisitions before each measured
//                       run (stats rebased at the phase boundary)
//
// Robustness (DESIGN.md §11):
//   --timeout_ns=N      acquire with try_*_for(N ns) instead of the blocking
//                       paths; timed-out iterations are abandoned, not
//                       retried (default 0 = blocking)
//   --fault_profile=P   arm fault injection for every run:
//                       off|jitter|cas|preempt|chaos (seeded from --seed-
//                       equivalent run seeds; no-op in OLL_FAULTS=0 builds)
//   --pin               real mode: pin worker w to the host CPU at position
//                       w of the parsed topology (sysfs), making gated
//                       real-hardware series placement-reproducible
//   --watchdog          stuck-acquisition watchdog: dump lock state + trace
//                       rings to stderr when an acquisition exceeds
//                       max(20ms, 8 x writer-wait p99); real mode only
//
// Observability (DESIGN.md §9).  Any of the following adds a separate pass
// AFTER the throughput sweep, run with latency timing (and, for --trace,
// event tracing) enabled — the sweep itself always runs with every hook
// disabled:
//   --hist              print per-lock p50/p99 acquire-latency table
//   --stats_json=FILE   write per-lock counters + latency percentiles (JSON)
//   --trace=FILE        write lock-event trace (Chrome/Perfetto JSON)
//   --obs_threads=N     thread count for the pass (default: max swept count)
//   --trace_ring=N      per-thread ring capacity in records (default 8192)
//
// Continuous telemetry (DESIGN.md §14).  Unlike the post-sweep pass above,
// these stream live series for the WHOLE run via the global lock registry:
//   --metrics_out=FILE  Prometheus text exposition rewritten every tick at
//                       FILE, JSON-lines time series appended to FILE.jsonl
//   --metrics_port=N    serve the Prometheus text on http://127.0.0.1:N
//                       (N=0 picks a free port, printed to stderr)
//   --telemetry_interval_ms=N   exporter tick interval (default 100)
#pragma once

#include <iostream>
#include <string>

#include "bench_common.hpp"

namespace oll::bench {

inline int run_fig5(const std::string& figure_name, std::uint32_t read_pct,
                    int argc, char** argv) {
  Flags flags(argc, argv);
  SweepConfig cfg;
  cfg.read_pct = read_pct;
  if (int rc = parse_sweep_flags(flags, cfg); rc != 0) return rc;
  cfg.locks = parse_lock_list(flags, "locks", figure5_lock_kinds());

  auto telemetry = start_telemetry_flags(flags);

  print_header(std::cout, figure_name, cfg);
  SweepResult result = run_sweep(cfg, /*verbose=*/true);
  print_series(std::cout, result);

  return run_observability_flags(flags, cfg);
}

}  // namespace oll::bench
