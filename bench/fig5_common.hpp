// Shared main() body for the Figure 5 bench binaries: one binary per
// subfigure, each parameterized only by the read percentage.
//
// Flags (all optional):
//   --mode=sim|real     default sim (virtual-time T5440 model; DESIGN.md §3)
//   --threads=N         cap the thread sweep (default: 256 sim / 16 real)
//   --acquires=N        acquisitions per thread (default: paper-scaled)
//   --reps=N            repetitions to average (default 1; paper uses 3)
//   --locks=a,b,c       subset of goll,foll,roll,ksuh,solaris,...; the
//                       BRAVO reader-bias wrappers sweep as bravo-goll,
//                       bravo-foll, bravo-roll, bravo-central
//   --cs_work=N         work units inside the critical section (default 0)
//   --leaf_map=K        C-SNZI leaf mapping: auto|static|thread|smt|llc|numa
//                       (default: mode default — smt on the sim topology)
//   --sticky=N          C-SNZI sticky arrival window (0 disables; default 64)
//   --metalock=K        writer-arbitration metalock: tatas|mcs|cohort
//                       (default cohort; see locks/cohort_mcs_lock.hpp)
//   --cohort_budget=N   max consecutive intra-domain handoffs (default 32)
//   --warmup=N          per-thread warmup acquisitions before each measured
//                       run (stats rebased at the phase boundary)
//
// Robustness (DESIGN.md §11):
//   --timeout_ns=N      acquire with try_*_for(N ns) instead of the blocking
//                       paths; timed-out iterations are abandoned, not
//                       retried (default 0 = blocking)
//   --fault_profile=P   arm fault injection for every run:
//                       off|jitter|cas|preempt|chaos (seeded from --seed-
//                       equivalent run seeds; no-op in OLL_FAULTS=0 builds)
//   --pin               real mode: pin worker w to the host CPU at position
//                       w of the parsed topology (sysfs), making gated
//                       real-hardware series placement-reproducible
//   --watchdog          stuck-acquisition watchdog: dump lock state + trace
//                       rings to stderr when an acquisition exceeds
//                       max(20ms, 8 x writer-wait p99); real mode only
//
// Observability (DESIGN.md §9).  Any of the following adds a separate pass
// AFTER the throughput sweep, run with latency timing (and, for --trace,
// event tracing) enabled — the sweep itself always runs with every hook
// disabled:
//   --hist              print per-lock p50/p99 acquire-latency table
//   --stats_json=FILE   write per-lock counters + latency percentiles (JSON)
//   --trace=FILE        write lock-event trace (Chrome/Perfetto JSON)
//   --obs_threads=N     thread count for the pass (default: max swept count)
//   --trace_ring=N      per-thread ring capacity in records (default 8192)
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "platform/fault.hpp"

namespace oll::bench {

inline int run_fig5(const std::string& figure_name, std::uint32_t read_pct,
                    int argc, char** argv) {
  Flags flags(argc, argv);
  SweepConfig cfg;
  cfg.read_pct = read_pct;
  cfg.mode = flags.get("mode", "sim") == "real" ? Mode::kReal : Mode::kSim;
  const std::uint32_t default_max = cfg.mode == Mode::kSim ? 256 : 16;
  const auto max_threads = static_cast<std::uint32_t>(
      flags.get_u64("threads", default_max));
  cfg.thread_counts = default_thread_counts(max_threads);
  cfg.acquires_per_thread = flags.get_u64("acquires", 0);
  cfg.repetitions = static_cast<std::uint32_t>(flags.get_u64("reps", 1));
  cfg.cs_work = flags.get_u64("cs_work", 0);
  cfg.warmup_acquires = flags.get_u64("warmup", 0);
  if (flags.has("leaf_map")) {
    LeafMapping m;
    if (parse_leaf_mapping(flags.get("leaf_map", ""), m)) {
      cfg.leaf_mapping = m;
    } else {
      std::cerr << "unknown --leaf_map (want auto|static|thread|smt|llc|numa)\n";
      return 2;
    }
  }
  if (flags.has("sticky")) {
    cfg.sticky_arrivals = static_cast<std::uint32_t>(flags.get_u64("sticky", 64));
  }
  if (flags.has("metalock")) {
    if (auto k = parse_metalock_kind(flags.get("metalock", ""))) {
      cfg.metalock = *k;
    } else {
      std::cerr << "unknown --metalock (want tatas|mcs|cohort)\n";
      return 2;
    }
  }
  if (flags.has("cohort_budget")) {
    cfg.cohort_budget =
        static_cast<std::uint32_t>(flags.get_u64("cohort_budget", 32));
  }
  cfg.timeout_ns = flags.get_u64("timeout_ns", 0);
  if (flags.has("fault_profile")) {
    const std::string profile = flags.get("fault_profile", "off");
    FaultProfile parsed;
    if (!fault_profile_from_name(profile.c_str(), &parsed)) {
      std::cerr
          << "unknown --fault_profile (want off|jitter|cas|preempt|chaos)\n";
      return 2;
    }
    cfg.fault_profile = profile;
  }
  cfg.watchdog = flags.has("watchdog");
  if (cfg.watchdog && cfg.mode == Mode::kSim) {
    std::cerr << "# --watchdog is wall-clock based; ignored in sim mode\n";
  }
  cfg.pin_threads = flags.has("pin");
  if (cfg.pin_threads && cfg.mode == Mode::kSim) {
    std::cerr << "# --pin is host-affinity based; ignored in sim mode\n";
  }

  if (flags.has("locks")) {
    std::stringstream ss(flags.get("locks", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (auto kind = parse_lock_kind(item)) cfg.locks.push_back(*kind);
    }
  }
  if (cfg.locks.empty()) cfg.locks = figure5_lock_kinds();

  print_header(std::cout, figure_name, cfg);
  SweepResult result = run_sweep(cfg, /*verbose=*/true);
  print_series(std::cout, result);

  if (flags.has("hist") || flags.has("stats_json") || flags.has("trace")) {
    ObservabilityConfig obs;
    obs.sweep = cfg;
    obs.threads =
        static_cast<std::uint32_t>(flags.get_u64("obs_threads", 0));
    obs.stats_json_path = flags.get("stats_json", "");
    obs.trace_path = flags.get("trace", "");
    obs.ring_capacity =
        static_cast<std::uint32_t>(flags.get_u64("trace_ring", 1u << 13));
    if (!run_observability_pass(std::cout, obs)) {
      std::cerr << "observability export failed\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace oll::bench
