// Ablation for the GOLL/Solaris queue policy (§5.1 footnote 1): readers
// coalescing into one group across queued writers (the Solaris policy the
// paper evaluates) vs strict FIFO groups.  Run at 99% reads where the wait
// queue actually forms.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "locks/goll_lock.hpp"
#include "locks/solaris_rwlock.hpp"

namespace ob = oll::bench;

namespace {

struct Variant {
  const char* name;
  bool goll;  // GOLL vs Solaris-like
  bool coalesce;
};

double run_variant(const Variant& v, std::uint32_t threads,
                   std::uint32_t read_pct, std::uint64_t acquires) {
  using Sim = oll::sim::SimMemory;
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = read_pct;
  w.acquires_per_thread = acquires;
  if (v.goll) {
    oll::GollOptions g;
    g.readers_coalesce_over_writers = v.coalesce;
    g.csnzi.leaf_shift = 3;
    g.csnzi.root_cas_fail_threshold = 1;
    g.max_threads = threads + 1;
    return ob::run_sim_variant<oll::GollLock<Sim>>("GOLL", g, w).throughput();
  }
  oll::SolarisOptions s;
  s.readers_coalesce_over_writers = v.coalesce;
  return ob::run_sim_variant<oll::SolarisRwLock<Sim>>("Solaris", s, w)
      .throughput();
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 99));
  const std::vector<std::uint32_t> thread_counts = {8, 64, 256};

  const std::vector<Variant> variants = {
      {"GOLL coalesce", true, true},
      {"Solaris coalesce", false, true},
      {"GOLL fifo", true, false},
      {"Solaris fifo", false, false},
  };

  std::cout << "# Queue-policy ablation at " << read_pct
            << "% reads, simulated T5440\n"
            << "# (paper §5.1 footnote 1: readers coalesce over writers)\n";
  ob::print_variant_table("coalesce vs fifo", variants, thread_counts,
                          [&](const Variant& v, std::uint32_t t) {
                            return run_variant(v, t, read_pct, acquires);
                          });
  return 0;
}
