// Ablation for the GOLL/Solaris queue policy (§5.1 footnote 1): readers
// coalescing into one group across queued writers (the Solaris policy the
// paper evaluates) vs strict FIFO groups.  Run at 99% reads where the wait
// queue actually forms.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "locks/goll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "sim/memory.hpp"

namespace ob = oll::bench;

namespace {

template <typename LockT, typename OptsT>
double run_one(const char* name, const OptsT& opts, std::uint32_t threads,
               std::uint64_t acquires, std::uint32_t read_pct) {
  oll::sim::Machine machine(oll::sim::t5440_topology(),
                            oll::sim::t5440_costs(),
                            std::max<std::uint32_t>(threads, 512));
  oll::RwLockAdapter<LockT> lock(name, opts);
  ob::WorkloadConfig w;
  w.threads = threads;
  w.read_pct = read_pct;
  w.acquires_per_thread = acquires;
  return ob::run_sim_workload_on(lock, w, machine).throughput();
}

}  // namespace

int main(int argc, char** argv) {
  ob::Flags flags(argc, argv);
  const std::uint64_t acquires = flags.get_u64("acquires", 500);
  const auto read_pct =
      static_cast<std::uint32_t>(flags.get_u64("read_pct", 99));
  const std::vector<std::uint32_t> thread_counts = {8, 64, 256};

  std::cout << "# Queue-policy ablation at " << read_pct
            << "% reads, simulated T5440\n"
            << "# (paper §5.1 footnote 1: readers coalesce over writers)\n"
            << "variant";
  for (auto t : thread_counts) std::cout << ",t" << t;
  std::cout << "\n";

  using Sim = oll::sim::SimMemory;
  for (bool coalesce : {true, false}) {
    {
      oll::GollOptions g;
      g.readers_coalesce_over_writers = coalesce;
      g.csnzi.leaf_shift = 3;
      g.csnzi.root_cas_fail_threshold = 1;
      std::cout << "\"GOLL " << (coalesce ? "coalesce" : "fifo") << "\"";
      for (auto t : thread_counts) {
        oll::GollOptions gt = g;
        gt.max_threads = t + 1;
        std::cout << "," << std::scientific
                  << run_one<oll::GollLock<Sim>>("GOLL", gt, t, acquires,
                                                 read_pct);
      }
      std::cout << "\n" << std::flush;
    }
    {
      oll::SolarisOptions s;
      s.readers_coalesce_over_writers = coalesce;
      std::cout << "\"Solaris " << (coalesce ? "coalesce" : "fifo") << "\"";
      for (auto t : thread_counts) {
        std::cout << "," << std::scientific
                  << run_one<oll::SolarisRwLock<Sim>>("Solaris", s, t,
                                                      acquires, read_pct);
      }
      std::cout << "\n" << std::flush;
    }
  }
  return 0;
}
