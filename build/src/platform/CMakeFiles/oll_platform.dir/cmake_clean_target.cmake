file(REMOVE_RECURSE
  "liboll_platform.a"
)
