# Empty compiler generated dependencies file for oll_platform.
# This may be replaced when dependencies are built.
