file(REMOVE_RECURSE
  "CMakeFiles/oll_platform.dir/thread_id.cpp.o"
  "CMakeFiles/oll_platform.dir/thread_id.cpp.o.d"
  "liboll_platform.a"
  "liboll_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oll_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
