# Empty compiler generated dependencies file for oll_sim.
# This may be replaced when dependencies are built.
