file(REMOVE_RECURSE
  "CMakeFiles/oll_sim.dir/context.cpp.o"
  "CMakeFiles/oll_sim.dir/context.cpp.o.d"
  "liboll_sim.a"
  "liboll_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oll_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
