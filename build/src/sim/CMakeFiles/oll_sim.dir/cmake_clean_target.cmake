file(REMOVE_RECURSE
  "liboll_sim.a"
)
