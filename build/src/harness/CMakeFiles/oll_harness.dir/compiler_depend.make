# Empty compiler generated dependencies file for oll_harness.
# This may be replaced when dependencies are built.
