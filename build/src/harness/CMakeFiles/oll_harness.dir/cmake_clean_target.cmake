file(REMOVE_RECURSE
  "liboll_harness.a"
)
