file(REMOVE_RECURSE
  "CMakeFiles/oll_harness.dir/driver.cpp.o"
  "CMakeFiles/oll_harness.dir/driver.cpp.o.d"
  "CMakeFiles/oll_harness.dir/sweep.cpp.o"
  "CMakeFiles/oll_harness.dir/sweep.cpp.o.d"
  "liboll_harness.a"
  "liboll_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oll_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
