# Empty dependencies file for ablation_csnzi.
# This may be replaced when dependencies are built.
