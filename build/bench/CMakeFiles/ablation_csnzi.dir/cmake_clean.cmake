file(REMOVE_RECURSE
  "CMakeFiles/ablation_csnzi.dir/ablation_csnzi.cpp.o"
  "CMakeFiles/ablation_csnzi.dir/ablation_csnzi.cpp.o.d"
  "ablation_csnzi"
  "ablation_csnzi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_csnzi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
