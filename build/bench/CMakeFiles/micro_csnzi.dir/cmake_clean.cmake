file(REMOVE_RECURSE
  "CMakeFiles/micro_csnzi.dir/micro_csnzi.cpp.o"
  "CMakeFiles/micro_csnzi.dir/micro_csnzi.cpp.o.d"
  "micro_csnzi"
  "micro_csnzi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_csnzi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
