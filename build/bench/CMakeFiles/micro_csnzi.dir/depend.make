# Empty dependencies file for micro_csnzi.
# This may be replaced when dependencies are built.
