# Empty dependencies file for traffic_table.
# This may be replaced when dependencies are built.
