file(REMOVE_RECURSE
  "CMakeFiles/traffic_table.dir/traffic_table.cpp.o"
  "CMakeFiles/traffic_table.dir/traffic_table.cpp.o.d"
  "traffic_table"
  "traffic_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
