# Empty dependencies file for fig5a_read_only.
# This may be replaced when dependencies are built.
