# Empty dependencies file for fig5b_99_reads.
# This may be replaced when dependencies are built.
