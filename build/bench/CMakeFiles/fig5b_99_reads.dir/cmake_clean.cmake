file(REMOVE_RECURSE
  "CMakeFiles/fig5b_99_reads.dir/fig5b_99_reads.cpp.o"
  "CMakeFiles/fig5b_99_reads.dir/fig5b_99_reads.cpp.o.d"
  "fig5b_99_reads"
  "fig5b_99_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_99_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
