# Empty compiler generated dependencies file for fig5d_80_reads.
# This may be replaced when dependencies are built.
