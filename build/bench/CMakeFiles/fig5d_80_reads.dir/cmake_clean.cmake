file(REMOVE_RECURSE
  "CMakeFiles/fig5d_80_reads.dir/fig5d_80_reads.cpp.o"
  "CMakeFiles/fig5d_80_reads.dir/fig5d_80_reads.cpp.o.d"
  "fig5d_80_reads"
  "fig5d_80_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_80_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
