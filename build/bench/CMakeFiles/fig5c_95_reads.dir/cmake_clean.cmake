file(REMOVE_RECURSE
  "CMakeFiles/fig5c_95_reads.dir/fig5c_95_reads.cpp.o"
  "CMakeFiles/fig5c_95_reads.dir/fig5c_95_reads.cpp.o.d"
  "fig5c_95_reads"
  "fig5c_95_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_95_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
