# Empty dependencies file for fig5c_95_reads.
# This may be replaced when dependencies are built.
