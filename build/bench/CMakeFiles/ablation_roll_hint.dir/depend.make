# Empty dependencies file for ablation_roll_hint.
# This may be replaced when dependencies are built.
