file(REMOVE_RECURSE
  "CMakeFiles/ablation_roll_hint.dir/ablation_roll_hint.cpp.o"
  "CMakeFiles/ablation_roll_hint.dir/ablation_roll_hint.cpp.o.d"
  "ablation_roll_hint"
  "ablation_roll_hint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_roll_hint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
