# Empty compiler generated dependencies file for micro_contended.
# This may be replaced when dependencies are built.
