file(REMOVE_RECURSE
  "CMakeFiles/micro_contended.dir/micro_contended.cpp.o"
  "CMakeFiles/micro_contended.dir/micro_contended.cpp.o.d"
  "micro_contended"
  "micro_contended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_contended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
