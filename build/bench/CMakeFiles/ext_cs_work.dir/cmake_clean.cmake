file(REMOVE_RECURSE
  "CMakeFiles/ext_cs_work.dir/ext_cs_work.cpp.o"
  "CMakeFiles/ext_cs_work.dir/ext_cs_work.cpp.o.d"
  "ext_cs_work"
  "ext_cs_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cs_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
