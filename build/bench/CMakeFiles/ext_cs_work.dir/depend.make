# Empty dependencies file for ext_cs_work.
# This may be replaced when dependencies are built.
