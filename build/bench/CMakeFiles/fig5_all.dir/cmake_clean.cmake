file(REMOVE_RECURSE
  "CMakeFiles/fig5_all.dir/fig5_all.cpp.o"
  "CMakeFiles/fig5_all.dir/fig5_all.cpp.o.d"
  "fig5_all"
  "fig5_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
