# Empty dependencies file for fig5f_write_only.
# This may be replaced when dependencies are built.
