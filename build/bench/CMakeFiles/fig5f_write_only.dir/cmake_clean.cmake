file(REMOVE_RECURSE
  "CMakeFiles/fig5f_write_only.dir/fig5f_write_only.cpp.o"
  "CMakeFiles/fig5f_write_only.dir/fig5f_write_only.cpp.o.d"
  "fig5f_write_only"
  "fig5f_write_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5f_write_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
