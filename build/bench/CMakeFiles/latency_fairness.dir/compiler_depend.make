# Empty compiler generated dependencies file for latency_fairness.
# This may be replaced when dependencies are built.
