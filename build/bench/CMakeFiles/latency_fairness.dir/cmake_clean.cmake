file(REMOVE_RECURSE
  "CMakeFiles/latency_fairness.dir/latency_fairness.cpp.o"
  "CMakeFiles/latency_fairness.dir/latency_fairness.cpp.o.d"
  "latency_fairness"
  "latency_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
