# Empty dependencies file for micro_uncontended.
# This may be replaced when dependencies are built.
