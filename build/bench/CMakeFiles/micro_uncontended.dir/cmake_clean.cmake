file(REMOVE_RECURSE
  "CMakeFiles/micro_uncontended.dir/micro_uncontended.cpp.o"
  "CMakeFiles/micro_uncontended.dir/micro_uncontended.cpp.o.d"
  "micro_uncontended"
  "micro_uncontended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_uncontended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
