# Empty dependencies file for fig5e_50_reads.
# This may be replaced when dependencies are built.
