file(REMOVE_RECURSE
  "CMakeFiles/fig5e_50_reads.dir/fig5e_50_reads.cpp.o"
  "CMakeFiles/fig5e_50_reads.dir/fig5e_50_reads.cpp.o.d"
  "fig5e_50_reads"
  "fig5e_50_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5e_50_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
