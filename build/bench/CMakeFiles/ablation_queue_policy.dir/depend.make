# Empty dependencies file for ablation_queue_policy.
# This may be replaced when dependencies are built.
