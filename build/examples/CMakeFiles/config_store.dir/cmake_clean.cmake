file(REMOVE_RECURSE
  "CMakeFiles/config_store.dir/config_store.cpp.o"
  "CMakeFiles/config_store.dir/config_store.cpp.o.d"
  "config_store"
  "config_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
