# Empty compiler generated dependencies file for shutdown_gate.
# This may be replaced when dependencies are built.
