file(REMOVE_RECURSE
  "CMakeFiles/shutdown_gate.dir/shutdown_gate.cpp.o"
  "CMakeFiles/shutdown_gate.dir/shutdown_gate.cpp.o.d"
  "shutdown_gate"
  "shutdown_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shutdown_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
