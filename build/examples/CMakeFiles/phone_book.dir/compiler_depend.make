# Empty compiler generated dependencies file for phone_book.
# This may be replaced when dependencies are built.
