file(REMOVE_RECURSE
  "CMakeFiles/phone_book.dir/phone_book.cpp.o"
  "CMakeFiles/phone_book.dir/phone_book.cpp.o.d"
  "phone_book"
  "phone_book.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_book.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
