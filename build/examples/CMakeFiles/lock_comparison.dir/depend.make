# Empty dependencies file for lock_comparison.
# This may be replaced when dependencies are built.
