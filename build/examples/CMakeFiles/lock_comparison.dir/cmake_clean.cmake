file(REMOVE_RECURSE
  "CMakeFiles/lock_comparison.dir/lock_comparison.cpp.o"
  "CMakeFiles/lock_comparison.dir/lock_comparison.cpp.o.d"
  "lock_comparison"
  "lock_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
