# Empty dependencies file for left_right_test.
# This may be replaced when dependencies are built.
