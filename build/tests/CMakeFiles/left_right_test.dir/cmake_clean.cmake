file(REMOVE_RECURSE
  "CMakeFiles/left_right_test.dir/left_right_test.cpp.o"
  "CMakeFiles/left_right_test.dir/left_right_test.cpp.o.d"
  "left_right_test"
  "left_right_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/left_right_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
