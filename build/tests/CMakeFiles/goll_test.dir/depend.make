# Empty dependencies file for goll_test.
# This may be replaced when dependencies are built.
