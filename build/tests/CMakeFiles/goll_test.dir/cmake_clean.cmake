file(REMOVE_RECURSE
  "CMakeFiles/goll_test.dir/goll_test.cpp.o"
  "CMakeFiles/goll_test.dir/goll_test.cpp.o.d"
  "goll_test"
  "goll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
