file(REMOVE_RECURSE
  "CMakeFiles/csnzi_model_test.dir/csnzi_model_test.cpp.o"
  "CMakeFiles/csnzi_model_test.dir/csnzi_model_test.cpp.o.d"
  "csnzi_model_test"
  "csnzi_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csnzi_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
