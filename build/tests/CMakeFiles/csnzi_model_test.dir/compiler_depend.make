# Empty compiler generated dependencies file for csnzi_model_test.
# This may be replaced when dependencies are built.
