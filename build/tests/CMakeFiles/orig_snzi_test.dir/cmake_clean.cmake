file(REMOVE_RECURSE
  "CMakeFiles/orig_snzi_test.dir/orig_snzi_test.cpp.o"
  "CMakeFiles/orig_snzi_test.dir/orig_snzi_test.cpp.o.d"
  "orig_snzi_test"
  "orig_snzi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orig_snzi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
