# Empty dependencies file for orig_snzi_test.
# This may be replaced when dependencies are built.
