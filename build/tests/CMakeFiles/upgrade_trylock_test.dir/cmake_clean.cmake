file(REMOVE_RECURSE
  "CMakeFiles/upgrade_trylock_test.dir/upgrade_trylock_test.cpp.o"
  "CMakeFiles/upgrade_trylock_test.dir/upgrade_trylock_test.cpp.o.d"
  "upgrade_trylock_test"
  "upgrade_trylock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_trylock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
