# Empty compiler generated dependencies file for upgrade_trylock_test.
# This may be replaced when dependencies are built.
