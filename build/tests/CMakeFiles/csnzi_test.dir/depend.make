# Empty dependencies file for csnzi_test.
# This may be replaced when dependencies are built.
