file(REMOVE_RECURSE
  "CMakeFiles/csnzi_test.dir/csnzi_test.cpp.o"
  "CMakeFiles/csnzi_test.dir/csnzi_test.cpp.o.d"
  "csnzi_test"
  "csnzi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csnzi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
