file(REMOVE_RECURSE
  "CMakeFiles/ksuh_test.dir/ksuh_test.cpp.o"
  "CMakeFiles/ksuh_test.dir/ksuh_test.cpp.o.d"
  "ksuh_test"
  "ksuh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksuh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
