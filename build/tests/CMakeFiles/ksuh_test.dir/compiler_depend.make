# Empty compiler generated dependencies file for ksuh_test.
# This may be replaced when dependencies are built.
