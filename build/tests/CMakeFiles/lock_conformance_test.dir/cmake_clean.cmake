file(REMOVE_RECURSE
  "CMakeFiles/lock_conformance_test.dir/lock_conformance_test.cpp.o"
  "CMakeFiles/lock_conformance_test.dir/lock_conformance_test.cpp.o.d"
  "lock_conformance_test"
  "lock_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
