# Empty compiler generated dependencies file for lock_conformance_test.
# This may be replaced when dependencies are built.
