file(REMOVE_RECURSE
  "CMakeFiles/wait_queue_test.dir/wait_queue_test.cpp.o"
  "CMakeFiles/wait_queue_test.dir/wait_queue_test.cpp.o.d"
  "wait_queue_test"
  "wait_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
