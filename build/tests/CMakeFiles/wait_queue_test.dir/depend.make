# Empty dependencies file for wait_queue_test.
# This may be replaced when dependencies are built.
