# Empty dependencies file for timed_lock_test.
# This may be replaced when dependencies are built.
