file(REMOVE_RECURSE
  "CMakeFiles/timed_lock_test.dir/timed_lock_test.cpp.o"
  "CMakeFiles/timed_lock_test.dir/timed_lock_test.cpp.o.d"
  "timed_lock_test"
  "timed_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
