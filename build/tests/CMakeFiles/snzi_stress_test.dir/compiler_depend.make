# Empty compiler generated dependencies file for snzi_stress_test.
# This may be replaced when dependencies are built.
