file(REMOVE_RECURSE
  "CMakeFiles/snzi_stress_test.dir/snzi_stress_test.cpp.o"
  "CMakeFiles/snzi_stress_test.dir/snzi_stress_test.cpp.o.d"
  "snzi_stress_test"
  "snzi_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snzi_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
