# Empty compiler generated dependencies file for foll_roll_test.
# This may be replaced when dependencies are built.
