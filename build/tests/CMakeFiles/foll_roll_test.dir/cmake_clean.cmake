file(REMOVE_RECURSE
  "CMakeFiles/foll_roll_test.dir/foll_roll_test.cpp.o"
  "CMakeFiles/foll_roll_test.dir/foll_roll_test.cpp.o.d"
  "foll_roll_test"
  "foll_roll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foll_roll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
