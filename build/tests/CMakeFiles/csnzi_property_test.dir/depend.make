# Empty dependencies file for csnzi_property_test.
# This may be replaced when dependencies are built.
