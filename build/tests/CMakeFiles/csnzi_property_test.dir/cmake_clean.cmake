file(REMOVE_RECURSE
  "CMakeFiles/csnzi_property_test.dir/csnzi_property_test.cpp.o"
  "CMakeFiles/csnzi_property_test.dir/csnzi_property_test.cpp.o.d"
  "csnzi_property_test"
  "csnzi_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csnzi_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
