file(REMOVE_RECURSE
  "CMakeFiles/test_memory_test.dir/test_memory_test.cpp.o"
  "CMakeFiles/test_memory_test.dir/test_memory_test.cpp.o.d"
  "test_memory_test"
  "test_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
