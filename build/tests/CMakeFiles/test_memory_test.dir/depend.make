# Empty dependencies file for test_memory_test.
# This may be replaced when dependencies are built.
