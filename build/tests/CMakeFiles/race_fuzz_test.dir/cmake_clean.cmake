file(REMOVE_RECURSE
  "CMakeFiles/race_fuzz_test.dir/race_fuzz_test.cpp.o"
  "CMakeFiles/race_fuzz_test.dir/race_fuzz_test.cpp.o.d"
  "race_fuzz_test"
  "race_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
