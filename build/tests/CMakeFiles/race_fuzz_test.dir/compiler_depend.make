# Empty compiler generated dependencies file for race_fuzz_test.
# This may be replaced when dependencies are built.
