#!/usr/bin/env python3
"""Validate a Chrome-trace/Perfetto JSON file exported by the harness.

Structural checks on the output of oll::bench::write_chrome_trace_file():

  * top level is an object with a "traceEvents" list (and the
    "displayTimeUnit" hint the exporter always writes);
  * every event has the keys its phase requires (ph/pid/tid/name, plus ts
    for slice and instant events) with sane types and non-negative ts;
  * phases are limited to the exporter's vocabulary (M, B, E, i);
  * per (pid, tid, name) slice nesting never goes negative — an E without
    a matching B is an exporter bug (trailing unclosed B events are fine:
    ring wrap can drop an end record's partner);
  * unless --allow-empty, at least one slice event is present.

Usage: scripts/validate_trace.py TRACE.json [--allow-empty]
Exit status: 0 valid, 1 invalid, 2 unreadable.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"M", "B", "E", "i"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(doc, allow_empty):
    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-list "traceEvents"')
    if "displayTimeUnit" not in doc:
        return fail('missing "displayTimeUnit"')

    depth = {}  # (pid, tid, name) -> open B count
    slices = 0
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        for key, types in (("pid", (int,)), ("tid", (int,)),
                           ("name", (str,))):
            if not isinstance(ev.get(key), types):
                return fail(f"{where}: missing/mistyped {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where}: missing/negative ts")
        if ph in ("B", "E"):
            slices += 1
            key = (ev["pid"], ev["tid"], ev["name"])
            depth[key] = depth.get(key, 0) + (1 if ph == "B" else -1)
            if depth[key] < 0:
                return fail(f"{where}: E without matching B for {key}")

    if slices == 0 and not allow_empty:
        return fail("no slice (B/E) events; pass --allow-empty if intended")

    unclosed = sum(d for d in depth.values() if d > 0)
    print(f"validate_trace: OK — {len(events)} events, "
          f"{slices} slice records, {unclosed} unclosed slice(s)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept traces with no slice events")
    args = ap.parse_args()
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot read {args.trace}: {e}",
              file=sys.stderr)
        return 2
    return validate(doc, args.allow_empty)


if __name__ == "__main__":
    sys.exit(main())
