#!/usr/bin/env python3
"""Validate a Chrome-trace/Perfetto JSON file exported by the harness.

Structural checks on the output of oll::bench::write_chrome_trace_file():

  * top level is an object with a "traceEvents" list (and the
    "displayTimeUnit" hint the exporter always writes);
  * "droppedEvents" (the exporter's ring-overflow count) is present and,
    unless --allow-drops, zero — the smoke configurations are sized so the
    rings never wrap, and a silent wrap would make a truncated trace look
    complete;
  * every event has the keys its phase requires (ph/pid/tid/name, plus ts
    for slice and instant events) with sane types and non-negative ts;
  * phases are limited to the exporter's vocabulary (M, B, E, i);
  * event names are limited to the exporter's vocabulary — slices
    (read_acquire, write_acquire, queue_wait, opt_read, combine) and
    instants (releases, bias_revoke, C-SNZI flips, opt_validation_fail,
    opt_fallback, combine_publish) — so a renamed or garbled event fails
    loudly;
  * "site" args, when present, look like file:line acquire-site tags;
  * per (pid, tid, name) slice nesting never goes negative — an E without
    a matching B is an exporter bug (trailing unclosed B events are fine:
    ring wrap can drop an end record's partner);
  * unless --allow-empty, at least one slice event is present;
  * every name passed via --expect-names appears at least once — the
    end-to-end check that, e.g., an optimistic index_traversal run really
    emitted its opt_read windows.

Usage: scripts/validate_trace.py TRACE.json [--allow-empty] [--allow-drops]
                                 [--expect-names a,b,c]
Exit status: 0 valid, 1 invalid, 2 unreadable.
"""

import argparse
import json
import re
import sys

KNOWN_PHASES = {"M", "B", "E", "i"}

# Exporter vocabulary (src/harness/trace_export.cpp slice_name + the
# instant passthrough of platform/trace.hpp trace_event_name).
SLICE_NAMES = {"read_acquire", "write_acquire", "queue_wait", "opt_read",
               "combine"}
INSTANT_NAMES = {"read_release", "write_release", "bias_revoke",
                 "csnzi_close", "csnzi_open", "opt_validation_fail",
                 "opt_fallback", "combine_publish"}
META_NAMES = {"process_name", "process_labels", "thread_name"}

SITE_RE = re.compile(r"^.+:\d+$")


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(doc, allow_empty, allow_drops, expect_names):
    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-list "traceEvents"')
    if "displayTimeUnit" not in doc:
        return fail('missing "displayTimeUnit"')
    dropped = doc.get("droppedEvents")
    if not isinstance(dropped, int) or dropped < 0:
        return fail('missing or mistyped "droppedEvents"')
    if dropped and not allow_drops:
        return fail(f"{dropped} records dropped to ring wrap; enlarge "
                    f"--trace_ring or pass --allow-drops if intended")

    depth = {}  # (pid, tid, name) -> open B count
    slices = 0
    seen_names = set()
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        for key, types in (("pid", (int,)), ("tid", (int,)),
                           ("name", (str,))):
            if not isinstance(ev.get(key), types):
                return fail(f"{where}: missing/mistyped {key!r}")
        name = ev["name"]
        site = ev.get("args", {}).get("site") if isinstance(
            ev.get("args"), dict) else None
        if site is not None and not (isinstance(site, str)
                                     and SITE_RE.match(site)):
            return fail(f"{where}: malformed site tag {site!r}")
        if ph == "M":
            if name not in META_NAMES:
                return fail(f"{where}: unknown metadata event {name!r}")
            continue
        seen_names.add(name)
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where}: missing/negative ts")
        if ph in ("B", "E"):
            if name not in SLICE_NAMES:
                return fail(f"{where}: unknown slice name {name!r}")
            slices += 1
            key = (ev["pid"], ev["tid"], name)
            depth[key] = depth.get(key, 0) + (1 if ph == "B" else -1)
            if depth[key] < 0:
                return fail(f"{where}: E without matching B for {key}")
        else:  # ph == "i"
            if name not in INSTANT_NAMES:
                return fail(f"{where}: unknown instant name {name!r}")

    if slices == 0 and not allow_empty:
        return fail("no slice (B/E) events; pass --allow-empty if intended")

    missing = [n for n in expect_names if n not in seen_names]
    if missing:
        return fail(f"expected event name(s) never appeared: "
                    f"{', '.join(missing)}")

    unclosed = sum(d for d in depth.values() if d > 0)
    print(f"validate_trace: OK — {len(events)} events, "
          f"{slices} slice records, {unclosed} unclosed slice(s), "
          f"{dropped} dropped")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept traces with no slice events")
    ap.add_argument("--allow-drops", action="store_true",
                    help="accept a nonzero droppedEvents count")
    ap.add_argument("--expect-names", default="",
                    help="comma-separated event names that must appear")
    args = ap.parse_args()
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot read {args.trace}: {e}",
              file=sys.stderr)
        return 2
    expect = [n for n in args.expect_names.split(",") if n]
    return validate(doc, args.allow_empty, args.allow_drops, expect)


if __name__ == "__main__":
    sys.exit(main())
