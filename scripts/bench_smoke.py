#!/usr/bin/env python3
"""Bench-trajectory smoke gate.

Runs a small, fast benchmark set — the virtual-time sim sweeps for fig5a
(read-only), fig5f (write-only) and fig5c (95% reads), plus the
micro_csnzi / micro_uncontended google-benchmark binaries — and records the
results as BENCH_<n>.json at the repo root, where <n> continues the sequence
of git-tracked BENCH_*.json files.  The sim-mode figure numbers are stable
in virtual time (run-to-run spread is a few percent from host scheduling),
so they are *gated*: a drop of more than --threshold (default 20%) versus
the previous committed snapshot fails the run.  fig5a keys are unprefixed
("GOLL.t64") for continuity with older snapshots; the write-heavy series
added with the metalock work use prefixed keys ("fig5f.GOLL.t64").
Real-time micro numbers vary with the host and are recorded as
informational only.  Every snapshot carries a "meta" provenance stamp:
the git SHA (and dirty flag) that produced it, the CMake build type, and
the observability build flags (OLL_TRACE/OLL_FAULTS/OLL_REGISTRY) — so a
cross-snapshot comparison can tell a real regression from a config change.

Two exceptions to "real time is informational": the pinned real-hardware
read-path series ("realtime.GOLL.t2", ...) is *gated* — it runs fig5a in
--mode=real with --pin (worker threads bound to topology CPUs) and --reps
averaging, and is compared with its own generous --realtime-threshold
(default 50%) since even pinned wall-clock numbers swing with the host.
This is the tripwire for the memory-order relaxation work: a downgraded
fence that stalls the real read fast path shows up here, not in the
virtual-time sim gate.  The oversubscription series ("park.fig5f.x16.
ratio_pure", ...) is likewise gated: the keys are park/pure-spin
throughput *ratios* from bench/oversubscribe (dimensionless, so
comparable across hosts), checked against a hard --park-floor (default
3.0) at 16x oversubscription in the read-mostly mix — the DESIGN.md
§16 degradation claim.
park.* keys are exempt from the snapshot-drift comparison: the
pure-spin denominator on an oversubscribed host swings >3x run-to-run
with scheduling, so the absolute floor is the signal.  And baseline
matching itself is checked: if the
previous snapshot has gated keys but none of them match the current
series names, the run fails with a setup error instead of silently
gating nothing.

Usage: scripts/bench_smoke.py [--build-dir build] [--threshold 0.20]
                              [--realtime-threshold 0.50] [--skip-micro]
                              [--skip-realtime]
Exit status: 0 on pass, 1 on regression, 2 on setup error.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Gated sim sweeps: virtual time, kept small so the gate stays fast.
# fig5a exercises the reader fast path across the OLL locks; fig5f and
# fig5c exercise the writer-arbitration path (the metalock) on GOLL, the
# lock whose writer path the cohort MCS work targets.  The write-heavy
# sweeps use --reps so the serialized writer chain averages out scheduling
# noise (observed spread <3% at this config).
FIG5A_ARGS = ["--mode=sim", "--threads=64", "--acquires=4000",
              "--locks=goll,foll,roll"]
WRITE_SWEEP_ARGS = ["--mode=sim", "--threads=64", "--acquires=800",
                    "--reps=2", "--locks=goll"]
# Flat-combining series (DESIGN.md §15): fig5f-shaped write-only sweep with
# writes routed through with_write() for BOTH kinds, so the plain cohort
# lock (acquire-execute-release) and the combining kind contend under the
# same delegated-section workload.  Gated like the other sim series.
COMBINE_ARGS = ["--mode=sim", "--threads=64", "--acquires=400",
                "--reps=2", "--locks=goll,goll-combining",
                "--delegate_writes"]
# (binary, args, key prefix) per gated figure.  fig5a stays unprefixed so
# its keys line up with snapshots that predate the write-heavy series.
GATED_FIGS = (
    ("fig5a", "fig5a_read_only", FIG5A_ARGS, ""),
    ("fig5f", "fig5f_write_only", WRITE_SWEEP_ARGS, "fig5f."),
    ("fig5c", "fig5c_95_reads", WRITE_SWEEP_ARGS, "fig5c."),
    ("combine", "fig5f_write_only", COMBINE_ARGS, "combine."),
)
# Gated real-hardware series: the read fast path on actual silicon, pinned
# (--pin binds worker w to topology CPU w) and rep-averaged so the numbers
# are placement-reproducible.  Tiny thread counts: CI containers may expose
# a single CPU.  Compared with --realtime-threshold, not --threshold.
REALTIME_PREFIX = "realtime."
REALTIME_ARGS = ["--mode=real", "--threads=2", "--acquires=20000",
                 "--reps=3", "--pin", "--locks=goll,foll,roll"]
# Acquire-latency percentiles (informational): the post-sweep observability
# pass (DESIGN.md §9) re-runs each lock at the max swept thread count with
# latency timing enabled, so the gated sweep itself still executes with
# every hook disabled.
LATENCY_HISTS = ("read_acquire", "write_acquire", "writer_wait")
LATENCY_PCTS = ("p50", "p99")
# Timed-acquisition series (informational, DESIGN.md §11): a short mixed
# sim run with --timeout_ns so the abandon paths execute under writer load;
# records the timed_acquire histogram percentiles plus the timeout/abandon
# counters per lock.  Not gated: timeout counts depend on host scheduling.
TIMED_ARGS = ["--mode=sim", "--threads=32", "--acquires=400",
              "--locks=goll,foll,roll", "--timeout_ns=200000"]
TIMED_COUNTERS = ("read_timeouts", "write_timeouts", "read_abandons",
                  "write_abandons")
# Optimistic read mode series (informational, DESIGN.md §13): the
# index_traversal latch-coupling bench at a read-only and a 95%-read mix.
# Records traversal throughput per kind plus the optimistic counters
# (opt_reads / validation failures / fallbacks) scraped from the bench's
# "# optstat" comment lines at the top thread count.  Not gated yet: the
# series is new this snapshot; EXPERIMENTS.md carries the ablation.
OPT_ARGS = ["--mode=sim", "--threads=64", "--acquires=60",
            "--locks=opt-goll,bravo-goll,goll"]
OPT_READ_PCTS = (100, 95)
OPT_TOP_THREADS = 64
OPT_COUNTERS = ("opt_reads", "opt_failures", "opt_fallbacks")
# Oversubscription series (DESIGN.md §16): bench/oversubscribe runs the
# fig5c/fig5f mixes at 4x/16x hardware concurrency under three GOLL waiting
# disciplines (pure paper-faithful spin / yielding spin / spin-then-park)
# and emits one "# parkstat" line per cell.  The gated keys are the
# park/pure throughput *ratios* — self-normalizing across hosts, so they
# can be compared snapshot-to-snapshot, but still wall-clock noisy, so
# they use --realtime-threshold.  The 16x ratios additionally have a hard
# floor (--park-floor): the tentpole claim is that spin-then-park sustains
# >= 3x the throughput of the paper's pure-spin discipline at 16x.
# Absolute throughputs and CPU-seconds/op are recorded as informational.
PARK_PREFIX = "park."
PARK_ARGS = ["--mults=4,16", "--secs=0.4", "--cs_work=16"]
PARK_FLOOR_MULT = 16
# The hard --park-floor applies only to the read-mostly mix: there the
# pure-spin collapse is structural (parked readers stop burning the
# holder's quantum) and the measured ratio is robustly >10x.  In the
# write-heavy mix on a timeshared 1-core host threads serialize, so
# pure-spin throughput is scheduling luck (observed 0.9x-65x run to run)
# — recorded, but not a floor.
PARK_FLOOR_MIX = "fig5c"
# Informational micro benches (real time; host-dependent).
MICRO_FILTERS = {
    "micro_csnzi": ("BM_ArriveDepart_Root|BM_ArriveDepart_Adaptive$|"
                    "BM_ArriveDepart_Contended/threads:8$|"
                    "BM_ArriveDepart_Contended_StickyOff/threads:8$|"
                    "BM_TreeArrive_SaturatedLeaf"),
    "micro_uncontended": ("BM_Read_(GOLL|FOLL|ROLL)|"
                          "BM_Write_(GOLL|FOLL|ROLL)|BM_OptRead_"),
}


def run(cmd):
    try:
        return subprocess.run(cmd, capture_output=True, text=True, check=True,
                              cwd=REPO_ROOT).stdout
    except FileNotFoundError:
        print(f"bench_smoke: missing binary: {cmd[0]}", file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as e:
        print(f"bench_smoke: {' '.join(cmd)} failed:\n{e.stderr}",
              file=sys.stderr)
        sys.exit(2)


def parse_fig5_csv(text, prefix=""):
    """threads,LOCKA,LOCKB\\n1,2.3e7,... -> {"<prefix>GOLL.t64": 1.5e8, ...}"""
    metrics = {}
    header = None
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        cells = line.split(",")
        if cells[0] == "threads":
            header = cells[1:]
            continue
        if not cells[0].isdigit():
            # A non-numeric first cell after the sweep is another table
            # (e.g. the observability pass's latency CSV): stop collecting.
            header = None
            continue
        if header is None:
            continue
        threads = cells[0]
        for name, value in zip(header, cells[1:]):
            metrics[f"{prefix}{name}.t{threads}"] = float(value)
    return metrics


def parse_latency_json(path, prefix=""):
    """stats_json -> {"latency.<prefix>GOLL.read_acquire.p50": 207.0, ...}

    Histograms with no samples (e.g. write_acquire on the read-only fig5a
    run) are skipped, so the write-heavy sweeps are what populate the
    write_acquire and writer_wait percentile series."""
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    unit = doc.get("unit", "")
    for lock, stats in doc.get("locks", {}).items():
        for hist in LATENCY_HISTS:
            h = stats.get(hist)
            if not isinstance(h, dict) or not h.get("count"):
                continue
            for pct in LATENCY_PCTS:
                metrics[f"latency.{prefix}{lock}.{hist}.{pct}"] = h[pct]
    if unit:
        metrics["latency.unit"] = unit
    return metrics


def collect_fig5(build_dir, binary_name, fig_args, prefix):
    """One invocation feeds both series: stdout CSV is the gated sweep
    (hooks disabled); --stats_json captures the post-sweep observability
    pass's latency percentiles (informational)."""
    binary = os.path.join(build_dir, "bench", binary_name)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        stats_path = tmp.name
    try:
        out = run([binary] + list(fig_args) + [f"--stats_json={stats_path}"])
        return parse_fig5_csv(out, prefix), parse_latency_json(stats_path,
                                                               prefix)
    finally:
        os.unlink(stats_path)


def collect_timed(build_dir):
    """fig5c + --timeout_ns -> {"timed.GOLL.timed_acquire.p50": ..., ...}"""
    binary = os.path.join(build_dir, "bench", "fig5c_95_reads")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        stats_path = tmp.name
    try:
        run([binary] + TIMED_ARGS + [f"--stats_json={stats_path}"])
        with open(stats_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(stats_path)
    metrics = {}
    for lock, stats in doc.get("locks", {}).items():
        h = stats.get("timed_acquire")
        if isinstance(h, dict) and h.get("count"):
            metrics[f"timed.{lock}.timed_acquire.count"] = h["count"]
            for pct in LATENCY_PCTS:
                metrics[f"timed.{lock}.timed_acquire.{pct}"] = h[pct]
        for counter in TIMED_COUNTERS:
            if counter in stats:
                metrics[f"timed.{lock}.{counter}"] = stats[counter]
    return metrics


def parse_optstat(text, prefix, threads):
    """index_traversal's "# optstat lock=... threads=... k=v ..." comment
    lines -> {"<prefix><LOCK>.opt_reads": ..., ...} at one thread count."""
    metrics = {}
    for line in text.splitlines():
        if not line.startswith("# optstat "):
            continue
        kv = dict(tok.split("=", 1)
                  for tok in line[len("# optstat "):].split() if "=" in tok)
        if int(kv.get("threads", -1)) != threads:
            continue
        lock = kv["lock"]
        for counter in OPT_COUNTERS:
            metrics[f"{prefix}{lock}.{counter}"] = int(kv[counter])
        reads = int(kv["opt_reads"])
        if reads:
            metrics[f"{prefix}{lock}.failure_rate"] = (
                int(kv["opt_failures"]) / reads)
    return metrics


def collect_opt(build_dir):
    """index_traversal at two read mixes -> informational opt.* series."""
    binary = os.path.join(build_dir, "bench", "index_traversal")
    metrics = {}
    for pct in OPT_READ_PCTS:
        prefix = f"opt.r{pct}."
        out = run([binary, f"--read_pct={pct}"] + OPT_ARGS)
        metrics.update(parse_fig5_csv(out, prefix))
        metrics.update(parse_optstat(out, prefix, OPT_TOP_THREADS))
    return metrics


def collect_park(build_dir):
    """oversubscribe's "# parkstat mix=... mult=... k=v ..." lines ->
    (gated ratio keys, informational absolutes, 16x ratio_pure floors)."""
    binary = os.path.join(build_dir, "bench", "oversubscribe")
    out = run([binary] + PARK_ARGS)
    gated, info, floors = {}, {}, {}
    for line in out.splitlines():
        if not line.startswith("# parkstat "):
            continue
        kv = dict(tok.split("=", 1)
                  for tok in line[len("# parkstat "):].split() if "=" in tok)
        cell = f"{PARK_PREFIX}{kv['mix']}.x{kv['mult']}"
        gated[f"{cell}.ratio_pure"] = float(kv["ratio_pure"])
        if int(kv["mult"]) == PARK_FLOOR_MULT and kv["mix"] == PARK_FLOOR_MIX:
            floors[f"{cell}.ratio_pure"] = float(kv["ratio_pure"])
        info[f"{cell}.ratio_yield"] = float(kv["ratio_yield"])
        for policy in ("pure", "spin", "park"):
            info[f"{cell}.{policy}.ops_per_s"] = float(
                kv[f"{policy}_ops_per_s"])
            info[f"{cell}.{policy}.cpu_us_per_op"] = float(
                kv[f"{policy}_cpu_us_per_op"])
        info[f"{cell}.park.parks"] = int(kv["park_parks"])
    return gated, info, floors


def collect_micro(build_dir, name, bench_filter):
    binary = os.path.join(build_dir, "bench", name)
    out = run([binary, f"--benchmark_filter={bench_filter}",
               "--benchmark_format=json", "--benchmark_min_time=0.05"])
    data = json.loads(out)
    metrics = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        metrics[f"{name}.{b['name']}"] = b["real_time"]  # ns/op
    return metrics


def collect_meta(build_dir):
    """Provenance stamp for the snapshot: which commit produced these
    numbers, and which build configuration (observability hooks change the
    binary even when runtime-disabled, so flag values matter when comparing
    across snapshots).  Best-effort: a missing git or cache file records
    "unknown" rather than failing the gate."""
    meta = {"git_sha": "unknown", "git_dirty": None,
            "build_type": "unknown",
            "flags": {}, "modes": {"sim": "virtual-time simulated T5440",
                                   "real": "host wall clock"}}
    try:
        meta["git_sha"] = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, cwd=REPO_ROOT).stdout.strip()
        meta["git_dirty"] = bool(subprocess.run(
            ["git", "status", "--porcelain"], capture_output=True, text=True,
            check=True, cwd=REPO_ROOT).stdout.strip())
    except (OSError, subprocess.CalledProcessError):
        pass
    cache = os.path.join(build_dir, "CMakeCache.txt")
    wanted = ("OLL_TRACE", "OLL_FAULTS", "OLL_REGISTRY")
    try:
        with open(cache) as f:
            for line in f:
                line = line.strip()
                m = re.fullmatch(r"([A-Za-z_]+):[A-Z]+=(.*)", line)
                if not m:
                    continue
                if m.group(1) == "CMAKE_BUILD_TYPE":
                    meta["build_type"] = m.group(2) or "unknown"
                elif m.group(1) in wanted:
                    meta["flags"][m.group(1)] = m.group(2)
    except OSError:
        pass
    return meta


def tracked_snapshots():
    out = subprocess.run(["git", "ls-files", "BENCH_*.json"],
                         capture_output=True, text=True, cwd=REPO_ROOT).stdout
    snaps = {}
    for f in out.split():
        m = re.fullmatch(r"BENCH_(\d+)\.json", f)
        if m:
            snaps[int(m.group(1))] = os.path.join(REPO_ROOT, f)
    return snaps


def compare(prev_gated, cur_gated, threshold, realtime_threshold):
    """Gated metrics are throughputs: higher is better.

    Returns (regressions, unmatched): regressions carry the per-key limit
    that was applied (realtime.* keys use the looser realtime threshold);
    unmatched lists baseline keys absent from the current run, so renames
    fail loudly instead of silently shrinking the gate."""
    regressions = []
    unmatched = []
    for key, old in prev_gated.items():
        new = cur_gated.get(key)
        if new is None:
            unmatched.append(key)
            continue
        if old <= 0:
            continue
        if key.startswith(PARK_PREFIX):
            # park.* ratios are gated by the absolute --park-floor, not by
            # snapshot drift: the pure-spin denominator on an oversubscribed
            # host is scheduling-noise-dominated (observed >3x run-to-run),
            # so a relative window would be all flake and no signal.
            continue
        limit = (realtime_threshold
                 if key.startswith(REALTIME_PREFIX)
                 else threshold)
        drop = (old - new) / old
        if drop > limit:
            regressions.append((key, old, new, drop, limit))
    return regressions, unmatched


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max allowed fractional drop in gated metrics")
    ap.add_argument("--realtime-threshold", type=float, default=0.50,
                    help="max allowed fractional drop in the gated "
                         "realtime.* series (wall-clock: noisier)")
    ap.add_argument("--skip-micro", action="store_true",
                    help="record only the gated sim metrics")
    ap.add_argument("--skip-realtime", action="store_true",
                    help="skip the gated pinned real-hardware series")
    ap.add_argument("--skip-park", action="store_true",
                    help="skip the gated oversubscription park.* series")
    ap.add_argument("--park-floor", type=float, default=3.0,
                    help="minimum park/pure throughput ratio at 16x "
                         "oversubscription (the DESIGN.md §16 claim)")
    args = ap.parse_args()

    build_dir = os.path.join(REPO_ROOT, args.build_dir)
    gated, informational = {}, {}
    for fig, binary_name, fig_args, prefix in GATED_FIGS:
        print(f"bench_smoke: running sim {fig} sweep (gated) + latency pass")
        fig_gated, fig_latency = collect_fig5(build_dir, binary_name,
                                              fig_args, prefix)
        gated.update(fig_gated)
        informational.update(fig_latency)
    if not args.skip_realtime:
        print("bench_smoke: running pinned real-hardware read series (gated)")
        binary = os.path.join(build_dir, "bench", "fig5a_read_only")
        gated.update(parse_fig5_csv(run([binary] + REALTIME_ARGS),
                                    REALTIME_PREFIX))
    park_floor_failures = []
    if not args.skip_park:
        print("bench_smoke: running oversubscription park series (gated)")
        park_gated, park_info, park_floors = collect_park(build_dir)
        gated.update(park_gated)
        informational.update(park_info)
        for key, ratio in sorted(park_floors.items()):
            if ratio < args.park_floor:
                park_floor_failures.append((key, ratio))
    print("bench_smoke: running timed-acquisition series (informational)")
    informational.update(collect_timed(build_dir))
    print("bench_smoke: running optimistic index-traversal series "
          "(informational)")
    informational.update(collect_opt(build_dir))
    if not args.skip_micro:
        for name, flt in MICRO_FILTERS.items():
            print(f"bench_smoke: running {name} (informational)")
            informational.update(collect_micro(build_dir, name, flt))

    snaps = tracked_snapshots()
    prev_index = max(snaps) if snaps else None
    index = (prev_index + 1) if prev_index is not None else 2

    status = 0
    if prev_index is not None:
        with open(snaps[prev_index]) as f:
            prev = json.load(f)
        prev_gated = prev.get("gated", {})
        regressions, unmatched = compare(prev_gated, gated, args.threshold,
                                         args.realtime_threshold)
        if prev_gated and not any(k in gated for k in prev_gated):
            # Every baseline key is orphaned: the series were renamed or the
            # sweep silently produced nothing.  An empty comparison must not
            # read as a pass.
            print(f"bench_smoke: FAIL — BENCH_{prev_index}.json has "
                  f"{len(prev_gated)} gated keys but none match the current "
                  f"series names; the gate would be vacuous.  Rename the "
                  f"series back or migrate the baseline keys.",
                  file=sys.stderr)
            return 2
        for key in unmatched:
            print(f"bench_smoke: WARNING — baseline key '{key}' has no "
                  f"current match and was not gated", file=sys.stderr)
        if regressions:
            status = 1
            print(f"bench_smoke: FAIL — regression vs BENCH_{prev_index}.json:",
                  file=sys.stderr)
            for key, old, new, drop, limit in regressions:
                print(f"  {key}: {old:.3e} -> {new:.3e}  ({drop:.1%} drop, "
                      f"limit {limit:.0%})", file=sys.stderr)
        else:
            print(f"bench_smoke: gated metrics within {args.threshold:.0%} "
                  f"(realtime.* within {args.realtime_threshold:.0%}) "
                  f"of BENCH_{prev_index}.json; park.* gated by the "
                  f"{args.park_floor:.1f}x floor only")
    else:
        print("bench_smoke: no previous snapshot; recording baseline")

    if park_floor_failures:
        status = 1
        print(f"bench_smoke: FAIL — park/pure throughput ratio below the "
              f"{args.park_floor:.1f}x floor at {PARK_FLOOR_MULT}x "
              f"oversubscription:", file=sys.stderr)
        for key, ratio in park_floor_failures:
            print(f"  {key}: {ratio:.2f}", file=sys.stderr)

    config = {fig: list(fig_args) for fig, _, fig_args, _ in GATED_FIGS}
    config["timed"] = list(TIMED_ARGS)
    if not args.skip_realtime:
        config["realtime"] = list(REALTIME_ARGS)
    if not args.skip_park:
        config["park"] = list(PARK_ARGS) + [f"--floor={args.park_floor}"]
    config["units"] = {"gated": "acquires/sec (sim virtual time); "
                                "realtime.* in acquires/sec (wall clock, "
                                "pinned); park.* dimensionless throughput "
                                "ratios (wall clock)",
                       "informational": "ns/op (real time); latency.* "
                                        "in sim virtual cycles"}
    snapshot = {
        "index": index,
        "gate": {"threshold": args.threshold,
                 "realtime_threshold": args.realtime_threshold,
                 "baseline": f"BENCH_{prev_index}.json" if prev_index else None,
                 "passed": status == 0},
        "config": config,
        "meta": collect_meta(build_dir),
        "gated": gated,
        "informational": informational,
    }
    out_path = os.path.join(REPO_ROOT, f"BENCH_{index}.json")
    with open(out_path, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_smoke: wrote {os.path.relpath(out_path, REPO_ROOT)}")
    return status


if __name__ == "__main__":
    sys.exit(main())
