#!/usr/bin/env python3
"""ASCII plots for the Figure 5 CSVs produced by ./build/bench/fig5_all.

Pure stdlib (no matplotlib dependency): renders each series as a log-scale
scatter so curve shapes — who scales, who collapses, where the 64-thread
cliff falls — are visible in a terminal or a markdown code block.

Usage:
    python3 scripts/plot_fig5.py results/fig5a.csv [more.csv ...]
"""
import math
import sys


def load(path):
    header = []
    rows = []
    title = path
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "Figure" in line:
                    title = line.lstrip("# ")
                continue
            parts = line.split(",")
            if parts[0] == "threads":
                header = parts[1:]
            else:
                rows.append((int(parts[0]), [float(x) for x in parts[1:]]))
    return title, header, rows


MARKS = "GFRKS*+x"  # GOLL FOLL ROLL KSUH Solaris-like, then generic


def plot(title, header, rows, width=72, height=20):
    values = [v for _, vs in rows for v in vs if v > 0]
    if not values:
        print(f"{title}: no data")
        return
    lo, hi = math.log10(min(values)), math.log10(max(values))
    if hi - lo < 1e-9:
        hi = lo + 1
    grid = [[" "] * width for _ in range(height)]
    xs = [t for t, _ in rows]
    xlo, xhi = math.log10(xs[0]), math.log10(xs[-1])
    if xhi - xlo < 1e-9:
        xhi = xlo + 1

    def xcol(t):
        return round((math.log10(t) - xlo) / (xhi - xlo) * (width - 1))

    def yrow(v):
        frac = (math.log10(v) - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for si in range(len(header)):
        mark = MARKS[si % len(MARKS)]
        for t, vs in rows:
            v = vs[si]
            if v <= 0:
                continue
            grid[yrow(v)][xcol(t)] = mark

    print(f"\n== {title} ==")
    legend = "  ".join(f"{MARKS[i % len(MARKS)]}={name}"
                       for i, name in enumerate(header))
    print(f"   [{legend}]   y: acquires/s (log)   x: threads (log)")
    top, bottom = 10 ** hi, 10 ** lo
    for r, line in enumerate(grid):
        label = ""
        if r == 0:
            label = f"{top:8.1e}"
        elif r == height - 1:
            label = f"{bottom:8.1e}"
        print(f"{label:>9s} |{''.join(line)}")
    axis = [" "] * width
    for t in xs:
        c = xcol(t)
        s = str(t)
        for i, ch in enumerate(s):
            if c + i < width:
                axis[c + i] = ch
    print(" " * 10 + "+" + "-" * width)
    print(" " * 11 + "".join(axis))


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    for path in argv[1:]:
        title, header, rows = load(path)
        plot(title, header, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
