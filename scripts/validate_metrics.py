#!/usr/bin/env python3
"""Validate Prometheus text-exposition output from the telemetry exporter.

Structural checks on the file written by oll::TelemetryExporter
(src/harness/telemetry.cpp, --metrics_out / the --metrics_port endpoint):

  * the format parses as Prometheus text exposition v0.0.4: every sample
    line is `name{label="value",...} number` with legal metric/label
    identifiers, quoted-and-escaped label values, and a finite numeric
    value;
  * every # HELP has a matching # TYPE (counter or gauge) and vice versa,
    declared before any sample of that family;
  * counter samples are non-negative;
  * the exporter's core families are declared (oll_registry_live_locks,
    oll_telemetry_ticks_total, oll_lock_reads_total, ...) and, unless
    --allow-empty, at least one per-lock sample carries a `lock` label —
    the end-to-end check that a bench run's locks actually registered and
    were scraped;
  * oll_telemetry_ticks_total is positive (the exporter ticked at least
    once, counting the final flush).

Usage: scripts/validate_metrics.py METRICS.prom [--allow-empty]
Exit status: 0 valid, 1 invalid, 2 unreadable.
"""

import argparse
import math
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels optional; value greedily the rest.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{(.*)\})?\s+(\S+)\s*$")
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_FAMILIES = (
    "oll_registry_live_locks",
    "oll_telemetry_ticks_total",
    "oll_lock_reads_total",
    "oll_lock_writes_total",
    "oll_lock_acquire_rate",
    "oll_lock_queue_depth",
)


def fail(msg):
    print(f"validate_metrics: FAIL: {msg}", file=sys.stderr)
    return 1


def parse_labels(raw, where):
    """Return ({name: value}, error) for a {..} label blob."""
    labels = {}
    pos = 0
    while pos < len(raw):
        m = LABEL_PAIR_RE.match(raw, pos)
        if m is None:
            return None, f"{where}: malformed label pair at {raw[pos:]!r}"
        labels[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None, f"{where}: expected ',' in labels at " \
                             f"{raw[pos:]!r}"
            pos += 1
    return labels, None


def validate(lines, allow_empty):
    helps, types = {}, {}
    samples = 0
    lock_samples = 0
    ticks_value = None
    for no, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        where = f"line {no}"
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                return fail(f"{where}: malformed HELP")
            helps[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not METRIC_RE.match(parts[2]):
                return fail(f"{where}: malformed TYPE")
            if parts[3] not in ("counter", "gauge"):
                return fail(f"{where}: unexpected type {parts[3]!r} "
                            f"(exporter only writes counter/gauge)")
            if parts[2] not in helps:
                return fail(f"{where}: TYPE {parts[2]} precedes its HELP")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free comment
        m = SAMPLE_RE.match(line)
        if m is None:
            return fail(f"{where}: unparseable sample {line!r}")
        name, raw_labels, raw_value = m.groups()
        if name not in types:
            return fail(f"{where}: sample {name} has no HELP/TYPE header")
        labels = {}
        if raw_labels is not None:
            labels, err = parse_labels(raw_labels, where)
            if err:
                return fail(err)
            for lname in labels:
                if not LABEL_RE.match(lname):
                    return fail(f"{where}: bad label name {lname!r}")
        try:
            value = float(raw_value)
        except ValueError:
            return fail(f"{where}: non-numeric value {raw_value!r}")
        if math.isnan(value) or math.isinf(value):
            return fail(f"{where}: non-finite value {raw_value!r}")
        if types[name] == "counter" and value < 0:
            return fail(f"{where}: negative counter {name}={value}")
        samples += 1
        if "lock" in labels:
            lock_samples += 1
        if name == "oll_telemetry_ticks_total":
            ticks_value = value

    for fam in helps:
        if fam not in types:
            return fail(f"HELP without TYPE for {fam}")
    missing = [f for f in REQUIRED_FAMILIES if f not in types]
    if missing:
        return fail(f"required families missing: {', '.join(missing)}")
    if samples == 0:
        return fail("no samples at all")
    if ticks_value is None or ticks_value <= 0:
        return fail("oll_telemetry_ticks_total missing or zero — the "
                    "exporter never ticked")
    if lock_samples == 0 and not allow_empty:
        return fail('no sample carries a lock="..." label; no lock was '
                    "registered and scraped (pass --allow-empty if "
                    "intended)")

    print(f"validate_metrics: OK — {len(types)} families, {samples} "
          f"samples ({lock_samples} per-lock), "
          f"{int(ticks_value)} exporter tick(s)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept output with no per-lock samples")
    args = ap.parse_args()
    try:
        with open(args.metrics) as f:
            lines = f.readlines()
    except OSError as e:
        print(f"validate_metrics: cannot read {args.metrics}: {e}",
              file=sys.stderr)
        return 2
    return validate(lines, args.allow_empty)


if __name__ == "__main__":
    sys.exit(main())
