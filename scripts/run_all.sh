#!/usr/bin/env bash
# Regenerate the recorded verification artifacts:
#   test_output.txt   — full ctest run
#   bench_output.txt  — every bench binary with default arguments
# Usage: scripts/run_all.sh [build-dir]   (default: build)
set -u
BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt" | tail -4

{
  for b in "$BUILD"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $b"
      timeout 1200 "$b" || echo "[exit $? from $b]"
    fi
  done
} 2>&1 | tee "$ROOT/bench_output.txt" | tail -3

touch "$ROOT/.run_all_done"
