#!/usr/bin/env bash
# Repo verification gate: the tier-1 build + test pass (ROADMAP.md), then a
# ThreadSanitizer build running the concurrency suites (a lock library must
# be TSan-clean) and an UndefinedBehaviorSanitizer build running the same
# suites (the sim cost model and the metalock protocols leans on well-defined
# atomics and arithmetic).  CI runs exactly this script; run it locally
# before pushing (or with --tier1-only for a quick pass).
#
# Usage: scripts/check.sh [--tier1-only]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> tier-1: configure + build"
cmake -B build -S .
cmake --build build -j "${JOBS}"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> bench smoke: trajectory gate (scripts/bench_smoke.py)"
python3 scripts/bench_smoke.py

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "==> OK (tier-1 only)"
  exit 0
fi

echo "==> observability: trace export + validation (DESIGN.md §9)"
TRACE_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "${TRACE_TMP}"' EXIT
./build/bench/fig5a_read_only --mode=sim --threads=16 --acquires=200 \
  --locks=goll,foll,roll --trace="${TRACE_TMP}" >/dev/null
python3 scripts/validate_trace.py "${TRACE_TMP}"

echo "==> observability: optimistic-read trace slices (DESIGN.md §13)"
./build/bench/index_traversal --mode=sim --threads=8 --acquires=80 \
  --locks=opt-goll --read_pct=95 --trace="${TRACE_TMP}" >/dev/null
# opt_read slices + opt_validation_fail instants prove the optimistic path
# ran; write_acquire proves the writers that invalidate it ran too.  (No
# read_acquire expected: uncontended validation succeeds, so nothing falls
# back to the pessimistic shared path at this size.)
python3 scripts/validate_trace.py "${TRACE_TMP}" \
  --expect-names=opt_read,opt_validation_fail,write_acquire

echo "==> observability: telemetry exporter + metrics validation (§14)"
METRICS_TMP="$(mktemp --suffix=.prom)"
trap 'rm -f "${TRACE_TMP}" "${METRICS_TMP}" "${METRICS_TMP}.jsonl"' EXIT
./build/bench/fig5a_read_only --mode=sim --threads=8 --acquires=400 \
  --locks=goll,foll --telemetry_interval_ms=20 \
  --metrics_out="${METRICS_TMP}" >/dev/null
python3 scripts/validate_metrics.py "${METRICS_TMP}"

echo "==> observability: OLL_TRACE=0 build (hooks compiled out)"
cmake -B build-notrace -S . -DOLL_TRACE=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-notrace -j "${JOBS}" --target lock_conformance_test \
  histogram_test versioned_lock_test
./build-notrace/tests/lock_conformance_test >/dev/null
./build-notrace/tests/histogram_test >/dev/null
./build-notrace/tests/versioned_lock_test >/dev/null
echo "==> OLL_TRACE=0 build + smoke OK"

echo "==> robustness: OLL_FAULTS=0 build (fault hooks compiled out)"
cmake -B build-nofaults -S . -DOLL_FAULTS=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-nofaults -j "${JOBS}" --target lock_conformance_test \
  timed_lock_test versioned_lock_test
./build-nofaults/tests/lock_conformance_test >/dev/null
./build-nofaults/tests/timed_lock_test >/dev/null
./build-nofaults/tests/versioned_lock_test >/dev/null
echo "==> OLL_FAULTS=0 build + smoke OK"

echo "==> observability: OLL_REGISTRY=0 build (registry compiled out)"
cmake -B build-noregistry -S . -DOLL_REGISTRY=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-noregistry -j "${JOBS}" --target lock_conformance_test \
  lock_registry_test telemetry_test
./build-noregistry/tests/lock_conformance_test >/dev/null
./build-noregistry/tests/lock_registry_test >/dev/null
./build-noregistry/tests/telemetry_test >/dev/null
echo "==> OLL_REGISTRY=0 build + smoke OK"

echo "==> robustness: OLL_PARK=0 build (parking compiled out, §16)"
# kSpinThenPark must degrade to kSpin at arm() time and the substrate to
# constexpr no-ops: the pure-spin paths are bit-for-bit the seed's.
cmake -B build-nopark -S . -DOLL_PARK=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-nopark -j "${JOBS}" --target lock_conformance_test \
  park_test wait_queue_test
./build-nopark/tests/lock_conformance_test >/dev/null
./build-nopark/tests/park_test >/dev/null
./build-nopark/tests/wait_queue_test >/dev/null
echo "==> OLL_PARK=0 build + smoke OK"

echo "==> robustness: OLL_PARK_FUTEX=0 build (condvar fallback, §16.1)"
# The hashed mutex+condvar bucket table must pass the same substrate and
# conformance checks as the futex backend (this is what non-Linux and the
# aarch64 CI leg run).
cmake -B build-noparkfutex -S . -DOLL_PARK_FUTEX=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-noparkfutex -j "${JOBS}" --target park_test \
  lock_conformance_test
./build-noparkfutex/tests/park_test >/dev/null
./build-noparkfutex/tests/lock_conformance_test \
  --gtest_filter='AllLocks/ParkPolicyConformance.*' >/dev/null
echo "==> OLL_PARK_FUTEX=0 build + smoke OK"

echo "==> snzi: OLL_DWCAS=0 build (pointer-width root fallback, §15.3)"
# The fused 16-byte root must degrade gracefully: dwcas_active() false,
# root_version() 0, every lock (incl. goll-combining + the mechanism
# proofs) correct on the fallback root.
cmake -B build-nodwcas -S . -DOLL_DWCAS=0 \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-nodwcas -j "${JOBS}" --target csnzi_test \
  lock_conformance_test mechanism_test
./build-nodwcas/tests/csnzi_test >/dev/null
./build-nodwcas/tests/lock_conformance_test >/dev/null
./build-nodwcas/tests/mechanism_test >/dev/null
echo "==> OLL_DWCAS=0 build + smoke OK"

# litmus_test is the memory-order audit's harness (DESIGN.md §12): its
# fixture arms the chaos fault profile itself, so under TSan each
# release/acquire downgrade is checked as a real happens-before edge
# against a fault-sheared schedule.
TSAN_SUITES=(
  lock_stress_test race_fuzz_test snzi_stress_test bravo_test
  csnzi_test lock_conformance_test foll_roll_test goll_test ksuh_test
  wait_queue_test mutex_test metalock_test orig_snzi_test trace_test
  histogram_test timed_lock_test litmus_test versioned_lock_test
  lock_registry_test telemetry_test mechanism_test park_test
)

echo "==> tsan: configure + build (tests only)"
cmake -B build-tsan -S . -DOLL_SANITIZE=thread \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-tsan -j "${JOBS}" --target "${TSAN_SUITES[@]}"

echo "==> tsan: concurrency suites"
# halt_on_error so the first race fails the run instead of scrolling past.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for t in "${TSAN_SUITES[@]}"; do
  echo "==> tsan: ${t}"
  "./build-tsan/tests/${t}"
done

echo "==> tsan: chaos-profile conformance (relaxed-order sweep)"
# The memory-order relaxations must hold when the fault layer shears the
# windows open: re-run the conformance + timed suites with chaos injection
# armed for the whole process.
OLL_TEST_FAULT_PROFILE=chaos ./build-tsan/tests/lock_conformance_test >/dev/null
OLL_TEST_FAULT_PROFILE=chaos ./build-tsan/tests/timed_lock_test >/dev/null
echo "==> tsan: chaos-profile conformance OK"

echo "==> tsan: fault_fuzz smoke (fixed seeds, ~30s)"
cmake --build build-tsan -j "${JOBS}" --target fault_fuzz
./build-tsan/tests/fault_fuzz --locks=goll,foll,roll,bravo-goll,opt-goll \
  --profiles=cas,chaos --seeds=1,42 --read_pcts=50,95 --iters=80 \
  --stall_limit_s=120

echo "==> tsan: fault_fuzz park sweep (lost/spurious wakes under TSan, §16.4)"
# The consume-or-unpark pairing's release/acquire edges must be genuine
# happens-before under injected spurious and lost wakes; the end-of-run
# parked-census oracle also runs here.
./build-tsan/tests/fault_fuzz --locks=goll,foll,roll,bravo-goll,opt-goll \
  --profiles=park-spurious,park-lost,park-chaos --seeds=1,42 \
  --read_pcts=50,95 --iters=80 --stall_limit_s=120

echo "==> ubsan: configure + build (tests only)"
cmake -B build-ubsan -S . -DOLL_SANITIZE=undefined \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-ubsan -j "${JOBS}" --target "${TSAN_SUITES[@]}"

echo "==> ubsan: concurrency suites"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
for t in "${TSAN_SUITES[@]}"; do
  echo "==> ubsan: ${t}"
  "./build-ubsan/tests/${t}"
done

echo "==> OK"
