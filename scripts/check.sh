#!/usr/bin/env bash
# Repo verification gate: the tier-1 build + test pass (ROADMAP.md), then a
# ThreadSanitizer build running the concurrency suites (a lock library must
# be TSan-clean).  CI runs exactly this script; run it locally before
# pushing (or with --tier1-only for a quick pass).
#
# Usage: scripts/check.sh [--tier1-only]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> tier-1: configure + build"
cmake -B build -S .
cmake --build build -j "${JOBS}"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "==> bench smoke: trajectory gate (scripts/bench_smoke.py)"
python3 scripts/bench_smoke.py

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "==> OK (tier-1 only)"
  exit 0
fi

TSAN_SUITES=(
  lock_stress_test race_fuzz_test snzi_stress_test bravo_test
  csnzi_test lock_conformance_test foll_roll_test goll_test ksuh_test
  wait_queue_test mutex_test orig_snzi_test
)

echo "==> tsan: configure + build (tests only)"
cmake -B build-tsan -S . -DOLL_SANITIZE=thread \
  -DOLL_ENABLE_BENCH=OFF -DOLL_ENABLE_EXAMPLES=OFF
cmake --build build-tsan -j "${JOBS}" --target "${TSAN_SUITES[@]}"

echo "==> tsan: concurrency suites"
# halt_on_error so the first race fails the run instead of scrolling past.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for t in "${TSAN_SUITES[@]}"; do
  echo "==> tsan: ${t}"
  "./build-tsan/tests/${t}"
done

echo "==> OK"
