// Umbrella header: the public API of the OLL reader-writer lock library.
//
// Quickstart:
//
//   #include "core/oll.hpp"
//
//   oll::FollLock<> lock;                 // paper's FOLL lock (§4.2)
//   {
//     oll::ReadGuard g(lock);             // shared critical section
//   }
//   {
//     oll::WriteGuard g(lock);            // exclusive critical section
//   }
//
// Locks: GollLock, FollLock, RollLock (the paper's contributions) and the
// baselines SolarisRwLock, KsuhRwLock, McsRwLock, BigReaderRwLock,
// CentralRwLock.  All satisfy the standard SharedMutex requirements where
// noted and the SharedLockable concept, all are templated on a memory-model
// policy (RealMemory by default; sim::SimMemory for the virtual-topology
// benchmarks).
#pragma once

#include "core/factory.hpp"
#include "core/guards.hpp"
#include "core/rw_protected.hpp"
#include "core/rwlock_concepts.hpp"
#include "locks/big_reader_rwlock.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/ksuh_rwlock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/mcs_rwlock.hpp"
#include "locks/roll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "snzi/csnzi.hpp"
#include "snzi/snzi.hpp"
