// Concepts describing the duck-typed lock interfaces every lock in this
// library implements, so guards / wrappers / test suites / the benchmark
// harness can be written once against the concept.
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>

namespace oll {

template <typename L>
concept BasicLockable = requires(L& l) {
  l.lock();
  l.unlock();
};

template <typename L>
concept SharedLockable = BasicLockable<L> && requires(L& l) {
  l.lock_shared();
  l.unlock_shared();
};

template <typename L>
concept TrySharedLockable = SharedLockable<L> && requires(L& l) {
  { l.try_lock() } -> std::convertible_to<bool>;
  { l.try_lock_shared() } -> std::convertible_to<bool>;
};

template <typename L>
concept UpgradableLockable = SharedLockable<L> && requires(L& l) {
  { l.try_upgrade() } -> std::convertible_to<bool>;
  l.downgrade();
};

// Timed/cancellable acquisition (DESIGN.md §11).  Semantics mirror the
// standard SharedTimedMutex requirements: an already-expired deadline makes
// try_*_for / try_*_until behave like the corresponding try_ call, and a
// grant that lands concurrently with the deadline MAY be consumed (the call
// then returns true after the deadline — permitted by the standard's
// "fails only after the time has passed" phrasing read the other way
// round).  A false return guarantees the caller holds nothing and no
// residual queue state remains on its behalf.
template <typename L>
concept TimedSharedLockable =
    TrySharedLockable<L> &&
    requires(L& l, std::chrono::steady_clock::time_point tp) {
      {
        l.try_lock_for(std::chrono::milliseconds(1))
      } -> std::convertible_to<bool>;
      {
        l.try_lock_shared_for(std::chrono::milliseconds(1))
      } -> std::convertible_to<bool>;
      { l.try_lock_until(tp) } -> std::convertible_to<bool>;
      { l.try_lock_shared_until(tp) } -> std::convertible_to<bool>;
    };

// Optimistic (seqlock/OCC) read mode (DESIGN.md §13).  opt_read_begin()
// samples a version stamp — kInvalidOptStamp means a writer was active and
// the optimistic attempt must not even start.  The caller then reads the
// protected data *without holding anything* (so it may observe torn state
// and must restrict itself to copy-out; see RwProtected::read_optimistic for
// the discipline) and finishes with opt_read_validate(stamp): true iff no
// writer ran between begin and validate, i.e. every value read belongs to a
// single consistent version.  On false the caller discards what it read and
// retries or falls back to lock_shared().  opt_max_retries() is the lock's
// suggested retry budget before falling back; count_opt_fallback() lets the
// retry harness attribute the fallback to this lock's stats.
template <typename L>
concept OptimisticSharedLockable = SharedLockable<L> && requires(L& l) {
  { l.opt_read_begin() } -> std::convertible_to<std::uint64_t>;
  { l.opt_read_validate(std::uint64_t{}) } -> std::convertible_to<bool>;
  { l.opt_max_retries() } -> std::convertible_to<std::uint32_t>;
  l.count_opt_fallback();
};

// Sentinel stamp returned by opt_read_begin() when a writer holds (or is
// entering) the lock: opt_read_validate(kInvalidOptStamp) is always false.
inline constexpr std::uint64_t kInvalidOptStamp = ~std::uint64_t{0};

// Delegation/flat-combining write mode (DESIGN.md §15).  with_write(fn, ctx)
// executes the type-erased closure under exclusive ownership, but not
// necessarily on the calling thread: a lock that loses the acquire race may
// publish the closure into its combining pool and let the current holder run
// it in-cache before releasing (locks/combining.hpp).  The call returns only
// after the closure ran; an exception thrown by the closure propagates to
// the caller regardless of which thread executed it.  Closures must not
// depend on thread identity (no thread_local, no recursive locking) — see
// the execution-context contract in combining.hpp.  Locks without a
// combining pool satisfy the concept with plain acquire-execute-release;
// RwProtected::with_write degrades the same way for non-combining locks.
template <typename L>
concept CombiningLockable = SharedLockable<L> &&
    requires(L& l, void (*fn)(void*), void* ctx) {
      l.with_write(fn, ctx);
    };

}  // namespace oll
