// Concepts describing the duck-typed lock interfaces every lock in this
// library implements, so guards / wrappers / test suites / the benchmark
// harness can be written once against the concept.
#pragma once

#include <chrono>
#include <concepts>

namespace oll {

template <typename L>
concept BasicLockable = requires(L& l) {
  l.lock();
  l.unlock();
};

template <typename L>
concept SharedLockable = BasicLockable<L> && requires(L& l) {
  l.lock_shared();
  l.unlock_shared();
};

template <typename L>
concept TrySharedLockable = SharedLockable<L> && requires(L& l) {
  { l.try_lock() } -> std::convertible_to<bool>;
  { l.try_lock_shared() } -> std::convertible_to<bool>;
};

template <typename L>
concept UpgradableLockable = SharedLockable<L> && requires(L& l) {
  { l.try_upgrade() } -> std::convertible_to<bool>;
  l.downgrade();
};

// Timed/cancellable acquisition (DESIGN.md §11).  Semantics mirror the
// standard SharedTimedMutex requirements: an already-expired deadline makes
// try_*_for / try_*_until behave like the corresponding try_ call, and a
// grant that lands concurrently with the deadline MAY be consumed (the call
// then returns true after the deadline — permitted by the standard's
// "fails only after the time has passed" phrasing read the other way
// round).  A false return guarantees the caller holds nothing and no
// residual queue state remains on its behalf.
template <typename L>
concept TimedSharedLockable =
    TrySharedLockable<L> &&
    requires(L& l, std::chrono::steady_clock::time_point tp) {
      {
        l.try_lock_for(std::chrono::milliseconds(1))
      } -> std::convertible_to<bool>;
      {
        l.try_lock_shared_for(std::chrono::milliseconds(1))
      } -> std::convertible_to<bool>;
      { l.try_lock_until(tp) } -> std::convertible_to<bool>;
      { l.try_lock_shared_until(tp) } -> std::convertible_to<bool>;
    };

}  // namespace oll
