// RAII guards for reader-writer locks (C++ Core Guidelines CP.20: use RAII,
// never plain lock()/unlock()).
//
// ReadGuard / WriteGuard work with any lock satisfying SharedLockable —
// including std::shared_mutex — and our locks also satisfy the standard
// SharedMutex named requirements, so std::shared_lock / std::unique_lock /
// std::scoped_lock work on them directly.  These guards exist for the
// common case without the adoption/deferral machinery.
#pragma once

#include <utility>

#include "core/rwlock_concepts.hpp"
#include "platform/assert.hpp"

namespace oll {

template <SharedLockable L>
class ReadGuard {
 public:
  explicit ReadGuard(L& lock) : lock_(&lock) { lock_->lock_shared(); }

  ~ReadGuard() {
    if (lock_ != nullptr) lock_->unlock_shared();
  }

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

  ReadGuard(ReadGuard&& other) noexcept
      : lock_(std::exchange(other.lock_, nullptr)) {}

  // Release early; the destructor then does nothing.
  void unlock() {
    OLL_DCHECK(lock_ != nullptr);
    lock_->unlock_shared();
    lock_ = nullptr;
  }

  bool owns_lock() const noexcept { return lock_ != nullptr; }

 private:
  L* lock_;
};

template <BasicLockable L>
class WriteGuard {
 public:
  explicit WriteGuard(L& lock) : lock_(&lock) { lock_->lock(); }

  ~WriteGuard() {
    if (lock_ != nullptr) lock_->unlock();
  }

  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  WriteGuard(WriteGuard&& other) noexcept
      : lock_(std::exchange(other.lock_, nullptr)) {}

  void unlock() {
    OLL_DCHECK(lock_ != nullptr);
    lock_->unlock();
    lock_ = nullptr;
  }

  bool owns_lock() const noexcept { return lock_ != nullptr; }

 private:
  L* lock_;
};

}  // namespace oll
