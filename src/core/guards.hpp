// RAII guards for reader-writer locks (C++ Core Guidelines CP.20: use RAII,
// never plain lock()/unlock()).
//
// ReadGuard / WriteGuard work with any lock satisfying SharedLockable —
// including std::shared_mutex — and our locks also satisfy the standard
// SharedMutex named requirements, so std::shared_lock / std::unique_lock /
// std::scoped_lock work on them directly.  These guards exist for the
// common case without the adoption/deferral machinery.
#pragma once

#include <utility>

#include "core/rwlock_concepts.hpp"
#include "platform/assert.hpp"

namespace oll {

template <SharedLockable L>
class ReadGuard {
 public:
  explicit ReadGuard(L& lock) : lock_(&lock) { lock_->lock_shared(); }

  ~ReadGuard() {
    if (lock_ != nullptr) lock_->unlock_shared();
  }

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

  ReadGuard(ReadGuard&& other) noexcept
      : lock_(std::exchange(other.lock_, nullptr)) {}

  // Release early; the destructor then does nothing.
  void unlock() {
    OLL_DCHECK(lock_ != nullptr);
    lock_->unlock_shared();
    lock_ = nullptr;
  }

  bool owns_lock() const noexcept { return lock_ != nullptr; }

 private:
  L* lock_;
};

template <BasicLockable L>
class WriteGuard {
 public:
  explicit WriteGuard(L& lock) : lock_(&lock) { lock_->lock(); }

  ~WriteGuard() {
    if (lock_ != nullptr) lock_->unlock();
  }

  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  WriteGuard(WriteGuard&& other) noexcept
      : lock_(std::exchange(other.lock_, nullptr)) {}

  void unlock() {
    OLL_DCHECK(lock_ != nullptr);
    lock_->unlock();
    lock_ = nullptr;
  }

  bool owns_lock() const noexcept { return lock_ != nullptr; }

 private:
  L* lock_;
};

// Guard for one optimistic read attempt (DESIGN.md §13).  Unlike the RAII
// guards above it holds nothing — construction samples the version stamp,
// and the *caller* decides what its reads meant by calling validate() at
// the end of the section:
//
//   for (std::uint32_t i = 0; i <= lock.opt_max_retries(); ++i) {
//     oll::OptGuard g(lock);
//     if (!g.started()) continue;     // writer active at begin
//     auto copy = read_fields();      // copy-out only: state may be torn
//     if (g.validate()) return copy;  // consistent — zero shared stores
//   }
//   lock.count_opt_fallback();
//   oll::ReadGuard g(lock);           // pessimistic fallback
//   ...
//
// Between started() and validate() the section runs with NO lock held: it
// may observe torn state, must only copy data out (no pointer chasing into
// memory a writer may free, no side effects on derived values), and must
// touch concurrently-written words through atomics (relaxed suffices — the
// version protocol carries the ordering).  validate()==true is never
// spurious; false may be (fault injection forces failures to exercise this
// retry loop).  The destructor does nothing: an abandoned attempt has
// nothing to release.
// Acquire-execute-release for a type-erased closure — the degraded form of
// the delegated write path (DESIGN.md §15).  CombiningLockable locks route
// with_write() through their combining pool instead; everything else (and
// every AnyRwLock default) funnels through here so `with_write` is total
// across the library with identical exception behavior: the unlock fires
// whether fn returns or throws, and the exception continues to the caller.
template <BasicLockable L>
inline void locked_execute(L& lock, void (*fn)(void*), void* ctx) {
  WriteGuard<L> g(lock);
  fn(ctx);
}

template <OptimisticSharedLockable L>
class OptGuard {
 public:
  explicit OptGuard(L& lock) : lock_(&lock), stamp_(lock.opt_read_begin()) {}

  OptGuard(const OptGuard&) = delete;
  OptGuard& operator=(const OptGuard&) = delete;

  // False iff a writer was inside the lock at begin; the attempt is dead
  // on arrival (validate() would return false) — restart or fall back.
  bool started() const noexcept { return stamp_ != kInvalidOptStamp; }

  // Close the section: true iff everything read since construction saw one
  // consistent version.  May be called at most once meaningfully; restart()
  // re-opens the guard for another attempt.
  bool validate() { return lock_->opt_read_validate(stamp_); }

  void restart() { stamp_ = lock_->opt_read_begin(); }

  std::uint64_t stamp() const noexcept { return stamp_; }

 private:
  L* lock_;
  std::uint64_t stamp_;
};

}  // namespace oll
