// Left-Right (Ramalhete & Correia) built on SNZI read indicators.
//
// The SNZI paper (and §1/§2 of this paper) frame SNZI as a general "are any
// readers present?" indicator, not just a lock ingredient.  Left-Right is
// the canonical non-lock consumer: two instances of the data; readers are
// WAIT-FREE (arrive at an indicator, read the active instance, depart);
// a writer updates the inactive instance, switches readers over, waits for
// the old indicator to drain, and then replays its update on the other
// instance.  Using a SNZI as the indicator keeps the reader side scalable
// exactly as it does for the OLL locks: concurrent readers touch (mostly)
// distinct tree nodes instead of one counter.
//
//   oll::LeftRight<std::map<K, V>> lr;
//   auto v = lr.read([&](const auto& m) { return m.at(k); });   // wait-free
//   lr.write([&](auto& m) { m[k] = v; });                       // serialized
//
// Guarantees: readers never block (and never see a torn instance — they
// always read an instance no writer is mutating); writers are mutually
// exclusive and wait for readers of the instance they are about to mutate.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>

#include "locks/tatas_lock.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"
#include "snzi/snzi.hpp"

namespace oll {

template <typename T, typename M = RealMemory>
class LeftRight {
 public:
  LeftRight() = default;

  template <typename... Args>
  explicit LeftRight(const Args&... args)
      : instances_{T(args...), T(args...)} {}

  LeftRight(const LeftRight&) = delete;
  LeftRight& operator=(const LeftRight&) = delete;

  // Wait-free shared access to a consistent instance.
  template <typename F>
  decltype(auto) read(F&& f) const {
    const std::uint32_t vi = version_index_.load(std::memory_order_acquire);
    auto ticket = indicators_[vi].value.arrive();
    struct Depart {
      const Snzi<M>& s;
      decltype(ticket)& t;
      ~Depart() { const_cast<Snzi<M>&>(s).depart(t); }
    } depart{indicators_[vi].value, ticket};
    const std::uint32_t lr = leftright_.load(std::memory_order_acquire);
    return std::forward<F>(f)(
        const_cast<const T&>(instances_[lr]));
  }

  // Exclusive update; `f` is applied to BOTH instances (in sequence), so it
  // must be deterministic with respect to the instance state.
  template <typename F>
  void write(F&& f) {
    std::lock_guard<TatasLock<M>> guard(writers_mutex_);
    const std::uint32_t lr = leftright_.load(std::memory_order_relaxed);
    // 1. Update the instance readers are NOT looking at.
    f(instances_[1 - lr]);
    // 2. Switch new readers over to it.
    leftright_.store(1 - lr, std::memory_order_release);
    // 3. Drain readers off the old instance: toggle the version index and
    //    wait out both indicator generations (classic Left-Right protocol).
    const std::uint32_t vi = version_index_.load(std::memory_order_relaxed);
    spin_until([&] { return !indicators_[1 - vi].value.query(); });
    version_index_.store(1 - vi, std::memory_order_release);
    spin_until([&] { return !indicators_[vi].value.query(); });
    // 4. Replay on the old instance so both copies converge.
    f(instances_[lr]);
  }

  // Copy out under a read.
  T snapshot() const {
    return read([](const T& v) { return v; });
  }

 private:
  T instances_[2]{};
  typename M::template Atomic<std::uint32_t> leftright_{0};
  char pad0_[kFalseSharingRange - sizeof(std::uint32_t)];
  typename M::template Atomic<std::uint32_t> version_index_{0};
  char pad1_[kFalseSharingRange - sizeof(std::uint32_t)];
  mutable CacheAligned<Snzi<M>> indicators_[2];
  TatasLock<M> writers_mutex_;
};

}  // namespace oll
