// RwProtected<T, Lock>: data and the lock that guards it, defined together
// (C++ Core Guidelines CP.50), with access only through read()/write()
// closures so the locking discipline cannot be forgotten or inverted.
//
//   oll::RwProtected<Config, oll::FollLock<>> config;
//   auto timeout = config.read([](const Config& c) { return c.timeout; });
//   config.write([&](Config& c) { c.timeout = 30; });
#pragma once

#include <utility>

#include "core/rwlock_concepts.hpp"

namespace oll {

template <typename T, SharedLockable Lock>
class RwProtected {
 public:
  RwProtected() = default;

  template <typename... Args>
  explicit RwProtected(Args&&... args) : value_(std::forward<Args>(args)...) {}

  RwProtected(const RwProtected&) = delete;
  RwProtected& operator=(const RwProtected&) = delete;

  // Shared access: many read() closures may run concurrently.
  template <typename F>
  decltype(auto) read(F&& f) const {
    lock_.lock_shared();
    struct Release {
      Lock& l;
      ~Release() { l.unlock_shared(); }
    } release{lock_};
    return std::forward<F>(f)(value_);
  }

  // Exclusive access.
  template <typename F>
  decltype(auto) write(F&& f) {
    lock_.lock();
    struct Release {
      Lock& l;
      ~Release() { l.unlock(); }
    } release{lock_};
    return std::forward<F>(f)(value_);
  }

  // Copy the value out under a read lock.
  T snapshot() const {
    return read([](const T& v) { return v; });
  }

  Lock& mutex() const { return lock_; }

 private:
  T value_{};
  mutable Lock lock_{};
};

}  // namespace oll
