// RwProtected<T, Lock>: data and the lock that guards it, defined together
// (C++ Core Guidelines CP.50), with access only through read()/write()
// closures so the locking discipline cannot be forgotten or inverted.
//
//   oll::RwProtected<Config, oll::FollLock<>> config;
//   auto timeout = config.read([](const Config& c) { return c.timeout; });
//   config.write([&](Config& c) { c.timeout = 30; });
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/guards.hpp"
#include "core/rwlock_concepts.hpp"
#include "locks/lock_stats.hpp"
#include "platform/backoff.hpp"
#include "platform/lock_registry.hpp"

namespace oll {

template <typename T, SharedLockable Lock>
class RwProtected {
 public:
  RwProtected() { register_self(); }

  template <typename... Args>
  explicit RwProtected(Args&&... args) : value_(std::forward<Args>(args)...) {
    register_self();
  }

  RwProtected(const RwProtected&) = delete;
  RwProtected& operator=(const RwProtected&) = delete;

  // Shared access: many read() closures may run concurrently.
  template <typename F>
  decltype(auto) read(F&& f) const {
    lock_.lock_shared();
    struct Release {
      Lock& l;
      ~Release() { l.unlock_shared(); }
    } release{lock_};
    return std::forward<F>(f)(value_);
  }

  // Exclusive access.
  template <typename F>
  decltype(auto) write(F&& f) {
    lock_.lock();
    struct Release {
      Lock& l;
      ~Release() { l.unlock(); }
    } release{lock_};
    return std::forward<F>(f)(value_);
  }

  // Optimistic (OCC) shared access over an OptimisticSharedLockable lock
  // (DESIGN.md §13): run `f` against the value WITHOUT acquiring anything,
  // then validate; on validation failure discard f's result and re-run it,
  // falling back to the pessimistic read() after the lock's retry budget.
  // A validated call touched zero shared cache lines beyond two loads of
  // the lock's version word.
  //
  // Torn-read-safe copy discipline — because f runs unprotected, a
  // concurrent writer may be mutating the value mid-call, so f must:
  //   * treat the value as potentially *inconsistent* (any mix of old and
  //     new field values) and only compute/copy, never follow owned
  //     pointers that a writer might free or assert cross-field invariants;
  //   * read fields a writer may touch through atomics (std::atomic /
  //     std::atomic_ref members, relaxed is enough) so the racing loads are
  //     defined behavior;
  //   * be side-effect free on failure: anything derived from a run whose
  //     validate() failed is discarded here and must not have escaped.
  // For a non-atomic T those constraints are on the caller's honor, exactly
  // as with every seqlock; when in doubt use read().
  //
  // On locks with no optimistic mode this degrades to read() statically.
  template <typename F>
  decltype(auto) read_optimistic(F&& f) const {
    if constexpr (OptimisticSharedLockable<Lock>) {
      using R = std::invoke_result_t<F&, const T&>;
      ExponentialBackoff backoff;
      for (std::uint32_t i = 0; i <= lock_.opt_max_retries(); ++i) {
        if (i != 0) backoff.backoff();  // writer likely active: let it drain
        OptGuard<Lock> g(lock_);
        if (!g.started()) continue;
        if constexpr (std::is_void_v<R>) {
          f(static_cast<const T&>(value_));
          if (g.validate()) return;
        } else {
          R result = f(static_cast<const T&>(value_));
          if (g.validate()) return result;
        }
      }
      lock_.count_opt_fallback();
    }
    return read(std::forward<F>(f));
  }

  // Delegable exclusive access (DESIGN.md §15).  Like write(), but over a
  // CombiningLockable lock a call that loses the acquire race publishes the
  // closure to the lock's combining pool, and the *current holder* executes
  // it in-cache before releasing — the caller never pays a queue handoff or
  // migrates the data lines.  Consequences the caller must accept:
  //
  //   * f may run on another thread.  It must not touch thread_local state,
  //     recursively acquire this (or any lock ordered against this) lock,
  //     or rely on thread identity in any way.
  //   * A non-void result is returned BY VALUE (it is produced on the
  //     executing thread and shipped back); write()'s reference-returning
  //     idioms do not apply.
  //   * An exception thrown by f is rethrown on the calling thread, no
  //     matter where f ran.
  //
  // On locks with no combining pool this degrades statically to
  // acquire-execute-release (same semantics, same thread).
  template <typename F>
  auto with_write(F&& f) {
    using R = std::remove_cvref_t<std::invoke_result_t<F&, T&>>;
    if constexpr (!CombiningLockable<Lock>) {
      if constexpr (std::is_void_v<R>) {
        write(std::forward<F>(f));
      } else {
        return R(write(std::forward<F>(f)));
      }
    } else if constexpr (std::is_void_v<R>) {
      struct Ctx {
        T* value;
        F* f;
      } c{&value_, &f};
      lock_.with_write(
          [](void* p) {
            Ctx* c = static_cast<Ctx*>(p);
            (*c->f)(*c->value);
          },
          &c);
    } else {
      std::optional<R> out;
      struct Ctx {
        T* value;
        F* f;
        std::optional<R>* out;
      } c{&value_, &f, &out};
      lock_.with_write(
          [](void* p) {
            Ctx* c = static_cast<Ctx*>(p);
            c->out->emplace((*c->f)(*c->value));
          },
          &c);
      return std::move(*out);
    }
  }

  // Copy the value out under a read lock.
  T snapshot() const {
    return read([](const T& v) { return v; });
  }

  Lock& mutex() const { return lock_; }

  // Re-register under a meaningful telemetry identity (the default is the
  // anonymous "RwProtected").  Typical call:
  //   config.annotate("config", {__FILE__, __LINE__});
  void annotate(const char* name, LockSite site = {}) {
    registration_.reset();
    registration_.emplace(name, "RwProtected", site,
                          static_cast<const void*>(this),
                          &RwProtected::registry_stats_thunk, nullptr);
  }

 private:
  void register_self() {
    registration_.emplace("RwProtected", "RwProtected", LockSite{},
                          static_cast<const void*>(this),
                          &RwProtected::registry_stats_thunk, nullptr);
  }

  static LockStatsSnapshot registry_stats_thunk(const void* obj) {
    const auto* self = static_cast<const RwProtected*>(obj);
    if constexpr (requires(const Lock& l) {
                    { l.stats() } -> std::convertible_to<LockStatsSnapshot>;
                  }) {
      return self->lock_.stats();
    } else {
      (void)self;
      return {};
    }
  }

  T value_{};
  mutable Lock lock_{};
  // Declared last: deregistration blocks out in-flight registry samplers
  // before lock_ dies.
  std::optional<LockRegistration> registration_;
};

}  // namespace oll
