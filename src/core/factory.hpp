// Runtime-polymorphic lock handles and a factory keyed by lock kind/name.
//
// The benchmark harness and the conformance tests sweep over every lock in
// the library at runtime; AnyRwLock type-erases the SharedLockable interface
// (one virtual call per operation — fine for tests and for the harness,
// which reports both virtual and direct-template numbers; the Figure 5
// benches use the direct templates).
#pragma once

#include <chrono>
#include <concepts>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/rwlock_concepts.hpp"
#include "locks/lock_stats.hpp"
#include "locks/timed.hpp"
#include "locks/big_reader_rwlock.hpp"
#include "locks/bravo.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/ksuh_rwlock.hpp"
#include "locks/mcs_rwlock.hpp"
#include "locks/roll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "locks/versioned_rwlock.hpp"
#include "platform/lock_registry.hpp"
#include "platform/memory.hpp"

namespace oll {

enum class LockKind {
  kGoll,
  // GOLL with the flat-combining/delegation writer mode and the DWCAS
  // C-SNZI root enabled (locks/combining.hpp, DESIGN.md §15).  with_write()
  // delegates; plain lock()/unlock() writers still drain the pool.
  kGollCombining,
  kFoll,
  kRoll,
  kKsuh,
  kSolarisLike,
  kMcsRw,
  kBigReader,
  kCentral,
  kStdShared,  // std::shared_mutex; RealMemory builds only
  // BRAVO reader-bias wrapper (locks/bravo.hpp) over selected backends.
  kBravoGoll,
  kBravoFoll,
  kBravoRoll,
  kBravoCentral,
  // Optimistic read mode (locks/versioned_rwlock.hpp) over selected
  // backends; opt-bravo-goll stacks it on the BRAVO wrap, so pessimistic
  // fallback readers still get the bias fast path.
  kOptGoll,
  kOptBravoGoll,
  kOptCentral,
};

inline const char* lock_kind_name(LockKind k) {
  switch (k) {
    case LockKind::kGoll: return "GOLL";
    case LockKind::kGollCombining: return "GOLL-combining";
    case LockKind::kFoll: return "FOLL";
    case LockKind::kRoll: return "ROLL";
    case LockKind::kKsuh: return "KSUH";
    case LockKind::kSolarisLike: return "Solaris-like";
    case LockKind::kMcsRw: return "MCS-RW";
    case LockKind::kBigReader: return "BigReader";
    case LockKind::kCentral: return "Central";
    case LockKind::kStdShared: return "std::shared_mutex";
    case LockKind::kBravoGoll: return "BRAVO-GOLL";
    case LockKind::kBravoFoll: return "BRAVO-FOLL";
    case LockKind::kBravoRoll: return "BRAVO-ROLL";
    case LockKind::kBravoCentral: return "BRAVO-Central";
    case LockKind::kOptGoll: return "OPT-GOLL";
    case LockKind::kOptBravoGoll: return "OPT-BRAVO-GOLL";
    case LockKind::kOptCentral: return "OPT-Central";
  }
  return "?";
}

inline std::optional<LockKind> parse_lock_kind(std::string_view s) {
  if (s == "goll" || s == "GOLL") return LockKind::kGoll;
  if (s == "goll-combining" || s == "GOLL-combining") {
    return LockKind::kGollCombining;
  }
  if (s == "foll" || s == "FOLL") return LockKind::kFoll;
  if (s == "roll" || s == "ROLL") return LockKind::kRoll;
  if (s == "ksuh" || s == "KSUH") return LockKind::kKsuh;
  if (s == "solaris" || s == "solaris-like") return LockKind::kSolarisLike;
  if (s == "mcs-rw" || s == "mcsrw") return LockKind::kMcsRw;
  if (s == "bigreader" || s == "big-reader") return LockKind::kBigReader;
  if (s == "central") return LockKind::kCentral;
  if (s == "std" || s == "shared_mutex") return LockKind::kStdShared;
  if (s == "bravo-goll" || s == "BRAVO-GOLL") return LockKind::kBravoGoll;
  if (s == "bravo-foll" || s == "BRAVO-FOLL") return LockKind::kBravoFoll;
  if (s == "bravo-roll" || s == "BRAVO-ROLL") return LockKind::kBravoRoll;
  if (s == "bravo-central" || s == "BRAVO-Central") {
    return LockKind::kBravoCentral;
  }
  if (s == "opt-goll" || s == "OPT-GOLL") return LockKind::kOptGoll;
  if (s == "opt-bravo-goll" || s == "OPT-BRAVO-GOLL") {
    return LockKind::kOptBravoGoll;
  }
  if (s == "opt-central" || s == "OPT-Central") return LockKind::kOptCentral;
  return std::nullopt;
}

// The five locks the paper's Figure 5 plots, in its legend order.
inline std::vector<LockKind> figure5_lock_kinds() {
  return {LockKind::kGoll, LockKind::kFoll, LockKind::kRoll, LockKind::kKsuh,
          LockKind::kSolarisLike};
}

inline std::vector<LockKind> all_lock_kinds() {
  return {LockKind::kGoll,      LockKind::kGollCombining,
          LockKind::kFoll,      LockKind::kRoll,
          LockKind::kKsuh,      LockKind::kSolarisLike,
          LockKind::kMcsRw,     LockKind::kBigReader,
          LockKind::kCentral,   LockKind::kStdShared,
          LockKind::kBravoGoll, LockKind::kBravoFoll,
          LockKind::kBravoRoll, LockKind::kBravoCentral,
          LockKind::kOptGoll,   LockKind::kOptBravoGoll,
          LockKind::kOptCentral};
}

// The BRAVO-wrapped variants, for sweeps comparing bias on/off.
inline std::vector<LockKind> bravo_lock_kinds() {
  return {LockKind::kBravoGoll, LockKind::kBravoFoll, LockKind::kBravoRoll,
          LockKind::kBravoCentral};
}

// The kinds with an optimistic read mode (VersionedRwLock wraps).
inline std::vector<LockKind> opt_lock_kinds() {
  return {LockKind::kOptGoll, LockKind::kOptBravoGoll, LockKind::kOptCentral};
}

class AnyRwLock {
 public:
  virtual ~AnyRwLock() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual void lock_shared() = 0;
  virtual void unlock_shared() = 0;
  // Non-blocking and timed acquisition (DESIGN.md §11).  Every factory lock
  // implements these natively; the adapter's fallbacks (spurious false for
  // try_, deadline-bounded retry for timed) keep the erased surface total
  // even for foreign locks without one (e.g. std::shared_mutex has no timed
  // methods).
  virtual bool try_lock() = 0;
  virtual bool try_lock_shared() = 0;
  virtual bool try_lock_for(std::chrono::nanoseconds timeout) = 0;
  virtual bool try_lock_shared_for(std::chrono::nanoseconds timeout) = 0;
  virtual const char* name() const = 0;
  // Optimistic read mode (DESIGN.md §13).  The defaults make every kind
  // total over the erased surface — and make AnyRwLock itself satisfy
  // OptimisticSharedLockable, so OptGuard<AnyRwLock> works: a kind without
  // the mode reports supports_optimistic()==false, begins dead-on-arrival
  // (kInvalidOptStamp) and never validates, which sends any generic retry
  // loop straight to the pessimistic path.
  virtual bool supports_optimistic() const { return false; }
  virtual std::uint64_t opt_read_begin() { return kInvalidOptStamp; }
  virtual bool opt_read_validate(std::uint64_t /*stamp*/) { return false; }
  virtual std::uint32_t opt_max_retries() const { return 0; }
  virtual void count_opt_fallback() {}
  // Delegable exclusive section (DESIGN.md §15): execute fn(ctx) under
  // exclusive ownership.  Combining kinds may run the closure on the
  // current holder's thread (exceptions still propagate to the caller —
  // see core/rwlock_concepts.hpp CombiningLockable); every other kind
  // degrades to acquire-execute-release, so the erased surface is total.
  virtual void with_write(void (*fn)(void*), void* ctx) {
    lock();
    struct Release {
      AnyRwLock& l;
      ~Release() { l.unlock(); }
    } release{*this};
    fn(ctx);
  }
  // Operation counters for locks that keep them (others report zeros);
  // exact at quiescence.
  virtual LockStatsSnapshot stats() const { return {}; }
  // Rebase stats() to zero from here on (baseline subtraction — the lock's
  // own counters keep running).  The harness calls this between the warmup
  // and measured phases; like stats(), exact only at quiescence.
  virtual void reset_stats() {}
  // Holder/waiter attribution (platform/lock_registry.hpp): non-null for
  // adapter-backed locks, null for kinds without census marks.  Marks only
  // flow while some consumer holds registry_census_enable().
  virtual const ContentionCensus* census() const { return nullptr; }
};

// Identity a lock adapter registers under (platform/lock_registry.hpp).
// Implicitly convertible from a bare name so direct RwLockAdapter
// construction keeps working: RwLockAdapter<GollLock<>>("GOLL", opts).
struct AdapterIdentity {
  const char* name;
  const char* kind = nullptr;  // defaults to name
  LockSite site{};             // creation site, when the creator tags one
  bool register_lock = true;   // opt out of the global registry
  std::uint32_t census_threads = 64;  // holder/waiter slots (dense tids)

  AdapterIdentity(const char* n) : name(n) {}  // NOLINT: implicit by design
};

template <SharedLockable L>
class RwLockAdapter final : public AnyRwLock {
 public:
  template <typename... Args>
  explicit RwLockAdapter(AdapterIdentity id, Args&&... args)
      : name_(id.name), impl_(std::forward<Args>(args)...),
        census_(id.census_threads) {
    if (id.register_lock) {
      registration_.emplace(id.name, id.kind != nullptr ? id.kind : id.name,
                            id.site, static_cast<const void*>(this),
                            &RwLockAdapter::registry_stats_thunk, &census_);
    }
  }

  // Every acquisition is bracketed with census marks.  With the census
  // disabled (the default) begin_wait is one relaxed global load and the
  // others key off the thread's own idle slot — a handful of cache-local
  // loads, nothing shared.
  void lock() override {
    census_.begin_wait(/*write=*/true);
    impl_.lock();
    census_.acquired(/*write=*/true);
  }
  void unlock() override {
    census_.released();
    impl_.unlock();
  }
  void lock_shared() override {
    census_.begin_wait(/*write=*/false);
    impl_.lock_shared();
    census_.acquired(/*write=*/false);
  }
  void unlock_shared() override {
    census_.released();
    impl_.unlock_shared();
  }

  bool try_lock() override {
    if constexpr (requires {
                    { impl_.try_lock() } -> std::convertible_to<bool>;
                  }) {
      census_.begin_wait(/*write=*/true);
      const bool ok = impl_.try_lock();
      if (ok) {
        census_.acquired(/*write=*/true);
      } else {
        census_.abandoned();
      }
      return ok;
    } else {
      return false;  // spurious failure is within the try contract
    }
  }

  bool try_lock_shared() override {
    if constexpr (requires {
                    { impl_.try_lock_shared() } -> std::convertible_to<bool>;
                  }) {
      census_.begin_wait(/*write=*/false);
      const bool ok = impl_.try_lock_shared();
      if (ok) {
        census_.acquired(/*write=*/false);
      } else {
        census_.abandoned();
      }
      return ok;
    } else {
      return false;
    }
  }

  bool try_lock_for(std::chrono::nanoseconds timeout) override {
    census_.begin_wait(/*write=*/true);
    bool ok;
    if constexpr (requires {
                    { impl_.try_lock_for(timeout) }
                        -> std::convertible_to<bool>;
                  }) {
      ok = impl_.try_lock_for(timeout);
    } else {
      ok = deadline_retry(std::chrono::steady_clock::now() + timeout,
                          [&] { return try_lock_raw(); });
    }
    if (ok) {
      census_.acquired(/*write=*/true);
    } else {
      census_.abandoned();
    }
    return ok;
  }

  bool try_lock_shared_for(std::chrono::nanoseconds timeout) override {
    census_.begin_wait(/*write=*/false);
    bool ok;
    if constexpr (requires {
                    { impl_.try_lock_shared_for(timeout) }
                        -> std::convertible_to<bool>;
                  }) {
      ok = impl_.try_lock_shared_for(timeout);
    } else {
      ok = deadline_retry(std::chrono::steady_clock::now() + timeout,
                          [&] { return try_lock_shared_raw(); });
    }
    if (ok) {
      census_.acquired(/*write=*/false);
    } else {
      census_.abandoned();
    }
    return ok;
  }

  void with_write(void (*fn)(void*), void* ctx) override {
    if constexpr (CombiningLockable<L>) {
      // No census bracketing: a delegated closure may execute on the
      // holder's thread, so the caller never appears as a holder — marking
      // it acquired here would fabricate a hold interval.
      impl_.with_write(fn, ctx);
    } else {
      census_.begin_wait(/*write=*/true);
      impl_.lock();
      census_.acquired(/*write=*/true);
      struct Release {
        RwLockAdapter& a;
        ~Release() {
          a.census_.released();
          a.impl_.unlock();
        }
      } release{*this};
      fn(ctx);
    }
  }

  bool supports_optimistic() const override {
    return OptimisticSharedLockable<L>;
  }

  std::uint64_t opt_read_begin() override {
    if constexpr (OptimisticSharedLockable<L>) {
      return impl_.opt_read_begin();
    } else {
      return kInvalidOptStamp;
    }
  }

  bool opt_read_validate(std::uint64_t stamp) override {
    if constexpr (OptimisticSharedLockable<L>) {
      return impl_.opt_read_validate(stamp);
    } else {
      return false;
    }
  }

  std::uint32_t opt_max_retries() const override {
    if constexpr (OptimisticSharedLockable<L>) {
      return impl_.opt_max_retries();
    } else {
      return 0;
    }
  }

  void count_opt_fallback() override {
    if constexpr (OptimisticSharedLockable<L>) {
      impl_.count_opt_fallback();
    }
  }

  const char* name() const override { return name_; }
  LockStatsSnapshot stats() const override {
    LockStatsSnapshot s = raw_stats();
    s -= baseline_;
    return s;
  }
  void reset_stats() override { baseline_ = raw_stats(); }
  const ContentionCensus* census() const override { return &census_; }

  L& underlying() { return impl_; }

 private:
  LockStatsSnapshot raw_stats() const {
    if constexpr (requires(const L& l) {
                    { l.stats() } -> std::convertible_to<LockStatsSnapshot>;
                  }) {
      return impl_.stats();
    } else {
      return {};
    }
  }

  // The registry samples raw (never-rebased) counters, so telemetry deltas
  // survive the harness rebasing stats() at phase boundaries.
  static LockStatsSnapshot registry_stats_thunk(const void* obj) {
    return static_cast<const RwLockAdapter*>(obj)->raw_stats();
  }

  // Un-bracketed try paths, for the deadline_retry fallbacks (which manage
  // their own census bracketing around the whole timed call).
  bool try_lock_raw() {
    if constexpr (requires {
                    { impl_.try_lock() } -> std::convertible_to<bool>;
                  }) {
      return impl_.try_lock();
    } else {
      return false;
    }
  }
  bool try_lock_shared_raw() {
    if constexpr (requires {
                    { impl_.try_lock_shared() } -> std::convertible_to<bool>;
                  }) {
      return impl_.try_lock_shared();
    } else {
      return false;
    }
  }

  const char* name_;
  L impl_;
  LockStatsSnapshot baseline_{};
  ContentionCensus census_;
  // Declared last: deregistration (which blocks out in-flight registry
  // samplers) must complete before impl_ and census_ are destroyed.
  std::optional<LockRegistration> registration_;
};

struct LockFactoryOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  bool readers_coalesce_over_writers = true;
  // How contended waiters block (wait_queue.hpp / DESIGN.md §16): kSpin is
  // the paper's pure-spin evaluation mode; kSpinThenPark bounds the spin
  // and parks on the futex substrate (platform/park.hpp) — the mode for
  // oversubscribed hosts.  Forwarded to every kind that exposes a policy
  // (GOLL family incl. its metalock, FOLL, ROLL, Solaris-like, Central,
  // BRAVO wrappers); kinds without per-waiter words (KSUH, MCS-RW,
  // BigReader, std::shared_mutex) ignore it.
  WaitPolicy wait_policy = WaitPolicy::kSpin;
  // Writer-arbitration metalock for the metalock-based locks (GOLL and its
  // BRAVO wrap): kind, cohort budget, topology (cohort_mcs_lock.hpp).
  MetalockOptions metalock{};
  // Flat-combining/delegation writer mode for the GOLL family (DESIGN.md
  // §15).  kGollCombining forces combine on (and defaults the DWCAS root
  // on) regardless; these let a sweep toggle it on plain kGoll for
  // ablations (--combine / --combine_budget; --dwcas_root maps to
  // csnzi.dwcas_root above).
  bool combine = false;
  std::uint32_t combine_budget = 64;
  // Global lock registry (platform/lock_registry.hpp): every factory lock
  // self-registers unless opted out; `site` tags the creation site in
  // telemetry output (pass {__FILE__, __LINE__} or OLL_LOCK_SITE-style).
  bool register_lock = true;
  LockSite site{};
};

inline AdapterIdentity adapter_identity(const char* name,
                                        const LockFactoryOptions& o) {
  AdapterIdentity id(name);
  id.site = o.site;
  id.register_lock = o.register_lock;
  id.census_threads = o.max_threads;
  return id;
}

// Construct a lock of the given kind over memory model M.  Returns nullptr
// only for kStdShared under a simulated memory model (std::shared_mutex
// cannot be instrumented).
template <typename M = RealMemory>
std::unique_ptr<AnyRwLock> make_rwlock(LockKind kind,
                                       const LockFactoryOptions& o = {}) {
  switch (kind) {
    case LockKind::kGoll: {
      GollOptions g;
      g.max_threads = o.max_threads;
      g.csnzi = o.csnzi;
      g.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      g.metalock = o.metalock;
      g.wait_strategy = o.wait_policy;
      g.combine = o.combine;
      g.combine_budget = o.combine_budget;
      return std::make_unique<RwLockAdapter<GollLock<M>>>(adapter_identity("GOLL", o), g);
    }
    case LockKind::kGollCombining: {
      GollOptions g;
      g.max_threads = o.max_threads;
      g.csnzi = o.csnzi;
      // The kind's defaults; CSnzi::normalize drops dwcas_root on builds
      // without 16-byte atomics (OLL_DWCAS=0 / no __int128).
      g.csnzi.dwcas_root = true;
      g.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      g.metalock = o.metalock;
      g.wait_strategy = o.wait_policy;
      g.combine = true;
      g.combine_budget = o.combine_budget;
      return std::make_unique<RwLockAdapter<GollLock<M>>>(
          adapter_identity("GOLL-combining", o), g);
    }
    case LockKind::kFoll: {
      FollOptions f;
      f.max_threads = o.max_threads;
      f.csnzi = o.csnzi;
      f.topology = o.metalock.topology;
      f.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<FollLock<M>>>(adapter_identity("FOLL", o), f);
    }
    case LockKind::kRoll: {
      RollOptions r;
      r.max_threads = o.max_threads;
      r.csnzi = o.csnzi;
      r.topology = o.metalock.topology;
      r.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<RollLock<M>>>(adapter_identity("ROLL", o), r);
    }
    case LockKind::kKsuh: {
      KsuhOptions k;
      k.max_threads = o.max_threads;
      return std::make_unique<RwLockAdapter<KsuhRwLock<M>>>(adapter_identity("KSUH", o), k);
    }
    case LockKind::kSolarisLike: {
      SolarisOptions s;
      s.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      s.wait_strategy = o.wait_policy;
      return std::make_unique<RwLockAdapter<SolarisRwLock<M>>>(adapter_identity("Solaris-like", o),
                                                               s);
    }
    case LockKind::kMcsRw: {
      McsRwOptions m;
      m.max_threads = o.max_threads;
      return std::make_unique<RwLockAdapter<McsRwLock<M>>>(adapter_identity("MCS-RW", o), m);
    }
    case LockKind::kBigReader: {
      BigReaderOptions b;
      b.max_threads = o.max_threads;
      return std::make_unique<RwLockAdapter<BigReaderRwLock<M>>>(adapter_identity("BigReader", o),
                                                                 b);
    }
    case LockKind::kCentral: {
      CentralRwOptions c;
      c.max_threads = o.max_threads;
      c.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<CentralRwLock<M>>>(adapter_identity("Central", o), c);
    }
    case LockKind::kStdShared: {
      if constexpr (std::is_same_v<M, RealMemory>) {
        return std::make_unique<RwLockAdapter<std::shared_mutex>>(
            adapter_identity("std::shared_mutex", o));
      } else {
        return nullptr;
      }
    }
    case LockKind::kBravoGoll: {
      GollOptions g;
      g.max_threads = o.max_threads;
      g.csnzi = o.csnzi;
      g.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      g.metalock = o.metalock;
      g.wait_strategy = o.wait_policy;
      BravoOptions b;
      b.max_threads = o.max_threads;
      b.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<Bravo<GollLock<M>, M>>>(
          adapter_identity("BRAVO-GOLL", o), b, g);
    }
    case LockKind::kBravoFoll: {
      FollOptions f;
      f.max_threads = o.max_threads;
      f.csnzi = o.csnzi;
      f.topology = o.metalock.topology;
      f.wait_policy = o.wait_policy;
      BravoOptions b;
      b.max_threads = o.max_threads;
      b.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<Bravo<FollLock<M>, M>>>(
          adapter_identity("BRAVO-FOLL", o), b, f);
    }
    case LockKind::kBravoRoll: {
      RollOptions r;
      r.max_threads = o.max_threads;
      r.csnzi = o.csnzi;
      r.topology = o.metalock.topology;
      r.wait_policy = o.wait_policy;
      BravoOptions b;
      b.max_threads = o.max_threads;
      b.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<Bravo<RollLock<M>, M>>>(
          adapter_identity("BRAVO-ROLL", o), b, r);
    }
    case LockKind::kBravoCentral: {
      CentralRwOptions c;
      c.max_threads = o.max_threads;
      c.wait_policy = o.wait_policy;
      BravoOptions b;
      b.max_threads = o.max_threads;
      b.wait_policy = o.wait_policy;
      return std::make_unique<RwLockAdapter<Bravo<CentralRwLock<M>, M>>>(
          adapter_identity("BRAVO-Central", o), b, c);
    }
    case LockKind::kOptGoll: {
      GollOptions g;
      g.max_threads = o.max_threads;
      g.csnzi = o.csnzi;
      g.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      g.metalock = o.metalock;
      g.wait_strategy = o.wait_policy;
      VersionedOptions v;
      v.max_threads = o.max_threads;
      return std::make_unique<
          RwLockAdapter<VersionedRwLock<GollLock<M>, M>>>(adapter_identity("OPT-GOLL", o), v, g);
    }
    case LockKind::kOptBravoGoll: {
      GollOptions g;
      g.max_threads = o.max_threads;
      g.csnzi = o.csnzi;
      g.readers_coalesce_over_writers = o.readers_coalesce_over_writers;
      g.metalock = o.metalock;
      g.wait_strategy = o.wait_policy;
      BravoOptions b;
      b.max_threads = o.max_threads;
      b.wait_policy = o.wait_policy;
      VersionedOptions v;
      v.max_threads = o.max_threads;
      return std::make_unique<
          RwLockAdapter<VersionedRwLock<Bravo<GollLock<M>, M>, M>>>(
          adapter_identity("OPT-BRAVO-GOLL", o), v, b, g);
    }
    case LockKind::kOptCentral: {
      CentralRwOptions c;
      c.max_threads = o.max_threads;
      c.wait_policy = o.wait_policy;
      VersionedOptions v;
      v.max_threads = o.max_threads;
      return std::make_unique<
          RwLockAdapter<VersionedRwLock<CentralRwLock<M>, M>>>(adapter_identity("OPT-Central", o),
                                                               v, c);
    }
  }
  return nullptr;
}

}  // namespace oll
