// MCS fair reader-writer lock (Mellor-Crummey & Scott, PPoPP'91) — the
// queue-based RW lock whose limitations motivate §1 of the paper: waiting
// threads spin locally and a reader is admitted when its predecessor is an
// active reader, but *every* thread still FASes the central tail pointer and
// every reader increments/decrements a central reader count on both acquire
// and release, so it does not scale under heavy read contention.
//
// This is the classic algorithm with the (blocked, successor_class) pair
// packed into one CAS-able word per node, plus the central reader_count and
// next_writer fields.
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"

namespace oll {

struct McsRwOptions {
  std::uint32_t max_threads = 512;
};

template <typename M = RealMemory>
class McsRwLock {
 public:
  explicit McsRwLock(const McsRwOptions& opts = {}) : locals_(opts.max_threads) {}

  McsRwLock(const McsRwLock&) = delete;
  McsRwLock& operator=(const McsRwLock&) = delete;

  void lock_shared() { start_read(locals_.local().node); }
  void unlock_shared() { end_read(locals_.local().node); }
  void lock() { start_write(locals_.local().node); }
  void unlock() { end_write(locals_.local().node); }

  // --- non-blocking / timed acquisition (DESIGN.md §11) -------------------
  // Conservative empty-queue CAS, like every MCS-family lock here.  The
  // writer try additionally has to respect the release ordering of
  // end_read: a reader retreats the tail BEFORE decrementing reader_count_,
  // so a post-CAS reader_count_ != 0 can only be a release in flight — a
  // bounded wait, not a lock tenure (the pre-CAS count check rejects the
  // common held-for-reading case without touching the tail).

  bool try_lock() {
    if (reader_count_.load(std::memory_order_acquire) != 0) return false;
    QNode& I = locals_.local().node;
    I.cls = kWriter;
    I.next.store(nullptr, std::memory_order_relaxed);
    I.state.store(kBlocked | kSuccNone, std::memory_order_relaxed);
    QNode* expected = nullptr;
    if (!tail_.compare_exchange_strong(expected, &I,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return false;
    }
    // Mirror start_write's empty-queue arm; the registration dance settles
    // any race with a departing last reader.
    next_writer_.store(&I, std::memory_order_release);
    if (reader_count_.load(std::memory_order_acquire) == 0) {
      QNode* w = next_writer_.exchange(nullptr, std::memory_order_acq_rel);
      if (w == &I) {
        I.state.fetch_and(~kBlocked, std::memory_order_acq_rel);
      } else if (w != nullptr) {
        next_writer_.store(w, std::memory_order_release);
      }
    }
    spin_until([&] {
      return (I.state.load(std::memory_order_acquire) & kBlocked) == 0;
    });
    return true;
  }

  bool try_lock_shared() {
    QNode& I = locals_.local().node;
    I.cls = kReader;
    I.next.store(nullptr, std::memory_order_relaxed);
    I.state.store(kBlocked | kSuccNone, std::memory_order_relaxed);
    QNode* expected = nullptr;
    if (!tail_.compare_exchange_strong(expected, &I,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return false;
    }
    reader_count_.fetch_add(1, std::memory_order_acq_rel);
    I.state.fetch_and(~kBlocked, std::memory_order_acq_rel);
    // A reader that queued behind us before we cleared kBlocked registered
    // as our successor and is spinning; chain-unblock it as start_read does.
    if ((I.state.load(std::memory_order_acquire) & kSuccMask) ==
        kSuccReader) {
      QNode* succ = nullptr;
      spin_until([&] {
        succ = I.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
      reader_count_.fetch_add(1, std::memory_order_acq_rel);
      succ->state.fetch_and(~kBlocked, std::memory_order_acq_rel);
    }
    return true;
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp), [&] { return try_lock(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp),
                          [&] { return try_lock_shared(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

 private:
  enum Class : std::uint32_t { kReader = 0, kWriter = 1 };

  // state word: bit 0 = blocked, bits [1,3) = successor class
  static constexpr std::uint32_t kBlocked = 1u;
  static constexpr std::uint32_t kSuccNone = 0u << 1;
  static constexpr std::uint32_t kSuccReader = 1u << 1;
  static constexpr std::uint32_t kSuccWriter = 2u << 1;
  static constexpr std::uint32_t kSuccMask = 3u << 1;

  struct alignas(kFalseSharingRange) QNode {
    typename M::template Atomic<QNode*> next{nullptr};
    typename M::template Atomic<std::uint32_t> state{0};
    Class cls = kReader;
  };

  struct Local {
    QNode node;
  };

  void start_read(QNode& I) {
    I.cls = kReader;
    I.next.store(nullptr, std::memory_order_relaxed);
    I.state.store(kBlocked | kSuccNone, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&I, std::memory_order_acq_rel);
    if (pred == nullptr) {
      reader_count_.fetch_add(1, std::memory_order_acq_rel);
      I.state.fetch_and(~kBlocked, std::memory_order_acq_rel);
    } else {
      std::uint32_t expect = kBlocked | kSuccNone;
      if (pred->cls == kWriter ||
          pred->state.compare_exchange_strong(expect, kBlocked | kSuccReader,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        // Predecessor is a writer, or a blocked reader with no successor
        // registered yet: it will unblock us in turn.
        pred->next.store(&I, std::memory_order_release);
        spin_until([&] {
          return (I.state.load(std::memory_order_acquire) & kBlocked) == 0;
        });
      } else {
        // Predecessor is an active (or soon-active) reader.
        reader_count_.fetch_add(1, std::memory_order_acq_rel);
        pred->next.store(&I, std::memory_order_release);
        I.state.fetch_and(~kBlocked, std::memory_order_acq_rel);
      }
    }
    // Chain-unblock a reader that queued behind us while we were blocked.
    if ((I.state.load(std::memory_order_acquire) & kSuccMask) == kSuccReader) {
      QNode* succ = nullptr;
      spin_until([&] {
        succ = I.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
      reader_count_.fetch_add(1, std::memory_order_acq_rel);
      succ->state.fetch_and(~kBlocked, std::memory_order_acq_rel);
    }
  }

  void end_read(QNode& I) {
    QNode* succ = I.next.load(std::memory_order_acquire);
    if (succ != nullptr || !cas_tail_to_null(&I)) {
      spin_until([&] {
        succ = I.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
      if ((I.state.load(std::memory_order_acquire) & kSuccMask) ==
          kSuccWriter) {
        next_writer_.store(succ, std::memory_order_release);
      }
    }
    if (reader_count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last reader out unblocks the next writer, if one registered.
      QNode* w = next_writer_.exchange(nullptr, std::memory_order_acq_rel);
      if (w != nullptr) {
        w->state.fetch_and(~kBlocked, std::memory_order_acq_rel);
      }
    }
  }

  void start_write(QNode& I) {
    I.cls = kWriter;
    I.next.store(nullptr, std::memory_order_relaxed);
    I.state.store(kBlocked | kSuccNone, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&I, std::memory_order_acq_rel);
    if (pred == nullptr) {
      next_writer_.store(&I, std::memory_order_release);
      if (reader_count_.load(std::memory_order_acquire) == 0) {
        QNode* w = next_writer_.exchange(nullptr, std::memory_order_acq_rel);
        if (w == &I) {
          I.state.fetch_and(~kBlocked, std::memory_order_acq_rel);
        } else if (w != nullptr) {
          // We raced with a departing last reader who grabbed a different
          // registration; restore it.  (Unreachable in this algorithm: only
          // this writer can be registered here.  Guard anyway.)
          next_writer_.store(w, std::memory_order_release);
        }
      }
    } else {
      std::uint32_t s = pred->state.load(std::memory_order_acquire);
      while (!pred->state.compare_exchange_weak(
          s, (s & kBlocked) | kSuccWriter, std::memory_order_acq_rel,
          std::memory_order_acquire)) {
      }
      pred->next.store(&I, std::memory_order_release);
    }
    spin_until([&] {
      return (I.state.load(std::memory_order_acquire) & kBlocked) == 0;
    });
  }

  void end_write(QNode& I) {
    QNode* succ = I.next.load(std::memory_order_acquire);
    if (succ != nullptr || !cas_tail_to_null(&I)) {
      spin_until([&] {
        succ = I.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
      if (succ->cls == kReader) {
        reader_count_.fetch_add(1, std::memory_order_acq_rel);
      }
      succ->state.fetch_and(~kBlocked, std::memory_order_acq_rel);
    }
  }

  bool cas_tail_to_null(QNode* expected_tail) {
    QNode* expected = expected_tail;
    return tail_.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  typename M::template Atomic<QNode*> tail_{nullptr};
  char pad0_[kFalseSharingRange - sizeof(void*)];
  typename M::template Atomic<std::uint32_t> reader_count_{0};
  char pad1_[kFalseSharingRange - sizeof(std::uint32_t)];
  typename M::template Atomic<QNode*> next_writer_{nullptr};
  char pad2_[kFalseSharingRange - sizeof(void*)];
  PerThreadSlots<Local> locals_;
};

}  // namespace oll
