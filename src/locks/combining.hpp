// Flat-combining publication pool for delegated writer critical sections
// (DESIGN.md §15).
//
// A writer that loses the acquire race can *publish* its critical section —
// a type-erased closure — into a per-thread combining slot instead of
// queueing for ownership.  The current write holder drains pending slots and
// executes them in-cache before releasing, so a combined operation pays no
// metalock handoff and no wait-queue wake, and the data it mutates stays in
// the combiner's cache instead of migrating line-by-line to a new owner
// ("Lock-Free Locks Revisited"; PAPERS.md).
//
// Structure, following the classic flat-combining publication list:
//
//   * One cache-aligned Slot per thread (locks/per_thread.hpp).  A slot is
//     enrolled into a grow-only intrusive list the first time its thread
//     delegates; it is never unlinked, so the combiner's walk needs no
//     hazard protection and visits only threads that ever delegated.
//   * Slot life cycle: kEmpty -> kPending (owner publishes closure, release
//     store) -> kExecuting (combiner claims by CAS) -> kDone (combiner
//     finished, release store; any exception parked in `ex`) -> kEmpty
//     (owner consumes the result).  The owner may also retract a still-
//     kPending slot by CAS to take a conventional acquire path.
//   * `dirty_` is an approximate population hint so an unlock with no
//     delegations pays one shared load, not a list walk.  It is a
//     test-and-set flag, not a counter: under a delegation burst the first
//     publisher sets it and the rest see it already set and write nothing —
//     a counter here would be a shared RMW per delegated op, i.e. exactly
//     the centralized traffic combining exists to remove.  The flag may
//     lag (a publish racing a drain's clear can be missed for one round);
//     the publisher's own close-attempt/fallback path restores liveness,
//     so the hint only ever costs latency, never correctness.
//
// Execution-context contract: a delegated closure runs on the *combiner's*
// thread.  Closures must therefore not rely on thread identity — no
// thread_local access, no recursive acquisition of this or any other lock
// ordered against it, no thread-affine external state.  RwProtected::
// with_write documents the same rule at the typed layer.
//
// Invariant the locks rely on: slots are claimed (kPending -> kExecuting)
// only by a thread holding the lock exclusively, and every claim is driven
// to kDone before that holder releases.  Hence whenever the lock is free,
// no slot is kExecuting — a delegator that manages to acquire the lock
// finds its own slot either still kPending (retract and run inline) or
// already kDone (someone combined it first).
#pragma once

#include <cstdint>
#include <exception>
#include <utility>

#include "locks/per_thread.hpp"
#include "platform/assert.hpp"

namespace oll {

enum class CombineState : std::uint32_t {
  kEmpty = 0,     // slot idle, owned by its thread
  kPending = 1,   // closure published, waiting for a combiner (or retract)
  kExecuting = 2, // claimed by the current write holder
  kDone = 3,      // executed; result/exception ready for the owner
};

template <typename M>
class CombinePool {
 public:
  struct Slot {
    typename M::template Atomic<std::uint32_t> state{
        static_cast<std::uint32_t>(CombineState::kEmpty)};
    // Grow-only publication-list link; written once per enrollment, before
    // the head CAS publishes it.
    typename M::template Atomic<Slot*> next{nullptr};
    bool enrolled = false;  // owner-thread private
    // Payload: written by the owner before the kPending release store,
    // read by the combiner after its claim CAS acquires.
    std::uint32_t domain = 0;
    void (*fn)(void*) = nullptr;
    void* ctx = nullptr;
    // Written by the combiner before the kDone release store, read by the
    // owner after observing kDone with acquire.
    std::exception_ptr ex{};
  };

  explicit CombinePool(std::uint32_t max_threads) : slots_(max_threads) {}

  // Publish the calling thread's closure; returns the slot to watch.
  Slot& publish(void (*fn)(void*), void* ctx, std::uint32_t domain) {
    Slot& s = slots_.local();
    OLL_DCHECK(s.state.load(std::memory_order_relaxed) ==
               static_cast<std::uint32_t>(CombineState::kEmpty));
    s.domain = domain;
    s.fn = fn;
    s.ctx = ctx;
    s.ex = nullptr;
    s.state.store(static_cast<std::uint32_t>(CombineState::kPending),
                  std::memory_order_release);
    if (!s.enrolled) {
      s.enrolled = true;
      Slot* head = head_.load(std::memory_order_relaxed);
      do {
        s.next.store(head, std::memory_order_relaxed);
      } while (!head_.compare_exchange_weak(head, &s,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
    }
    // Test-and-set: during a burst only the first publisher writes the
    // shared hint line (see the file comment).
    if (dirty_.load(std::memory_order_relaxed) == 0) {
      dirty_.store(1, std::memory_order_release);
    }
    return s;
  }

  // Owner takes its still-unclaimed closure back (to run it itself on a
  // conventional acquire path).  False means a combiner already claimed it
  // — the owner must then wait for kDone and consume().
  bool try_retract(Slot& s) {
    std::uint32_t expect = static_cast<std::uint32_t>(CombineState::kPending);
    // The dirty_ hint is left as-is: a stale set flag costs the next holder
    // one empty walk, which is cheaper than another shared write here.
    return s.state.compare_exchange_strong(
        expect, static_cast<std::uint32_t>(CombineState::kEmpty),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  // Owner reclaims a kDone slot; rethrows the closure's exception, if any,
  // on the owner's thread (the delegation contract).
  void consume(Slot& s) {
    OLL_DCHECK(s.state.load(std::memory_order_relaxed) ==
               static_cast<std::uint32_t>(CombineState::kDone));
    std::exception_ptr ex = std::move(s.ex);
    s.ex = nullptr;
    s.state.store(static_cast<std::uint32_t>(CombineState::kEmpty),
                  std::memory_order_relaxed);
    if (ex) std::rethrow_exception(ex);
  }

  // One shared load; false means a drain would find nothing (approximate —
  // a publish racing the release is caught by the publisher's own retry).
  bool maybe_pending() const {
    return dirty_.load(std::memory_order_acquire) != 0;
  }

  // Holder-side gate for a drain: consume the hint.  MUST be called only
  // while holding the lock exclusively (claims are serialized; publishers
  // may race, see the file comment).  The per-slot claim CAS inside drain()
  // carries the payload synchronization — the flag is purely a hint, so
  // the clear can be relaxed.
  bool claim_pending() {
    if (dirty_.load(std::memory_order_acquire) == 0) return false;
    dirty_.store(0, std::memory_order_relaxed);
    return true;
  }

  // Execute up to `budget` pending closures.  MUST be called only while the
  // caller holds the lock exclusively (see the invariant above).
  //
  // Single claim sweep, not load-then-claim: the walk CASes each slot
  // kPending -> kExecuting directly, so a claimed slot costs the combiner
  // ONE coherence transfer instead of a shared fetch followed by an
  // exclusive upgrade (the drain is the serialized critical path of every
  // combined op — each transfer here is paid once per op by the whole
  // lock).  A failed CAS on an idle slot costs the same one transfer the
  // old pre-check load did, and publishers need the line exclusively to
  // publish anyway, so stealing it claims nothing they kept.
  //
  // Locality (the PR 4 cohort rationale applied to delegation): closures
  // from the holder's own LLC domain execute during the sweep; remote ones
  // are deferred to a local scratch array and run after it, so combined
  // work runs against caches in the holder's domain before crossing the
  // die — without a second walk over all the slot lines.
  std::uint32_t drain(std::uint32_t budget, std::uint32_t my_domain) {
    Slot* deferred[kDeferredCap];
    std::uint32_t n_deferred = 0;
    std::uint32_t claimed = 0;
    for (Slot* s = head_.load(std::memory_order_acquire);
         s != nullptr && claimed < budget;
         s = s->next.load(std::memory_order_acquire)) {
      std::uint32_t expect =
          static_cast<std::uint32_t>(CombineState::kPending);
      if (!s->state.compare_exchange_strong(
              expect, static_cast<std::uint32_t>(CombineState::kExecuting),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        continue;  // idle, retracted, or not yet consumed; move on
      }
      ++claimed;
      if (s->domain != my_domain && n_deferred < kDeferredCap) {
        deferred[n_deferred++] = s;  // cross-domain: run after local work
        continue;
      }
      execute(*s);
    }
    for (std::uint32_t i = 0; i < n_deferred; ++i) execute(*deferred[i]);
    // A budget-capped drain may have left publishes behind; restore the
    // hint so the next release walks again rather than waiting out the
    // leftovers' spin budgets.
    if (claimed == budget) dirty_.store(1, std::memory_order_release);
    return claimed;
  }

 private:
  // Deferral scratch bound: claims past this many cross-domain slots in one
  // drain execute in walk order instead (locality is best-effort, never a
  // correctness property).
  static constexpr std::uint32_t kDeferredCap = 128;

  // Run one claimed closure to kDone (exceptions parked for the owner).
  void execute(Slot& s) {
    try {
      s.fn(s.ctx);
    } catch (...) {
      s.ex = std::current_exception();
    }
    s.state.store(static_cast<std::uint32_t>(CombineState::kDone),
                  std::memory_order_release);
  }

  PerThreadSlots<Slot> slots_;
  typename M::template Atomic<Slot*> head_{nullptr};
  typename M::template Atomic<std::uint32_t> dirty_{0};
};

}  // namespace oll
