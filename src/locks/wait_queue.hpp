// Wait queue with reader-group coalescing — the user-space stand-in for the
// Solaris turnstile (§3.1), shared by the GOLL and Solaris-like locks.
//
// Threads that must sleep enqueue a WaitNode (stack-allocated) and spin on
// its `granted` flag through a spin-based "condition variable", exactly as
// the paper's own evaluation does ("we used our own spin-based condition
// variables to eliminate the cost of context switching", §5.1).  Consecutive
// readers — and, under the default Solaris-style policy, readers arriving
// while writers already wait — coalesce into a single *group* so a releasing
// thread can hand the lock to the whole group at once (the Solaris lock
// "sets the reader counter to the number of readers in that group and wakes
// them up").
//
// Under kSpin a WaitNode is nothing but a cache-line-padded local-spin flag
// plus metalock-protected links; the kBlocking parking state (mutex +
// condition variable) is allocated on demand by arm(), so the spin
// configuration the paper evaluates never constructs or carries it.
//
// NUMA cohort handoff (cohort_budget > 0): each node records its waiter's
// LLC domain at arm() time, and a releasing thread may ask dequeue() to
// prefer a *writer* in its own domain over the FIFO head — restricted to
// the leading run of consecutive writer groups (a writer never overtakes a
// reader group, preserving the reader/writer alternation policy), and to at
// most `cohort_budget` consecutive preferred grants before strict FIFO
// resumes.  A skipped writer therefore waits at most cohort_budget extra
// grants: bounded unfairness in exchange for keeping the lock word, queue
// head and C-SNZI root inside one cache domain (see DESIGN.md §10).
//
// Group wakeup (tree_wake): linearly waking a group of N readers puts N
// remote flag stores on the *granter's* critical path — the last store
// trails the first by N cache-line transfers.  With tree_wake the granter
// instead threads the (frozen) member list into an implicit BFS binary tree
// using plain pointer writes and sets only the leader's flag; each waiter
// forwards the grant to its two children as it wakes, so the furthest
// waiter is ceil(log2 N) transfers away and the fan-out runs on the woken
// threads' own cycles.  The seed's linear wake remains the default (and the
// metalock=tatas baseline's behavior).
//
// Concurrency contract:
//   * enqueue/dequeue/remove/num_writers/empty are called ONLY while holding
//     the lock's metalock.
//   * GroupRef::signal_all is called after releasing the metalock; it reads
//     each node's intrusive `next_in_group` pointer BEFORE setting that
//     node's granted flag, because the owning thread may destroy its stack
//     node the instant the flag is set.  Under tree_wake the child pointers
//     are written before the leader's flag and published to each waiter by
//     the release/acquire chain through the flags; a waiter reads only its
//     OWN child pointers (its node is alive — it is standing in wait()).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/spin.hpp"

namespace oll {

enum class ReqKind : std::uint8_t { kReader, kWriter };

// How queued threads block (paper §1/§5.1): production locks deschedule
// waiting threads (Solaris turnstiles put them to sleep); the paper's own
// user-space evaluation substitutes spin-based condition variables "to
// eliminate the cost of context switching".  All three are available here:
//   kSpin         — busy-wait with progressive yield (the evaluation setup).
//   kBlocking     — spin briefly, then sleep on a per-node mutex+condvar
//                   (the pre-park production setup; kept for comparison).
//   kSpinThenPark — adaptive spin (platform/park.hpp controller), then park
//                   on the granted word itself via the futex-backed
//                   substrate (DESIGN.md §16).  Degrades to kSpin under
//                   OLL_PARK=0 and in the virtual-time simulator (whose
//                   atomics are not kernel-parkable words).
enum class WaitStrategy : std::uint8_t { kSpin, kBlocking, kSpinThenPark };

// The per-lock waiting-policy knob (factory plumbing, lock Options structs)
// is the wait strategy; the alias names the concept at the API surface.
using WaitPolicy = WaitStrategy;

inline const char* wait_policy_name(WaitPolicy p) {
  switch (p) {
    case WaitPolicy::kSpin: return "spin";
    case WaitPolicy::kBlocking: return "blocking";
    case WaitPolicy::kSpinThenPark: return "park";
  }
  return "?";
}

template <typename M = RealMemory>
class WaitQueue {
 public:
  struct alignas(kFalseSharingRange) WaitNode {
    typename M::template Atomic<std::uint32_t> granted{0};
    // Links below are metalock-protected plain fields.
    WaitNode* next_in_group = nullptr;
    WaitNode* next_group = nullptr;  // valid on group leaders only
    WaitNode* prev_group = nullptr;  // valid on group leaders only
    // Tree-wake children (see GroupRef::signal_all): written by the granting
    // thread before it sets the subtree root's flag, read by each waiter
    // only after observing its own flag — the release/acquire chain through
    // the flags publishes them.
    WaitNode* child[2] = {nullptr, nullptr};
    std::uint32_t group_count = 0;   // valid on group leaders only
    std::uint32_t domain = 0;        // waiter's LLC domain (cohort handoff)
    ReqKind kind = ReqKind::kReader;
    WaitStrategy strategy = WaitStrategy::kSpin;

    // kSpinThenPark is only meaningful when the flag is a real kernel-
    // parkable word: std::atomic under a compiled-in park substrate.  The
    // simulator's instrumented atomics (and OLL_PARK=0 builds) degrade to
    // kSpin at arm() time, keeping sim schedules bit-for-bit.
    static constexpr bool kParkable =
        park_compiled_in() &&
        std::is_same_v<typename M::template Atomic<std::uint32_t>,
                       std::atomic<std::uint32_t>>;

    // `granted` values under kSpinThenPark: 0 = waiting (spinning),
    // kParkedFlag = waiting with the owner (possibly) parked on the word,
    // 1 = granted.  Only the owner CASes 0 -> kParkedFlag; the granter's
    // exchange(1) observes kParkedFlag iff the owner advertised a park and
    // then — and only then — issues the unpark: the single-word
    // consume-or-wake pairing of DESIGN.md §16.2.
    static constexpr std::uint32_t kParkedFlag = 2;

    // Park outcome of the last wait (kSpinThenPark only): plain fields,
    // written by the owning thread during wait, read by the lock code
    // after wait() returns for LockStats attribution.
    ParkWaitOutcome park_outcome{};

    // kBlocking parking state, absent under kSpin (the paper-evaluation
    // configuration's node is just the local-spin flag + links).
    struct Parking {
      std::mutex m;
      std::condition_variable cv;
    };
    std::unique_ptr<Parking> parking;

    // Configure the node before enqueueing (and before the metalock is
    // taken — the kBlocking allocation must not happen under a spinlock).
    void arm(WaitStrategy s, std::uint32_t dom = 0) {
      if (s == WaitStrategy::kSpinThenPark && !kParkable) {
        s = WaitStrategy::kSpin;
      }
      strategy = s;
      domain = dom;
      park_outcome = ParkWaitOutcome{};
      if (s == WaitStrategy::kBlocking && parking == nullptr) {
        parking = std::make_unique<Parking>();
      }
    }

    // Block until a releasing thread hands us the lock.  Ownership is
    // transferred *before* the flag is set, so the thread owns the lock on
    // wakeup (no re-check loop), mirroring the Solaris handoff discipline.
    void wait() {
      wait_granted();
      // Tree wake: forward the grant to our subtree.  The granting thread
      // wrote these (plain) pointers before setting the flag we just
      // observed, so the release/acquire chain publishes them; a linear
      // wake leaves both null.  Our own node is alive (we are standing in
      // it); each child is alive because it is still spinning in wait().
      WaitNode* c0 = child[0];
      WaitNode* c1 = child[1];
      if (c0 != nullptr) c0->grant();
      if (c1 != nullptr) c1->grant();
    }

    // Deadline-bounded wait (timed acquisition, DESIGN.md §11).  Returns
    // true once granted; false if `deadline` (steady clock) passes first.
    // A false return does NOT end the protocol: the node is still queued
    // and may be granted at any instant, so the caller must either unlink
    // it with WaitQueue::try_abandon (under the metalock) or — if the
    // abandon fails because the group was already dequeued — fall back to
    // wait() and consume the grant (the timed contract permits acquiring
    // after the deadline).  Unlike wait(), a grant observed here does NOT
    // forward tree-wake children; call wait() (which returns immediately)
    // to fan out, keeping the forwarding logic in one place.
    bool wait_until_granted(std::chrono::steady_clock::time_point deadline) {
      if (strategy == WaitStrategy::kSpin) {
        SpinWait w;
        std::uint32_t check = 0;
        for (;;) {
          if (granted.load(std::memory_order_acquire) != 0) return true;
          // Poll the clock every few pauses; a syscall-free spin loop must
          // not pay a clock read per iteration.
          if ((++check & 15u) == 0 &&
              std::chrono::steady_clock::now() >= deadline) {
            return granted.load(std::memory_order_acquire) != 0;
          }
          w.pause();
        }
      }
      if constexpr (kParkable) {
        if (strategy == WaitStrategy::kSpinThenPark) {
          // Deadline park.  On timeout the parked flag stays advertised
          // (sticky marker, see park.hpp): the caller runs the
          // abandon-or-consume protocol, and a grant racing the timeout
          // still sees kParkedFlag and issues its (now superfluous but
          // harmless) unpark — cancel never swallows anyone else's wake.
          const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             deadline.time_since_epoch())
                             .count();
          return park_wait_until_u32(
              granted, /*wait_val=*/0, kParkedFlag,
              d > 0 ? static_cast<std::uint64_t>(d) : 1, nullptr,
              &park_outcome);
        }
      }
      SpinWait w;
      for (unsigned i = 0; i < 2 * SpinWait::kDefaultSpinLimit; ++i) {
        if (granted.load(std::memory_order_acquire) != 0) return true;
        w.pause();
      }
      OLL_DCHECK(parking != nullptr);
      std::unique_lock<std::mutex> g(parking->m);
      return parking->cv.wait_until(g, deadline, [&] {
        return granted.load(std::memory_order_acquire) != 0;
      });
    }

    // Called by GroupRef::signal_all.  For blocking waiters the flag store
    // happens under the node mutex: the waiter either sees it before
    // sleeping or is woken by notify.  The waiter may destroy the node the
    // moment it observes granted != 0, so (as with the spin path) nothing
    // may touch the node after this returns — cv.notify_one is called
    // under the mutex for exactly that reason (the waiter cannot finish
    // cv.wait until we release the mutex inside this function).  For
    // kSpinThenPark the exchange displaces whatever marker the waiter
    // advertised; unpark_one never dereferences the (possibly already
    // destroyed) node, so the same lifetime contract holds.  Returns true
    // iff the grant had to issue an unpark (per-lock unparks attribution).
    bool grant() {
      if (strategy == WaitStrategy::kSpin) {
        granted.store(1, std::memory_order_release);
        return false;
      }
      if constexpr (kParkable) {
        if (strategy == WaitStrategy::kSpinThenPark) {
          return park_grant_u32(granted, /*grant_val=*/1, kParkedFlag,
                                /*all=*/false) == kParkedFlag;
        }
      }
      OLL_DCHECK(parking != nullptr);
      {
        std::lock_guard<std::mutex> g(parking->m);
        granted.store(1, std::memory_order_release);
        parking->cv.notify_one();
      }
      return false;
    }

   private:
    // Block until granted (the strategy-specific half of wait()).
    void wait_granted() {
      if (strategy == WaitStrategy::kSpin) {
        spin_until(
            [&] { return granted.load(std::memory_order_acquire) != 0; });
        return;
      }
      if constexpr (kParkable) {
        if (strategy == WaitStrategy::kSpinThenPark) {
          (void)park_wait_u32(granted, /*wait_val=*/0, kParkedFlag,
                              &park_outcome);
          return;
        }
      }
      // Blocking: a short optimistic spin, then park.  `granted` is set
      // under `parking->m` by grant() so the sleep/wake handshake cannot be
      // lost.
      SpinWait w;
      for (unsigned i = 0; i < 2 * SpinWait::kDefaultSpinLimit; ++i) {
        if (granted.load(std::memory_order_acquire) != 0) return;
        w.pause();
      }
      OLL_DCHECK(parking != nullptr);
      std::unique_lock<std::mutex> g(parking->m);
      parking->cv.wait(g, [&] {
        return granted.load(std::memory_order_acquire) != 0;
      });
    }
  };

  // Value-type snapshot of a dequeued group, safe to use after the metalock
  // is released (the queue no longer references these nodes).
  class GroupRef {
   public:
    GroupRef() = default;
    GroupRef(WaitNode* leader, ReqKind kind, std::uint32_t count,
             bool tree_wake = false)
        : leader_(leader), kind_(kind), count_(count), tree_wake_(tree_wake) {}

    bool empty() const noexcept { return leader_ == nullptr; }
    ReqKind kind() const noexcept { return kind_; }
    std::uint32_t count() const noexcept { return count_; }
    // Leader's LLC domain; meaningful for writer groups (single node).
    std::uint32_t domain() const noexcept {
      return leader_ != nullptr ? leader_->domain : 0;
    }

    // Wake every thread in the group.  See the concurrency contract above.
    // Returns the number of grants that issued an unpark (kSpinThenPark
    // waiters that had advertised a park) so the releasing lock can feed
    // its per-lock unparks counter.  Tree-wake fan-out grants issued by
    // the woken waiters themselves are counted only in the global
    // substrate stats, not here (the releaser never sees them).
    std::uint32_t signal_all() const {
      std::uint32_t unparked = 0;
      if (!tree_wake_ || count_ <= 1) {
        WaitNode* n = leader_;
        while (n != nullptr) {
          WaitNode* next = n->next_in_group;  // read before granting!
          if (n->grant()) ++unparked;
          n = next;
        }
        return unparked;
      }
      // Tree wake: thread the member list into an implicit BFS binary tree
      // — the parent of member i is member (i-1)/2, reachable by walking
      // the same list at half speed — then set only the leader's flag.
      // Every node is still spinning (plain writes are unobserved until the
      // flag chain publishes them), and wait() fans the grant out.
      WaitNode* parent = leader_;
      int slot = 0;
      for (WaitNode* n = leader_->next_in_group; n != nullptr;
           n = n->next_in_group) {
        parent->child[slot] = n;
        if (++slot == 2) {
          slot = 0;
          parent = parent->next_in_group;
        }
      }
      if (leader_->grant()) ++unparked;
      return unparked;
    }

   private:
    WaitNode* leader_ = nullptr;
    ReqKind kind_ = ReqKind::kReader;
    std::uint32_t count_ = 0;
    bool tree_wake_ = false;
  };

  // If `readers_coalesce_over_writers` (the paper's evaluation policy, §5.1
  // footnote 1), a new reader joins the most recent waiting reader group
  // even when writers queued after that group.  If false, strict FIFO
  // groups.  `cohort_budget` > 0 enables the domain-preferring writer
  // dequeue (see file comment); 0 keeps pure FIFO grants.  `tree_wake`
  // selects the log-depth group wakeup (see file comment).
  explicit WaitQueue(bool readers_coalesce_over_writers = true,
                     std::uint32_t cohort_budget = 0, bool tree_wake = false)
      : coalesce_(readers_coalesce_over_writers),
        cohort_budget_(cohort_budget),
        tree_wake_(tree_wake) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Metalock held.  `node` is the caller's (typically stack) wait node,
  // already arm()ed with its strategy and domain.
  void enqueue(WaitNode* node, ReqKind kind) {
    node->granted.store(0, std::memory_order_relaxed);
    node->next_in_group = nullptr;
    node->next_group = nullptr;
    node->prev_group = nullptr;
    node->child[0] = nullptr;
    node->child[1] = nullptr;
    node->kind = kind;
    node->group_count = 1;
    if (kind == ReqKind::kReader) {
      WaitNode* target = coalesce_ ? last_reader_group_
                                   : (tail_ && tail_->kind == ReqKind::kReader
                                          ? tail_
                                          : nullptr);
      if (target != nullptr) {
        // Push onto the existing group's member list (leader stays leader).
        node->next_in_group = target->next_in_group;
        target->next_in_group = node;
        ++target->group_count;
        return;
      }
      // Track the coalescing target only under the policy that reads it.
      // Strict FIFO can hold several reader groups at once; recording each
      // new leader here used to leave the field pointing at whichever group
      // was created last — a stale pointer to a popped (stack-allocated,
      // destroyed) node the moment any dequeue path other than a head pop
      // exists.  Under coalescing there is at most one queued reader group
      // (readers always join it), so the field is exactly "the queued reader
      // group, if any" and dequeue() can clear it locally.
      if (coalesce_) last_reader_group_ = node;
    } else {
      ++num_writers_;
    }
    // New group at the tail.
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next_group = node;
      node->prev_group = tail_;
      tail_ = node;
    }
  }

  // Metalock held.  Pops the head group; empty GroupRef if queue is empty.
  GroupRef dequeue() {
    cohort_streak_ = 0;  // a FIFO grant resets the preference budget
    return pop_group(head_);
  }

  // Metalock held.  Domain-preferring dequeue: when the head is a writer
  // and a writer in `releaser_domain` exists within the leading run of
  // consecutive writer groups (bounded scan), grant that one instead —
  // for at most cohort_budget consecutive preferred grants.  Reader groups
  // are never skipped and never reordered.  Falls back to plain FIFO when
  // cohorting is disabled or no candidate qualifies.
  GroupRef dequeue(std::uint32_t releaser_domain) {
    if (cohort_budget_ == 0 || head_ == nullptr ||
        head_->kind != ReqKind::kWriter) {
      return dequeue();
    }
    if (head_->domain == releaser_domain) {
      // FIFO and intra-domain at once: the best case, free of charge.
      bump(wake_cohort_hits_);
      cohort_streak_ = 0;
      return pop_group(head_);
    }
    if (cohort_streak_ >= cohort_budget_) {
      // Budget exhausted: strict FIFO until the next natural head grant.
      bump(wake_cross_domain_);
      return dequeue();
    }
    // Scan the leading writer run for a same-domain writer.  Bounded: the
    // metalock is held, so the walk must stay short.
    WaitNode* n = head_->next_group;
    for (std::uint32_t hops = 0;
         n != nullptr && n->kind == ReqKind::kWriter && hops < kMaxCohortScan;
         ++hops, n = n->next_group) {
      if (n->domain == releaser_domain) {
        ++cohort_streak_;
        bump(wake_cohort_hits_);
        return pop_group(n);
      }
    }
    bump(wake_cross_domain_);
    return dequeue();
  }

  // Metalock held.  Unlink a just-enqueued group leader again — the
  // enqueue-undo path of the metalock-eliding release protocol (see
  // goll_lock.hpp).  `node` must still be a group leader, which is
  // guaranteed when it was enqueued into an empty queue and the metalock
  // has been held continuously since (nothing can have joined or popped
  // it).  No wakeup happens: the caller owns the node and simply reuses
  // or destroys it.
  void remove(WaitNode* node) { (void)pop_group(node); }

  // Metalock held.  Abandon a timed wait: if `node` is still queued, unlink
  // it and return true — the caller then owns the node again and no grant
  // will ever touch it (grants are issued only to nodes reachable from the
  // group list at dequeue time, and dequeue/abandon are serialized by the
  // metalock).  Returns false if the node is NOT queued: its group was
  // already dequeued, a grant is in flight (or delivered), and the caller
  // MUST consume it with wait() — ownership was transferred before the
  // flag store, so discarding it would strand the lock.
  //
  // Handles every queue position: a group leader with members (the next
  // member is promoted to leader, inheriting the group links and remaining
  // count), a solo leader (reader or writer — pop_group, which also
  // maintains num_writers_ and last_reader_group_), and a mid-chain group
  // member.  The scan is O(queued groups + members of this group); fine
  // for an abandonment path that runs at most once per timed-out wait.
  bool try_abandon(WaitNode* node) {
    for (WaitNode* leader = head_; leader != nullptr;
         leader = leader->next_group) {
      if (leader == node) {
        WaitNode* heir = node->next_in_group;
        if (heir == nullptr) {
          (void)pop_group(node);
          return true;
        }
        // Promote the next member: same group, one fewer waiter.
        heir->next_group = node->next_group;
        heir->prev_group = node->prev_group;
        heir->group_count = node->group_count - 1;
        heir->kind = node->kind;
        if (heir->prev_group != nullptr) {
          heir->prev_group->next_group = heir;
        } else {
          head_ = heir;
        }
        if (heir->next_group != nullptr) {
          heir->next_group->prev_group = heir;
        } else {
          tail_ = heir;
        }
        if (last_reader_group_ == node) last_reader_group_ = heir;
        return true;
      }
      if (leader->kind == ReqKind::kReader) {
        for (WaitNode* m = leader; m->next_in_group != nullptr;
             m = m->next_in_group) {
          if (m->next_in_group == node) {
            m->next_in_group = node->next_in_group;
            OLL_DCHECK(leader->group_count > 1);
            --leader->group_count;
            return true;
          }
        }
      }
    }
    return false;
  }

  // Metalock held.
  bool empty() const noexcept { return head_ == nullptr; }
  std::uint32_t num_writers() const noexcept { return num_writers_; }
  ReqKind head_kind() const noexcept {
    OLL_DCHECK(head_ != nullptr);
    return head_->kind;
  }

  // Cohort wake counters: writer grants that stayed in the releaser's
  // domain vs. grants (or budget fallbacks) that crossed domains.  Single
  // writer at a time (the metalock holder), relaxed concurrent readers.
  std::uint64_t wake_cohort_hits() const {
    return wake_cohort_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t wake_cross_domain() const {
    return wake_cross_domain_.load(std::memory_order_relaxed);
  }

 private:
  // Upper bound on the preferred-writer scan; keeps the metalock critical
  // section O(1) however long the writer run grows.
  static constexpr std::uint32_t kMaxCohortScan = 8;

  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // Unlink `leader`'s group from the group list (head, middle or tail) and
  // return its GroupRef.  Null-safe: returns an empty ref.
  GroupRef pop_group(WaitNode* leader) {
    if (leader == nullptr) return GroupRef{};
    WaitNode* prev = leader->prev_group;
    WaitNode* next = leader->next_group;
    if (prev != nullptr) {
      prev->next_group = next;
    } else {
      head_ = next;
    }
    if (next != nullptr) {
      next->prev_group = prev;
    } else {
      tail_ = prev;
    }
    if (leader->kind == ReqKind::kWriter) {
      OLL_DCHECK(num_writers_ > 0);
      --num_writers_;
    } else if (leader == last_reader_group_) {
      // Popping the (unique) coalescing target: clear it so later readers
      // start a fresh group instead of chaining onto freed stack nodes.
      last_reader_group_ = nullptr;
    }
    return GroupRef{leader, leader->kind, leader->group_count, tree_wake_};
  }

  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
  // Coalescing policy only: leader of the single queued reader group, or
  // null.  Strict FIFO leaves it null (enqueue joins via tail_ instead).
  WaitNode* last_reader_group_ = nullptr;
  std::uint32_t num_writers_ = 0;
  bool coalesce_;
  std::uint32_t cohort_budget_;
  bool tree_wake_;
  // Consecutive preferred (non-FIFO) writer grants since the last head pop.
  std::uint32_t cohort_streak_ = 0;
  std::atomic<std::uint64_t> wake_cohort_hits_{0};
  std::atomic<std::uint64_t> wake_cross_domain_{0};
};

}  // namespace oll
