// Wait queue with reader-group coalescing — the user-space stand-in for the
// Solaris turnstile (§3.1), shared by the GOLL and Solaris-like locks.
//
// Threads that must sleep enqueue a WaitNode (stack-allocated) and spin on
// its `granted` flag through a spin-based "condition variable", exactly as
// the paper's own evaluation does ("we used our own spin-based condition
// variables to eliminate the cost of context switching", §5.1).  Consecutive
// readers — and, under the default Solaris-style policy, readers arriving
// while writers already wait — coalesce into a single *group* so a releasing
// thread can hand the lock to the whole group at once (the Solaris lock
// "sets the reader counter to the number of readers in that group and wakes
// them up").
//
// Concurrency contract:
//   * enqueue/dequeue/num_writers/empty are called ONLY while holding the
//     lock's metalock.
//   * GroupRef::signal_all is called after releasing the metalock; it reads
//     each node's intrusive `next_in_group` pointer BEFORE setting that
//     node's granted flag, because the owning thread may destroy its stack
//     node the instant the flag is set.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"

namespace oll {

enum class ReqKind : std::uint8_t { kReader, kWriter };

// How queued threads block (paper §1/§5.1): production locks deschedule
// waiting threads (Solaris turnstiles put them to sleep); the paper's own
// user-space evaluation substitutes spin-based condition variables "to
// eliminate the cost of context switching".  Both are available here:
//   kSpin      — busy-wait with progressive yield (the evaluation setup).
//   kBlocking  — spin briefly, then sleep on a real condition variable
//                (the production setup; a waiter costs no CPU while parked).
enum class WaitStrategy : std::uint8_t { kSpin, kBlocking };

template <typename M = RealMemory>
class WaitQueue {
 public:
  struct alignas(kFalseSharingRange) WaitNode {
    typename M::template Atomic<std::uint32_t> granted{0};
    // Links below are metalock-protected plain fields.
    WaitNode* next_in_group = nullptr;
    WaitNode* next_group = nullptr;  // valid on group leaders only
    std::uint32_t group_count = 0;   // valid on group leaders only
    ReqKind kind = ReqKind::kReader;
    WaitStrategy strategy = WaitStrategy::kSpin;

    // Block until a releasing thread hands us the lock.  Ownership is
    // transferred *before* the flag is set, so the thread owns the lock on
    // wakeup (no re-check loop), mirroring the Solaris handoff discipline.
    void wait() {
      if (strategy == WaitStrategy::kSpin) {
        spin_until(
            [&] { return granted.load(std::memory_order_acquire) != 0; });
        return;
      }
      // Blocking: a short optimistic spin, then park.  `granted` is set
      // under `m` by grant() so the sleep/wake handshake cannot be lost.
      SpinWait w;
      for (unsigned i = 0; i < 2 * SpinWait::kDefaultSpinLimit; ++i) {
        if (granted.load(std::memory_order_acquire) != 0) return;
        w.pause();
      }
      std::unique_lock<std::mutex> g(m);
      cv.wait(g, [&] {
        return granted.load(std::memory_order_acquire) != 0;
      });
    }

    // Called by GroupRef::signal_all.  For blocking waiters the flag store
    // happens under the node mutex: the waiter either sees it before
    // sleeping or is woken by notify.  The waiter may destroy the node the
    // moment it observes granted != 0, so (as with the spin path) nothing
    // may touch the node after this returns — cv.notify_one is called
    // under the mutex for exactly that reason (the waiter cannot finish
    // cv.wait until we release `m` inside this function).
    void grant() {
      if (strategy == WaitStrategy::kSpin) {
        granted.store(1, std::memory_order_release);
        return;
      }
      {
        std::lock_guard<std::mutex> g(m);
        granted.store(1, std::memory_order_release);
        cv.notify_one();
      }
    }

    // Blocking-strategy parking state (unused under kSpin).
    std::mutex m;
    std::condition_variable cv;
  };

  // Value-type snapshot of a dequeued group, safe to use after the metalock
  // is released (the queue no longer references these nodes).
  class GroupRef {
   public:
    GroupRef() = default;
    GroupRef(WaitNode* leader, ReqKind kind, std::uint32_t count)
        : leader_(leader), kind_(kind), count_(count) {}

    bool empty() const noexcept { return leader_ == nullptr; }
    ReqKind kind() const noexcept { return kind_; }
    std::uint32_t count() const noexcept { return count_; }

    // Wake every thread in the group.  See the concurrency contract above.
    void signal_all() const {
      WaitNode* n = leader_;
      while (n != nullptr) {
        WaitNode* next = n->next_in_group;  // read before granting!
        n->grant();
        n = next;
      }
    }

   private:
    WaitNode* leader_ = nullptr;
    ReqKind kind_ = ReqKind::kReader;
    std::uint32_t count_ = 0;
  };

  // If true (the paper's evaluation policy, §5.1 footnote 1), a new reader
  // joins the most recent waiting reader group even when writers queued
  // after that group — readers overtake waiting writers to form one group.
  // If false, strict FIFO groups: a reader after a writer starts a new group.
  explicit WaitQueue(bool readers_coalesce_over_writers = true)
      : coalesce_(readers_coalesce_over_writers) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Metalock held.  `node` is the caller's (typically stack) wait node.
  void enqueue(WaitNode* node, ReqKind kind) {
    node->granted.store(0, std::memory_order_relaxed);
    node->next_in_group = nullptr;
    node->next_group = nullptr;
    node->kind = kind;
    node->group_count = 1;
    if (kind == ReqKind::kReader) {
      WaitNode* target = coalesce_ ? last_reader_group_
                                   : (tail_ && tail_->kind == ReqKind::kReader
                                          ? tail_
                                          : nullptr);
      if (target != nullptr) {
        // Push onto the existing group's member list (leader stays leader).
        node->next_in_group = target->next_in_group;
        target->next_in_group = node;
        ++target->group_count;
        return;
      }
      // Track the coalescing target only under the policy that reads it.
      // Strict FIFO can hold several reader groups at once; recording each
      // new leader here used to leave the field pointing at whichever group
      // was created last — a stale pointer to a popped (stack-allocated,
      // destroyed) node the moment any dequeue path other than a head pop
      // exists.  Under coalescing there is at most one queued reader group
      // (readers always join it), so the field is exactly "the queued reader
      // group, if any" and dequeue() can clear it locally.
      if (coalesce_) last_reader_group_ = node;
    } else {
      ++num_writers_;
    }
    // New group at the tail.
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next_group = node;
      tail_ = node;
    }
  }

  // Metalock held.  Pops the head group; empty GroupRef if queue is empty.
  GroupRef dequeue() {
    WaitNode* leader = head_;
    if (leader == nullptr) return GroupRef{};
    head_ = leader->next_group;
    if (head_ == nullptr) tail_ = nullptr;
    if (leader->kind == ReqKind::kWriter) {
      OLL_DCHECK(num_writers_ > 0);
      --num_writers_;
    } else if (leader == last_reader_group_) {
      // Popping the (unique) coalescing target: clear it so later readers
      // start a fresh group instead of chaining onto freed stack nodes.
      last_reader_group_ = nullptr;
    }
    return GroupRef{leader, leader->kind, leader->group_count};
  }

  // Metalock held.
  bool empty() const noexcept { return head_ == nullptr; }
  std::uint32_t num_writers() const noexcept { return num_writers_; }
  ReqKind head_kind() const noexcept {
    OLL_DCHECK(head_ != nullptr);
    return head_->kind;
  }

 private:
  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
  // Coalescing policy only: leader of the single queued reader group, or
  // null.  Strict FIFO leaves it null (enqueue joins via tail_ instead).
  WaitNode* last_reader_group_ = nullptr;
  std::uint32_t num_writers_ = 0;
  bool coalesce_;
};

}  // namespace oll
