// Bravo<Lock> — BRAVO-style reader bias as a composable lock transformer
// (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer Locks"; see
// PAPERS.md and DESIGN.md §7).
//
// The paper's OLL locks scale readers through C-SNZI trees, but every read
// acquisition still performs at least one RMW on a shared tree node.  BRAVO
// removes even that: while a lock is in reader-bias mode, a reader makes
// itself visible by publishing the lock's address in a private slot of the
// global visible-readers table (platform/visible_readers.hpp) — one CAS on
// a cache line nobody else is actively writing — and never touches the
// underlying lock at all.  A writer first acquires the underlying lock
// (excluding slow-path readers and other writers), then *revokes* the bias:
// it clears the bias flag and scans the table, waiting for every slot that
// holds this lock to drain.  Because revocation costs an O(table) scan, the
// bias is re-enabled only after a timed inhibit window proportional to the
// measured scan cost, so write-heavy phases settle into plain underlying
// behavior and pay the scan at most ~1/(multiplier+1) of the time.
//
// The layer composes with ANY SharedLockable lock: Bravo<GollLock<>>,
// Bravo<CentralRwLock<>>, Bravo<std::shared_mutex>, ...  Correctness
// argument for the publish/revoke race (the only subtle part): the reader
// publishes its slot and THEN re-checks the bias flag; the writer clears
// the flag and THEN scans.  Exactly four accesses are seq_cst (the publish
// CAS, the re-check load, the flag-clearing store, and the first scan load
// of each slot), so in the total order either the reader's re-check
// precedes the writer's clear — then the reader's earlier publication
// precedes the writer's scan load of that slot, and the writer waits for
// it — or the re-check follows the clear, the reader observes bias off,
// reverts its slot and takes the slow path.  Either way no reader is
// invisible to the writer.  Every other rbias_ access is relaxed: writers
// cannot miss a re-arm because re-arming requires holding the underlying
// read lock, which the writer's own acquisition excludes (the underlying
// lock's release/acquire edge publishes the flag), and the fast path's
// first flag read is advisory — the binding decision is the re-check.
//
// Non-recursive (like every lock here): a thread must not read-acquire the
// same Bravo lock twice.  try_upgrade()/downgrade() are deliberately not
// forwarded — a bias-path reader holds no underlying lock to upgrade.
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <thread>
#include <utility>

#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"
#include "locks/wait_queue.hpp"
#include "platform/assert.hpp"
#include "platform/backoff.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"
#include "platform/trace.hpp"
#include "platform/visible_readers.hpp"

namespace oll {

struct BravoOptions {
  std::uint32_t max_threads = 512;
  // Bias re-enable policy: after a revocation that took S ns of table
  // scanning, keep the bias off until now + multiplier * S (BRAVO's N,
  // default 9 as in the paper) — reads must be able to amortize the next
  // writer's scan before the lock re-biases.
  std::uint32_t inhibit_multiplier = 9;
  bool start_biased = true;
  // Revocation-scan wait bound: once a scan has waited this long for bias
  // readers to drain, the revoke_timeouts stat is bumped (once per scan)
  // and the per-slot wait escalates from exponential backoff to plain
  // yields.  The scan always completes — exclusion cannot be abandoned —
  // this only caps the CPU burned and makes pathological drains visible.
  std::uint64_t revoke_timeout_ns = 5'000'000;
  // Bias readers leave no per-waiter word to park on, so kSpinThenPark
  // affects only the revocation scan: once the drain passes
  // revoke_timeout_ns, the per-slot wait escalates from plain yields to
  // bounded park_briefly naps (censused; predicate-style escalation,
  // DESIGN.md §16.5).  The wrapped lock's own wait_policy is configured on
  // the wrapped lock.  kBlocking degrades to kSpin.
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

template <typename LockT, typename M = RealMemory>
class Bravo {
 public:
  using Underlying = LockT;

  template <typename... Args>
  explicit Bravo(const BravoOptions& opts, Args&&... args)
      : opts_(opts),
        lock_(std::forward<Args>(args)...),
        locals_(opts.max_threads),
        stats_(opts.max_threads),
        rbias_(opts.start_biased ? 1u : 0u) {}

  Bravo() : Bravo(BravoOptions{}) {}

  Bravo(const Bravo&) = delete;
  Bravo& operator=(const Bravo&) = delete;

  // --- reader side --------------------------------------------------------

  // The wrapper runs its own observability timers (distinct `obj` from the
  // underlying lock's), so a trace shows both the BRAVO-level acquisition
  // and — on the slow path — the nested underlying one.
  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    if (!bias_fast_path()) {
      lock_.lock_shared();
      stats_.count_read_fast();
      maybe_rearm_bias();
    }
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Local& local = locals_.local();
    if (local.slot != nullptr) {
      // Bias path: un-publish.  Release order pairs with the revoking
      // writer's scan load, making the critical section visible to it.
      local.slot->store(nullptr, std::memory_order_release);
      local.slot = nullptr;
      return;
    }
    lock_.unlock_shared();
  }

  bool try_lock_shared()
    requires requires(LockT& l) {
      { l.try_lock_shared() } -> std::convertible_to<bool>;
    }
  {
    if (bias_fast_path()) return true;
    if (!lock_.try_lock_shared()) return false;
    stats_.count_read_fast();
    maybe_rearm_bias();
    return true;
  }

  // --- writer side --------------------------------------------------------

  void lock() {
    // The acquire interval includes the revocation scan: the writer is not
    // exclusive against bias-path readers until the scan drains them.
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_.lock();
    stats_.count_write_fast();
    // relaxed: any re-arm happened under a read lock our acquisition above
    // excludes, so the underlying lock's ordering already published it.
    if (rbias_.load(std::memory_order_relaxed) != 0) revoke_bias();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    lock_.unlock();
  }

  bool try_lock()
    requires requires(LockT& l) {
      { l.try_lock() } -> std::convertible_to<bool>;
    }
  {
    if (!lock_.try_lock()) return false;
    stats_.count_write_fast();
    // Revocation after a successful try is not optional and terminates:
    // once the flag is cleared no new bias readers can pass the re-check.
    // relaxed: as in lock() — re-arms are ordered by the underlying lock.
    if (rbias_.load(std::memory_order_relaxed) != 0) revoke_bias();
    return true;
  }

  // --- timed acquisition (deadline-bounded retry over the try paths) ------
  // The writer retry is conservative in the same sense as FOLL's (losing
  // its place each attempt); the reader retry is cheap because the bias
  // fast path makes most attempts a single CAS.

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d)
    requires requires(Bravo& b) { b.try_lock(); }
  {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp)
    requires requires(Bravo& b) { b.try_lock(); }
  {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    bool ok;
    if constexpr (requires { lock_.try_lock_until(deadline); }) {
      // Delegate the whole deadline: the underlying timed writer can wait
      // in place (and FOLL/ROLL reclaim a drained reader tail, which a
      // bare try_lock retry would starve against forever).
      ok = lock_.try_lock_until(deadline);
      if (ok) {
        stats_.count_write_fast();
        // relaxed: as in lock() — re-arms are ordered by the underlying lock.
        if (rbias_.load(std::memory_order_relaxed) != 0) revoke_bias();
      }
    } else {
      ok = deadline_retry(deadline, [&] { return try_lock(); });
    }
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_write_acquire(d);
    }
    if (!ok) stats_.count_write_timeout();
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d)
    requires requires(Bravo& b) { b.try_lock_shared(); }
  {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp)
    requires requires(Bravo& b) { b.try_lock_shared(); }
  {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    const bool ok = deadline_retry(deadline, [&] { return try_lock_shared(); });
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_read_acquire(d);
    }
    if (!ok) stats_.count_read_timeout();
    return ok;
  }

  // --- introspection ------------------------------------------------------

  // read_bias counts bias-path reads (no underlying-lock RMW at all);
  // read_fast counts reads that fell through to the underlying lock;
  // bias_revoke counts writer-side revocation scans.  write_fast counts all
  // writer acquisitions (the wrapper cannot see whether the underlying lock
  // queued).  Exact at quiescence.
  LockStatsSnapshot stats() const { return stats_.snapshot(); }

  bool read_biased() const {
    return rbias_.load(std::memory_order_acquire) != 0;
  }

  Underlying& underlying() { return lock_; }
  const Underlying& underlying() const { return lock_; }

 private:
  using Table = VisibleReadersTable<M>;

  // Publish-then-recheck bias fast path shared by lock_shared and
  // try_lock_shared.  On success the thread's Local remembers the slot so
  // unlock_shared knows no underlying lock is held.
  bool bias_fast_path() {
    Local& local = locals_.local();
    OLL_DCHECK(local.slot == nullptr);  // non-recursive
    // relaxed: advisory early-out only — the binding bias decision is the
    // seq_cst re-check after the publish (the Dekker in the header comment).
    if (rbias_.load(std::memory_order_relaxed) == 0) return false;
    typename Table::Slot& slot =
        global_visible_readers<M>().slot_for(this_thread_index(), this);
    const void* expected = nullptr;
    // A failed CAS means a hash collision (another thread/lock owns the
    // slot): fall back to the underlying lock rather than wait.
    // seq_cst success: the Dekker publish (header comment) — must precede
    // the re-check below in the SC order.  relaxed failure: the observed
    // value is discarded.
    if (!slot.compare_exchange_strong(expected, this,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    // The publish/re-check window is the one subtle race in BRAVO; widen it
    // under fault injection so the fuzzer actually exercises both outcomes.
    fault_perturb(FaultSite::kSpinWait);
    // seq_cst: the Dekker re-check — pairs with revoke_bias()'s clear.
    if (rbias_.load(std::memory_order_seq_cst) != 0) {
      local.slot = &slot;
      stats_.count_read_bias();
      return true;
    }
    // A writer revoked between our publish and re-check: revert and let the
    // underlying lock arbitrate.
    slot.store(nullptr, std::memory_order_release);
    return false;
  }

  // Slow-path readers re-arm the bias once the inhibit window has passed.
  // Called while holding the underlying read lock, so no writer holds the
  // lock; the underlying release/acquire ordering guarantees the next
  // writer observes the flag and revokes.
  void maybe_rearm_bias() {
    if (rbias_.load(std::memory_order_relaxed) == 0 &&
        now_ns() >= inhibit_until_.load(std::memory_order_relaxed)) {
      // relaxed: the flag carries no payload, and the next writer cannot
      // miss it — we hold the underlying read lock, so its release/acquire
      // edge orders this store before that writer's flag check.
      rbias_.store(1, std::memory_order_relaxed);
    }
  }

  // Called with the underlying write lock held.  Clears the flag, then
  // waits for every published bias reader of THIS lock to drain.  New
  // readers cannot re-publish (flag is down, and re-arming requires holding
  // the underlying read lock, which we exclude), so the scan terminates.
  void revoke_bias() {
    stats_.count_bias_revoke();
    trace_event(TraceEventType::kBiasRevoke, this);
    // seq_cst: the Dekker clear — must precede the scan loads below in the
    // SC order so no reader's publish/re-check pair can miss both.
    rbias_.store(0, std::memory_order_seq_cst);
    Table& table = global_visible_readers<M>();
    // For BRAVO the revocation scan is the writer's wait-for-readers-to-
    // drain interval; record it in the writer_wait histogram.
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    const std::uint64_t scan_start = now_ns();
    // Bounded-wait drain (DESIGN.md §11): past revoke_timeout_ns the scan
    // keeps going — it must, exclusion is not abandonable — but stops
    // burning exponential-backoff CPU, yields instead, and records the
    // incident (once per scan) so a reader stuck in its critical section
    // shows up in the revoke_timeouts stat rather than as silent spin.
    const std::uint64_t drain_deadline = scan_start + opts_.revoke_timeout_ns;
    const bool use_park = park_compiled_in() &&
                          opts_.wait_policy == WaitPolicy::kSpinThenPark;
    bool timed_out = false;
    std::uint32_t park_round = 0;
    for (std::uint32_t i = 0; i < Table::size(); ++i) {
      typename Table::Slot& slot = table.slot(i);
      // seq_cst: the Dekker scan load — a publish that SC-precedes our
      // clear must be visible here.  Doubles as the acquire that orders a
      // drained reader's critical section before ours.
      if (slot.load(std::memory_order_seq_cst) != this) continue;
      ExponentialBackoff backoff;
      // acquire: only the drain wait — pairs with the reader's release
      // null-store in unlock_shared; seq_cst is not needed once the slot
      // has been observed once.
      while (slot.load(std::memory_order_acquire) == this) {
        fault_perturb(FaultSite::kSpinWait);
        if (!timed_out && now_ns() >= drain_deadline) {
          timed_out = true;
          stats_.count_revoke_timeout();
        }
        if (timed_out) {
          // No reader will wake us (they don't know we wait), so the nap is
          // bounded: grows 50us -> 10ms, re-checking the slot each slice.
          if (use_park) {
            park_briefly(park_round++);
          } else {
            std::this_thread::yield();
          }
        } else {
          backoff.backoff();
        }
      }
    }
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
    const std::uint64_t scan_ns = now_ns() - scan_start;
    inhibit_until_.store(
        now_ns() + scan_ns * opts_.inhibit_multiplier,
        std::memory_order_relaxed);
  }

  struct Local {
    typename Table::Slot* slot = nullptr;  // non-null iff bias path held
  };

  BravoOptions opts_;
  LockT lock_;
  PerThreadSlots<Local> locals_;
  LockStats stats_;
  // rbias_ and inhibit_until_ are wrapper-level state and deliberately kept
  // on M's atomics so fuzz/sim builds perturb and charge them too.
  typename M::template Atomic<std::uint32_t> rbias_;
  typename M::template Atomic<std::uint64_t> inhibit_until_{0};
};

}  // namespace oll
