// Per-lock, per-thread local state.
//
// GOLL/FOLL/ROLL keep a small Local record per thread per lock (the paper's
// `Local` in Figures 3 and 4: the C-SNZI ticket, the node departed from, the
// thread's writer node).  We index a cache-aligned array by the dense thread
// id from platform/thread_id.hpp; a lock is constructed for a maximum thread
// count and checks it.
#pragma once

#include <cstdint>
#include <memory>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/thread_id.hpp"

namespace oll {

template <typename T>
class PerThreadSlots {
 public:
  explicit PerThreadSlots(std::uint32_t max_threads)
      : slots_(std::make_unique<CacheAligned<T>[]>(max_threads)),
        max_threads_(max_threads) {
    OLL_CHECK(max_threads > 0);
  }

  T& local() {
    const std::uint32_t idx = this_thread_index();
    OLL_CHECK(idx < max_threads_);
    return slots_[idx].value;
  }

  T& slot(std::uint32_t idx) {
    OLL_CHECK(idx < max_threads_);
    return slots_[idx].value;
  }

  const T& slot(std::uint32_t idx) const {
    OLL_CHECK(idx < max_threads_);
    return slots_[idx].value;
  }

  std::uint32_t size() const noexcept { return max_threads_; }

 private:
  std::unique_ptr<CacheAligned<T>[]> slots_;
  std::uint32_t max_threads_;
};

}  // namespace oll
