// Test-and-test-and-set spinlock with randomized exponential backoff.
//
// Used as the "metalock" protecting the GOLL and Solaris-like wait queues
// (the paper's Solaris turnstile mutex) and as a baseline mutex in its own
// right.  BasicLockable, so std::lock_guard / std::scoped_lock apply.
#pragma once

#include <cstdint>

#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"

namespace oll {

template <typename M = RealMemory>
class TatasLock {
 public:
  TatasLock() = default;
  explicit TatasLock(const BackoffParams& p) : backoff_params_(p) {}

  TatasLock(const TatasLock&) = delete;
  TatasLock& operator=(const TatasLock&) = delete;

  void lock() noexcept {
    // Fast path: uncontended exchange.
    if (locked_.exchange(1, std::memory_order_acquire) == 0) return;
    ExponentialBackoff backoff(backoff_params_);
    while (true) {
      // Spin on the read (cheap while the line stays shared) …
      while (locked_.load(std::memory_order_relaxed) != 0) backoff.backoff();
      // … and only then retry the write.
      if (locked_.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }

  bool try_lock() noexcept {
    return locked_.load(std::memory_order_relaxed) == 0 &&
           locked_.exchange(1, std::memory_order_acquire) == 0;
  }

  void unlock() noexcept { locked_.store(0, std::memory_order_release); }

 private:
  typename M::template Atomic<std::uint32_t> locked_{0};
  BackoffParams backoff_params_{};
};

}  // namespace oll
