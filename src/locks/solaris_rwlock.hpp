// Solaris-like reader-writer lock (paper §3.1) — the production baseline the
// GOLL lock improves on.
//
// A single central lockword packs: the active-reader count, a writeLocked
// bit, a writeWanted bit, and a hasWaiters bit.  Uncontended acquisitions
// CAS the lockword directly; contended threads take the turnstile mutex,
// CAS the waiter bits in, enqueue, and sleep.  A releasing thread that sees
// hasWaiters does NOT free the lock: it hands ownership to the next group in
// line before waking it, so "threads always own the lock upon awakening".
//
// The kernel turnstile (priority-queueing, priority inheritance) is replaced
// by the user-space WaitQueue with spin-based condition variables — the same
// substitution the paper's own user-space evaluation makes (§5.1).
//
// This lock is the paper's exhibit for the central-lockword pathology: every
// acquire AND release of every thread CASes the same word, so ownership of
// that cache line migrates on essentially every operation.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "platform/assert.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/timed.hpp"
#include "locks/wait_queue.hpp"

namespace oll {

struct SolarisOptions {
  bool readers_coalesce_over_writers = true;
  // kSpin matches the paper's evaluation; kBlocking parks waiters like the
  // real kernel turnstile; kSpinThenPark uses the adaptive futex substrate
  // (platform/park.hpp, DESIGN.md §16).  See wait_queue.hpp.
  WaitStrategy wait_strategy = WaitStrategy::kSpin;
};

template <typename M = RealMemory>
class SolarisRwLock {
 public:
  // Lockword layout: [count:32][writeLocked:1][writeWanted:1][hasWaiters:1]
  static constexpr std::uint64_t kReaderOne = 1ULL;
  static constexpr std::uint64_t kCountMask = 0xffffffffULL;
  static constexpr std::uint64_t kWriteLocked = 1ULL << 32;
  static constexpr std::uint64_t kWriteWanted = 1ULL << 33;
  static constexpr std::uint64_t kHasWaiters = 1ULL << 34;

  static constexpr std::uint64_t readers(std::uint64_t w) noexcept {
    return w & kCountMask;
  }

  explicit SolarisRwLock(const SolarisOptions& opts = {})
      : wait_strategy_(opts.wait_strategy),
        queue_(opts.readers_coalesce_over_writers) {}

  SolarisRwLock(const SolarisRwLock&) = delete;
  SolarisRwLock& operator=(const SolarisRwLock&) = delete;

  // --- readers -------------------------------------------------------------

  void lock_shared() {
    while (true) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      // Readers may fast-path only when no writer holds or wants the lock
      // (writeWanted gives writers their Solaris priority over new readers).
      if ((w & (kWriteLocked | kWriteWanted)) == 0) {
        if (word_.compare_exchange_weak(w, w + kReaderOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          return;
        }
        continue;
      }
      // Conflict path: set hasWaiters atomically w.r.t. the queue (§3.1:
      // take the turnstile mutex, CAS the bits, restart if the CAS fails).
      typename WaitQueue<M>::WaitNode waiter;
      waiter.arm(wait_strategy_);
      {
        std::lock_guard<TatasLock<M>> meta(metalock_);
        w = word_.load(std::memory_order_acquire);
        if ((w & (kWriteLocked | kWriteWanted)) == 0) continue;
        if (!word_.compare_exchange_strong(w, w | kHasWaiters,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          continue;
        }
        queue_.enqueue(&waiter, ReqKind::kReader);
      }
      waiter.wait();  // we own a reader slot on wakeup (handoff)
      return;
    }
  }

  bool try_lock_shared() {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    while ((w & (kWriteLocked | kWriteWanted)) == 0) {
      if (word_.compare_exchange_strong(w, w + kReaderOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void unlock_shared() {
    fault_preempt_point(FaultSite::kHolderPreemption);
    while (true) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      OLL_DCHECK(readers(w) > 0);
      if ((w & kHasWaiters) != 0 && readers(w) == 1) {
        handoff_as_last_reader();
        return;
      }
      if (word_.compare_exchange_weak(w, w - kReaderOne,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  // --- writers ---------------------------------------------------------------

  void lock() {
    while (true) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      if (w == 0) {
        if (word_.compare_exchange_weak(w, kWriteLocked,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          return;
        }
        continue;
      }
      typename WaitQueue<M>::WaitNode waiter;
      waiter.arm(wait_strategy_);
      {
        std::lock_guard<TatasLock<M>> meta(metalock_);
        w = word_.load(std::memory_order_acquire);
        if (w == 0) continue;
        if (!word_.compare_exchange_strong(w, w | kHasWaiters | kWriteWanted,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          continue;
        }
        queue_.enqueue(&waiter, ReqKind::kWriter);
      }
      waiter.wait();
      return;
    }
  }

  bool try_lock() {
    std::uint64_t w = 0;
    return word_.compare_exchange_strong(w, kWriteLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    fault_preempt_point(FaultSite::kHolderPreemption);
    std::uint64_t w = word_.load(std::memory_order_acquire);
    OLL_DCHECK((w & kWriteLocked) != 0);
    if ((w & kHasWaiters) == 0) {
      if (word_.compare_exchange_strong(w, 0, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      // Someone set hasWaiters (under the metalock) between our load and
      // CAS; fall through to the handoff path.
    }
    handoff_as_writer();
  }

  // --- timed acquisition (DESIGN.md §11) -----------------------------------
  // Deadline-bounded retry over the try paths (locks/timed.hpp): the try
  // fast paths touch only the lockword, never the turnstile, so a timed-out
  // attempt leaves no queue state to undo.  Conservative like the other
  // retry-based locks — a timed waiter loses its turnstile position.

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp), [&] { return try_lock(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp),
                          [&] { return try_lock_shared(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  // --- upgrade / downgrade (Solaris rw_tryupgrade / rw_downgrade) ----------

  // Caller holds the lock for reading.  Succeeds iff it is the sole reader
  // and nobody is waiting — the lockword makes this a single CAS, which is
  // exactly the "trivial when using a counter" observation of §3.2.1.
  bool try_upgrade() {
    std::uint64_t expected = kReaderOne;  // count 1, no flag bits
    return word_.compare_exchange_strong(expected, kWriteLocked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  // Caller holds the lock for writing; convert to reading, granting any
  // waiting reader group alongside so it is not stranded.
  void downgrade() {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    OLL_DCHECK((w & kWriteLocked) != 0);
    if ((w & kHasWaiters) == 0) {
      if (word_.compare_exchange_strong(w, kReaderOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
    }
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      if (!queue_.empty() && queue_.head_kind() == ReqKind::kReader) {
        group = queue_.dequeue();
      }
      std::uint64_t count = kReaderOne + group.count();
      std::uint64_t bits = 0;
      if (!queue_.empty()) bits |= kHasWaiters;
      if (queue_.num_writers() != 0) bits |= kWriteWanted;
      word_.store(count | bits, std::memory_order_release);
    }
    group.signal_all();
  }

  // --- introspection ----------------------------------------------------------
  std::uint64_t lockword() const {
    return word_.load(std::memory_order_acquire);
  }

 private:
  // Compute the lockword that transfers ownership to `group`, given the
  // queue state after the dequeue.  Called with the metalock held.
  std::uint64_t handoff_word(const typename WaitQueue<M>::GroupRef& group) {
    std::uint64_t w = (group.kind() == ReqKind::kWriter)
                          ? kWriteLocked
                          : static_cast<std::uint64_t>(group.count());
    if (!queue_.empty()) w |= kHasWaiters;
    if (queue_.num_writers() != 0) w |= kWriteWanted;
    return w;
  }

  void handoff_as_last_reader() {
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      std::uint64_t w = word_.load(std::memory_order_acquire);
      // (hasWaiters && readers == 1) is stable once observed by the last
      // reader: hasWaiters only clears at handoff (which requires this
      // thread to release first); the first queued waiter behind active
      // readers is necessarily a writer, so writeWanted gates any new
      // fast-path reader and the count cannot grow; and no other thread can
      // be "the last reader".  Check rather than silently mishandle.
      OLL_CHECK((w & kHasWaiters) != 0 && readers(w) == 1);
      group = queue_.dequeue();
      OLL_CHECK(!group.empty());
      // Only this thread can mutate the word now: fast-path readers are
      // gated by writeWanted (a waiting writer) or see count>0 with
      // hasWaiters only via the metalock; the single CAS cannot race.
      word_.store(handoff_word(group), std::memory_order_release);
    }
    group.signal_all();
  }

  void handoff_as_writer() {
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      OLL_DCHECK((word_.load(std::memory_order_acquire) & kWriteLocked) != 0);
      group = queue_.dequeue();
      if (group.empty()) {
        word_.store(0, std::memory_order_release);
        return;
      }
      word_.store(handoff_word(group), std::memory_order_release);
    }
    group.signal_all();
  }

  typename M::template Atomic<std::uint64_t> word_{0};
  WaitStrategy wait_strategy_;
  TatasLock<M> metalock_;
  WaitQueue<M> queue_;
};

}  // namespace oll
