// VersionedRwLock<Lock> — a seqlock-style optimistic read mode as a
// composable lock transformer (DESIGN.md §13; the optiql-style optimistic
// lock coupling exemplars in SNIPPETS.md are the closest published shape).
//
// BRAVO (locks/bravo.hpp) got uncontended readers down to one CAS on a
// quasi-private visible-readers slot; this layer removes the last store.
// The wrapper keeps a single version word stamped by writers: odd while a
// writer is inside the critical section, even (and advanced by 2) after it
// leaves.  An optimistic reader samples the word (opt_read_begin), runs its
// read without acquiring anything — zero shared-cache-line stores, zero
// RMWs, just two loads of the version line — and then validates
// (opt_read_validate): the read is consistent iff the stamp was even and is
// unchanged.  A failed validation means a writer overlapped; the reader
// discards everything it read and retries, falling back to the pessimistic
// lock_shared() path after a bounded number of attempts.
//
// Because an optimistic reader holds nothing, it can observe *torn* state
// mid-copy; the safety contract is therefore OCC's, not a lock's:
//
//   * readers may only copy data out (no pointer chasing through freed
//     memory, no derived-value side effects) until validate() says the copy
//     is consistent — see RwProtected::read_optimistic for the packaged
//     discipline;
//   * concurrently-written payload words must be accessed with atomics
//     (relaxed is enough — the version protocol carries the ordering) so
//     the racing loads are defined behavior under the C++ memory model.
//
// Memory-ordering map (DESIGN.md §12/§13; litmus-tested MP shape in
// tests/litmus_test.cpp):
//
//   writer enter:  version.store(v+1, relaxed); fence(release)
//       The release *fence* — not a release store — is what orders the odd
//       stamp before the critical section's subsequent data stores: a
//       release store orders prior accesses, which is the wrong direction
//       here.  Paired with the reader's acquire fence in validate, it
//       guarantees a reader that observed any of this writer's data writes
//       re-reads the version as odd-or-later and fails validation.
//   writer exit:   version.store(v+2, release)
//       Orders the critical section's data stores before the even stamp, so
//       a reader whose begin (acquire) load returns this value sees all of
//       that version's data.
//   reader begin:  version.load(acquire)  — pairs with writer exit.
//   reader validate: fence(acquire); version.load(relaxed)
//       The fence (pairing with writer enter's release fence through the
//       data reads) must come *after* the data reads, which an acquire load
//       of the version could not guarantee; the reload itself then only
//       needs the value.
//
// The odd/even bit doubles as the writer-presence check: where BRAVO needs
// a seq_cst Dekker (publish/re-check vs. clear/scan) because an invisible
// reader would break *exclusion*, here a racing writer only needs to break
// *validation* — and the stamp comparison does that without any seq_cst.
//
// Writers pay two version-line stores per exclusive section on top of the
// underlying lock; pessimistic readers pay nothing new.  try_upgrade /
// downgrade are deliberately not forwarded: an upgrade would enter the
// writer role without passing through writer_enter()'s stamp.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <utility>

#include "core/rwlock_concepts.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/trace.hpp"

namespace oll {

struct VersionedOptions {
  std::uint32_t max_threads = 512;
  // Optimistic attempts before read_optimistic falls back to the
  // pessimistic shared path.  Small: under write bursts the version word
  // keeps moving and retrying only re-reads a line that keeps invalidating;
  // the underlying lock's reader path is the right tool there.
  std::uint32_t max_opt_retries = 8;
};

template <typename LockT, typename M = RealMemory>
class VersionedRwLock {
 public:
  using Underlying = LockT;

  template <typename... Args>
  explicit VersionedRwLock(const VersionedOptions& opts, Args&&... args)
      : opts_(opts),
        lock_(std::forward<Args>(args)...),
        locals_(opts.max_threads),
        stats_(opts.max_threads) {}

  VersionedRwLock() : VersionedRwLock(VersionedOptions{}) {}

  VersionedRwLock(const VersionedRwLock&) = delete;
  VersionedRwLock& operator=(const VersionedRwLock&) = delete;

  // --- optimistic read protocol -------------------------------------------

  // Sample the version stamp that opens an optimistic read section.
  // Returns kInvalidOptStamp (and counts a validation failure) when a
  // writer is inside the lock — the attempt must not start, because the
  // data is actively mutating and could not possibly validate.
  std::uint64_t opt_read_begin() {
    Local& local = locals_.local();
    local.timer = obs_begin(TraceEventType::kOptReadBegin, this);
    // acquire: pairs with writer_exit()'s release store — data reads after
    // this load observe everything the stamped version's writer published.
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    // Widen the begin/validate window under fault injection so the fuzzer
    // can land a writer inside it.
    fault_perturb(FaultSite::kSpinWait);
    if ((v & 1) != 0) {
      finish_opt(false);
      return kInvalidOptStamp;
    }
    return v;
  }

  // Close an optimistic read section.  True iff every read between begin
  // and here belongs to the single consistent version `stamp` — never
  // spuriously true.  False may be spurious (a forced fault-injection
  // failure exercises the retry path exactly like a racing writer).
  bool opt_read_validate(std::uint64_t stamp) {
    if (stamp == kInvalidOptStamp) return false;  // begin already counted it
    // acquire fence: pairs with writer_enter()'s release fence through the
    // section's data reads — if any of them observed a writer's store, the
    // fence pair orders that writer's odd stamp before the reload below,
    // so the comparison fails.  A fence rather than an acquire load: the
    // reload must be ordered after the *data reads*, and an acquire load
    // only orders what follows it.
    std::atomic_thread_fence(std::memory_order_acquire);
    // relaxed: the fence supplies the ordering; only the value matters.
    bool ok = version_.load(std::memory_order_relaxed) == stamp;
    if (ok && fault_cas_fail(FaultSite::kCasRetry)) ok = false;
    finish_opt(ok);
    return ok;
  }

  std::uint32_t opt_max_retries() const { return opts_.max_opt_retries; }

  // Called by the retry harness (RwProtected::read_optimistic, the bench's
  // traversal loop) when it gives up on optimism and takes lock_shared().
  void count_opt_fallback() {
    trace_event(TraceEventType::kOptFallback, this);
    stats_.count_opt_fallback();
  }

  // --- pessimistic surface: forwarded, writers stamp the version ----------

  void lock() {
    lock_.lock();
    writer_enter();
    // A writer preempted here holds an odd stamp: every optimistic reader
    // must fail until it resumes — the window the fuzz oracle checks.
    fault_preempt_point(FaultSite::kHolderPreemption);
  }

  void unlock() {
    writer_exit();
    lock_.unlock();
  }

  void lock_shared() { lock_.lock_shared(); }
  void unlock_shared() { lock_.unlock_shared(); }

  bool try_lock()
    requires requires(LockT& l) {
      { l.try_lock() } -> std::convertible_to<bool>;
    }
  {
    if (!lock_.try_lock()) return false;
    writer_enter();
    return true;
  }

  bool try_lock_shared()
    requires requires(LockT& l) {
      { l.try_lock_shared() } -> std::convertible_to<bool>;
    }
  {
    return lock_.try_lock_shared();
  }

  // Timed acquisition (DESIGN.md §11) delegates wholesale: the underlying
  // lock owns the waiting/abandon protocol; this layer only stamps the
  // version once the grant is real.
  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d)
    requires requires(LockT& l) {
      { l.try_lock_for(d) } -> std::convertible_to<bool>;
    }
  {
    if (!lock_.try_lock_for(d)) return false;
    writer_enter();
    return true;
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp)
    requires requires(LockT& l) {
      { l.try_lock_until(tp) } -> std::convertible_to<bool>;
    }
  {
    if (!lock_.try_lock_until(tp)) return false;
    writer_enter();
    return true;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d)
    requires requires(LockT& l) {
      { l.try_lock_shared_for(d) } -> std::convertible_to<bool>;
    }
  {
    return lock_.try_lock_shared_for(d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp)
    requires requires(LockT& l) {
      { l.try_lock_shared_until(tp) } -> std::convertible_to<bool>;
    }
  {
    return lock_.try_lock_shared_until(tp);
  }

  // --- introspection ------------------------------------------------------

  // The wrapper's opt_* counters merged with the underlying lock's full
  // snapshot (so reads()/writes() still reflect the pessimistic traffic).
  // Exact at quiescence.
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    if constexpr (requires(const LockT& l) {
                    { l.stats() } -> std::convertible_to<LockStatsSnapshot>;
                  }) {
      s += lock_.stats();
    }
    return s;
  }

  Underlying& underlying() { return lock_; }
  const Underlying& underlying() const { return lock_; }

 private:
  // Stamp odd on the way into the writer role.  Only writers store the
  // version and the underlying lock serializes them, so the load cannot
  // race another bump — relaxed, the previous writer's even store reaches
  // us through the underlying lock's release/acquire edge.  See the header
  // comment for the store/fence pair.
  void writer_enter() {
    const std::uint64_t v = version_.load(std::memory_order_relaxed);
    version_.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  // Advance to the next even stamp on the way out; release orders the
  // critical section's data stores before it (header comment).
  void writer_exit() {
    const std::uint64_t v = version_.load(std::memory_order_relaxed);
    version_.store(v + 1, std::memory_order_release);
  }

  void finish_opt(bool ok) {
    Local& local = locals_.local();
    const bool armed = local.timer.armed;
    const std::uint64_t d =
        obs_end(TraceEventType::kOptReadEnd, this, local.timer);
    local.timer = {};
    if (ok) {
      stats_.count_opt_read();
      if (armed) stats_.record_opt_read(d);
    } else {
      trace_event(TraceEventType::kOptValidationFail, this);
      stats_.count_opt_validation_failure();
    }
  }

  struct Local {
    // Carries the begin-side observability timer to validate; per-thread
    // (cache-aligned, private line) so the optimistic path still performs
    // zero shared stores.
    ObsTimer timer{};
  };

  VersionedOptions opts_;
  LockT lock_;
  PerThreadSlots<Local> locals_;
  LockStats stats_;
  // On M's atomics so fuzz builds perturb it and sim builds charge its
  // coherence traffic — the two loads per optimistic read are exactly what
  // the zero-shared-store evidence test counts.
  typename M::template Atomic<std::uint64_t> version_{0};
};

}  // namespace oll
