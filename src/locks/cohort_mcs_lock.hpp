// Scalable metalocks for the OLL wait-queue slow paths.
//
// The seed protected the GOLL (and Solaris-like) wait queue with a TATAS
// spinlock: every contended writer spins with an exchange on one shared
// cacheline, so the metalock word ping-pongs across sockets exactly like the
// central lockword the paper is trying to kill (§3.1).  This file provides
// the replacements, selectable at runtime for ablation (MetalockKind):
//
//   kTatas   — the seed's test-and-test-and-set lock (locks/tatas_lock.hpp).
//   kMcs     — local-spin MCS queue lock: each waiter spins on a flag in its
//              own cache-line-padded, per-thread node; a release writes one
//              remote line (the successor's flag) instead of invalidating
//              every spinner.
//   kCohort  — lock cohorting (Dice, Marathe & Shavit, PPoPP'12) over two
//              MCS levels: one local MCS lock per last-level-cache domain
//              plus one global MCS lock arbitrating between domains.  A
//              releasing holder passes global ownership directly to a waiter
//              in its own LLC domain (the lock word, wait-queue head and
//              C-SNZI root all stay in that domain's cache) for up to
//              `cohort_budget` consecutive intra-domain handoffs, then
//              releases the global lock so the next domain in FIFO order
//              runs — bounding cross-domain waiter starvation.
//
// Lock-cohorting correctness requirements and how they are met here:
//   * The global lock must be thread-oblivious (acquired by one thread of a
//     domain, released by another): the global MCS queue node is owned by
//     the *domain*, not the thread — it lives in the Domain record, and the
//     local lock guarantees at most one thread per domain is at the global
//     level at a time.
//   * The local lock must detect contention cheaply ("alone?"): MCS does,
//     via the node's next pointer / tail check.
//
// All three are BasicLockable (lock/unlock, no arguments) so
// std::lock_guard applies; queue nodes are internal per-thread slots.  None
// are reentrant, and a thread may not interleave two acquisitions of the
// *same* metalock instance — the usage pattern of a metalock critical
// section (short, no callouts) guarantees this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <type_traits>

#include "platform/assert.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "locks/per_thread.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/wait_queue.hpp"

namespace oll {

enum class MetalockKind : std::uint8_t { kTatas, kMcs, kCohort };

inline const char* metalock_kind_name(MetalockKind k) {
  switch (k) {
    case MetalockKind::kTatas: return "tatas";
    case MetalockKind::kMcs: return "mcs";
    case MetalockKind::kCohort: return "cohort";
  }
  return "?";
}

// Parses the names used by bench flags: tatas|mcs|cohort.
inline std::optional<MetalockKind> parse_metalock_kind(std::string_view s) {
  if (s == "tatas") return MetalockKind::kTatas;
  if (s == "mcs") return MetalockKind::kMcs;
  if (s == "cohort") return MetalockKind::kCohort;
  return std::nullopt;
}

struct MetalockOptions {
  MetalockKind kind = MetalockKind::kCohort;
  // 0 => inherit the owning lock's max_threads (locks resolve this before
  // constructing the metalock).
  std::uint32_t max_threads = 0;
  // kCohort: consecutive intra-domain handoffs before the holder must
  // release the global lock (FIFO across domains).  The same budget bounds
  // the wait queue's domain-preferring writer wake policy (wait_queue.hpp).
  std::uint32_t cohort_budget = 32;
  // Domain source for kCohort; nullptr means Topology::system().  The
  // simulator passes its synthetic T5440 shape.  Must outlive the lock.
  const Topology* topology = nullptr;
  // kTatas backoff tuning.
  BackoffParams backoff{};
  // How queued metalock waiters block on their node flag (kMcs / kCohort
  // local + global queues; kTatas keeps backoff).  kSpinThenPark uses the
  // parking substrate (platform/park.hpp, DESIGN.md §16); kBlocking
  // degrades to kSpin.  The owning lock forwards its own wait policy here.
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

// Handoff counters for the cohort metalock; aggregated into
// LockStatsSnapshot by the owning lock.  handoffs counts every direct
// ownership transfer to a queued metalock waiter; cohort_hits the subset
// that stayed inside the releasing holder's LLC domain; cross_domain the
// global-lock releases that passed ownership to another domain's leader.
struct MetalockStatsSnapshot {
  std::uint64_t handoffs = 0;
  std::uint64_t cohort_hits = 0;
  std::uint64_t cross_domain = 0;

  MetalockStatsSnapshot& operator+=(const MetalockStatsSnapshot& o) {
    handoffs += o.handoffs;
    cohort_hits += o.cohort_hits;
    cross_domain += o.cross_domain;
    return *this;
  }
  MetalockStatsSnapshot& operator-=(const MetalockStatsSnapshot& o) {
    handoffs -= o.handoffs;
    cohort_hits -= o.cohort_hits;
    cross_domain -= o.cross_domain;
    return *this;
  }
};

// MCS queue lock with internal per-thread nodes, making it BasicLockable
// (locks/mcs_lock.hpp exposes the node-passing variant).  Non-reentrant.
template <typename M = RealMemory>
class McsMetalock {
 public:
  explicit McsMetalock(std::uint32_t max_threads, bool use_park = false)
      : use_park_(kParkable && use_park), nodes_(max_threads) {}

  McsMetalock(const McsMetalock&) = delete;
  McsMetalock& operator=(const McsMetalock&) = delete;

  void lock() noexcept {
    QNode& me = nodes_.local();
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(1, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred == nullptr) return;
    pred->next.store(&me, std::memory_order_release);
    if constexpr (kParkable) {
      if (use_park_) {
        (void)park_wait_u32(me.locked, /*wait_val=*/1, kParkedSpin);
        return;
      }
    }
    spin_until(
        [&] { return me.locked.load(std::memory_order_acquire) == 0; });
  }

  void unlock() noexcept {
    QNode& me = nodes_.local();
    QNode* succ = me.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      spin_until([&] {
        succ = me.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    fault_perturb(FaultSite::kQueueHandoff);
    if constexpr (kParkable) {
      if (use_park_) {
        (void)park_grant_u32(succ->locked, /*grant_val=*/0, kParkedSpin,
                             /*all=*/false);
        return;
      }
    }
    succ->locked.store(0, std::memory_order_release);
  }

 private:
  // Parked marker for the single-waiter locked flag (values 0/1 in the
  // seed; 3 for uniformity with the queue locks' kParkedSpin).
  static constexpr std::uint32_t kParkedSpin = 3;
  static constexpr bool kParkable =
      park_compiled_in() &&
      std::is_same_v<typename M::template Atomic<std::uint32_t>,
                     std::atomic<std::uint32_t>>;

  struct alignas(kFalseSharingRange) QNode {
    typename M::template Atomic<QNode*> next{nullptr};
    typename M::template Atomic<std::uint32_t> locked{0};
  };

  const bool use_park_;
  typename M::template Atomic<QNode*> tail_{nullptr};
  char pad_[kFalseSharingRange - sizeof(void*)];
  PerThreadSlots<QNode> nodes_;
};

// Two-level cohort MCS lock (see file comment).  BasicLockable,
// non-reentrant.
template <typename M = RealMemory>
class CohortMcsLock {
 public:
  explicit CohortMcsLock(const MetalockOptions& opts)
      : budget_(opts.cohort_budget),
        dmap_(opts.topology != nullptr ? opts.topology : &Topology::system()),
        use_park_(kParkable &&
                  opts.wait_policy == WaitPolicy::kSpinThenPark),
        nodes_(opts.max_threads != 0 ? opts.max_threads : 512) {
    domains_ = std::make_unique<Domain[]>(dmap_.domains());
    // One LLC domain (or all participating threads mapped into one): the
    // global level arbitrates between nobody, and intra-domain handoffs are
    // globally FIFO-fair, so the budget bounds nothing.  Degrade to the
    // plain local MCS queue — same op count as McsMetalock — instead of
    // paying the two-level protocol for no locality gain.
    single_domain_ = dmap_.domains() <= 1;
  }

  CohortMcsLock(const CohortMcsLock&) = delete;
  CohortMcsLock& operator=(const CohortMcsLock&) = delete;

  void lock() noexcept {
    QNode& me = nodes_.local();
    Domain& d = domains_[dmap_.domain_of(this_thread_index())];
    // Uncontended bypass: one CAS takes the global lock directly through
    // this thread's own global node, so the two-level protocol costs no
    // more than a plain MCS lock until there is contention to amortize it.
    // CAS-from-null never overtakes a queued domain; a local waiter
    // arriving during the bypass elects itself domain leader (null local
    // tail) and queues globally behind our node — exactly as if we were
    // another domain — and its presence makes the global tail non-null,
    // which shuts the bypass off until the queues drain.
    if (!single_domain_) {
      me.gnode.next.store(nullptr, std::memory_order_relaxed);
      GNode* free_tail = nullptr;
      // Injectable CAS failure is legal here: losing the bypass race just
      // falls through to the queued path.
      if (!fault_cas_fail(FaultSite::kCasRetry) &&
          gtail_.compare_exchange_strong(free_tail, &me.gnode,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        me.bypass = true;
        return;
      }
    }
    me.next.store(nullptr, std::memory_order_relaxed);
    me.status.store(kWait, std::memory_order_relaxed);
    QNode* pred = d.tail.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      pred->next.store(&me, std::memory_order_release);
      // Local spin: the flag lives in this thread's own padded node.
      std::uint32_t st;
      if constexpr (kParkable) {
        if (use_park_) {
          st = park_wait_u32(me.status, kWait, kParkedSpin);
        } else {
          spin_until([&] {
            return me.status.load(std::memory_order_acquire) != kWait;
          });
          st = me.status.load(std::memory_order_relaxed);
        }
      } else {
        spin_until([&] {
          return me.status.load(std::memory_order_acquire) != kWait;
        });
        st = me.status.load(std::memory_order_relaxed);
      }
      if (st == kCohortGrant) {
        return;  // predecessor passed us the global lock within the domain
      }
      // kAcquireGlobal: predecessor exhausted the budget (or left alone);
      // we are the new domain leader and must take the global lock.
    }
    if (single_domain_) return;  // the local queue IS the lock
    global_lock(d.gnode);
    d.handoffs_left = budget_;
  }

  void unlock() noexcept {
    QNode& me = nodes_.local();
    Domain& d = domains_[dmap_.domain_of(this_thread_index())];
    if (me.bypass) {
      me.bypass = false;
      if (global_unlock(me.gnode)) bump(d.cross_domain), bump(d.handoffs);
      return;
    }
    QNode* succ = me.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      // Possibly alone in the local queue.  Release the global lock FIRST:
      // the domain's global node must be out of the global queue before any
      // new local leader can re-enqueue it (a leader can only appear after
      // we either detach below or grant kAcquireGlobal, both of which come
      // after this release).
      if (!single_domain_ && global_unlock(d.gnode)) {
        bump(d.cross_domain), bump(d.handoffs);
      }
      QNode* expected = &me;
      if (d.tail.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return;
      }
      // A local waiter FASed the tail but has not linked yet.
      spin_until([&] {
        succ = me.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
      fault_perturb(FaultSite::kQueueHandoff);
      grant_status(succ, single_domain_ ? kCohortGrant : kAcquireGlobal);
      if (single_domain_) bump(d.handoffs), bump(d.cohort_hits);
      return;
    }
    if (single_domain_) {
      // Degenerate single-domain mode: FIFO pass, no global level, no
      // budget (there is no other domain to starve).
      bump(d.handoffs);
      bump(d.cohort_hits);
      grant_status(succ, kCohortGrant);
      return;
    }
    if (d.handoffs_left > 0) {
      // Intra-domain pass: the successor inherits the global lock without
      // any global-queue traffic.
      --d.handoffs_left;
      bump(d.handoffs);
      bump(d.cohort_hits);
      fault_perturb(FaultSite::kQueueHandoff);
      grant_status(succ, kCohortGrant);
      return;
    }
    // Budget exhausted: FIFO across domains.  Release the global lock (the
    // next domain's leader, if any, is granted inside) and make the local
    // successor re-acquire it behind that domain.
    if (global_unlock(d.gnode)) bump(d.cross_domain), bump(d.handoffs);
    grant_status(succ, kAcquireGlobal);
  }

  std::uint32_t domains() const { return dmap_.domains(); }

  MetalockStatsSnapshot stats() const {
    MetalockStatsSnapshot s;
    for (std::uint32_t i = 0; i < dmap_.domains(); ++i) {
      const Domain& d = domains_[i];
      s.handoffs += d.handoffs.load(std::memory_order_relaxed);
      s.cohort_hits += d.cohort_hits.load(std::memory_order_relaxed);
      s.cross_domain += d.cross_domain.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  // Local-queue grant states.  kWait must be zero-initializable.
  enum Status : std::uint32_t { kWait = 0, kCohortGrant = 1, kAcquireGlobal = 2 };

  // Parked marker: must collide with neither the status values above nor
  // GNode.locked's 0/1 (kParkedSpin == 3 clears both).
  static constexpr std::uint32_t kParkedSpin = 3;
  static constexpr bool kParkable =
      park_compiled_in() &&
      std::is_same_v<typename M::template Atomic<std::uint32_t>,
                     std::atomic<std::uint32_t>>;

  struct alignas(kFalseSharingRange) GNode {
    typename M::template Atomic<GNode*> next{nullptr};
    typename M::template Atomic<std::uint32_t> locked{0};
  };

  struct alignas(kFalseSharingRange) QNode {
    typename M::template Atomic<QNode*> next{nullptr};
    typename M::template Atomic<std::uint32_t> status{kWait};
    // Uncontended-bypass state: `gnode` is this thread's own global queue
    // node (distinct from the domain-owned one), `bypass` records which
    // release path to take.  Thread-private, so a plain bool suffices.
    GNode gnode;
    bool bypass = false;
  };

  struct alignas(kFalseSharingRange) Domain {
    typename M::template Atomic<QNode*> tail{nullptr};
    // Domain-owned global queue node: enqueued by the domain's leader,
    // released by whichever domain thread ends the cohort (the global lock
    // is thread-oblivious by construction).
    GNode gnode;
    // Remaining intra-domain handoffs; written only while the cohort lock
    // is held by a thread of this domain (handoff ordering publishes it).
    std::uint32_t handoffs_left = 0;
    // Handoff counters: single writer at a time (the holder), concurrent
    // relaxed readers (stats); std::atomic keeps them out of the simulated
    // cost model, like LockStats.
    std::atomic<std::uint64_t> handoffs{0};
    std::atomic<std::uint64_t> cohort_hits{0};
    std::atomic<std::uint64_t> cross_domain{0};
  };

  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // Grant a local-queue successor's status flag; the park-aware exchange
  // wakes a sleeping waiter (one per QNode — unpark_one).
  void grant_status(QNode* succ, std::uint32_t grant) noexcept {
    if constexpr (kParkable) {
      if (use_park_) {
        (void)park_grant_u32(succ->status, grant, kParkedSpin,
                             /*all=*/false);
        return;
      }
    }
    succ->status.store(grant, std::memory_order_release);
  }

  void global_lock(GNode& n) noexcept {
    n.next.store(nullptr, std::memory_order_relaxed);
    n.locked.store(1, std::memory_order_relaxed);
    GNode* pred = gtail_.exchange(&n, std::memory_order_acq_rel);
    if (pred == nullptr) return;
    pred->next.store(&n, std::memory_order_release);
    if constexpr (kParkable) {
      if (use_park_) {
        (void)park_wait_u32(n.locked, /*wait_val=*/1, kParkedSpin);
        return;
      }
    }
    spin_until(
        [&] { return n.locked.load(std::memory_order_acquire) == 0; });
  }

  // Returns true when ownership passed to another domain's leader (a
  // successor existed in the global queue), false when the lock went free.
  bool global_unlock(GNode& n) noexcept {
    GNode* succ = n.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      GNode* expected = &n;
      if (gtail_.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return false;
      }
      spin_until([&] {
        succ = n.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    fault_perturb(FaultSite::kQueueHandoff);
    if constexpr (kParkable) {
      if (use_park_) {
        (void)park_grant_u32(succ->locked, /*grant_val=*/0, kParkedSpin,
                             /*all=*/false);
        return true;
      }
    }
    succ->locked.store(0, std::memory_order_release);
    return true;
  }

  std::uint32_t budget_;
  DomainMap dmap_;
  const bool use_park_;
  bool single_domain_ = false;
  typename M::template Atomic<GNode*> gtail_{nullptr};
  char pad_[kFalseSharingRange - sizeof(void*)];
  PerThreadSlots<QNode> nodes_;
  std::unique_ptr<Domain[]> domains_;
};

// Runtime-selectable metalock: constructs exactly one of the three
// implementations and dispatches on the kind.  The switch costs one
// predictable branch on a path that is, by definition, already contended.
template <typename M = RealMemory>
class Metalock {
 public:
  explicit Metalock(const MetalockOptions& opts = {}) : kind_(opts.kind) {
    MetalockOptions o = opts;
    if (o.max_threads == 0) o.max_threads = 512;
    switch (kind_) {
      case MetalockKind::kTatas:
        tatas_ = std::make_unique<TatasLock<M>>(o.backoff);
        break;
      case MetalockKind::kMcs:
        mcs_ = std::make_unique<McsMetalock<M>>(
            o.max_threads, o.wait_policy == WaitPolicy::kSpinThenPark);
        break;
      case MetalockKind::kCohort:
        cohort_ = std::make_unique<CohortMcsLock<M>>(o);
        break;
    }
  }

  Metalock(const Metalock&) = delete;
  Metalock& operator=(const Metalock&) = delete;

  void lock() noexcept {
    switch (kind_) {
      case MetalockKind::kTatas: tatas_->lock(); return;
      case MetalockKind::kMcs: mcs_->lock(); return;
      case MetalockKind::kCohort: cohort_->lock(); return;
    }
  }

  void unlock() noexcept {
    switch (kind_) {
      case MetalockKind::kTatas: tatas_->unlock(); return;
      case MetalockKind::kMcs: mcs_->unlock(); return;
      case MetalockKind::kCohort: cohort_->unlock(); return;
    }
  }

  MetalockKind kind() const noexcept { return kind_; }

  // Zeros unless kCohort (the other kinds have no handoff structure).
  MetalockStatsSnapshot stats() const {
    return cohort_ != nullptr ? cohort_->stats() : MetalockStatsSnapshot{};
  }

 private:
  MetalockKind kind_;
  std::unique_ptr<TatasLock<M>> tatas_;
  std::unique_ptr<McsMetalock<M>> mcs_;
  std::unique_ptr<CohortMcsLock<M>> cohort_;
};

}  // namespace oll
