// Central-counter reader-writer lock: the naive single-lockword design
// (reader count + writer bit, CAS for everything, no queue).
//
// This is the degenerate baseline every lock in the paper is measured
// against implicitly — the pure "serializing updates to central data
// structures" pathology of §1, without even the Solaris lock's handoff
// discipline.  Writer-preference is optional (a wantWriter bit gates new
// readers so writers are not starved under read-heavy load).
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/assert.hpp"
#include "platform/backoff.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/spin.hpp"
#include "platform/trace.hpp"
#include "locks/lock_stats.hpp"
#include "locks/wait_queue.hpp"

namespace oll {

struct CentralRwOptions {
  bool writer_preference = true;
  BackoffParams backoff{};
  // Thread bound for the per-thread stats slots (matches the other locks).
  std::uint32_t max_threads = 512;
  // This lock has no queue, so there is no per-waiter word to park on;
  // kSpinThenPark instead escalates the untimed CAS loops to bounded
  // park_briefly naps once backoff has run a while (predicate-style
  // escalation, DESIGN.md §16.5).  Timed paths keep pure backoff so a
  // deadline is never overshot by a park slice.  kBlocking degrades to
  // kSpin.
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

template <typename M = RealMemory>
class CentralRwLock {
 public:
  static constexpr std::uint64_t kReaderOne = 1ULL;
  static constexpr std::uint64_t kCountMask = 0xffffffffULL;
  static constexpr std::uint64_t kWriter = 1ULL << 32;
  static constexpr std::uint64_t kWriterWanted = 1ULL << 33;

  explicit CentralRwLock(const CentralRwOptions& opts = {})
      : opts_(opts), stats_(opts.max_threads) {}

  CentralRwLock(const CentralRwLock&) = delete;
  CentralRwLock& operator=(const CentralRwLock&) = delete;

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

  bool try_lock_shared() {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    while ((w & (kWriter | kWriterWanted)) == 0) {
      if (word_.compare_exchange_strong(w, w + kReaderOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    word_.fetch_sub(kReaderOne, std::memory_order_acq_rel);
  }

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  bool try_lock() {
    std::uint64_t w = 0;
    return word_.compare_exchange_strong(w, kWriter,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  // fetch_and rather than a plain store: a waiting writer's wanted bit must
  // survive our release.
  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    word_.fetch_and(~kWriter, std::memory_order_acq_rel);
  }

  // Read -> write iff sole reader with no writer waiting (§3.2.1's "trivial
  // when using a counter" case).
  bool try_upgrade() {
    std::uint64_t expected = kReaderOne;
    return word_.compare_exchange_strong(expected, kWriter,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  // Write -> read; preserves a waiting writer's wanted bit.
  void downgrade() {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    while (true) {
      OLL_DCHECK((w & kWriter) != 0);
      const std::uint64_t desired = (w & ~kWriter) + kReaderOne;
      if (word_.compare_exchange_weak(w, desired, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  // --- timed acquisition (SharedTimedMutex requirements) -------------------
  // Deadline-bounded retry over the try paths; this lock has no queue, so a
  // timed-out attempt leaves no state to undo.

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    const bool ok = try_until(tp, [&] { return try_lock(); });
    if (!ok) stats_.count_write_timeout();
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    const bool ok = try_until(tp, [&] { return try_lock_shared(); });
    if (!ok) stats_.count_read_timeout();
    return ok;
  }

  std::uint64_t lockword() const {
    return word_.load(std::memory_order_acquire);
  }

  // fast = acquired on the first attempt; queued = looped at least once.
  // This lock has no queue or drain interval, so writer_wait stays empty.
  // Exact at quiescence.
  LockStatsSnapshot stats() const { return stats_.snapshot(); }

 private:
  // Escalation threshold for kSpinThenPark: backoff rounds before the loop
  // starts napping (mirrors SpinWait's yield->park ladder).
  static constexpr std::uint32_t kEscalateRounds = 64;

  bool use_park() const {
    return park_compiled_in() &&
           opts_.wait_policy == WaitPolicy::kSpinThenPark;
  }

  // One contention pause: exponential backoff, escalating to censused
  // park_briefly naps under kSpinThenPark.  `round` counts pauses so the
  // nap length can grow; there is no waker, so the nap must stay bounded.
  void contended_pause(ExponentialBackoff& backoff, std::uint32_t& round) {
    if (use_park() && round >= kEscalateRounds) {
      park_briefly(round - kEscalateRounds);
      ++round;
      return;
    }
    ++round;
    backoff.backoff();
  }

  void lock_shared_impl() {
    ExponentialBackoff backoff(opts_.backoff);
    std::uint32_t round = 0;
    bool contended = false;
    while (true) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      if ((w & (kWriter | kWriterWanted)) == 0) {
        if (word_.compare_exchange_weak(w, w + kReaderOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          if (contended) {
            stats_.count_read_queued();
          } else {
            stats_.count_read_fast();
          }
          return;
        }
        contended = true;
        continue;
      }
      contended = true;
      contended_pause(backoff, round);
    }
  }

  void lock_impl() {
    ExponentialBackoff backoff(opts_.backoff);
    std::uint32_t round = 0;
    bool wanted_set = false;
    bool contended = false;
    while (true) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      const std::uint64_t self_bits = wanted_set ? kWriterWanted : 0;
      if ((w & ~self_bits) == 0) {
        // Free (modulo our own wanted bit): claim it, clearing the bit.
        if (word_.compare_exchange_weak(w, kWriter,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          if (contended) {
            stats_.count_write_queued();
          } else {
            stats_.count_write_fast();
          }
          return;
        }
        contended = true;
        continue;
      }
      contended = true;
      if (opts_.writer_preference && !wanted_set &&
          (w & kWriterWanted) == 0) {
        // Gate out new readers while we wait.  Only one writer can own the
        // wanted bit at a time; others just spin for the lock to free up.
        if (word_.compare_exchange_strong(w, w | kWriterWanted,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          wanted_set = true;
        }
        continue;
      }
      contended_pause(backoff, round);
    }
  }

  template <typename TimePoint, typename Try>
  bool try_until(const TimePoint& deadline, Try&& attempt) {
    ExponentialBackoff backoff(opts_.backoff);
    while (true) {
      if (attempt()) return true;
      if (TimePoint::clock::now() >= deadline) return false;
      backoff.backoff();
    }
  }

  CentralRwOptions opts_;
  typename M::template Atomic<std::uint64_t> word_{0};
  LockStats stats_;
};

}  // namespace oll
