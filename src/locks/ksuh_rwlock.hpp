// KSUH reader-writer lock (Krieger, Stumm, Unrau & Hanna, ICPP'93) — the
// "fair fast scalable reader-writer lock" the paper uses as its strongest
// baseline (§5.1: "the fastest MCS-style reader-writer lock we found").
//
// Structure: an MCS-style queue that is DOUBLY linked so that a reader
// releasing the lock can splice itself out of the middle of the queue even
// while its neighbors are still active readers.  There is no central reader
// count and no next-writer field; all of that information is implicit in
// the list.  The tail pointer, however, is still FASed by every acquiring
// thread — the central contention point the paper's Figure 5 exposes.
//
// Protocol summary (per-node fields: prev, next, state WAITING/ACTIVE, and a
// tiny link-lock `el`):
//
//   acquire:  FAS the tail.  With no predecessor, become ACTIVE.  Otherwise
//             publish the link (I->prev = pred; pred->next = I) and then:
//             a reader whose predecessor is an ACTIVE reader becomes ACTIVE
//             itself; everyone else spins on their own state.  A reader that
//             becomes ACTIVE "cascades": it activates a WAITING reader
//             successor (under its link-lock), which then cascades in turn.
//   release:  splice self out of the doubly-linked list.  Mid-queue splices
//             lock (pred->el, self->el) in queue order and re-validate
//             I->prev under the lock; head splices lock only self->el.  A
//             node that becomes the new head is activated if WAITING.
//
// Why the linking needs no lock: the FAS gives each node a unique successor,
// and a releasing node whose tail-CAS fails must wait for `next` to be set,
// so a predecessor can neither leave the queue nor see a second linker while
// the link is in flight.  Activation is a Dekker race (linker publishes
// `next` then reads pred's state; an activating pred sets its state then
// reads `next` under its link-lock): at least one side always observes the
// other, and both observing is an idempotent store.
//
// Why the tail retreat CASes pred->next: after CAS(tail, I, pred) a new
// thread may FAS the tail and write pred->next; clearing pred->next with a
// plain store could erase that link, so we CAS it from I to null and let a
// racing linker win.
//
// ABA note on validation: `I->prev` can only be rewritten by the splice of
// the current predecessor (holding its own link-lock); a node that releases
// and re-enqueues always re-enters at the tail, *behind* us, so it can never
// become our predecessor again while we are queued — re-checking
// `I->prev == pred` after locking pred->el is therefore sufficient.
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"

namespace oll {

struct KsuhOptions {
  std::uint32_t max_threads = 512;
};

template <typename M = RealMemory>
class KsuhRwLock {
 public:
  explicit KsuhRwLock(const KsuhOptions& opts = {}) : locals_(opts.max_threads) {}

  KsuhRwLock(const KsuhRwLock&) = delete;
  KsuhRwLock& operator=(const KsuhRwLock&) = delete;

  void lock_shared() { acquire(locals_.local().node, kReader); }
  void unlock_shared() { release(locals_.local().node); }
  void lock() { acquire(locals_.local().node, kWriter); }
  void unlock() { release(locals_.local().node); }

  // --- non-blocking / timed acquisition (DESIGN.md §11) -------------------
  // Conservative: the FAS-based queue cannot be backed out, so try_ is an
  // empty-tail CAS that completes the pred == nullptr arm of acquire().  It
  // may fail spuriously while drained nodes still occupy the queue, which
  // the SharedMutex contract permits; the timed variants are a deadline-
  // bounded retry over it (locks/timed.hpp).

  bool try_lock() { return try_acquire(kWriter); }
  bool try_lock_shared() { return try_acquire(kReader); }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp), [&] { return try_lock(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp),
                          [&] { return try_lock_shared(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

 private:
  enum Class : std::uint32_t { kReader = 0, kWriter = 1 };
  enum State : std::uint32_t { kWaiting = 0, kActive = 1 };

  struct alignas(kFalseSharingRange) Node {
    typename M::template Atomic<Node*> next{nullptr};
    typename M::template Atomic<Node*> prev{nullptr};
    typename M::template Atomic<std::uint32_t> state{kWaiting};
    typename M::template Atomic<std::uint32_t> el{0};  // link-lock
    // Atomic although protocol decisions tolerate staleness: a thread
    // holding a stale neighbor pointer may read cls while the node's owner
    // re-initializes it for its next acquisition (TSan-verified).
    typename M::template Atomic<std::uint32_t> cls{kReader};
  };

  struct Local {
    Node node;
  };

  static void lock_el(Node& n) {
    SpinWait w;
    while (n.el.exchange(1, std::memory_order_acquire) != 0) {
      while (n.el.load(std::memory_order_relaxed) != 0) w.pause();
    }
  }

  static void unlock_el(Node& n) { n.el.store(0, std::memory_order_release); }

  // Memory-order map (DESIGN.md §12).  The activation Dekker needs exactly
  // four seq_cst ops; everything else is acq/rel or weaker:
  //
  //   linker:     S_next = pred->next.store(&I)   then  L_state = pred->state.load()
  //   activator:  S_state = node->state.store(kActive) then L_next = node->next.load()
  //
  // If both sides missed each other, the SC total order would contain the
  // cycle S_state < L_next < S_next < L_state < S_state (each load that
  // does not observe the same-object seq_cst store precedes it in S; the
  // cross-thread S_state -> L_next edge is happens-before via the woken
  // node's acquire spin), so at least one side always observes the other,
  // and both observing is an idempotent double-activation.  All state
  // stores that can activate a cascading reader are S_state instances and
  // stay seq_cst; cascade's next load is L_next and stays seq_cst.
  void acquire(Node& I, Class cls) {
    I.cls.store(cls, std::memory_order_relaxed);  // published by the FAS
    I.next.store(nullptr, std::memory_order_relaxed);
    I.prev.store(nullptr, std::memory_order_relaxed);
    I.state.store(kWaiting, std::memory_order_relaxed);
    // acq_rel: release publishes our node init (relaxed stores above) to the
    // successor that FASes after us; acquire pairs with the previous FASer's
    // release (node init) and, on a null read, with the release tail-CAS of
    // the departing head, ordering its critical section before ours.
    Node* pred = tail_.exchange(&I, std::memory_order_acq_rel);
    if (pred == nullptr) {
      I.state.store(kActive, std::memory_order_seq_cst);  // Dekker S_state
      // Readers only: a WRITER head must not cascade — a reader that
      // queued behind it in the FAS..here window is WAITING with
      // pred->cls == kWriter and would be wrongly activated alongside the
      // active writer (exclusion violation, surfaced by fault injection at
      // this window).  It is activated by release_as_head instead.
      if (cls == kReader) cascade(I);
      return;
    }
    // Publish the link; pred cannot leave the queue before seeing it.
    // release: pred's splice reads our prev under el-locks and must see it
    // (staleness is re-validated there, never trusted).
    I.prev.store(pred, std::memory_order_release);
    pred->next.store(&I, std::memory_order_seq_cst);  // Dekker S_next
    if (cls == kReader &&
        pred->cls.load(std::memory_order_acquire) == kReader &&
        pred->state.load(std::memory_order_seq_cst) == kActive) {  // L_state
      I.state.store(kActive, std::memory_order_seq_cst);  // Dekker S_state
    } else {
      spin_until([&] {
        return I.state.load(std::memory_order_acquire) == kActive;
      });
    }
    if (cls == kReader) cascade(I);
  }

  // Activate a WAITING reader queued directly behind the (reader) node I,
  // which has just become ACTIVE.  Holding I.el serializes this against a
  // concurrent splice rewriting I.next, so we can never activate a node
  // that has already left (and possibly re-entered) the queue.
  void cascade(Node& I) {
    lock_el(I);
    Node* succ = I.next.load(std::memory_order_seq_cst);  // Dekker L_next
    if (succ != nullptr &&
        succ->cls.load(std::memory_order_acquire) == kReader &&
        // relaxed: the L_next seq_cst load already synchronized with the
        // linker's publication (so succ's kWaiting init is visible); a
        // stale kWaiting here only causes an idempotent double-activation.
        succ->state.load(std::memory_order_relaxed) == kWaiting) {
      // seq_cst: Dekker S_state for succ's own cascade (see acquire()).
      succ->state.store(kActive, std::memory_order_seq_cst);
    }
    unlock_el(I);
  }

  // Shared body of try_lock / try_lock_shared: claim an empty queue with a
  // tail CAS, then run acquire()'s pred == nullptr completion.
  bool try_acquire(Class cls) {
    Node& I = locals_.local().node;
    I.cls.store(cls, std::memory_order_relaxed);
    I.next.store(nullptr, std::memory_order_relaxed);
    I.prev.store(nullptr, std::memory_order_relaxed);
    I.state.store(kWaiting, std::memory_order_relaxed);
    Node* expected = nullptr;
    // acq_rel/relaxed: same contract as acquire()'s tail FAS — acquire
    // orders the departing head's critical section before ours when we read
    // its null, release publishes our node init; the failure load's value
    // is discarded.
    if (!tail_.compare_exchange_strong(expected, &I,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;
    }
    I.state.store(kActive, std::memory_order_seq_cst);  // Dekker S_state
    if (cls == kReader) cascade(I);
    return true;
  }

  void release(Node& I) {
    while (true) {
      // acquire: pairs with the release prev-stores of a splicing
      // neighbor; the value is re-validated under el-locks before use.
      Node* pred = I.prev.load(std::memory_order_acquire);
      if (pred == nullptr) {
        if (release_as_head(I)) return;
      } else {
        int r = release_mid_queue(I, pred);
        if (r > 0) return;
        if (r == 0) continue;  // validation failed: prev changed, reload
        // r < 0: the tail CAS failed, so someone FASed the tail after us.
        // Usually that linker's pointer appears in I.next — but the
        // successor may also link, run, SPLICE ITSELF OUT and retreat the
        // tail back to us (tail ABA unique to this self-splicing lock), in
        // which case no link is coming and the retried CAS will succeed.
        // Waiting on I.next alone would spin forever (schedule-fuzzer
        // finding); also exit when the tail points back at us.
        spin_until([&] {
          return I.next.load(std::memory_order_acquire) != nullptr ||
                 tail_.load(std::memory_order_acquire) == &I;
        });
      }
    }
  }

  // Returns true when done; false when a linker is in flight (caller waits
  // for I.next and retries).
  bool release_as_head(Node& I) {
    lock_el(I);
    // acquire: pairs with the linker's seq_cst publication so a non-null
    // succ's node init is visible.  Missing a just-published link is safe:
    // the linker's earlier tail FAS makes the tail CAS below fail.
    Node* succ = I.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &I;
      // release/relaxed: success hands the empty queue to the next FASer,
      // whose acquire orders our critical section before its own; the
      // failure value is discarded (we re-wait on next/tail below).
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        unlock_el(I);
        return true;
      }
      unlock_el(I);
      // Same tail-ABA caveat as in release(): the successor that made our
      // tail CAS fail may splice out and retreat the tail back to us.
      spin_until([&] {
        return I.next.load(std::memory_order_acquire) != nullptr ||
               tail_.load(std::memory_order_acquire) == &I;
      });
      return false;  // retry: successor visible, or the tail is ours again
    }
    // Activate BEFORE handing off the head position.  While succ->prev
    // still points at us, succ's release must take release_mid_queue(),
    // which blocks on our held el — so succ cannot depart (and its
    // per-thread node cannot be re-initialized for a new acquisition)
    // until we unlock.  The previous order (prev-store first) let an
    // already-self-activated succ release as head, depart, and reuse its
    // node while our kActive store was still in flight after a stale
    // kWaiting read: the stray store then spuriously activated the
    // node's next acquisition — an exclusion violation the whole-lock
    // litmus (tests/litmus_test.cpp) caught under TSan + chaos.
    //
    // relaxed load: succ's kWaiting init is visible via the link acquire
    // above; a stale kWaiting causes a double-activation that is
    // idempotent precisely because succ is captive until unlock_el.
    if (succ->state.load(std::memory_order_relaxed) == kWaiting) {
      // seq_cst: Dekker S_state (succ may be a reader that cascades); also
      // the release half orders our critical section before succ's.
      succ->state.store(kActive, std::memory_order_seq_cst);
    }
    // Hand the head position to succ; a WAITING new head always runs
    // (writer: all readers ahead have spliced out; reader: it will cascade).
    // release: pairs with succ's acquire prev-reload in release().
    succ->prev.store(nullptr, std::memory_order_release);
    unlock_el(I);
    return true;
  }

  // Returns 1 = done, 0 = validation failed (reload prev), -1 = tail CAS
  // lost to an in-flight linker (wait for next, then retry).
  int release_mid_queue(Node& I, Node* pred) {
    lock_el(*pred);
    // acquire: re-validation under pred's el; pairs with the release
    // prev-stores of whichever neighbor last rewrote it.
    if (I.prev.load(std::memory_order_acquire) != pred) {
      unlock_el(*pred);  // pred spliced out first; our prev was rewritten
      return 0;
    }
    lock_el(I);
    // acquire: as in release_as_head — sees a non-null succ's init; a
    // missed in-flight link is caught by the tail CAS failing.
    Node* succ = I.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &I;
      // release/relaxed: success publishes pred as the new tail to the next
      // FASer (pred's own init was published by pred's FAS long ago; reader-
      // to-reader ordering beyond that is not required, and writer ordering
      // flows through the el-lock chain); failure value is discarded.
      if (tail_.compare_exchange_strong(expected, pred,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        // Retreat pred->next from I to null; a racing new linker wins.
        // relaxed: performed under both el link-locks, whose release/acquire
        // pairs order it against pred's later el-protected reads; the null
        // it publishes carries no payload.
        Node* expect_me = &I;
        pred->next.compare_exchange_strong(expect_me, nullptr,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
        unlock_el(I);
        unlock_el(*pred);
        return 1;
      }
      unlock_el(I);
      unlock_el(*pred);
      return -1;
    }
    // Splice I out.  Both stores happen under both el link-locks; release
    // additionally pairs with the owners' acquire reloads outside the locks
    // (succ's prev in release(), pred's next in its own cascade/splice).
    pred->next.store(succ, std::memory_order_release);
    succ->prev.store(pred, std::memory_order_release);
    unlock_el(I);
    unlock_el(*pred);
    return 1;
  }

  typename M::template Atomic<Node*> tail_{nullptr};
  char pad_[kFalseSharingRange - sizeof(void*)];
  PerThreadSlots<Local> locals_;
};

}  // namespace oll
