// MCS queue mutex (Mellor-Crummey & Scott, 1991) — §4.1 of the paper.
//
// Each waiter spins on a flag in its own queue node; the releaser writes its
// successor's flag.  Only the tail pointer is central.  FOLL and ROLL extend
// this structure; this standalone mutex exists both as a substrate baseline
// and as an alternative metalock.
//
// The queue node may live on the caller's stack (its lifetime must span
// lock()..unlock()); Guard packages that pattern.
#pragma once

#include <cstdint>

#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"

namespace oll {

template <typename M = RealMemory>
class McsLock {
 public:
  struct alignas(kFalseSharingRange) QNode {
    typename M::template Atomic<QNode*> next{nullptr};
    typename M::template Atomic<std::uint32_t> locked{0};
  };

  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock(QNode& node) noexcept {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(1, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) return;  // lock was free
    pred->next.store(&node, std::memory_order_release);
    spin_until(
        [&] { return node.locked.load(std::memory_order_acquire) == 0; });
  }

  bool try_lock(QNode& node) noexcept {
    node.next.store(nullptr, std::memory_order_relaxed);
    QNode* expected = nullptr;
    return tail_.compare_exchange_strong(expected, &node,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void unlock(QNode& node) noexcept {
    QNode* succ = node.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;  // no successor
      }
      // A successor FASed the tail but has not linked yet; wait for it.
      spin_until([&] {
        succ = node.next.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    succ->locked.store(0, std::memory_order_release);
  }

  // RAII with a stack node — satisfies the common case without per-thread
  // node bookkeeping.
  class Guard {
   public:
    explicit Guard(McsLock& l) : lock_(l) { lock_.lock(node_); }
    ~Guard() { lock_.unlock(node_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    McsLock& lock_;
    QNode node_;
  };

 private:
  typename M::template Atomic<QNode*> tail_{nullptr};
};

}  // namespace oll
