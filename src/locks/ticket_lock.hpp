// Ticket lock: FIFO-fair spin mutex.  Baseline substrate; also documents the
// "every thread updates central state" pathology the paper's locks avoid.
#pragma once

#include <cstdint>

#include "platform/memory.hpp"
#include "platform/spin.hpp"

namespace oll {

template <typename M = RealMemory>
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    spin_until([&] {
      return serving_.load(std::memory_order_acquire) == my;
    });
  }

  bool try_lock() noexcept {
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    // Only claimable when no one is queued (next == serving).
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  typename M::template Atomic<std::uint32_t> next_{0};
  typename M::template Atomic<std::uint32_t> serving_{0};
};

}  // namespace oll
