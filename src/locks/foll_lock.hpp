// FOLL — FIFO OLL reader-writer lock (paper §4.2, Figure 4).
//
// An MCS-style queue lock in which *successive readers share a single queue
// node*: the first reader enqueues a reader node, and readers arriving while
// it is at the tail simply Arrive at that node's C-SNZI instead of touching
// the tail pointer.  A read-only workload therefore writes no central data
// at all after the first acquisition.  Writers enqueue their own node MCS
// style; a writer behind a reader node Closes that node's C-SNZI to cut off
// further readers, and is signalled by the last reader to Depart.
//
// Reader-node recycling (§4.2.1): reader nodes outlive the thread that
// enqueued them (the last reader to depart may be someone else entirely), so
// they come from a per-lock pool — a ring of max_threads nodes, each thread
// starting its search at a distinct default node.  A node's C-SNZI is open
// ONLY while the node is in the queue: it is opened immediately after a
// successful tail CAS and the node is freed only once it is closed with no
// surplus.  This is what makes a delayed Arrive at a recycled node safe: the
// arrival simply fails.
//
// Deviations from Figure 4 (see DESIGN.md §4): we add the missing
// Open(rNode->csnzi) in the tail-is-writer branch, and we clear a node's
// stale qNext when it is re-allocated (the figure leaves a dangling qNext
// from the node's previous queue life, which would instantly satisfy the
// successor-writer's "wait for qNext" spin with a garbage pointer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

struct FollOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  // LLC-domain source for the NUMA-aware reader-node pool search and the
  // writer-handoff locality counters; nullptr means csnzi.topology, then
  // Topology::system().  Must outlive the lock.  FOLL's writer arbitration
  // is already a local-spin MCS chain (each waiter spins on its own padded
  // node), so unlike GOLL there is no metalock to replace — topology only
  // affects where reader nodes are allocated and what the stats report.
  const Topology* topology = nullptr;
};

template <typename M = RealMemory>
class FollLock {
 public:
  explicit FollLock(const FollOptions& opts = {})
      : dmap_(opts.topology != nullptr
                  ? opts.topology
                  : (opts.csnzi.topology != nullptr ? opts.csnzi.topology
                                                    : &Topology::system())),
        locals_(opts.max_threads),
        pool_size_(opts.max_threads),
        stats_(opts.max_threads) {
    CSnziOptions copts = opts.csnzi;
    // Size per-thread C-SNZI state to the lock's thread bound by default.
    if (copts.max_threads == 0) copts.max_threads = opts.max_threads;
    pool_ = std::make_unique<Node[]>(pool_size_);
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      pool_[i].init_reader(copts);
      pool_[i].ring_next = &pool_[(i + 1) % pool_size_];
      // Node i is the default node of thread index i; tag it with that
      // thread's LLC domain for the domain-first pool search below.
      pool_[i].domain = dmap_.domain_of(i);
    }
    link_domain_rings();
  }

  FollLock(const FollLock&) = delete;
  FollLock& operator=(const FollLock&) = delete;

  // --- writer side (Figure 4: WriterLock / WriterUnlock) -----------------

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    Node* w = &locals_.local().wnode;
    Node* succ = w->qnext.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = w;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      spin_until([&] {
        succ = w->qnext.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    count_handoff(succ->domain);  // read before granting: succ may recycle
    succ->spin.store(0, std::memory_order_release);
    w->qnext.store(nullptr, std::memory_order_relaxed);  // clean up
  }

  // --- reader side (Figure 4: ReaderLock / ReaderUnlock) -----------------

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

 private:
  // Figure 4's WriterLock body (the public lock() wraps it in the
  // observability begin/end pair).  The wait on w->spin after a failed
  // Close is the reader-drain interval the writer-wait histogram measures;
  // queue waits behind another writer get queue_enter/exit trace events
  // only.
  void lock_impl() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();  // published by the release stores below
    w->qnext.store(nullptr, std::memory_order_relaxed);
    Node* old_tail = tail_.exchange(w, std::memory_order_acq_rel);
    if (old_tail == nullptr) {
      stats_.count_write_fast();
      return;
    }
    stats_.count_write_queued();
    w->spin.store(1, std::memory_order_relaxed);
    old_tail->qnext.store(w, std::memory_order_release);
    if (old_tail->kind == kWriterNode) {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      spin_until(
          [&] { return w->spin.load(std::memory_order_acquire) == 0; });
      obs_end(TraceEventType::kQueueExit, this, qt);
      return;
    }
    // Reader predecessor.  Its enqueuer opens the C-SNZI right after the
    // tail CAS; wait out that window (and any not-yet-recycled state).
    spin_until([&] { return old_tail->csnzi->query().open; });
    // Cut off further readers.  Close() == true means no readers were (or
    // ever will be) using the node, so nobody would signal us: inherit the
    // node's queue position by spinning on ITS spin flag, then recycle it.
    if (old_tail->csnzi->close()) {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      spin_until([&] {
        return old_tail->spin.load(std::memory_order_acquire) == 0;
      });
      obs_end(TraceEventType::kQueueExit, this, qt);
      old_tail->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(old_tail);
    } else {
      // Readers hold the node: this spin IS the drain interval.
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      spin_until(
          [&] { return w->spin.load(std::memory_order_acquire) == 0; });
      const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
      if (qt.armed) stats_.record_writer_wait(qd);
    }
  }

  // Figure 4's ReaderLock body (see lock_shared for the observability
  // shell).
  void lock_shared_impl() {
    Local& local = locals_.local();
    Node* rnode = nullptr;
    while (true) {
      Node* tail = tail_.load(std::memory_order_acquire);
      if (tail == nullptr) {
        // Empty queue: enqueue a fresh reader node that starts unlocked.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(0, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_fast();  // empty queue: no waiting
            return;
          }
          rnode = nullptr;  // inserted: a writer beat our arrival; retry
        }
      } else if (tail->kind == kWriterNode) {
        // Enqueue a reader node that must wait for the writer.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(1, std::memory_order_relaxed);
        Node* expected = tail;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          tail->qnext.store(rnode, std::memory_order_release);
          rnode->csnzi->open();  // Fig. 4 omission fixed; see header comment
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_queued();  // waiting behind a writer
            const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
            spin_until([&] {
              return rnode->spin.load(std::memory_order_acquire) == 0;
            });
            obs_end(TraceEventType::kQueueExit, this, qt);
            return;
          }
          rnode = nullptr;  // inserted; do not reuse
        }
      } else {
        // Reader node at the tail: share it.
        local.ticket = tail->csnzi->arrive();
        if (local.ticket.arrived()) {
          if (rnode != nullptr) free_reader_node(rnode);
          local.depart_from = tail;
          if (tail->spin.load(std::memory_order_acquire) == 0) {
            stats_.count_read_fast();  // joined an already-granted group
          } else {
            stats_.count_read_queued();
            const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
            spin_until([&] {
              return tail->spin.load(std::memory_order_acquire) == 0;
            });
            obs_end(TraceEventType::kQueueExit, this, qt);
          }
          return;
        }
        // Arrival failed: a writer closed this node's C-SNZI, so the tail
        // has necessarily changed; retry.
      }
    }
  }

 public:
  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    Local& local = locals_.local();
    Node* node = local.depart_from;
    OLL_DCHECK(node != nullptr);
    local.depart_from = nullptr;
    depart_and_handoff(node, local.ticket);
  }

  // --- non-blocking acquisition ------------------------------------------

  // Succeeds only when the queue is empty (an MCS-style lock cannot back
  // out once its FAS lands, so try_lock is a CAS on an empty tail).  This
  // is conservative: it can fail while no thread holds the lock — e.g. a
  // drained-but-not-yet-recycled reader node still sits at the tail —
  // which the SharedMutex contract permits (try_lock may fail spuriously).
  bool try_lock() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();
    w->qnext.store(nullptr, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, w,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // Succeeds when the lock is free or the tail is an *active* reader group
  // (joining a waiting group would require blocking behind a writer).
  bool try_lock_shared() {
    Local& local = locals_.local();
    Node* tail = tail_.load(std::memory_order_acquire);
    if (tail == nullptr) {
      Node* rnode = alloc_reader_node();
      rnode->spin.store(0, std::memory_order_relaxed);
      Node* expected = nullptr;
      if (!tail_.compare_exchange_strong(expected, rnode,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        free_reader_node(rnode);
        return false;
      }
      rnode->csnzi->open();
      local.ticket = rnode->csnzi->arrive();
      if (local.ticket.arrived()) {
        local.depart_from = rnode;
        return true;
      }
      return false;  // a writer raced in and closed; it recycles the node
    }
    if (tail->kind != kReaderNode ||
        tail->spin.load(std::memory_order_acquire) != 0) {
      return false;
    }
    typename CSnzi<M>::Ticket t = tail->csnzi->arrive();
    if (!t.arrived()) return false;
    if (tail->spin.load(std::memory_order_acquire) != 0) {
      // The node was recycled and re-enqueued as a *waiting* group between
      // our spin check and the arrival (spin never goes 0 -> 1 within one
      // queue life); undo the arrival without blocking.
      depart_and_handoff(tail, t);
      return false;
    }
    local.ticket = t;
    local.depart_from = tail;
    return true;
  }

  // --- introspection -------------------------------------------------------
  // Fast-path vs queued acquisition counts (see lock_stats.hpp); exact at
  // quiescence.  read_fast counts acquisitions that never waited on a spin
  // flag (empty-queue insert or joining an already-granted reader node).
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      s.csnzi += pool_[i].csnzi->stats();
    }
    s.wake_cohort_hits = wake_cohort_hits_.load(std::memory_order_relaxed);
    s.wake_cross_domain = wake_cross_domain_.load(std::memory_order_relaxed);
    return s;
  }

  std::uint32_t pool_nodes_in_use() const {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      if (pool_[i].alloc_state.load(std::memory_order_acquire) == kInUse) ++n;
    }
    return n;
  }

 protected:
  enum NodeKind : std::uint8_t { kReaderNode, kWriterNode };
  enum AllocState : std::uint32_t { kFree = 0, kInUse = 1 };

  struct alignas(kFalseSharingRange) Node {
    NodeKind kind = kWriterNode;
    typename M::template Atomic<Node*> qnext{nullptr};
    typename M::template Atomic<std::uint32_t> spin{0};
    typename M::template Atomic<std::uint32_t> alloc_state{kFree};
    std::unique_ptr<CSnzi<M>> csnzi;  // reader nodes only
    Node* ring_next = nullptr;
    // Secondary ring over pool nodes whose default-owner threads share this
    // node's LLC domain (immutable after construction).
    Node* ring_next_domain = nullptr;
    // Writer nodes: owner thread's domain, written by the owner before the
    // enqueue's release stores.  Reader nodes: allocator thread's domain,
    // written between the alloc CAS and the enqueue.  Read by the granting
    // thread before it sets `spin` (handoff-locality counters).
    std::uint32_t domain = 0;

    void init_reader(const CSnziOptions& opts) {
      kind = kReaderNode;
      csnzi = std::make_unique<CSnzi<M>>(opts);
      // Pool invariant: a free node's C-SNZI is closed with no surplus.
      bool was_open_empty = csnzi->close();
      OLL_CHECK(was_open_empty);
    }
  };

  struct Local {
    Node wnode;  // this thread's writer node for this lock (immutable role)
    Node* depart_from = nullptr;
    typename CSnzi<M>::Ticket ticket{};
  };

  // Depart from `node`; if ours was the last departure from a closed
  // C-SNZI, signal the closing writer and recycle the node (the tail half
  // of Figure 4's ReaderUnlock).
  void depart_and_handoff(Node* node, const typename CSnzi<M>::Ticket& t) {
    if (node->csnzi->depart(t)) return;
    // The writer that closed the C-SNZI linked its node into qnext BEFORE
    // closing, so the successor must exist.
    Node* succ = node->qnext.load(std::memory_order_acquire);
    OLL_CHECK(succ != nullptr);
    count_handoff(succ->domain);  // read before granting
    succ->spin.store(0, std::memory_order_release);
    node->qnext.store(nullptr, std::memory_order_relaxed);  // clean up
    free_reader_node(node);
  }

  // Close the per-domain rings: within each LLC domain, nodes link to the
  // next pool node of the same domain (wrapping).  Single-domain hosts get
  // a ring identical to ring_next.
  void link_domain_rings() {
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      Node& n = pool_[i];
      n.ring_next_domain = &n;  // self-loop fallback (degenerate domains)
      for (std::uint32_t step = 1; step <= pool_size_; ++step) {
        Node& cand = pool_[(i + step) % pool_size_];
        if (cand.domain == n.domain) {
          n.ring_next_domain = &cand;
          break;
        }
      }
    }
  }

  std::uint32_t my_domain() const {
    return dmap_.domain_of(this_thread_index());
  }

  // Handoff-locality accounting: one writer at a time (the lock holder is
  // the only granting thread), relaxed concurrent readers (stats()).
  void count_handoff(std::uint32_t succ_domain) {
    std::atomic<std::uint64_t>& c = succ_domain == my_domain()
                                        ? wake_cohort_hits_
                                        : wake_cross_domain_;
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Node* alloc_reader_node() {
    Node* start = &pool_[this_thread_index() % pool_size_];
    // Domain-first pass: one lap over the same-LLC ring, so a reader group's
    // node — the line every group member Arrives at and the granting writer
    // touches — tends to live in the enqueuer's own cache domain.
    Node* n = start;
    do {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next_domain;
    } while (n != start);
    // Fallback: the global ring (a free node always exists when threads <=
    // pool size — §4.2.1's counting argument — but possibly in another
    // domain).  The scan is not atomic; breathe per lap.
    SpinWait lap_wait;
    while (true) {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next;
      if (n == start) lap_wait.pause();
    }
  }

  Node* try_claim(Node* n) {
    if (n->alloc_state.load(std::memory_order_relaxed) != kFree) return nullptr;
    std::uint32_t expected = kFree;
    if (!n->alloc_state.compare_exchange_strong(expected, kInUse,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      return nullptr;
    }
    // Scrub state left over from the node's previous queue life, and tag
    // the node with the allocator's domain (safe: the node is out of every
    // queue, so no granting thread can be reading it).
    n->qnext.store(nullptr, std::memory_order_relaxed);
    n->domain = my_domain();
    return n;
  }

  void free_reader_node(Node* n) {
    OLL_DCHECK(n->kind == kReaderNode);
    OLL_DCHECK(n->alloc_state.load(std::memory_order_relaxed) == kInUse);
    // Single-releaser invariant (§4.2.1): no CAS needed.
    n->alloc_state.store(kFree, std::memory_order_release);
  }

  typename M::template Atomic<Node*> tail_{nullptr};
  char pad_[kFalseSharingRange - sizeof(void*)];
  DomainMap dmap_;
  PerThreadSlots<Local> locals_;
  std::unique_ptr<Node[]> pool_;
  std::uint32_t pool_size_;
  LockStats stats_;
  std::atomic<std::uint64_t> wake_cohort_hits_{0};
  std::atomic<std::uint64_t> wake_cross_domain_{0};
};

}  // namespace oll
