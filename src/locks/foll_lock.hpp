// FOLL — FIFO OLL reader-writer lock (paper §4.2, Figure 4).
//
// An MCS-style queue lock in which *successive readers share a single queue
// node*: the first reader enqueues a reader node, and readers arriving while
// it is at the tail simply Arrive at that node's C-SNZI instead of touching
// the tail pointer.  A read-only workload therefore writes no central data
// at all after the first acquisition.  Writers enqueue their own node MCS
// style; a writer behind a reader node Closes that node's C-SNZI to cut off
// further readers, and is signalled by the last reader to Depart.
//
// Reader-node recycling (§4.2.1): reader nodes outlive the thread that
// enqueued them (the last reader to depart may be someone else entirely), so
// they come from a per-lock pool — a ring of max_threads nodes, each thread
// starting its search at a distinct default node.  A node's C-SNZI is open
// ONLY while the node is in the queue: it is opened immediately after a
// successful tail CAS and the node is freed only once it is closed with no
// surplus.  This is what makes a delayed Arrive at a recycled node safe: the
// arrival simply fails.
//
// Deviations from Figure 4 (see DESIGN.md §4): we add the missing
// Open(rNode->csnzi) in the tail-is-writer branch, and we clear a node's
// stale qNext when it is re-allocated (the figure leaves a dangling qNext
// from the node's previous queue life, which would instantly satisfy the
// successor-writer's "wait for qNext" spin with a garbage pointer).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"
#include "locks/wait_queue.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

struct FollOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  // LLC-domain source for the NUMA-aware reader-node pool search and the
  // writer-handoff locality counters; nullptr means csnzi.topology, then
  // Topology::system().  Must outlive the lock.  FOLL's writer arbitration
  // is already a local-spin MCS chain (each waiter spins on its own padded
  // node), so unlike GOLL there is no metalock to replace — topology only
  // affects where reader nodes are allocated and what the stats report.
  const Topology* topology = nullptr;
  // How queued threads block on their node's spin flag.  kSpin is the
  // paper's evaluation setup; kSpinThenPark spins an adaptive budget and
  // then parks on the flag via platform/park.hpp (DESIGN.md §16) —
  // kBlocking has no per-node condvar here and degrades to kSpin.
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

template <typename M = RealMemory>
class FollLock {
 public:
  explicit FollLock(const FollOptions& opts = {})
      : dmap_(opts.topology != nullptr
                  ? opts.topology
                  : (opts.csnzi.topology != nullptr ? opts.csnzi.topology
                                                    : &Topology::system())),
        use_park_(kParkable &&
                  opts.wait_policy == WaitPolicy::kSpinThenPark),
        locals_(opts.max_threads),
        pool_size_(opts.max_threads),
        stats_(opts.max_threads) {
    CSnziOptions copts = opts.csnzi;
    // Size per-thread C-SNZI state to the lock's thread bound by default.
    if (copts.max_threads == 0) copts.max_threads = opts.max_threads;
    pool_ = std::make_unique<Node[]>(pool_size_);
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      pool_[i].init_reader(copts);
      pool_[i].ring_next = &pool_[(i + 1) % pool_size_];
      // Node i is the default node of thread index i; tag it with that
      // thread's LLC domain for the domain-first pool search below.
      pool_[i].domain = dmap_.domain_of(i);
    }
    link_domain_rings();
  }

  FollLock(const FollLock&) = delete;
  FollLock& operator=(const FollLock&) = delete;

  // --- writer side (Figure 4: WriterLock / WriterUnlock) -----------------

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Node* w = &locals_.local().wnode;
    Node* succ = w->qnext.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = w;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      spin_until([&] {
        succ = w->qnext.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    grant_node(succ);
    w->qnext.store(nullptr, std::memory_order_relaxed);  // clean up
  }

  // --- reader side (Figure 4: ReaderLock / ReaderUnlock) -----------------

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

 protected:
  struct Node;  // defined below with the rest of the queue-node machinery

 private:
  // Figure 4's WriterLock body (the public lock() wraps it in the
  // observability begin/end pair).  The wait on w->spin after a failed
  // Close is the reader-drain interval the writer-wait histogram measures;
  // queue waits behind another writer get queue_enter/exit trace events
  // only.
  void lock_impl() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();  // published by the release stores below
    w->qnext.store(nullptr, std::memory_order_relaxed);
    Node* old_tail = tail_.exchange(w, std::memory_order_acq_rel);
    if (old_tail == nullptr) {
      stats_.count_write_fast();
      return;
    }
    stats_.count_write_queued();
    w->spin.store(1, std::memory_order_relaxed);
    old_tail->qnext.store(w, std::memory_order_release);
    if (old_tail->kind == kWriterNode) {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(w->spin);
      obs_end(TraceEventType::kQueueExit, this, qt);
      return;
    }
    // Reader predecessor.  Its enqueuer opens the C-SNZI right after the
    // tail CAS; wait out that window (and any not-yet-recycled state).
    spin_until([&] { return old_tail->csnzi->query().open; });
    // Cut off further readers.  Close() == true means no readers were (or
    // ever will be) using the node, so nobody would signal us: inherit the
    // node's queue position by spinning on ITS spin flag, then recycle it.
    if (old_tail->csnzi->close()) {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(old_tail->spin);
      obs_end(TraceEventType::kQueueExit, this, qt);
      old_tail->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(old_tail);
    } else {
      // Readers hold the node: this wait IS the drain interval.
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(w->spin);
      const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
      if (qt.armed) stats_.record_writer_wait(qd);
    }
  }

  // Figure 4's ReaderLock body (see lock_shared for the observability
  // shell).
  void lock_shared_impl() {
    Local& local = locals_.local();
    Node* rnode = nullptr;
    while (true) {
      Node* tail = tail_.load(std::memory_order_acquire);
      if (tail == nullptr) {
        // Empty queue: enqueue a fresh reader node that starts unlocked.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(0, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_fast();  // empty queue: no waiting
            return;
          }
          rnode = nullptr;  // inserted: a writer beat our arrival; retry
        }
      } else if (tail->kind == kWriterNode) {
        // Enqueue a reader node that must wait for the writer.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(1, std::memory_order_relaxed);
        Node* expected = tail;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          tail->qnext.store(rnode, std::memory_order_release);
          rnode->csnzi->open();  // Fig. 4 omission fixed; see header comment
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_queued();  // waiting behind a writer
            const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
            await_grant(rnode->spin);
            obs_end(TraceEventType::kQueueExit, this, qt);
            return;
          }
          rnode = nullptr;  // inserted; do not reuse
        }
      } else {
        // Reader node at the tail: share it.
        local.ticket = tail->csnzi->arrive();
        if (local.ticket.arrived()) {
          if (rnode != nullptr) free_reader_node(rnode);
          local.depart_from = tail;
          if (tail->spin.load(std::memory_order_acquire) == 0) {
            stats_.count_read_fast();  // joined an already-granted group
          } else {
            stats_.count_read_queued();
            const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
            await_grant(tail->spin);
            obs_end(TraceEventType::kQueueExit, this, qt);
          }
          return;
        }
        // Arrival failed: a writer closed this node's C-SNZI, so the tail
        // has necessarily changed; retry.
      }
    }
  }

  // lock_shared_impl's three-case loop with deadline checks.  Waits that
  // have not started yet are skipped once the deadline expires (so an
  // already-expired deadline behaves like try_lock_shared, except that the
  // no-wait acquisitions — empty queue, active reader tail — still
  // succeed); waits in progress are abandoned via timed_reader_wait.
  bool timed_lock_shared_impl(std::chrono::steady_clock::time_point deadline) {
    Local& local = locals_.local();
    Node* rnode = nullptr;
    while (true) {
      Node* tail = tail_.load(std::memory_order_acquire);
      if (tail == nullptr) {
        // Empty queue: acquiring needs no wait, so the deadline is moot.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(0, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_fast();
            return true;
          }
          rnode = nullptr;  // inserted: a writer beat our arrival; retry
        }
      } else if (tail->kind == kWriterNode) {
        // Joining here means waiting out the writer; never start a wait we
        // no longer have time for.
        if (std::chrono::steady_clock::now() >= deadline) {
          if (rnode != nullptr) free_reader_node(rnode);
          stats_.count_read_timeout();
          return false;
        }
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(1, std::memory_order_relaxed);
        Node* expected = tail;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          tail->qnext.store(rnode, std::memory_order_release);
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            stats_.count_read_queued();
            if (!timed_reader_wait(rnode, local.ticket, deadline)) {
              return false;
            }
            local.depart_from = rnode;
            return true;
          }
          rnode = nullptr;  // inserted; do not reuse
        }
      } else {
        local.ticket = tail->csnzi->arrive();
        if (local.ticket.arrived()) {
          if (rnode != nullptr) {
            free_reader_node(rnode);
            rnode = nullptr;
          }
          if (tail->spin.load(std::memory_order_acquire) == 0) {
            local.depart_from = tail;
            stats_.count_read_fast();
            return true;
          }
          stats_.count_read_queued();
          if (!timed_reader_wait(tail, local.ticket, deadline)) {
            return false;
          }
          local.depart_from = tail;
          return true;
        }
        // Closed by a writer; the tail has necessarily changed; retry.
      }
    }
  }

  // Timed wait for `node`'s grant after a successful arrival.  True means
  // granted (the caller now holds the lock in shared mode); false means
  // the arrival was abandoned (stats recorded here).
  bool timed_reader_wait(Node* node, const typename CSnzi<M>::Ticket& t,
                         std::chrono::steady_clock::time_point deadline) {
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    bool granted = false;
    if constexpr (kParkable) {
      if (use_park_) {
        // Deadline park on the shared flag.  The parked marker is sticky
        // (park.hpp): timing out leaves kParkedSpin advertised, so a grant
        // racing this timeout still unparks — cheap insurance against a
        // sibling reader asleep on the same word.
        const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count();
        ParkWaitOutcome o;
        granted = park_wait_until_u32(
            node->spin, /*wait_val=*/1, kParkedSpin,
            d > 0 ? static_cast<std::uint64_t>(d) : 1, nullptr, &o);
        stats_.count_park_outcome(o.parks, o.spurious, o.wait_ns);
      }
    }
    if (!use_park_) {
      SpinWait w;
      std::uint32_t check = 0;
      for (;;) {
        if (node->spin.load(std::memory_order_acquire) == 0) {
          granted = true;
          break;
        }
        if ((++check & 15u) == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        w.pause();
      }
    }
    obs_end(TraceEventType::kQueueExit, this, qt);
    if (granted) return true;
    // Timed out: undo the arrival.  A non-last departure (or a last
    // departure from a still-open node) leaves the node in a state the
    // normal protocol already handles (remaining readers keep waiting, or
    // an empty open waiting node that the next writer inherits).
    stats_.count_read_timeout();
    stats_.count_read_abandon();
    if (node->csnzi->depart(t)) return false;
    // Last departure from a closed waiting node.  We cannot signal the
    // closing writer — the lock's current holder has not released — so
    // orphan the node (spin 1 -> 2, or kParkedSpin -> 2: our own sticky
    // marker may still be advertised, and as the last departer there can
    // be no sleeper left behind it) for the granter to forward through.
    std::uint32_t expected = 1;
    if (node->spin.compare_exchange_strong(expected, 2,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return false;
    }
    if (expected == kParkedSpin &&
        node->spin.compare_exchange_strong(expected, 2,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return false;
    }
    // The grant landed between our timeout and the CAS (spin went to 0),
    // so handoff duty is ours after all: pass the grant to the closing
    // writer and recycle the node.  We already departed, so the timeout
    // result stands — the grant is not lost, merely forwarded.
    OLL_DCHECK(expected == 0);
    Node* succ = node->qnext.load(std::memory_order_acquire);
    OLL_CHECK(succ != nullptr);
    node->qnext.store(nullptr, std::memory_order_relaxed);
    grant_node(succ);
    free_reader_node(node);
    return false;
  }

 public:
  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Local& local = locals_.local();
    Node* node = local.depart_from;
    OLL_DCHECK(node != nullptr);
    local.depart_from = nullptr;
    depart_and_handoff(node, local.ticket);
  }

  // --- non-blocking acquisition ------------------------------------------

  // Succeeds only when the queue is empty (an MCS-style lock cannot back
  // out once its FAS lands, so try_lock is a CAS on an empty tail).  This
  // is conservative: it can fail while no thread holds the lock — e.g. a
  // drained-but-not-yet-recycled reader node still sits at the tail —
  // which the SharedMutex contract permits (try_lock may fail spuriously).
  bool try_lock() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();
    w->qnext.store(nullptr, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, w,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // Succeeds when the lock is free or the tail is an *active* reader group
  // (joining a waiting group would require blocking behind a writer).
  bool try_lock_shared() {
    Local& local = locals_.local();
    Node* tail = tail_.load(std::memory_order_acquire);
    if (tail == nullptr) {
      Node* rnode = alloc_reader_node();
      rnode->spin.store(0, std::memory_order_relaxed);
      Node* expected = nullptr;
      if (!tail_.compare_exchange_strong(expected, rnode,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        free_reader_node(rnode);
        return false;
      }
      rnode->csnzi->open();
      local.ticket = rnode->csnzi->arrive();
      if (local.ticket.arrived()) {
        local.depart_from = rnode;
        return true;
      }
      return false;  // a writer raced in and closed; it recycles the node
    }
    if (tail->kind != kReaderNode ||
        tail->spin.load(std::memory_order_acquire) != 0) {
      return false;
    }
    typename CSnzi<M>::Ticket t = tail->csnzi->arrive();
    if (!t.arrived()) return false;
    if (tail->spin.load(std::memory_order_acquire) != 0) {
      // The node was recycled and re-enqueued as a *waiting* group between
      // our spin check and the arrival (spin never goes 0 -> 1 within one
      // queue life); undo the arrival without blocking.
      depart_and_handoff(tail, t);
      return false;
    }
    local.ticket = t;
    local.depart_from = tail;
    return true;
  }

  // --- timed acquisition (DESIGN.md §11) ----------------------------------

 private:
  // Timed-writer reclaim of a drained reader tail.  The empty-tail
  // try_lock can fail FOREVER on a free lock: a reader group that drains
  // in place stays at the tail until a blocking writer closes it, so a
  // deadline_retry over try_lock alone starves once any read completes.
  // When the tail is a granted, open, zero-surplus reader node, the timed
  // writer performs the blocking writer's enqueue-and-close takeover
  // itself.  The tail CAS is the commit point: past it we are an ordinary
  // blocking writer, so the deadline can be overshot by the critical
  // sections of readers that race in between the query and the Close —
  // bounded by in-flight readers, never by other writers (a writer tail
  // makes us decline before the CAS).
  bool timed_write_reclaim() {
    Node* tail = tail_.load(std::memory_order_acquire);
    if (tail == nullptr || tail->kind != kReaderNode) return false;
    if (tail->spin.load(std::memory_order_acquire) != 0) return false;
    const SnziQuery q = tail->csnzi->query();
    if (!q.open || q.nonzero) return false;
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();
    w->qnext.store(nullptr, std::memory_order_relaxed);
    w->spin.store(1, std::memory_order_relaxed);
    Node* expected = tail;
    if (!tail_.compare_exchange_strong(expected, w,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return false;  // tail moved under us: no commitment made
    }
    stats_.count_write_queued();
    tail->qnext.store(w, std::memory_order_release);
    if (tail->csnzi->close()) {
      // Still drained: inherit the node's queue position.  The wait
      // mirrors lock_impl and only matters in the recycle-and-re-enqueue
      // ABA window (spin never goes 0 -> 1 within one queue life).
      await_grant(tail->spin);
      tail->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(tail);
      return true;
    }
    // Readers raced in before the Close; the last one to depart signals us
    // (depart_and_handoff -> grant_node).  This is the drain interval.
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    await_grant(w->spin);
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
    return true;
  }

 public:
  // Writer side: an MCS fetch-and-store cannot be backed out, so the timed
  // writer is a deadline-bounded retry over the empty-tail try_lock plus
  // the drained-tail reclaim above — conservative (loses queue position)
  // but correct; see locks/timed.hpp.
  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    const bool ok = deadline_retry(
        deadline, [&] { return try_lock() || timed_write_reclaim(); });
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_write_acquire(d);
    }
    if (!ok) stats_.count_write_timeout();
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  // Reader side: a genuine enqueue-and-abandon — the arrival is undone
  // with a Depart on timeout, and a last-departer that cannot take handoff
  // duty (the closing writer's turn has not come) orphans the node for the
  // eventual granter to reap (grant_node).
  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    const bool ok = timed_lock_shared_impl(deadline);
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_read_acquire(d);
    }
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  // --- introspection -------------------------------------------------------
  // Fast-path vs queued acquisition counts (see lock_stats.hpp); exact at
  // quiescence.  read_fast counts acquisitions that never waited on a spin
  // flag (empty-queue insert or joining an already-granted reader node).
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      s.csnzi += pool_[i].csnzi->stats();
    }
    s.wake_cohort_hits = wake_cohort_hits_.load(std::memory_order_relaxed);
    s.wake_cross_domain = wake_cross_domain_.load(std::memory_order_relaxed);
    return s;
  }

  std::uint32_t pool_nodes_in_use() const {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      if (pool_[i].alloc_state.load(std::memory_order_acquire) == kInUse) ++n;
    }
    return n;
  }

 protected:
  enum NodeKind : std::uint8_t { kReaderNode, kWriterNode };
  enum AllocState : std::uint32_t { kFree = 0, kInUse = 1 };

  // Spin-flag values within one queue life: 1 = waiting, 0 = granted,
  // 2 = orphaned (all timed readers abandoned; see grant_node), and — under
  // kSpinThenPark only — kParkedSpin = waiting with (possibly) parked
  // sleepers.  3 (not 2) because the orphan tombstone already owns 2.
  // Multiple readers share one node's flag, so granters unpark_all.
  static constexpr std::uint32_t kParkedSpin = 3;

  // Parking needs a real kernel-parkable word: std::atomic under a
  // compiled-in substrate.  Sim memory models degrade to pure spinning.
  static constexpr bool kParkable =
      park_compiled_in() &&
      std::is_same_v<typename M::template Atomic<std::uint32_t>,
                     std::atomic<std::uint32_t>>;

  struct alignas(kFalseSharingRange) Node {
    NodeKind kind = kWriterNode;
    typename M::template Atomic<Node*> qnext{nullptr};
    typename M::template Atomic<std::uint32_t> spin{0};
    typename M::template Atomic<std::uint32_t> alloc_state{kFree};
    std::unique_ptr<CSnzi<M>> csnzi;  // reader nodes only
    Node* ring_next = nullptr;
    // Secondary ring over pool nodes whose default-owner threads share this
    // node's LLC domain (immutable after construction).
    Node* ring_next_domain = nullptr;
    // Writer nodes: owner thread's domain, written by the owner before the
    // enqueue's release stores.  Reader nodes: allocator thread's domain,
    // written between the alloc CAS and the enqueue.  Read by the granting
    // thread before it sets `spin` (handoff-locality counters).
    std::uint32_t domain = 0;

    void init_reader(const CSnziOptions& opts) {
      kind = kReaderNode;
      csnzi = std::make_unique<CSnzi<M>>(opts);
      // Pool invariant: a free node's C-SNZI is closed with no surplus.
      bool was_open_empty = csnzi->close();
      OLL_CHECK(was_open_empty);
    }
  };

  struct Local {
    Node wnode;  // this thread's writer node for this lock (immutable role)
    Node* depart_from = nullptr;
    typename CSnzi<M>::Ticket ticket{};
  };

  // Depart from `node`; if ours was the last departure from a closed
  // C-SNZI, signal the closing writer and recycle the node (the tail half
  // of Figure 4's ReaderUnlock).
  void depart_and_handoff(Node* node, const typename CSnzi<M>::Ticket& t) {
    if (node->csnzi->depart(t)) return;
    // The writer that closed the C-SNZI linked its node into qnext BEFORE
    // closing, so the successor must exist.
    Node* succ = node->qnext.load(std::memory_order_acquire);
    OLL_CHECK(succ != nullptr);
    node->qnext.store(nullptr, std::memory_order_relaxed);  // clean up
    grant_node(succ);
    free_reader_node(node);
  }

  // Block until `word` (a node's spin flag) reads 0 — granted.  Under
  // kSpinThenPark the waiter advertises kParkedSpin and parks on the word
  // itself; the grant_node exchange below observes the marker and unparks.
  // Park outcome feeds the per-lock LockStats.
  void await_grant(typename M::template Atomic<std::uint32_t>& word) {
    if constexpr (kParkable) {
      if (use_park_) {
        ParkWaitOutcome o;
        const std::uint32_t v = park_wait_u32(word, /*wait_val=*/1,
                                              kParkedSpin, &o);
        stats_.count_park_outcome(o.parks, o.spurious, o.wait_ns);
        OLL_DCHECK(v == 0);
        (void)v;
        return;
      }
    }
    spin_until([&] { return word.load(std::memory_order_acquire) == 0; });
  }

  // Grant the queue position held by `succ`, forwarding through orphans.
  //
  // A reader node whose spin flag was CASed 1 -> 2 is *orphaned*: every
  // reader that arrived at it abandoned a timed wait (DESIGN.md §11), so
  // nobody is left to consume the grant or to later signal the closing
  // writer linked behind it.  The granter detects this with an exchange and
  // forwards the grant through the orphan, recycling it here.  At most one
  // forwarding hop can occur: a node is only orphaned after a writer closed
  // it (so a writer node follows it in the queue), adjacent reader nodes
  // are impossible, and writer nodes are never orphaned.
  void grant_node(Node* succ) {
    while (true) {
      count_handoff(succ->domain);  // read before granting: succ may recycle
      fault_perturb(FaultSite::kQueueHandoff);
      std::uint32_t prev;
      if constexpr (kParkable) {
        // The exchange-displaces-marker half of the §16.2 pairing; the
        // plain exchange stays on the pure-spin hot path.  unpark_all:
        // a reader node's flag may have several parked sleepers.
        prev = use_park_ ? park_grant_u32(succ->spin, /*grant_val=*/0,
                                          kParkedSpin, /*all=*/true)
                         : succ->spin.exchange(0, std::memory_order_acq_rel);
        if (prev == kParkedSpin) stats_.count_unparks(1);
      } else {
        prev = succ->spin.exchange(0, std::memory_order_acq_rel);
      }
      if (prev != 2) return;
      // Orphaned: the closing writer behind it must exist (qnext was linked
      // before the Close that made abandonment possible).
      Node* next = succ->qnext.load(std::memory_order_acquire);
      OLL_CHECK(next != nullptr);
      succ->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(succ);
      succ = next;
    }
  }

  // Close the per-domain rings: within each LLC domain, nodes link to the
  // next pool node of the same domain (wrapping).  Single-domain hosts get
  // a ring identical to ring_next.
  void link_domain_rings() {
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      Node& n = pool_[i];
      n.ring_next_domain = &n;  // self-loop fallback (degenerate domains)
      for (std::uint32_t step = 1; step <= pool_size_; ++step) {
        Node& cand = pool_[(i + step) % pool_size_];
        if (cand.domain == n.domain) {
          n.ring_next_domain = &cand;
          break;
        }
      }
    }
  }

  std::uint32_t my_domain() const {
    return dmap_.domain_of(this_thread_index());
  }

  // Handoff-locality accounting: one writer at a time (the lock holder is
  // the only granting thread), relaxed concurrent readers (stats()).
  void count_handoff(std::uint32_t succ_domain) {
    std::atomic<std::uint64_t>& c = succ_domain == my_domain()
                                        ? wake_cohort_hits_
                                        : wake_cross_domain_;
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Node* alloc_reader_node() {
    Node* start = &pool_[this_thread_index() % pool_size_];
    // Domain-first pass: one lap over the same-LLC ring, so a reader group's
    // node — the line every group member Arrives at and the granting writer
    // touches — tends to live in the enqueuer's own cache domain.
    Node* n = start;
    do {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next_domain;
    } while (n != start);
    // Fallback: the global ring (a free node always exists when threads <=
    // pool size — §4.2.1's counting argument — but possibly in another
    // domain).  The scan is not atomic; breathe per lap.
    SpinWait lap_wait;
    while (true) {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next;
      if (n == start) lap_wait.pause();
    }
  }

  Node* try_claim(Node* n) {
    if (n->alloc_state.load(std::memory_order_relaxed) != kFree) return nullptr;
    std::uint32_t expected = kFree;
    if (!n->alloc_state.compare_exchange_strong(expected, kInUse,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      return nullptr;
    }
    // Scrub state left over from the node's previous queue life, and tag
    // the node with the allocator's domain (safe: the node is out of every
    // queue, so no granting thread can be reading it).
    n->qnext.store(nullptr, std::memory_order_relaxed);
    n->domain = my_domain();
    return n;
  }

  void free_reader_node(Node* n) {
    OLL_DCHECK(n->kind == kReaderNode);
    OLL_DCHECK(n->alloc_state.load(std::memory_order_relaxed) == kInUse);
    // Single-releaser invariant (§4.2.1): no CAS needed.
    n->alloc_state.store(kFree, std::memory_order_release);
  }

  typename M::template Atomic<Node*> tail_{nullptr};
  char pad_[kFalseSharingRange - sizeof(void*)];
  DomainMap dmap_;
  // Resolved wait policy: true iff kSpinThenPark on a parkable word.
  const bool use_park_;
  PerThreadSlots<Local> locals_;
  std::unique_ptr<Node[]> pool_;
  std::uint32_t pool_size_;
  LockStats stats_;
  std::atomic<std::uint64_t> wake_cohort_hits_{0};
  std::atomic<std::uint64_t> wake_cross_domain_{0};
};

}  // namespace oll
