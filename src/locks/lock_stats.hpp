// Optional per-lock operation statistics.
//
// Counters are kept in per-thread cache-aligned slots (no shared-line
// traffic on the hot path — a stats counter that serialized readers would
// defeat the very property being measured) and aggregated on demand.  GOLL,
// FOLL and ROLL update them so tests and users can verify the paper's
// mechanisms directly: e.g. at 100% reads GOLL must report zero queued
// acquisitions — readers never touch the metalock (§3.2) — and FOLL must
// report that almost all readers shared an existing node (§4.2).  The BRAVO
// layer (locks/bravo.hpp) additionally counts bias-path reads and
// revocations, which is how tests verify that biased readers really skip
// the underlying lock's shared RMWs.
//
// Beyond event counts, each slot carries three log2-bucketed latency
// histograms (platform/histogram.hpp): read-acquire, write-acquire, and
// writer-wait-while-readers-drain.  The locks feed them only while the
// observability layer's latency timing is runtime-enabled (platform/
// trace.hpp), so the default-configuration hot path pays nothing beyond
// one relaxed flag load per acquisition — and nothing at all when compiled
// with OLL_TRACE=0.
//
// Each slot has exactly one writer (its thread), but snapshot() may run
// concurrently with increments, so the fields are atomics accessed with
// relaxed ordering: single-writer means load+store increments are not lost,
// and relaxed cross-thread reads make the aggregate approximate but
// race-free (exact at quiescence).
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/per_thread.hpp"
#include "platform/histogram.hpp"
#include "snzi/csnzi_stats.hpp"

namespace oll {

struct LockStatsSnapshot {
  std::uint64_t read_fast = 0;    // reader acquired without queueing
  std::uint64_t read_queued = 0;  // reader slept in the queue / enqueued node
  std::uint64_t write_fast = 0;   // writer acquired on the fast path
  std::uint64_t write_queued = 0; // writer queued / waited for readers
  std::uint64_t read_bias = 0;    // reader took the BRAVO bias fast path
  std::uint64_t bias_revoke = 0;  // writer revoked reader bias

  // Arrival-path counters summed over the lock's C-SNZI instances (GOLL has
  // one; FOLL/ROLL sum their reader-node pool).  See snzi/csnzi_stats.hpp.
  CSnziStatsSnapshot csnzi{};

  // Writer-arbitration handoff counters (locks/cohort_mcs_lock.hpp and the
  // wait queue's domain-preferring wake policy).  meta_* count metalock
  // ownership transfers: every direct handoff, the subset that stayed in the
  // releasing holder's LLC domain, and global-lock passes to another domain.
  // wake_* count writer *wakes*: grants that stayed in the releaser's domain
  // vs. grants that crossed domains (FOLL/ROLL report their MCS-chain writer
  // handoffs under wake_* too — they have no separate metalock).
  std::uint64_t meta_handoffs = 0;
  std::uint64_t meta_cohort_hits = 0;
  std::uint64_t meta_cross_domain = 0;
  std::uint64_t wake_cohort_hits = 0;
  std::uint64_t wake_cross_domain = 0;

  // Timed/cancellable acquisition (DESIGN.md §11).  *_timeouts count timed
  // acquisitions that returned failure; *_abandons count the subset that had
  // already committed to a wait (queue node enqueued / C-SNZI arrival made)
  // and had to back it out.  revoke_timeouts counts BRAVO revocation scans
  // whose per-slot wait exceeded the bounded-backoff budget (the writer
  // still completes the scan — exclusion cannot be abandoned — but the
  // incident is visible instead of a silent stall).
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t read_abandons = 0;
  std::uint64_t write_abandons = 0;
  std::uint64_t revoke_timeouts = 0;

  // Optimistic read mode (locks/versioned_rwlock.hpp, DESIGN.md §13).
  // opt_reads counts validated (consistent) optimistic reads — the reads
  // that touched zero shared cache lines for their whole duration;
  // opt_validation_failures counts attempts a writer (or injected fault)
  // invalidated, whether at begin (stamp odd) or at validate (stamp moved);
  // opt_fallbacks counts retry loops that exhausted their budget and took
  // the pessimistic shared path (those reads also appear in read_*).
  std::uint64_t opt_reads = 0;
  std::uint64_t opt_validation_failures = 0;
  std::uint64_t opt_fallbacks = 0;

  // Delegated/combined writer path (locks/combining.hpp, DESIGN.md §15).
  // combined_ops counts closures a holder executed *for other threads*
  // during its pre-release drains; combine_batches counts drains that
  // executed at least one closure; combine_handoffs_saved counts delegated
  // with_write calls that completed via a combiner (each one is a writer
  // acquisition — metalock handoff, queue wake, data-line migration — that
  // never happened).  A combined op appears in none of the write_* counters:
  // writes() deliberately reports only operations that took ownership.
  std::uint64_t combined_ops = 0;
  std::uint64_t combine_batches = 0;
  std::uint64_t combine_handoffs_saved = 0;

  // Spin-then-park substrate (platform/park.hpp, DESIGN.md §16), populated
  // only for locks created with WaitPolicy::kSpinThenPark.  parks counts
  // park() calls this lock's waiters made (re-parks after a spurious wake
  // count again); unparks counts wakes this lock's granters issued;
  // spurious_wakes counts park() returns that carried no grant (injected
  // by park-spurious/park-chaos, OS-level, or fallback hash collisions).
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
  std::uint64_t spurious_wakes = 0;

  // Latency distributions in trace-clock units (ns real / cycles sim);
  // populated only while latency timing is runtime-enabled.  writer_wait
  // covers the interval a writer spends waiting for the lock after missing
  // its fast path — for the OLL locks that is dominated by waiting for the
  // current reader group to drain; for BRAVO it is the revocation scan.
  HistogramSnapshot read_acquire{};
  HistogramSnapshot write_acquire{};
  HistogramSnapshot writer_wait{};
  // Latency of try_*_for calls, successful or not (a timeout contributes
  // roughly its deadline).  Fed under the same runtime-timing gate.
  HistogramSnapshot timed_acquire{};
  // Begin-to-validate latency of *successful* optimistic reads (failures
  // restart and land here only once they eventually validate).
  HistogramSnapshot opt_read{};
  // Time waiters of this lock spent parked (not spinning), ns.  Fed
  // unconditionally when parking is active — parked time is by definition
  // off the hot path, so it is not gated on the latency-timing flag.
  HistogramSnapshot park_wait{};

  std::uint64_t reads() const { return read_fast + read_queued + read_bias; }
  std::uint64_t writes() const { return write_fast + write_queued; }

  LockStatsSnapshot& operator+=(const LockStatsSnapshot& o) {
    read_fast += o.read_fast;
    read_queued += o.read_queued;
    write_fast += o.write_fast;
    write_queued += o.write_queued;
    read_bias += o.read_bias;
    bias_revoke += o.bias_revoke;
    csnzi += o.csnzi;
    meta_handoffs += o.meta_handoffs;
    meta_cohort_hits += o.meta_cohort_hits;
    meta_cross_domain += o.meta_cross_domain;
    wake_cohort_hits += o.wake_cohort_hits;
    wake_cross_domain += o.wake_cross_domain;
    read_timeouts += o.read_timeouts;
    write_timeouts += o.write_timeouts;
    read_abandons += o.read_abandons;
    write_abandons += o.write_abandons;
    revoke_timeouts += o.revoke_timeouts;
    opt_reads += o.opt_reads;
    opt_validation_failures += o.opt_validation_failures;
    opt_fallbacks += o.opt_fallbacks;
    combined_ops += o.combined_ops;
    combine_batches += o.combine_batches;
    combine_handoffs_saved += o.combine_handoffs_saved;
    parks += o.parks;
    unparks += o.unparks;
    spurious_wakes += o.spurious_wakes;
    read_acquire += o.read_acquire;
    write_acquire += o.write_acquire;
    writer_wait += o.writer_wait;
    timed_acquire += o.timed_acquire;
    opt_read += o.opt_read;
    park_wait += o.park_wait;
    return *this;
  }

  // Baseline subtraction: `*this - o` where o is an earlier snapshot of the
  // same lock, yielding the delta for the phase in between (warmup vs.
  // measured).  Histogram maxes remain high-water marks.
  LockStatsSnapshot& operator-=(const LockStatsSnapshot& o) {
    read_fast -= o.read_fast;
    read_queued -= o.read_queued;
    write_fast -= o.write_fast;
    write_queued -= o.write_queued;
    read_bias -= o.read_bias;
    bias_revoke -= o.bias_revoke;
    csnzi -= o.csnzi;
    meta_handoffs -= o.meta_handoffs;
    meta_cohort_hits -= o.meta_cohort_hits;
    meta_cross_domain -= o.meta_cross_domain;
    wake_cohort_hits -= o.wake_cohort_hits;
    wake_cross_domain -= o.wake_cross_domain;
    read_timeouts -= o.read_timeouts;
    write_timeouts -= o.write_timeouts;
    read_abandons -= o.read_abandons;
    write_abandons -= o.write_abandons;
    revoke_timeouts -= o.revoke_timeouts;
    opt_reads -= o.opt_reads;
    opt_validation_failures -= o.opt_validation_failures;
    opt_fallbacks -= o.opt_fallbacks;
    combined_ops -= o.combined_ops;
    combine_batches -= o.combine_batches;
    combine_handoffs_saved -= o.combine_handoffs_saved;
    parks -= o.parks;
    unparks -= o.unparks;
    spurious_wakes -= o.spurious_wakes;
    read_acquire -= o.read_acquire;
    write_acquire -= o.write_acquire;
    writer_wait -= o.writer_wait;
    timed_acquire -= o.timed_acquire;
    opt_read -= o.opt_read;
    park_wait -= o.park_wait;
    return *this;
  }
};

class LockStats {
 public:
  explicit LockStats(std::uint32_t max_threads) : slots_(max_threads) {}

  void count_read_fast() { bump(slots_.local().read_fast); }
  void count_read_queued() { bump(slots_.local().read_queued); }
  void count_write_fast() { bump(slots_.local().write_fast); }
  void count_write_queued() { bump(slots_.local().write_queued); }
  void count_read_bias() { bump(slots_.local().read_bias); }
  void count_bias_revoke() { bump(slots_.local().bias_revoke); }
  void count_read_timeout() { bump(slots_.local().read_timeouts); }
  void count_write_timeout() { bump(slots_.local().write_timeouts); }
  void count_read_abandon() { bump(slots_.local().read_abandons); }
  void count_write_abandon() { bump(slots_.local().write_abandons); }
  void count_revoke_timeout() { bump(slots_.local().revoke_timeouts); }
  void count_opt_read() { bump(slots_.local().opt_reads); }
  void count_opt_validation_failure() {
    bump(slots_.local().opt_validation_failures);
  }
  void count_opt_fallback() { bump(slots_.local().opt_fallbacks); }
  // n closures executed in one drain (single increment per batch keeps the
  // combiner's post-drain bookkeeping off the per-closure path).
  void count_combined_ops(std::uint64_t n) {
    add(slots_.local().combined_ops, n);
  }
  void count_combine_batch() { bump(slots_.local().combine_batches); }
  void count_combine_handoff_saved() {
    bump(slots_.local().combine_handoffs_saved);
  }
  // Park outcome of one wait episode: n parks, sp spurious returns, and
  // the total parked nanoseconds (one park_wait histogram sample).
  void count_park_outcome(std::uint64_t n, std::uint64_t sp,
                          std::uint64_t wait_ns) {
    if (n == 0 && sp == 0) return;
    Slot& s = slots_.local();
    add(s.parks, n);
    add(s.spurious_wakes, sp);
    if (wait_ns != 0) s.park_wait.add(wait_ns);
  }
  void count_unparks(std::uint64_t n) {
    if (n != 0) add(slots_.local().unparks, n);
  }

  // Histogram feeds; call only when the caller's ObsTimer was armed (the
  // locks guard on it), so a disabled run never touches these lines.
  void record_read_acquire(std::uint64_t d) {
    slots_.local().read_acquire.add(d);
  }
  void record_write_acquire(std::uint64_t d) {
    slots_.local().write_acquire.add(d);
  }
  void record_writer_wait(std::uint64_t d) {
    slots_.local().writer_wait.add(d);
  }
  void record_timed_acquire(std::uint64_t d) {
    slots_.local().timed_acquire.add(d);
  }
  void record_opt_read(std::uint64_t d) { slots_.local().opt_read.add(d); }

  // Aggregate across threads.  Not linearizable with respect to concurrent
  // updates (relaxed loads of live counters); call at quiescence for exact
  // numbers.
  LockStatsSnapshot snapshot() const {
    LockStatsSnapshot total;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_.slot(i);
      total.read_fast += s.read_fast.load(std::memory_order_relaxed);
      total.read_queued += s.read_queued.load(std::memory_order_relaxed);
      total.write_fast += s.write_fast.load(std::memory_order_relaxed);
      total.write_queued += s.write_queued.load(std::memory_order_relaxed);
      total.read_bias += s.read_bias.load(std::memory_order_relaxed);
      total.bias_revoke += s.bias_revoke.load(std::memory_order_relaxed);
      total.read_timeouts += s.read_timeouts.load(std::memory_order_relaxed);
      total.write_timeouts +=
          s.write_timeouts.load(std::memory_order_relaxed);
      total.read_abandons += s.read_abandons.load(std::memory_order_relaxed);
      total.write_abandons +=
          s.write_abandons.load(std::memory_order_relaxed);
      total.revoke_timeouts +=
          s.revoke_timeouts.load(std::memory_order_relaxed);
      total.opt_reads += s.opt_reads.load(std::memory_order_relaxed);
      total.opt_validation_failures +=
          s.opt_validation_failures.load(std::memory_order_relaxed);
      total.opt_fallbacks += s.opt_fallbacks.load(std::memory_order_relaxed);
      total.combined_ops += s.combined_ops.load(std::memory_order_relaxed);
      total.combine_batches +=
          s.combine_batches.load(std::memory_order_relaxed);
      total.combine_handoffs_saved +=
          s.combine_handoffs_saved.load(std::memory_order_relaxed);
      total.parks += s.parks.load(std::memory_order_relaxed);
      total.unparks += s.unparks.load(std::memory_order_relaxed);
      total.spurious_wakes +=
          s.spurious_wakes.load(std::memory_order_relaxed);
      s.read_acquire.snapshot_into(total.read_acquire);
      s.write_acquire.snapshot_into(total.write_acquire);
      s.writer_wait.snapshot_into(total.writer_wait);
      s.timed_acquire.snapshot_into(total.timed_acquire);
      s.opt_read.snapshot_into(total.opt_read);
      s.park_wait.snapshot_into(total.park_wait);
    }
    return total;
  }

  // Zero every slot; quiescent-only (concurrent increments would interleave
  // with the clearing stores).  The harness prefers baseline subtraction
  // (factory.hpp reset_stats), which needs no quiescence beyond snapshot's.
  void reset() {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_.slot(i);
      s.read_fast.store(0, std::memory_order_relaxed);
      s.read_queued.store(0, std::memory_order_relaxed);
      s.write_fast.store(0, std::memory_order_relaxed);
      s.write_queued.store(0, std::memory_order_relaxed);
      s.read_bias.store(0, std::memory_order_relaxed);
      s.bias_revoke.store(0, std::memory_order_relaxed);
      s.read_timeouts.store(0, std::memory_order_relaxed);
      s.write_timeouts.store(0, std::memory_order_relaxed);
      s.read_abandons.store(0, std::memory_order_relaxed);
      s.write_abandons.store(0, std::memory_order_relaxed);
      s.revoke_timeouts.store(0, std::memory_order_relaxed);
      s.opt_reads.store(0, std::memory_order_relaxed);
      s.opt_validation_failures.store(0, std::memory_order_relaxed);
      s.opt_fallbacks.store(0, std::memory_order_relaxed);
      s.combined_ops.store(0, std::memory_order_relaxed);
      s.combine_batches.store(0, std::memory_order_relaxed);
      s.combine_handoffs_saved.store(0, std::memory_order_relaxed);
      s.parks.store(0, std::memory_order_relaxed);
      s.unparks.store(0, std::memory_order_relaxed);
      s.spurious_wakes.store(0, std::memory_order_relaxed);
      s.read_acquire.reset();
      s.write_acquire.reset();
      s.writer_wait.reset();
      s.timed_acquire.reset();
      s.opt_read.reset();
      s.park_wait.reset();
    }
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> read_fast{0};
    std::atomic<std::uint64_t> read_queued{0};
    std::atomic<std::uint64_t> write_fast{0};
    std::atomic<std::uint64_t> write_queued{0};
    std::atomic<std::uint64_t> read_bias{0};
    std::atomic<std::uint64_t> bias_revoke{0};
    std::atomic<std::uint64_t> read_timeouts{0};
    std::atomic<std::uint64_t> write_timeouts{0};
    std::atomic<std::uint64_t> read_abandons{0};
    std::atomic<std::uint64_t> write_abandons{0};
    std::atomic<std::uint64_t> revoke_timeouts{0};
    std::atomic<std::uint64_t> opt_reads{0};
    std::atomic<std::uint64_t> opt_validation_failures{0};
    std::atomic<std::uint64_t> opt_fallbacks{0};
    std::atomic<std::uint64_t> combined_ops{0};
    std::atomic<std::uint64_t> combine_batches{0};
    std::atomic<std::uint64_t> combine_handoffs_saved{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
    std::atomic<std::uint64_t> spurious_wakes{0};
    AtomicHistogram read_acquire;
    AtomicHistogram write_acquire;
    AtomicHistogram writer_wait;
    AtomicHistogram timed_acquire;
    AtomicHistogram opt_read;
    AtomicHistogram park_wait;
  };

  // Single-writer slot: a relaxed load+store increment cannot be lost and
  // avoids a lock-prefixed RMW on the acquisition hot path.
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  static void add(std::atomic<std::uint64_t>& c, std::uint64_t n) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  PerThreadSlots<Slot> slots_;
};

}  // namespace oll
