// Optional per-lock operation statistics.
//
// Counters are kept in per-thread cache-aligned slots (no shared-line
// traffic on the hot path — a stats counter that serialized readers would
// defeat the very property being measured) and aggregated on demand.  GOLL,
// FOLL and ROLL update them so tests and users can verify the paper's
// mechanisms directly: e.g. at 100% reads GOLL must report zero queued
// acquisitions — readers never touch the metalock (§3.2) — and FOLL must
// report that almost all readers shared an existing node (§4.2).  The BRAVO
// layer (locks/bravo.hpp) additionally counts bias-path reads and
// revocations, which is how tests verify that biased readers really skip
// the underlying lock's shared RMWs.
//
// Each slot has exactly one writer (its thread), but snapshot() may run
// concurrently with increments, so the fields are atomics accessed with
// relaxed ordering: single-writer means load+store increments are not lost,
// and relaxed cross-thread reads make the aggregate approximate but
// race-free (exact at quiescence).
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/per_thread.hpp"
#include "snzi/csnzi_stats.hpp"

namespace oll {

struct LockStatsSnapshot {
  std::uint64_t read_fast = 0;    // reader acquired without queueing
  std::uint64_t read_queued = 0;  // reader slept in the queue / enqueued node
  std::uint64_t write_fast = 0;   // writer acquired on the fast path
  std::uint64_t write_queued = 0; // writer queued / waited for readers
  std::uint64_t read_bias = 0;    // reader took the BRAVO bias fast path
  std::uint64_t bias_revoke = 0;  // writer revoked reader bias

  // Arrival-path counters summed over the lock's C-SNZI instances (GOLL has
  // one; FOLL/ROLL sum their reader-node pool).  See snzi/csnzi_stats.hpp.
  CSnziStatsSnapshot csnzi{};

  std::uint64_t reads() const { return read_fast + read_queued + read_bias; }
  std::uint64_t writes() const { return write_fast + write_queued; }
};

class LockStats {
 public:
  explicit LockStats(std::uint32_t max_threads) : slots_(max_threads) {}

  void count_read_fast() { bump(slots_.local().read_fast); }
  void count_read_queued() { bump(slots_.local().read_queued); }
  void count_write_fast() { bump(slots_.local().write_fast); }
  void count_write_queued() { bump(slots_.local().write_queued); }
  void count_read_bias() { bump(slots_.local().read_bias); }
  void count_bias_revoke() { bump(slots_.local().bias_revoke); }

  // Aggregate across threads.  Not linearizable with respect to concurrent
  // updates (relaxed loads of live counters); call at quiescence for exact
  // numbers.
  LockStatsSnapshot snapshot() const {
    LockStatsSnapshot total;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_.slot(i);
      total.read_fast += s.read_fast.load(std::memory_order_relaxed);
      total.read_queued += s.read_queued.load(std::memory_order_relaxed);
      total.write_fast += s.write_fast.load(std::memory_order_relaxed);
      total.write_queued += s.write_queued.load(std::memory_order_relaxed);
      total.read_bias += s.read_bias.load(std::memory_order_relaxed);
      total.bias_revoke += s.bias_revoke.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> read_fast{0};
    std::atomic<std::uint64_t> read_queued{0};
    std::atomic<std::uint64_t> write_fast{0};
    std::atomic<std::uint64_t> write_queued{0};
    std::atomic<std::uint64_t> read_bias{0};
    std::atomic<std::uint64_t> bias_revoke{0};
  };

  // Single-writer slot: a relaxed load+store increment cannot be lost and
  // avoids a lock-prefixed RMW on the acquisition hot path.
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  PerThreadSlots<Slot> slots_;
};

}  // namespace oll
