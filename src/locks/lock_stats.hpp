// Optional per-lock operation statistics.
//
// Counters are kept in per-thread cache-aligned slots (no shared-line
// traffic on the hot path — a stats counter that serialized readers would
// defeat the very property being measured) and aggregated on demand.  GOLL,
// FOLL and ROLL update them so tests and users can verify the paper's
// mechanisms directly: e.g. at 100% reads GOLL must report zero queued
// acquisitions — readers never touch the metalock (§3.2) — and FOLL must
// report that almost all readers shared an existing node (§4.2).
#pragma once

#include <cstdint>

#include "locks/per_thread.hpp"

namespace oll {

struct LockStatsSnapshot {
  std::uint64_t read_fast = 0;    // reader acquired without queueing
  std::uint64_t read_queued = 0;  // reader slept in the queue / enqueued node
  std::uint64_t write_fast = 0;   // writer acquired on the fast path
  std::uint64_t write_queued = 0; // writer queued / waited for readers

  std::uint64_t reads() const { return read_fast + read_queued; }
  std::uint64_t writes() const { return write_fast + write_queued; }
};

class LockStats {
 public:
  explicit LockStats(std::uint32_t max_threads) : slots_(max_threads) {}

  void count_read_fast() { ++slots_.local().read_fast; }
  void count_read_queued() { ++slots_.local().read_queued; }
  void count_write_fast() { ++slots_.local().write_fast; }
  void count_write_queued() { ++slots_.local().write_queued; }

  // Aggregate across threads.  Not linearizable with respect to concurrent
  // updates (per-thread counters are plain fields); call at quiescence for
  // exact numbers.
  LockStatsSnapshot snapshot() const {
    LockStatsSnapshot total;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      const LockStatsSnapshot& s =
          const_cast<PerThreadSlots<LockStatsSnapshot>&>(slots_).slot(i);
      total.read_fast += s.read_fast;
      total.read_queued += s.read_queued;
      total.write_fast += s.write_fast;
      total.write_queued += s.write_queued;
    }
    return total;
  }

 private:
  PerThreadSlots<LockStatsSnapshot> slots_;
};

}  // namespace oll
