// GOLL — the General OLL reader-writer lock (paper §3.2, Figure 3).
//
// Shape of the Solaris kernel lock with the central lockword replaced by a
// C-SNZI:
//
//   lock free           <=> C-SNZI open,   surplus == 0
//   write-acquired      <=> C-SNZI closed, surplus == 0
//   read-acquired       <=> surplus != 0   (closed additionally means a
//                                           writer is waiting)
//
// Readers acquire with a single C-SNZI Arrive — under read-only workloads
// the metalock and wait queue are never touched, which is the entire point.
// Writers try CloseIfEmpty as their fast path; on conflict, threads enqueue
// under the metalock and the releasing thread *hands over* ownership before
// waking them (no acquire-after-wake window), exactly as in Solaris.
//
// Fairness policy is the one the paper evaluates (§5.1): readers hand the
// lock to writers, writers hand it to groups of readers, and waiting readers
// coalesce into one group even across queued writers.
//
// Scalable writer path (metalock != tatas; DESIGN.md §10): the Figure 3
// writer release always takes the metalock just to discover the queue is
// empty, so even an uncontended write costs two trips through the
// arbitration lock.  The restructured release elides the metalock when an
// atomic waiter count reads zero and opens the C-SNZI directly; a waiter
// enqueueing concurrently could miss that open, so the release re-checks
// the count after opening while the enqueuer re-checks the C-SNZI after
// publishing its count — a Dekker pair (seq_cst fences between each side's
// store and load) guaranteeing at least one of them observes the other and
// completes the handoff (rescue_missed_open / the enqueue-undo paths).
// metalock=tatas keeps the seed release protocol bit-for-bit as the
// ablation baseline.
//
// Extensions implemented per §3.2.1: try_upgrade() (read -> write when sole
// holder, using the dual root counter trade) and downgrade() (write -> read).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "platform/assert.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "locks/cohort_mcs_lock.hpp"
#include "locks/combining.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"
#include "locks/wait_queue.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

struct GollOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  // §5.1 footnote-1 policy knob: readers join the waiting reader group even
  // if writers queued after it (Solaris-style).  false => strict FIFO groups.
  bool readers_coalesce_over_writers = true;
  // kSpin matches the paper's evaluation; kBlocking parks waiters on a
  // condition variable like the production Solaris lock; kSpinThenPark
  // spins an adaptive budget and then parks on the grant word via the
  // futex-backed substrate (platform/park.hpp, DESIGN.md §16) — the policy
  // that survives oversubscription (bench/oversubscribe.cpp).
  WaitStrategy wait_strategy = WaitStrategy::kSpin;
  // Writer-arbitration metalock: kind (tatas|mcs|cohort), cohort budget and
  // topology (see cohort_mcs_lock.hpp).  With kCohort the same budget also
  // enables the wait queue's domain-preferring writer wake policy.
  MetalockOptions metalock{};
  // Flat-combining/delegation writer mode (locks/combining.hpp, DESIGN.md
  // §15): with_write() closures that lose the acquire race are published to
  // the combining pool and executed by the current holder before it
  // releases.  Off by default — lock()/unlock() callers are unaffected
  // either way (their release drains the pool when enabled).
  bool combine = false;
  // Max closures one holder executes per pre-release drain.  Bounds writer-
  // side occupancy: readers and conventional writers wait at most one
  // budget's worth of delegated critical sections beyond the holder's own.
  std::uint32_t combine_budget = 64;
};

template <typename M = RealMemory>
class GollLock {
 public:
  using Ticket = typename CSnzi<M>::Ticket;

  explicit GollLock(const GollOptions& opts = {})
      : opts_(opts),
        csnzi_(csnzi_options(opts)),
        metalock_(metalock_options(opts)),
        queue_(opts.readers_coalesce_over_writers,
               opts.metalock.kind == MetalockKind::kCohort
                   ? opts.metalock.cohort_budget
                   : 0,
               /*tree_wake=*/opts.metalock.kind != MetalockKind::kTatas),
        combine_(opts.combine ? opts.max_threads : 1),
        fast_release_(opts.metalock.kind != MetalockKind::kTatas),
        dmap_(opts.metalock.topology != nullptr ? opts.metalock.topology
                                                : &Topology::system()),
        locals_(opts.max_threads),
        stats_(opts.max_threads) {}

  GollLock(const GollLock&) = delete;
  GollLock& operator=(const GollLock&) = delete;

  // --- writer side (Figure 3: WriterLock / WriterUnlock) -----------------

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  bool try_lock() { return csnzi_.close_if_empty(); }

  void unlock() {
    // Still exclusive: run delegated closures in-cache before the release
    // protocol (DESIGN.md §15).  One shared load when combining is idle.
    drain_combining();
    trace_event(TraceEventType::kWriteRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    if (fast_release_ && has_waiters_.load(std::memory_order_relaxed) == 0) {
      // Metalock-eliding release (see file comment): no waiters, so the
      // queue needs no update — open the C-SNZI directly.  The fence +
      // re-check pairs with the enqueuers' publish + re-check.
      csnzi_.open();
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (has_waiters_.load(std::memory_order_relaxed) != 0) {
        rescue_missed_open();
      }
      return;
    }
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      group = queue_.dequeue(my_domain());
      sync_waiter_flag();
      if (group.empty()) {
        csnzi_.open();
        return;
      }
      if (group.kind() == ReqKind::kReader) {
        // Hand over to the reader group: surplus = group size, and stay
        // closed iff more writers wait behind them.
        csnzi_.open_with_arrivals(group.count(), queue_.num_writers() != 0);
      }
      // Writer next in line: C-SNZI is already closed with zero surplus,
      // which *is* the write-acquired state; nothing to change.
    }
    fault_perturb(FaultSite::kQueueHandoff);
    stats_.count_unparks(group.signal_all());
  }

  // --- delegated/combined write (DESIGN.md §15) --------------------------
  // Execute `fn(ctx)` under exclusive ownership.  With combining disabled,
  // or on the uncontended fast path, the closure runs on the calling thread
  // between a conventional acquire/release.  Under contention the closure
  // is published to the combining pool and typically executed by the
  // current holder before it releases — zero metalock handoffs, zero queue
  // wakes for this operation.  The call returns only after the closure ran;
  // its exception (if any) is rethrown here.  Closures must not depend on
  // thread identity — see combining.hpp.
  void with_write(void (*fn)(void*), void* ctx) {
    if (!opts_.combine) {
      lock();
      OwnedExec guard{*this};
      fn(ctx);
      return;
    }
    if (csnzi_.close_if_empty()) {
      stats_.count_write_fast();
      OwnedExec guard{*this};
      fn(ctx);
      return;
    }
    // Delegate only when the C-SNZI is CLOSED: closed means a write holder
    // (or a writer hand-off chain) exists to drain us.  Open means a reader
    // epoch or a free lock — no combiner will appear until some writer
    // acquires conventionally, so publishing would just burn the spin
    // budget before falling back (measured: −5% on fig5c at 32 threads).
    // Races are benign: a stale read here only picks the slower-but-correct
    // path, and both paths' fallbacks preserve liveness either way.
    if (csnzi_.query().open) {
      lock();
      OwnedExec guard{*this};
      fn(ctx);
      return;
    }
    trace_event(TraceEventType::kCombinePublish, this);
    typename CombinePool<M>::Slot& slot =
        combine_.publish(fn, ctx, my_domain());
    SpinWait w;
    for (std::uint32_t i = 0; i < kDelegateSpinBudget; ++i) {
      const std::uint32_t st = slot.state.load(std::memory_order_acquire);
      if (st == static_cast<std::uint32_t>(CombineState::kDone)) {
        stats_.count_combine_handoff_saved();
        combine_.consume(slot);  // rethrows the closure's exception, if any
        return;
      }
      // Periodically try to become the holder ourselves — the lock may
      // have gone free with nobody left to combine for us.  Gated on a
      // cached root read so the spin does not pound the root line while a
      // holder is draining.
      if (st == static_cast<std::uint32_t>(CombineState::kPending) &&
          (i & 15u) == 0 && csnzi_.query().open && csnzi_.close_if_empty()) {
        // We hold the lock; nobody else can claim our slot now.  It is
        // either still kPending (take it back and run inline) or a prior
        // holder drove it to kDone before releasing.
        if (combine_.try_retract(slot)) {
          stats_.count_write_fast();
          OwnedExec guard{*this};
          fn(ctx);
          return;
        }
        unlock();  // already executed for us; hand the lock on first
        stats_.count_combine_handoff_saved();
        combine_.consume(slot);
        return;
      }
      fault_perturb(FaultSite::kSpinWait);
      w.pause();
    }
    // Budget exhausted (e.g. a long reader epoch with no write holder to
    // combine): fall back to the conventional queued acquire so delegation
    // can never starve a writer.
    if (combine_.try_retract(slot)) {
      lock();
      OwnedExec guard{*this};
      fn(ctx);
      return;
    }
    // A combiner claimed the slot as we gave up; completion is imminent.
    spin_until([&slot] {
      return slot.state.load(std::memory_order_acquire) ==
             static_cast<std::uint32_t>(CombineState::kDone);
    });
    stats_.count_combine_handoff_saved();
    combine_.consume(slot);
  }

  // --- reader side (Figure 3: ReaderLock / ReaderUnlock) -----------------

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

  bool try_lock_shared() {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());
    Ticket t = csnzi_.arrive();
    if (!t.arrived()) return false;
    local.ticket = t;
    return true;
  }

  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Local& local = locals_.local();
    OLL_DCHECK(local.ticket.arrived());
    Ticket t = local.ticket;
    local.ticket = Ticket{};
    if (csnzi_.depart(t)) return;  // not last, or no writer waiting
    // Last departure from a closed C-SNZI: the lock is now in the
    // write-acquired state and some writer is (or is about to be) queued —
    // writers Close only while holding the metalock, so once we have the
    // metalock the queue cannot be empty.
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      group = queue_.dequeue(my_domain());
      sync_waiter_flag();
      if (group.empty()) {
        // Every queued waiter abandoned its timed wait between our last
        // departure (which observed the closed C-SNZI some waiter had
        // caused) and this dequeue.  Nobody to hand over to: the lock is
        // simply free again.  Before timed acquisition this was impossible
        // — writers Close only with a node already queued — and this path
        // asserted non-emptiness.
        csnzi_.open();
        return;
      }
      if (group.kind() == ReqKind::kReader) {
        // Queue policy let readers overtake the writer that closed the
        // C-SNZI; re-open directly into the read-acquired state, staying
        // closed while a writer still waits.  num_writers can legitimately
        // be zero here since timed acquisition: the writer whose Close we
        // observed may have abandoned, leaving only readers queued behind
        // the closed indicator (§3.2, Fig. 3 comment; DESIGN.md §11).
        csnzi_.open_with_arrivals(group.count(), queue_.num_writers() != 0);
      }
    }
    fault_perturb(FaultSite::kQueueHandoff);
    stats_.count_unparks(group.signal_all());
  }

  // --- timed acquisition (SharedTimedMutex requirements) ------------------
  // Genuine enqueue-and-abandon (DESIGN.md §11): a timed acquisition that
  // misses the fast path joins the wait queue exactly like its untimed
  // sibling — same coalescing, same Dekker publication — and on timeout
  // unlinks its node under the metalock (WaitQueue::try_abandon).  When the
  // unlink fails the group was already dequeued: ownership was transferred
  // before the grant flag was set, so the grant is consumed and the call
  // succeeds even past the deadline (the standard timed contract permits
  // this; discarding the grant would strand the lock).  An already-expired
  // deadline degenerates to the try_ fast path: it never waits or enqueues.

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    const bool ok = timed_lock_impl(deadline);
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_write_acquire(d);
    }
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    const bool ok = timed_lock_shared_impl(deadline);
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_read_acquire(d);
    }
    return ok;
  }

  // --- write upgrade / downgrade (§3.2.1) --------------------------------

  // Caller holds the lock for reading.  Atomically upgrade to writing iff
  // the caller is the sole lock holder and no writer is waiting; on failure
  // the caller still holds the read lock.
  bool try_upgrade() {
    Local& local = locals_.local();
    OLL_DCHECK(local.ticket.arrived());
    if (!csnzi_.try_upgrade_exclusive(local.ticket)) return false;
    local.ticket = Ticket{};
    return true;
  }

  // Caller holds the lock for writing; convert to reading.  Waiting readers
  // are granted alongside the caller so they are not stranded behind an
  // open C-SNZI they already queued against.
  void downgrade() {
    // Last moment of exclusivity: run delegated closures before converting,
    // or they would wait out the entire reader epoch we are about to start.
    drain_combining();
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      if (!queue_.empty() && queue_.head_kind() == ReqKind::kReader) {
        group = queue_.dequeue();
        sync_waiter_flag();
        csnzi_.open_with_arrivals(1 + group.count(),
                                  queue_.num_writers() != 0);
      } else {
        // Either no waiters, or a writer is next: stay closed in the latter
        // case so the writer's turn comes when we depart.
        csnzi_.open_with_arrivals(1, !queue_.empty());
      }
      local.ticket = csnzi_.direct_ticket();
    }
    fault_perturb(FaultSite::kQueueHandoff);
    stats_.count_unparks(group.signal_all());
  }

  // --- introspection ------------------------------------------------------
  SnziQuery state() const { return csnzi_.query(); }

  // Approximate: some delegated closure is published and not yet claimed.
  // Lets tests (mechanism_test.cpp) sequence a drain deterministically.
  bool combining_pending() const {
    return opts_.combine && combine_.maybe_pending();
  }

  // Fast-path vs queued acquisition counts (see lock_stats.hpp); exact at
  // quiescence.  At 100% reads, read_queued and write_* must be zero — the
  // §3.2 claim that read-only workloads never touch the metalock.
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    s.csnzi = csnzi_.stats();
    const MetalockStatsSnapshot m = metalock_.stats();
    s.meta_handoffs = m.handoffs;
    s.meta_cohort_hits = m.cohort_hits;
    s.meta_cross_domain = m.cross_domain;
    s.wake_cohort_hits = queue_.wake_cohort_hits();
    s.wake_cross_domain = queue_.wake_cross_domain();
    return s;
  }

 private:
  // Unlock-on-scope-exit for closures run inline by with_write: the unlock
  // fires (and drains the combining pool) whether fn returns or throws.
  struct OwnedExec {
    GollLock& l;
    ~OwnedExec() { l.unlock(); }
  };

  // Execute pending delegated closures while still exclusive (top of every
  // write release).  Budget-bounded — see GollOptions::combine_budget — so
  // one holder cannot occupy the lock unboundedly on other threads' behalf.
  void drain_combining() {
    if (!opts_.combine || !combine_.claim_pending()) return;
    const ObsTimer t = obs_begin(TraceEventType::kCombineBegin, this);
    const std::uint32_t n =
        combine_.drain(opts_.combine_budget, my_domain());
    obs_end(TraceEventType::kCombineEnd, this, t);
    if (n != 0) {
      stats_.count_combined_ops(n);
      stats_.count_combine_batch();
    }
  }

  // Figure 3's WriterLock body.  The public lock() wraps it in the
  // observability begin/end pair; the queued wait is bracketed separately so
  // traces show the waiting interval and the writer-wait histogram measures
  // it (the bound PR 2's sticky re-arm budget promises).
  void lock_impl() {
    if (csnzi_.close_if_empty()) {
      stats_.count_write_fast();  // uncontended fast path
      return;
    }
    stats_.count_write_queued();
    typename WaitQueue<M>::WaitNode waiter;
    waiter.arm(opts_.wait_strategy, my_domain());
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      if (csnzi_.close()) return;  // lock became free; Close acquired it
      const bool was_empty = queue_.empty();
      queue_.enqueue(&waiter, ReqKind::kWriter);
      if (fast_release_ && was_empty) {
        // Only the empty->nonempty transition can race with the eliding
        // release — existing waiters are visible to its first flag check.
        has_waiters_.store(1, std::memory_order_relaxed);
        // Dekker re-check (see unlock): an eliding release may have opened
        // the C-SNZI without observing the flag above.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (csnzi_.query().open && csnzi_.close()) {
          // The lock went free and the re-close acquired it: dequeue
          // ourselves and own it.  (A failed re-close means a new holder
          // closed first or we closed over fresh readers; either way the
          // next release/last departure sees our node and hands off.)
          queue_.remove(&waiter);
          sync_waiter_flag();
          return;
        }
      }
    }
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    waiter.wait();  // ownership handed over before the flag is set
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
    note_park(waiter);
  }

  // Figure 3's ReaderLock body (see lock_shared for the observability shell).
  void lock_shared_impl() {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());  // non-recursive
    while (true) {
      local.ticket = csnzi_.arrive();
      if (local.ticket.arrived()) {
        stats_.count_read_fast();  // no queueing: one C-SNZI arrival
        return;
      }
      if (fast_release_ && wait_for_reopen()) {
        continue;  // the write epoch ended; retry the arrival fast path
      }
      typename WaitQueue<M>::WaitNode waiter;
      waiter.arm(opts_.wait_strategy, my_domain());
      {
        std::lock_guard<Metalock<M>> meta(metalock_);
        if (csnzi_.query().open) continue;  // reopened meanwhile; retry
        const bool was_empty = queue_.empty();
        queue_.enqueue(&waiter, ReqKind::kReader);
        if (fast_release_ && was_empty) {
          has_waiters_.store(1, std::memory_order_relaxed);
          // Dekker re-check (see unlock): if an eliding release opened the
          // C-SNZI without seeing the flag, undo the enqueue and retry the
          // arrival fast path rather than wait for its rescue.
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (csnzi_.query().open) {
            queue_.remove(&waiter);
            sync_waiter_flag();
            continue;
          }
        }
      }
      // The releasing thread pre-arrives at the root on our behalf
      // (OpenWithArrivals), so we will depart with a direct ticket.
      local.ticket = csnzi_.direct_ticket();
      stats_.count_read_queued();
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      waiter.wait();
      obs_end(TraceEventType::kQueueExit, this, qt);
      note_park(waiter);
      return;
    }
  }

  // Timed WriterLock (see the public comment): fast path, enqueue with the
  // full Dekker publication, deadline-bounded wait, abandon-or-consume.
  bool timed_lock_impl(std::chrono::steady_clock::time_point deadline) {
    if (csnzi_.close_if_empty()) {
      stats_.count_write_fast();
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      stats_.count_write_timeout();
      return false;
    }
    typename WaitQueue<M>::WaitNode waiter;
    waiter.arm(opts_.wait_strategy, my_domain());
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      if (csnzi_.close()) {
        stats_.count_write_fast();
        return true;  // lock became free; Close acquired it
      }
      const bool was_empty = queue_.empty();
      queue_.enqueue(&waiter, ReqKind::kWriter);
      if (fast_release_ && was_empty) {
        has_waiters_.store(1, std::memory_order_relaxed);
        // Dekker re-check fence, as in lock() — pairs with the eliding
        // release's fence in unlock().
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (csnzi_.query().open && csnzi_.close()) {
          queue_.remove(&waiter);
          sync_waiter_flag();
          stats_.count_write_queued();
          return true;
        }
      }
    }
    stats_.count_write_queued();
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    if (waiter.wait_until_granted(deadline)) {
      const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
      if (qt.armed) stats_.record_writer_wait(qd);
      note_park(waiter);
      return true;  // granted: ownership was handed over before the flag
    }
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      if (queue_.try_abandon(&waiter)) {
        sync_waiter_flag();
        obs_end(TraceEventType::kQueueExit, this, qt);
        stats_.count_write_timeout();
        stats_.count_write_abandon();
        note_park(waiter);
        return false;
      }
    }
    // Our group was dequeued before we could abandon: a grant is in flight
    // (or delivered) and ownership is already ours — consume it.
    waiter.wait();
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
    note_park(waiter);
    return true;
  }

  // Timed ReaderLock: same retry structure as lock_shared_impl with a
  // deadline check per round and the abandon-or-consume epilogue.  A reader
  // that abandons also drains its C-SNZI sticky window: the dense index may
  // be released right after we return, and the successor recycling it must
  // find a clean slot even if it never triggers the epoch guard.
  bool timed_lock_shared_impl(std::chrono::steady_clock::time_point deadline) {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());  // non-recursive
    while (true) {
      Ticket ticket = csnzi_.arrive();
      if (ticket.arrived()) {
        local.ticket = ticket;
        stats_.count_read_fast();
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        csnzi_.drain_thread_sticky();
        stats_.count_read_timeout();
        return false;
      }
      if (fast_release_ && wait_for_reopen()) {
        continue;  // the write epoch ended; retry the arrival fast path
      }
      typename WaitQueue<M>::WaitNode waiter;
      waiter.arm(opts_.wait_strategy, my_domain());
      {
        std::lock_guard<Metalock<M>> meta(metalock_);
        if (csnzi_.query().open) continue;  // reopened meanwhile; retry
        const bool was_empty = queue_.empty();
        queue_.enqueue(&waiter, ReqKind::kReader);
        if (fast_release_ && was_empty) {
          has_waiters_.store(1, std::memory_order_relaxed);
          // Dekker re-check fence, as in lock_shared() — pairs with the
          // eliding release's fence in unlock().
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (csnzi_.query().open) {
            queue_.remove(&waiter);
            sync_waiter_flag();
            continue;
          }
        }
      }
      stats_.count_read_queued();
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      if (waiter.wait_until_granted(deadline)) {
        // Forward tree-wake children before anything else (wait() returns
        // immediately — the flag is already set — and fans out).
        waiter.wait();
        obs_end(TraceEventType::kQueueExit, this, qt);
        note_park(waiter);
        local.ticket = csnzi_.direct_ticket();
        return true;
      }
      {
        std::lock_guard<Metalock<M>> meta(metalock_);
        if (queue_.try_abandon(&waiter)) {
          sync_waiter_flag();
          obs_end(TraceEventType::kQueueExit, this, qt);
          csnzi_.drain_thread_sticky();
          stats_.count_read_timeout();
          stats_.count_read_abandon();
          note_park(waiter);
          return false;
        }
      }
      // Dequeued before we could abandon: consume the in-flight grant (and
      // fan it out to any tree-wake children) — we own a read slot that the
      // releaser pre-arrived for us.
      waiter.wait();
      obs_end(TraceEventType::kQueueExit, this, qt);
      note_park(waiter);
      local.ticket = csnzi_.direct_ticket();
      return true;
    }
  }

  // Bounded spin on the C-SNZI root waiting for the write epoch to end
  // (metalock != tatas): a queued reader costs two metalock round trips
  // plus a wake handoff, so a reader that merely caught a short writer
  // critical section spins for the reopen instead — off the metalock, off
  // the wait queue, and invalidation-free (the root line is only re-read
  // when it actually changes).  While *writers* still wait, the C-SNZI
  // stays closed, so spinners cannot overtake queued writers; once the
  // budget expires the caller falls back to the queue, preserving liveness
  // under writer bursts and the coalescing fairness policy.
  bool wait_for_reopen() {
    SpinWait w;
    for (std::uint32_t i = 0; i < kReopenSpinBudget; ++i) {
      if (csnzi_.query().open) return true;
      fault_perturb(FaultSite::kSpinWait);
      w.pause();
    }
    return false;
  }

  // Slow half of the eliding release: we opened the C-SNZI believing the
  // queue empty, then the re-check observed a waiter that may have missed
  // the open.  Reclaim the lock under the metalock and hand it off; if the
  // re-close fails, some new holder (a fast-path writer, or readers we just
  // closed over) took the lock first and its own release path — or the last
  // reader's departure — performs the handoff instead.
  void rescue_missed_open() {
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<Metalock<M>> meta(metalock_);
      if (queue_.empty()) return;  // the enqueuer rescued itself
      if (!csnzi_.close()) return;
      group = queue_.dequeue(my_domain());
      sync_waiter_flag();
      OLL_CHECK(!group.empty());
      if (group.kind() == ReqKind::kReader) {
        csnzi_.open_with_arrivals(group.count(), queue_.num_writers() != 0);
      }
    }
    fault_perturb(FaultSite::kQueueHandoff);
    stats_.count_unparks(group.signal_all());
  }

  // Re-derive the queue-nonempty flag after a dequeue/remove.  Mutated only
  // under the metalock; read without it by the eliding unlock().  Written
  // only on empty<->nonempty transitions so the line stays quiet while
  // readers pile onto an existing group.  The seq_cst fences at the
  // read/publish sites order the flag stores against the C-SNZI open/query
  // ops of the Dekker protocol.
  void sync_waiter_flag() {
    if (fast_release_ && queue_.empty() &&
        has_waiters_.load(std::memory_order_relaxed) != 0) {
      has_waiters_.store(0, std::memory_order_relaxed);
    }
  }

  // The C-SNZI sizes its per-thread state to the lock's thread bound unless
  // the caller asked for a different bound explicitly.
  static CSnziOptions csnzi_options(const GollOptions& opts) {
    CSnziOptions o = opts.csnzi;
    if (o.max_threads == 0) o.max_threads = opts.max_threads;
    return o;
  }

  static MetalockOptions metalock_options(const GollOptions& opts) {
    MetalockOptions o = opts.metalock;
    if (o.max_threads == 0) o.max_threads = opts.max_threads;
    // The lock's wait policy covers its metalock too: a thread that parks
    // in the wait queue but spins on the metalock would reintroduce the
    // oversubscription burn the policy exists to avoid.
    o.wait_policy = opts.wait_strategy;
    return o;
  }

  // Releasing/enqueueing thread's LLC domain, for the wait queue's cohort
  // writer handoff.  One relaxed table lookup; free on single-domain hosts.
  std::uint32_t my_domain() const { return dmap_.domain_of(this_thread_index()); }

  // Per-lock park attribution: fold the wait's park outcome into LockStats.
  // One branch when the waiter never parked (kSpin / uncontended park path).
  void note_park(const typename WaitQueue<M>::WaitNode& w) {
    stats_.count_park_outcome(w.park_outcome.parks, w.park_outcome.spurious,
                              w.park_outcome.wait_ns);
  }

  struct Local {
    Ticket ticket{};
  };

  // Reader spin-for-reopen budget (pause iterations) before queueing.
  static constexpr std::uint32_t kReopenSpinBudget = 256;
  // Delegating writer's wait budget (pause iterations on its own slot,
  // with a close attempt every 16th) before retract-and-queue.  Generous:
  // the slot line is thread-local until a combiner completes it, so the
  // spin is cheap, and the bound only exists for liveness when no write
  // holder shows up to combine (see with_write's fallback).
  static constexpr std::uint32_t kDelegateSpinBudget = 1024;

  GollOptions opts_;
  CSnzi<M> csnzi_;
  Metalock<M> metalock_;
  WaitQueue<M> queue_;
  // Delegated-writer publication pool (sized 1 when combining is off).
  CombinePool<M> combine_;
  // Scalable writer path (metalock != tatas): eliding release + tree wake.
  // tatas keeps the seed protocol as the ablation baseline.
  const bool fast_release_;
  DomainMap dmap_;
  // Queue-nonempty flag for the eliding release; see sync_waiter_flag().
  typename M::template Atomic<std::uint32_t> has_waiters_{0};
  PerThreadSlots<Local> locals_;
  LockStats stats_;
};

}  // namespace oll
