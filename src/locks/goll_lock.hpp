// GOLL — the General OLL reader-writer lock (paper §3.2, Figure 3).
//
// Shape of the Solaris kernel lock with the central lockword replaced by a
// C-SNZI:
//
//   lock free           <=> C-SNZI open,   surplus == 0
//   write-acquired      <=> C-SNZI closed, surplus == 0
//   read-acquired       <=> surplus != 0   (closed additionally means a
//                                           writer is waiting)
//
// Readers acquire with a single C-SNZI Arrive — under read-only workloads
// the metalock and wait queue are never touched, which is the entire point.
// Writers try CloseIfEmpty as their fast path; on conflict, threads enqueue
// under the metalock and the releasing thread *hands over* ownership before
// waking them (no acquire-after-wake window), exactly as in Solaris.
//
// Fairness policy is the one the paper evaluates (§5.1): readers hand the
// lock to writers, writers hand it to groups of readers, and waiting readers
// coalesce into one group even across queued writers.
//
// Extensions implemented per §3.2.1: try_upgrade() (read -> write when sole
// holder, using the dual root counter trade) and downgrade() (write -> read).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "platform/assert.hpp"
#include "platform/memory.hpp"
#include "platform/trace.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/wait_queue.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

struct GollOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  // §5.1 footnote-1 policy knob: readers join the waiting reader group even
  // if writers queued after it (Solaris-style).  false => strict FIFO groups.
  bool readers_coalesce_over_writers = true;
  // kSpin matches the paper's evaluation; kBlocking parks waiters on a
  // condition variable like the production Solaris lock (see wait_queue.hpp).
  WaitStrategy wait_strategy = WaitStrategy::kSpin;
};

template <typename M = RealMemory>
class GollLock {
 public:
  using Ticket = typename CSnzi<M>::Ticket;

  explicit GollLock(const GollOptions& opts = {})
      : opts_(opts),
        csnzi_(csnzi_options(opts)),
        queue_(opts.readers_coalesce_over_writers),
        locals_(opts.max_threads),
        stats_(opts.max_threads) {}

  GollLock(const GollLock&) = delete;
  GollLock& operator=(const GollLock&) = delete;

  // --- writer side (Figure 3: WriterLock / WriterUnlock) -----------------

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  bool try_lock() { return csnzi_.close_if_empty(); }

  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      group = queue_.dequeue();
      if (group.empty()) {
        csnzi_.open();
        return;
      }
      if (group.kind() == ReqKind::kReader) {
        // Hand over to the reader group: surplus = group size, and stay
        // closed iff more writers wait behind them.
        csnzi_.open_with_arrivals(group.count(), queue_.num_writers() != 0);
      }
      // Writer next in line: C-SNZI is already closed with zero surplus,
      // which *is* the write-acquired state; nothing to change.
    }
    group.signal_all();
  }

  // --- reader side (Figure 3: ReaderLock / ReaderUnlock) -----------------

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

  bool try_lock_shared() {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());
    Ticket t = csnzi_.arrive();
    if (!t.arrived()) return false;
    local.ticket = t;
    return true;
  }

  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    Local& local = locals_.local();
    OLL_DCHECK(local.ticket.arrived());
    Ticket t = local.ticket;
    local.ticket = Ticket{};
    if (csnzi_.depart(t)) return;  // not last, or no writer waiting
    // Last departure from a closed C-SNZI: the lock is now in the
    // write-acquired state and some writer is (or is about to be) queued —
    // writers Close only while holding the metalock, so once we have the
    // metalock the queue cannot be empty.
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      group = queue_.dequeue();
      OLL_CHECK(!group.empty());
      if (group.kind() == ReqKind::kReader) {
        // Queue policy let readers overtake the writer that closed the
        // C-SNZI; re-open directly into the read-acquired state, keeping it
        // closed because that writer still waits (§3.2, Fig. 3 comment).
        OLL_DCHECK(queue_.num_writers() != 0);
        csnzi_.open_with_arrivals(group.count(), queue_.num_writers() != 0);
      }
    }
    group.signal_all();
  }

  // --- timed acquisition (SharedTimedMutex requirements) ------------------
  // Deadline-bounded retries over the try fast paths.  These never enqueue,
  // so a timeout leaves no queue state behind — at the cost of not getting
  // the queue's fairness while waiting (acceptable for timed waits).

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_until(std::chrono::steady_clock::now() + d,
                     [&] { return try_lock(); });
  }

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    return try_until(tp, [&] { return try_lock(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_until(std::chrono::steady_clock::now() + d,
                     [&] { return try_lock_shared(); });
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    return try_until(tp, [&] { return try_lock_shared(); });
  }

  // --- write upgrade / downgrade (§3.2.1) --------------------------------

  // Caller holds the lock for reading.  Atomically upgrade to writing iff
  // the caller is the sole lock holder and no writer is waiting; on failure
  // the caller still holds the read lock.
  bool try_upgrade() {
    Local& local = locals_.local();
    OLL_DCHECK(local.ticket.arrived());
    if (!csnzi_.try_upgrade_exclusive(local.ticket)) return false;
    local.ticket = Ticket{};
    return true;
  }

  // Caller holds the lock for writing; convert to reading.  Waiting readers
  // are granted alongside the caller so they are not stranded behind an
  // open C-SNZI they already queued against.
  void downgrade() {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());
    typename WaitQueue<M>::GroupRef group;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      if (!queue_.empty() && queue_.head_kind() == ReqKind::kReader) {
        group = queue_.dequeue();
        csnzi_.open_with_arrivals(1 + group.count(),
                                  queue_.num_writers() != 0);
      } else {
        // Either no waiters, or a writer is next: stay closed in the latter
        // case so the writer's turn comes when we depart.
        csnzi_.open_with_arrivals(1, !queue_.empty());
      }
      local.ticket = csnzi_.direct_ticket();
    }
    group.signal_all();
  }

  // --- introspection ------------------------------------------------------
  SnziQuery state() const { return csnzi_.query(); }

  // Fast-path vs queued acquisition counts (see lock_stats.hpp); exact at
  // quiescence.  At 100% reads, read_queued and write_* must be zero — the
  // §3.2 claim that read-only workloads never touch the metalock.
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    s.csnzi = csnzi_.stats();
    return s;
  }

 private:
  // Figure 3's WriterLock body.  The public lock() wraps it in the
  // observability begin/end pair; the queued wait is bracketed separately so
  // traces show the waiting interval and the writer-wait histogram measures
  // it (the bound PR 2's sticky re-arm budget promises).
  void lock_impl() {
    if (csnzi_.close_if_empty()) {
      stats_.count_write_fast();  // uncontended fast path
      return;
    }
    stats_.count_write_queued();
    typename WaitQueue<M>::WaitNode waiter;
    waiter.strategy = opts_.wait_strategy;
    {
      std::lock_guard<TatasLock<M>> meta(metalock_);
      if (csnzi_.close()) return;  // lock became free; Close acquired it
      queue_.enqueue(&waiter, ReqKind::kWriter);
    }
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    waiter.wait();  // ownership handed over before the flag is set
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
  }

  // Figure 3's ReaderLock body (see lock_shared for the observability shell).
  void lock_shared_impl() {
    Local& local = locals_.local();
    OLL_DCHECK(!local.ticket.arrived());  // non-recursive
    while (true) {
      local.ticket = csnzi_.arrive();
      if (local.ticket.arrived()) {
        stats_.count_read_fast();  // no queueing: one C-SNZI arrival
        return;
      }
      typename WaitQueue<M>::WaitNode waiter;
      waiter.strategy = opts_.wait_strategy;
      {
        std::lock_guard<TatasLock<M>> meta(metalock_);
        if (csnzi_.query().open) continue;  // reopened meanwhile; retry
        queue_.enqueue(&waiter, ReqKind::kReader);
      }
      // The releasing thread pre-arrives at the root on our behalf
      // (OpenWithArrivals), so we will depart with a direct ticket.
      local.ticket = csnzi_.direct_ticket();
      stats_.count_read_queued();
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      waiter.wait();
      obs_end(TraceEventType::kQueueExit, this, qt);
      return;
    }
  }

  // The C-SNZI sizes its per-thread state to the lock's thread bound unless
  // the caller asked for a different bound explicitly.
  static CSnziOptions csnzi_options(const GollOptions& opts) {
    CSnziOptions o = opts.csnzi;
    if (o.max_threads == 0) o.max_threads = opts.max_threads;
    return o;
  }

  template <typename TimePoint, typename Try>
  bool try_until(const TimePoint& deadline, Try&& attempt) {
    ExponentialBackoff backoff;
    while (true) {
      if (attempt()) return true;
      if (TimePoint::clock::now() >= deadline) return false;
      backoff.backoff();
    }
  }

  struct Local {
    Ticket ticket{};
  };

  GollOptions opts_;
  CSnzi<M> csnzi_;
  TatasLock<M> metalock_;
  WaitQueue<M> queue_;
  PerThreadSlots<Local> locals_;
  LockStats stats_;
};

}  // namespace oll
