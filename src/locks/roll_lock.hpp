// ROLL — reader-preference OLL reader-writer lock (paper §4.3).
//
// FOLL with the FIFO guarantee relaxed: a reader may overtake waiting
// writers to join a reader node whose readers are still *waiting* for the
// lock (spin flag still set).  The paper sketches the construction in one
// paragraph: make the queue doubly linked so readers can search backwards
// from the tail for such a node, and cache a pointer to the last known
// waiting reader node in the lock ("the optimization reduces the number of
// searches"); a thread that fails to join clears the pointer.
//
// Design decisions the sketch leaves open (documented per DESIGN.md §4):
//
//  * DEFERRED CLOSE.  In FOLL a writer closes its reader-node predecessor's
//    C-SNZI the moment it enqueues, which would make mid-queue joining
//    impossible.  In ROLL the writer waits until the node's group has been
//    granted the lock (spin == 0, after which searching readers no longer
//    join it) and only then closes.  Readers that raced past the spin check
//    just before the flip and arrived before the Close simply hold the lock
//    as extra group members; the writer's Close returns false and it waits
//    for the last departure as usual.  If the group drains before the Close
//    (surplus zero, still open), Close returns true and the writer inherits
//    the node's queue position exactly as in FOLL.
//
//  * BOUNDED TRAVERSAL.  prev pointers of recycled nodes are stale, so the
//    backwards search is a bounded heuristic (kMaxScanHops).  A stale hop
//    can only reach (a) a node outside every queue — its C-SNZI is closed,
//    so the join's Arrive fails — or (b) a node legitimately queued in this
//    lock (nodes are per-lock pooled), which is a correct if unfair join
//    target.  Exclusion is never at risk; we fall back to tail-enqueue.
//
//  * HINT MAINTENANCE.  The hint is set by the enqueuer of a waiting reader
//    node and by any thread that joins one; it is cleared (CAS, so a newer
//    hint survives) by threads that find it unusable.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/park.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "locks/lock_stats.hpp"
#include "locks/per_thread.hpp"
#include "locks/timed.hpp"
#include "locks/wait_queue.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

struct RollOptions {
  std::uint32_t max_threads = 512;
  CSnziOptions csnzi{};
  // LLC-domain source for the NUMA-aware reader-node pool search and the
  // writer-handoff locality counters (see FollOptions::topology — ROLL's
  // writer arbitration is likewise already a local-spin MCS chain).
  const Topology* topology = nullptr;
  // Max backwards hops when searching for a waiting reader node; 0 disables
  // traversal so only the hint is used (ablation knob).
  std::uint32_t max_scan_hops = 8;
  // Disable the last-reader-node hint entirely (ablation knob, §4.3).
  bool use_hint = true;
  // How queued threads block on their node's spin flag (see
  // FollOptions::wait_policy; kBlocking degrades to kSpin here too).
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

template <typename M = RealMemory>
class RollLock {
 public:
  explicit RollLock(const RollOptions& opts = {})
      : opts_(opts),
        dmap_(opts.topology != nullptr
                  ? opts.topology
                  : (opts.csnzi.topology != nullptr ? opts.csnzi.topology
                                                    : &Topology::system())),
        use_park_(kParkable &&
                  opts.wait_policy == WaitPolicy::kSpinThenPark),
        locals_(opts.max_threads),
        pool_size_(opts.max_threads),
        stats_(opts.max_threads) {
    CSnziOptions copts = opts.csnzi;
    // Size per-thread C-SNZI state to the lock's thread bound by default.
    if (copts.max_threads == 0) copts.max_threads = opts.max_threads;
    pool_ = std::make_unique<Node[]>(pool_size_);
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      pool_[i].init_reader(copts);
      pool_[i].ring_next = &pool_[(i + 1) % pool_size_];
      pool_[i].domain = dmap_.domain_of(i);
    }
    link_domain_rings();
  }

  RollLock(const RollLock&) = delete;
  RollLock& operator=(const RollLock&) = delete;

  // --- writer side ---------------------------------------------------------

  void lock() {
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    lock_impl();
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) stats_.record_write_acquire(d);
  }

  void unlock() {
    trace_event(TraceEventType::kWriteRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Node* w = &locals_.local().wnode;
    Node* succ = w->qnext.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = w;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;
      }
      spin_until([&] {
        succ = w->qnext.load(std::memory_order_acquire);
        return succ != nullptr;
      });
    }
    count_handoff(succ->domain);  // read before granting: succ may recycle
    fault_perturb(FaultSite::kQueueHandoff);
    grant_spin(succ);
    w->qnext.store(nullptr, std::memory_order_relaxed);
  }

  // --- reader side -----------------------------------------------------------

  void lock_shared() {
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    lock_shared_impl();
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) stats_.record_read_acquire(d);
  }

 private:
  struct Node;  // defined below with the rest of the queue-node machinery

  // §4.3 WriterLock body (the public lock() wraps it in the observability
  // begin/end pair).  With the deferred close, a writer behind a reader node
  // first waits for the group to be *granted* (queue wait), then — if its
  // Close caught live readers — for the group to drain, which is the
  // interval the writer-wait histogram measures.
  void lock_impl() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();  // published by the release stores below
    w->qnext.store(nullptr, std::memory_order_relaxed);
    w->prev.store(nullptr, std::memory_order_relaxed);
    Node* old_tail = tail_.exchange(w, std::memory_order_acq_rel);
    if (old_tail == nullptr) {
      stats_.count_write_fast();
      return;
    }
    stats_.count_write_queued();
    w->spin.store(1, std::memory_order_relaxed);
    w->prev.store(old_tail, std::memory_order_release);
    old_tail->qnext.store(w, std::memory_order_release);
    if (old_tail->kind == kWriterNode) {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(w->spin);
      obs_end(TraceEventType::kQueueExit, this, qt);
      return;
    }
    // Reader predecessor: wait for it to be opened by its enqueuer, then —
    // unlike FOLL — wait for its group to be GRANTED the lock before
    // closing, so overtaking readers can keep joining it while it waits.
    spin_until([&] { return old_tail->csnzi->query().open; });
    {
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(old_tail->spin);
      obs_end(TraceEventType::kQueueExit, this, qt);
    }
    if (old_tail->csnzi->close()) {
      // Group fully drained before the close: inherit its queue position.
      old_tail->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(old_tail);
    } else {
      // Live readers hold the group: this spin IS the drain interval.
      const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
      await_grant(w->spin);
      const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
      if (qt.armed) stats_.record_writer_wait(qd);
    }
  }

  // §4.3 ReaderLock body (see lock_shared for the observability shell).
  void lock_shared_impl() {
    Local& local = locals_.local();
    Node* rnode = nullptr;
    while (true) {
      // 1. Try the last-known waiting reader node (§4.3 optimization).
      if (opts_.use_hint) {
        Node* h = hint_.load(std::memory_order_acquire);
        if (h != nullptr) {
          if (try_join_waiting(h, local)) {
            if (rnode != nullptr) free_reader_node(rnode);
            stats_.count_read_queued();  // joined a *waiting* group
            wait_granted(h);
            return;
          }
          hint_.compare_exchange_strong(h, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
        }
      }
      Node* tail = tail_.load(std::memory_order_acquire);
      if (tail == nullptr) {
        // Empty queue: enqueue a fresh, immediately-granted reader node.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(0, std::memory_order_relaxed);
        rnode->prev.store(nullptr, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_fast();  // empty queue: no waiting
            return;
          }
          rnode = nullptr;
        }
      } else if (tail->kind == kReaderNode) {
        // Reader node at the tail: share it whether waiting or active.
        local.ticket = tail->csnzi->arrive();
        if (local.ticket.arrived()) {
          if (rnode != nullptr) free_reader_node(rnode);
          local.depart_from = tail;
          if (tail->spin.load(std::memory_order_acquire) != 0) {
            if (opts_.use_hint) hint_.store(tail, std::memory_order_release);
            stats_.count_read_queued();
          } else {
            stats_.count_read_fast();  // joined an already-granted group
          }
          wait_granted(tail);
          return;
        }
      } else {
        // Writer at the tail.  Reader preference: search backwards for a
        // still-waiting reader node to join before queuing a new one.
        if (Node* found = scan_for_waiting_reader(tail, local)) {
          if (rnode != nullptr) free_reader_node(rnode);
          if (opts_.use_hint) hint_.store(found, std::memory_order_release);
          stats_.count_read_queued();
          wait_granted(found);
          return;
        }
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(1, std::memory_order_relaxed);
        Node* expected = tail;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->prev.store(tail, std::memory_order_release);
          tail->qnext.store(rnode, std::memory_order_release);
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            if (opts_.use_hint) hint_.store(rnode, std::memory_order_release);
            stats_.count_read_queued();  // waiting behind a writer
            wait_granted(rnode);
            return;
          }
          rnode = nullptr;
        }
      }
    }
  }

 public:
  void unlock_shared() {
    trace_event(TraceEventType::kReadRelease, this);
    fault_preempt_point(FaultSite::kHolderPreemption);
    Local& local = locals_.local();
    Node* node = local.depart_from;
    OLL_DCHECK(node != nullptr);
    local.depart_from = nullptr;
    depart_and_handoff(node, local.ticket);
  }

  // --- non-blocking acquisition ------------------------------------------

  // Conservative (see FollLock::try_lock): may fail while a drained reader
  // node still occupies the tail, which the SharedMutex contract permits.
  bool try_lock() {
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();
    w->qnext.store(nullptr, std::memory_order_relaxed);
    w->prev.store(nullptr, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, w,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  bool try_lock_shared() {
    Local& local = locals_.local();
    Node* tail = tail_.load(std::memory_order_acquire);
    if (tail == nullptr) {
      Node* rnode = alloc_reader_node();
      rnode->spin.store(0, std::memory_order_relaxed);
      Node* expected = nullptr;
      if (!tail_.compare_exchange_strong(expected, rnode,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        free_reader_node(rnode);
        return false;
      }
      rnode->csnzi->open();
      local.ticket = rnode->csnzi->arrive();
      if (local.ticket.arrived()) {
        local.depart_from = rnode;
        return true;
      }
      return false;
    }
    if (tail->kind != kReaderNode ||
        tail->spin.load(std::memory_order_acquire) != 0) {
      return false;
    }
    typename CSnzi<M>::Ticket t = tail->csnzi->arrive();
    if (!t.arrived()) return false;
    if (tail->spin.load(std::memory_order_acquire) != 0) {
      depart_and_handoff(tail, t);  // joined a recycled waiting group
      return false;
    }
    local.ticket = t;
    local.depart_from = tail;
    return true;
  }

  // --- timed acquisition (DESIGN.md §11) ----------------------------------

 private:
  // Timed-writer reclaim of a drained reader tail; see
  // FollLock::timed_write_reclaim for the full argument.  A reader group
  // that drains in place stays at the tail until a blocking writer closes
  // it, so the empty-tail try_lock alone starves the timed writer forever
  // after any read.  When the tail is a granted, open, zero-surplus reader
  // node we run the blocking writer's enqueue-and-close takeover; the tail
  // CAS is the commit point, and the deadline can be overshot by the
  // critical sections of readers that race in (or, under ROLL's reader
  // preference, overtake) between the query and the Close.
  bool timed_write_reclaim() {
    Node* tail = tail_.load(std::memory_order_acquire);
    if (tail == nullptr || tail->kind != kReaderNode) return false;
    if (tail->spin.load(std::memory_order_acquire) != 0) return false;
    const SnziQuery q = tail->csnzi->query();
    if (!q.open || q.nonzero) return false;
    Node* w = &locals_.local().wnode;
    w->domain = my_domain();
    w->qnext.store(nullptr, std::memory_order_relaxed);
    w->prev.store(nullptr, std::memory_order_relaxed);
    w->spin.store(1, std::memory_order_relaxed);
    Node* expected = tail;
    if (!tail_.compare_exchange_strong(expected, w,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return false;  // tail moved under us: no commitment made
    }
    stats_.count_write_queued();
    w->prev.store(tail, std::memory_order_release);
    tail->qnext.store(w, std::memory_order_release);
    // Mirror lock_impl's order: the group is granted (spin wait only
    // matters in the recycle-and-re-enqueue ABA window), then Close.
    await_grant(tail->spin);
    if (tail->csnzi->close()) {
      tail->qnext.store(nullptr, std::memory_order_relaxed);
      free_reader_node(tail);
      return true;
    }
    // Readers joined before the Close; the last to depart signals us.
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    await_grant(w->spin);
    const std::uint64_t qd = obs_end(TraceEventType::kQueueExit, this, qt);
    if (qt.armed) stats_.record_writer_wait(qd);
    return true;
  }

 public:
  // Writer side: deadline-bounded retry over the empty-tail try_lock plus
  // the drained-tail reclaim above, as in FOLL (an MCS fetch-and-store
  // cannot be backed out).
  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
    const bool ok = deadline_retry(
        deadline, [&] { return try_lock() || timed_write_reclaim(); });
    const std::uint64_t d = obs_end(TraceEventType::kWriteAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_write_acquire(d);
    }
    if (!ok) stats_.count_write_timeout();
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  // Reader side: enqueue-and-abandon.  Thanks to the deferred close, a
  // *waiting* reader node is always open, so abandonment is a plain Depart;
  // in the race where the grant and the writer's Close both land before our
  // Depart, a last-departer simply owes the normal handoff (the group held
  // the lock with nobody left in it) — no FOLL-style orphan state needed.
  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    const auto deadline = to_steady_deadline(tp);
    const ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
    const bool ok = timed_lock_shared_impl(deadline);
    const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
    if (t.armed) {
      stats_.record_timed_acquire(d);
      if (ok) stats_.record_read_acquire(d);
    }
    return ok;
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

  // --- introspection -----------------------------------------------------
  // Fast-path vs queued acquisition counts (see lock_stats.hpp); exact at
  // quiescence.  read_fast counts acquisitions that never waited on a spin
  // flag (empty-queue insert or joining an already-granted reader node).
  LockStatsSnapshot stats() const {
    LockStatsSnapshot s = stats_.snapshot();
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      s.csnzi += pool_[i].csnzi->stats();
    }
    s.wake_cohort_hits = wake_cohort_hits_.load(std::memory_order_relaxed);
    s.wake_cross_domain = wake_cross_domain_.load(std::memory_order_relaxed);
    return s;
  }

  std::uint32_t pool_nodes_in_use() const {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      if (pool_[i].alloc_state.load(std::memory_order_acquire) == kInUse) ++n;
    }
    return n;
  }

 private:
  enum NodeKind : std::uint8_t { kReaderNode, kWriterNode };
  enum AllocState : std::uint32_t { kFree = 0, kInUse = 1 };

  // Spin-flag values within one queue life: 1 = waiting, 0 = granted, and —
  // under kSpinThenPark — kParkedSpin = waiting with (possibly) parked
  // sleepers.  3 matches FOLL (whose value 2 is the orphan tombstone; ROLL
  // has no orphan state but keeps the numbering uniform).  All the
  // spin != 0 "is this group still waiting" checks remain correct: a
  // parked group is a waiting group.
  static constexpr std::uint32_t kParkedSpin = 3;

  // See foll_lock.hpp: parking needs a real kernel-parkable word.
  static constexpr bool kParkable =
      park_compiled_in() &&
      std::is_same_v<typename M::template Atomic<std::uint32_t>,
                     std::atomic<std::uint32_t>>;

  struct alignas(kFalseSharingRange) Node {
    NodeKind kind = kWriterNode;
    typename M::template Atomic<Node*> qnext{nullptr};
    typename M::template Atomic<Node*> prev{nullptr};
    typename M::template Atomic<std::uint32_t> spin{0};
    typename M::template Atomic<std::uint32_t> alloc_state{kFree};
    std::unique_ptr<CSnzi<M>> csnzi;
    Node* ring_next = nullptr;
    // Secondary ring over same-LLC-domain pool nodes; see foll_lock.hpp.
    Node* ring_next_domain = nullptr;
    // Owner/allocator thread's LLC domain; read by the granting thread
    // before it sets `spin` (handoff-locality counters).
    std::uint32_t domain = 0;

    void init_reader(const CSnziOptions& opts) {
      kind = kReaderNode;
      csnzi = std::make_unique<CSnzi<M>>(opts);
      bool was_open_empty = csnzi->close();
      OLL_CHECK(was_open_empty);
    }
  };

  struct Local {
    Node wnode;
    Node* depart_from = nullptr;
    typename CSnzi<M>::Ticket ticket{};
  };

  // Join `n` iff its readers are still waiting (spin set).  The spin check
  // is a heuristic gate (it bounds unfairness to *waiting* groups); the
  // Arrive is the correctness gate — it succeeds only while the node's
  // C-SNZI is open, i.e. only while the node is in this lock's queue.
  bool try_join_waiting(Node* n, Local& local) {
    if (n->kind != kReaderNode ||
        n->spin.load(std::memory_order_acquire) == 0) {
      return false;
    }
    typename CSnzi<M>::Ticket t = n->csnzi->arrive();
    if (!t.arrived()) return false;
    local.ticket = t;
    local.depart_from = n;
    return true;
  }

  Node* scan_for_waiting_reader(Node* tail, Local& local) {
    Node* n = tail->prev.load(std::memory_order_acquire);
    for (std::uint32_t hops = 0; n != nullptr && hops < opts_.max_scan_hops;
         ++hops) {
      if (try_join_waiting(n, local)) return n;
      n = n->prev.load(std::memory_order_acquire);
    }
    return nullptr;
  }

  // Block until `word` (a node's spin flag) reads 0.  Under kSpinThenPark
  // the waiter advertises kParkedSpin and parks on the word; grant_spin's
  // exchange observes the marker and unparks (DESIGN.md §16.2).
  void await_grant(typename M::template Atomic<std::uint32_t>& word) {
    if constexpr (kParkable) {
      if (use_park_) {
        ParkWaitOutcome o;
        const std::uint32_t v = park_wait_u32(word, /*wait_val=*/1,
                                              kParkedSpin, &o);
        stats_.count_park_outcome(o.parks, o.spurious, o.wait_ns);
        OLL_DCHECK(v == 0);
        (void)v;
        return;
      }
    }
    spin_until([&] { return word.load(std::memory_order_acquire) == 0; });
  }

  // Grant `succ`'s queue position (spin -> 0).  Pure-spin keeps the
  // paper's plain release store; under kSpinThenPark the exchange
  // displaces the (possibly) advertised parked marker and unparks every
  // sleeper on the shared flag.
  void grant_spin(Node* succ) {
    if constexpr (kParkable) {
      if (use_park_) {
        if (park_grant_u32(succ->spin, /*grant_val=*/0, kParkedSpin,
                           /*all=*/true) == kParkedSpin) {
          stats_.count_unparks(1);
        }
        return;
      }
    }
    succ->spin.store(0, std::memory_order_release);
  }

  void wait_granted(Node* n) {
    if (n->spin.load(std::memory_order_acquire) == 0) return;
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    await_grant(n->spin);
    obs_end(TraceEventType::kQueueExit, this, qt);
  }

  // Timed counterpart of wait_granted for an arrival recorded in `local`.
  // On timeout the arrival is undone with depart_and_handoff — correct in
  // every reachable node state (see try_lock_shared_until) — and false is
  // returned with the timeout/abandon stats recorded.
  bool timed_wait_granted(Node* n, Local& local,
                          std::chrono::steady_clock::time_point deadline) {
    const ObsTimer qt = obs_begin(TraceEventType::kQueueEnter, this);
    bool granted = false;
    if constexpr (kParkable) {
      if (use_park_) {
        // Sticky parked marker on timeout (park.hpp): a racing grant still
        // sees kParkedSpin and unparks any sibling sleeper — the abandon
        // below can never swallow a wake meant for another reader.
        const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count();
        ParkWaitOutcome o;
        granted = park_wait_until_u32(
            n->spin, /*wait_val=*/1, kParkedSpin,
            d > 0 ? static_cast<std::uint64_t>(d) : 1, nullptr, &o);
        stats_.count_park_outcome(o.parks, o.spurious, o.wait_ns);
      }
    }
    if (!use_park_) {
      SpinWait w;
      std::uint32_t check = 0;
      for (;;) {
        if (n->spin.load(std::memory_order_acquire) == 0) {
          granted = true;
          break;
        }
        if ((++check & 15u) == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        w.pause();
      }
    }
    obs_end(TraceEventType::kQueueExit, this, qt);
    if (granted) return true;
    local.depart_from = nullptr;
    depart_and_handoff(n, local.ticket);
    stats_.count_read_timeout();
    stats_.count_read_abandon();
    return false;
  }

  // lock_shared_impl's search loop with deadline checks: waits not yet
  // started are skipped once the deadline expires (matching
  // try_lock_shared, except the no-wait acquisitions still succeed); a
  // wait in progress is abandoned via timed_wait_granted.
  bool timed_lock_shared_impl(std::chrono::steady_clock::time_point deadline) {
    Local& local = locals_.local();
    Node* rnode = nullptr;
    while (true) {
      const bool expired = std::chrono::steady_clock::now() >= deadline;
      // 1. The hint always points at a *waiting* group; joining it once the
      // deadline has passed would be an immediate abandon, so skip it.
      if (opts_.use_hint && !expired) {
        Node* h = hint_.load(std::memory_order_acquire);
        if (h != nullptr) {
          if (try_join_waiting(h, local)) {
            if (rnode != nullptr) free_reader_node(rnode);
            stats_.count_read_queued();
            return timed_wait_granted(h, local, deadline);
          }
          hint_.compare_exchange_strong(h, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
        }
      }
      Node* tail = tail_.load(std::memory_order_acquire);
      if (tail == nullptr) {
        // Empty queue: acquiring needs no wait, so the deadline is moot.
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(0, std::memory_order_relaxed);
        rnode->prev.store(nullptr, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            stats_.count_read_fast();
            return true;
          }
          rnode = nullptr;
        }
      } else if (tail->kind == kReaderNode) {
        local.ticket = tail->csnzi->arrive();
        if (local.ticket.arrived()) {
          if (rnode != nullptr) {
            free_reader_node(rnode);
            rnode = nullptr;
          }
          local.depart_from = tail;
          if (tail->spin.load(std::memory_order_acquire) != 0) {
            if (opts_.use_hint) hint_.store(tail, std::memory_order_release);
            stats_.count_read_queued();
            return timed_wait_granted(tail, local, deadline);
          }
          stats_.count_read_fast();
          return true;
        }
      } else {
        // Writer at the tail: every path from here waits, so stop once the
        // deadline has passed.
        if (expired) {
          if (rnode != nullptr) free_reader_node(rnode);
          stats_.count_read_timeout();
          return false;
        }
        if (Node* found = scan_for_waiting_reader(tail, local)) {
          if (rnode != nullptr) free_reader_node(rnode);
          if (opts_.use_hint) hint_.store(found, std::memory_order_release);
          stats_.count_read_queued();
          return timed_wait_granted(found, local, deadline);
        }
        if (rnode == nullptr) rnode = alloc_reader_node();
        rnode->spin.store(1, std::memory_order_relaxed);
        Node* expected = tail;
        if (tail_.compare_exchange_strong(expected, rnode,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          rnode->prev.store(tail, std::memory_order_release);
          tail->qnext.store(rnode, std::memory_order_release);
          rnode->csnzi->open();
          local.ticket = rnode->csnzi->arrive();
          if (local.ticket.arrived()) {
            local.depart_from = rnode;
            if (opts_.use_hint) hint_.store(rnode, std::memory_order_release);
            stats_.count_read_queued();
            return timed_wait_granted(rnode, local, deadline);
          }
          rnode = nullptr;
        }
      }
    }
  }

  void depart_and_handoff(Node* node, const typename CSnzi<M>::Ticket& t) {
    if (node->csnzi->depart(t)) return;
    Node* succ = node->qnext.load(std::memory_order_acquire);
    OLL_CHECK(succ != nullptr);  // the closer linked qnext before closing
    count_handoff(succ->domain);  // read before granting
    fault_perturb(FaultSite::kQueueHandoff);
    grant_spin(succ);
    node->qnext.store(nullptr, std::memory_order_relaxed);
    free_reader_node(node);
  }

  // See foll_lock.hpp: per-domain secondary ring for the domain-first pool
  // search.
  void link_domain_rings() {
    for (std::uint32_t i = 0; i < pool_size_; ++i) {
      Node& n = pool_[i];
      n.ring_next_domain = &n;
      for (std::uint32_t step = 1; step <= pool_size_; ++step) {
        Node& cand = pool_[(i + step) % pool_size_];
        if (cand.domain == n.domain) {
          n.ring_next_domain = &cand;
          break;
        }
      }
    }
  }

  std::uint32_t my_domain() const {
    return dmap_.domain_of(this_thread_index());
  }

  void count_handoff(std::uint32_t succ_domain) {
    std::atomic<std::uint64_t>& c = succ_domain == my_domain()
                                        ? wake_cohort_hits_
                                        : wake_cross_domain_;
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Node* alloc_reader_node() {
    Node* start = &pool_[this_thread_index() % pool_size_];
    // Domain-first pass over the same-LLC ring, then the global ring (see
    // foll_lock.hpp for rationale).
    Node* n = start;
    do {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next_domain;
    } while (n != start);
    SpinWait lap_wait;
    while (true) {
      if (Node* got = try_claim(n)) return got;
      n = n->ring_next;
      if (n == start) lap_wait.pause();
    }
  }

  Node* try_claim(Node* n) {
    if (n->alloc_state.load(std::memory_order_relaxed) != kFree) return nullptr;
    std::uint32_t expected = kFree;
    if (!n->alloc_state.compare_exchange_strong(expected, kInUse,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      return nullptr;
    }
    n->qnext.store(nullptr, std::memory_order_relaxed);
    n->prev.store(nullptr, std::memory_order_relaxed);
    n->domain = my_domain();
    return n;
  }

  void free_reader_node(Node* n) {
    OLL_DCHECK(n->kind == kReaderNode);
    n->alloc_state.store(kFree, std::memory_order_release);
  }

  RollOptions opts_;
  typename M::template Atomic<Node*> tail_{nullptr};
  char pad0_[kFalseSharingRange - sizeof(void*)];
  typename M::template Atomic<Node*> hint_{nullptr};
  char pad1_[kFalseSharingRange - sizeof(void*)];
  DomainMap dmap_;
  // Resolved wait policy: true only when parking is compiled in, the memory
  // model is real, and the caller asked for kSpinThenPark.
  const bool use_park_;
  PerThreadSlots<Local> locals_;
  std::unique_ptr<Node[]> pool_;
  std::uint32_t pool_size_;
  LockStats stats_;
  std::atomic<std::uint64_t> wake_cohort_hits_{0};
  std::atomic<std::uint64_t> wake_cross_domain_{0};
};

}  // namespace oll
