// Shared helpers for timed acquisition (DESIGN.md §11).
//
// Two tiers of timed support exist in this library.  The OLL locks abandon
// a queued wait properly (enqueue-and-abandon; see goll_lock.hpp and the
// WaitQueue abort protocol).  Baseline locks whose wait cannot be backed out
// — an MCS fetch-and-store cannot un-swing the tail — instead run a
// deadline-bounded retry over their try_ fast path: correct and starvation-
// free for the timed caller (each attempt is finite), at the cost of losing
// queue position while waiting.  deadline_retry() is that shared loop.
#pragma once

#include <chrono>
#include <type_traits>

#include "platform/backoff.hpp"

namespace oll {

// Normalize any clock's deadline onto steady_clock, the clock the wait
// primitives poll.  For non-steady clocks the remaining duration is measured
// once here; a subsequent wall-clock jump no longer moves the deadline,
// which is the usual (and standard-sanctioned) treatment.
template <typename Clock, typename Duration>
std::chrono::steady_clock::time_point to_steady_deadline(
    const std::chrono::time_point<Clock, Duration>& tp) {
  if constexpr (std::is_same_v<Clock, std::chrono::steady_clock>) {
    return std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
        tp);
  } else {
    const auto remaining = tp - Clock::now();
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               remaining);
  }
}

// Deadline-bounded retry over a try-style attempt with per-thread-seeded
// exponential backoff.  Attempts at least once, so an already-expired
// deadline still behaves exactly like the try_ call (timeout=0 == try).
template <typename Try>
bool deadline_retry(std::chrono::steady_clock::time_point deadline,
                    Try&& attempt) {
  ExponentialBackoff backoff;
  while (true) {
    if (attempt()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    backoff.backoff();
  }
}

}  // namespace oll
