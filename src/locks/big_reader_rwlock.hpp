// "Big-reader" lock (Hsieh & Weihl, IPPS'92) — trade writer throughput for
// reader throughput (paper §1): every thread owns a private mutex; a reader
// locks only its own, a writer locks all of them.
//
// Scales perfectly for read-only workloads (each reader touches only its own
// cache line) but the writer cost is Θ(max_threads), which is exactly the
// limitation the paper cites: "feasible only for low numbers of threads as
// the burden placed on writers becomes excessive".  Included as the
// related-work endpoint of the design space the OLL locks dominate.
//
// Constraint inherited from the design: unlock_shared() must run on the
// same thread as the matching lock_shared().
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/memory.hpp"
#include "locks/per_thread.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/timed.hpp"

namespace oll {

struct BigReaderOptions {
  std::uint32_t max_threads = 512;
};

template <typename M = RealMemory>
class BigReaderRwLock {
 public:
  explicit BigReaderRwLock(const BigReaderOptions& opts = {})
      : slots_(opts.max_threads) {}

  BigReaderRwLock(const BigReaderRwLock&) = delete;
  BigReaderRwLock& operator=(const BigReaderRwLock&) = delete;

  void lock_shared() { slots_.local().lock(); }
  bool try_lock_shared() { return slots_.local().try_lock(); }
  void unlock_shared() { slots_.local().unlock(); }

  void lock() {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) slots_.slot(i).lock();
  }

  bool try_lock() {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (!slots_.slot(i).try_lock()) {
        while (i > 0) slots_.slot(--i).unlock();
        return false;
      }
    }
    return true;
  }

  void unlock() {
    for (std::uint32_t i = slots_.size(); i > 0; --i) {
      slots_.slot(i - 1).unlock();
    }
  }

  // --- timed acquisition (DESIGN.md §11): retry over the try paths --------
  // The writer try is Θ(max_threads) with full rollback per attempt, which
  // makes the timed writer expensive under contention — consistent with
  // this lock's design point (writers pay for reader scalability).

  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp), [&] { return try_lock(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_until(std::chrono::steady_clock::now() + d);
  }

  template <typename Clock, typename Duration>
  bool try_lock_shared_until(
      const std::chrono::time_point<Clock, Duration>& tp) {
    return deadline_retry(to_steady_deadline(tp),
                          [&] { return try_lock_shared(); });
  }

  template <typename Rep, typename Period>
  bool try_lock_shared_for(const std::chrono::duration<Rep, Period>& d) {
    return try_lock_shared_until(std::chrono::steady_clock::now() + d);
  }

 private:
  PerThreadSlots<TatasLock<M>> slots_;
};

}  // namespace oll
