#include "harness/trace_export.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "platform/lock_registry.hpp"

namespace oll::bench {
namespace {

// Slice name for the paired begin/end event types; instants keep their own
// event name.
const char* slice_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kReadAcquireBegin:
    case TraceEventType::kReadAcquireEnd:
      return "read_acquire";
    case TraceEventType::kWriteAcquireBegin:
    case TraceEventType::kWriteAcquireEnd:
      return "write_acquire";
    case TraceEventType::kQueueEnter:
    case TraceEventType::kQueueExit:
      return "queue_wait";
    case TraceEventType::kOptReadBegin:
    case TraceEventType::kOptReadEnd:
      return "opt_read";
    case TraceEventType::kCombineBegin:
    case TraceEventType::kCombineEnd:
      return "combine";
    default:
      return trace_event_name(t);
  }
}

bool is_begin(TraceEventType t) {
  return t == TraceEventType::kReadAcquireBegin ||
         t == TraceEventType::kWriteAcquireBegin ||
         t == TraceEventType::kQueueEnter ||
         t == TraceEventType::kOptReadBegin ||
         t == TraceEventType::kCombineBegin;
}

bool is_end(TraceEventType t) {
  return t == TraceEventType::kReadAcquireEnd ||
         t == TraceEventType::kWriteAcquireEnd ||
         t == TraceEventType::kQueueExit ||
         t == TraceEventType::kOptReadEnd ||
         t == TraceEventType::kCombineEnd;
}

void write_escaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) { out_ << '['; }
  ~EventWriter() { out_ << ']'; }

  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceRun>& runs) {
  // Acquire-site tags (platform/lock_registry.hpp): id -> "file:line".
  std::vector<std::string> site_names;
  for (const LockSiteSample& s : lock_site_table()) {
    std::ostringstream name;
    name << (s.file != nullptr ? s.file : "?") << ":" << s.line;
    site_names.push_back(name.str());
  }
  auto site_arg = [&site_names](std::ostream& os, std::uint32_t site) {
    if (site == 0 || site > site_names.size()) return;
    os << ",\"site\":\"";
    write_escaped(os, site_names[site - 1]);
    os << "\"";
  };
  std::uint64_t total_dropped = 0;
  for (const TraceRun& run : runs) total_dropped += run.dump.dropped;
  // droppedEvents is a top-level extension field (ignored by viewers);
  // validate_trace.py asserts it is zero for the smoke configurations.
  out << "{\"displayTimeUnit\":\"ns\",\"droppedEvents\":" << total_dropped
      << ",\"traceEvents\":";
  {
    EventWriter events(out);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const TraceRun& run = runs[i];
      const int pid = static_cast<int>(i) + 1;
      events.next() << "{\"ph\":\"M\",\"pid\":" << pid
                    << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
      write_escaped(out, run.name);
      out << "\"}}";
      if (run.dump.dropped != 0) {
        // Surface ring overflow in the trace itself so a truncated view is
        // never mistaken for a complete one.
        events.next() << "{\"ph\":\"M\",\"pid\":" << pid
                      << ",\"tid\":0"
                      << ",\"name\":\"process_labels\",\"args\":{\"labels\":"
                      << "\"dropped " << run.dump.dropped << " records\"}}";
      }
      // A ring that wrapped may retain an End whose Begin was overwritten;
      // Chrome's B/E pairing is per (pid, tid), so track open-slice depth per
      // (tid, name) and drop orphaned Ends.  Orphaned Begins at the tail are
      // fine — viewers render them as unfinished slices.
      std::map<std::pair<std::uint32_t, const char*>, int> depth;
      for (const TraceRecord& rec : run.dump.records) {
        const double ts = static_cast<double>(rec.ts) * run.ts_scale;
        if (is_begin(rec.type)) {
          const char* name = slice_name(rec.type);
          ++depth[{rec.tid, name}];
          events.next() << "{\"ph\":\"B\",\"pid\":" << pid
                        << ",\"tid\":" << rec.tid << ",\"ts\":" << ts
                        << ",\"name\":\"" << name
                        << "\",\"args\":{\"obj\":\"" << rec.obj << "\"";
          site_arg(out, rec.site);
          out << "}}";
        } else if (is_end(rec.type)) {
          const char* name = slice_name(rec.type);
          auto it = depth.find({rec.tid, name});
          if (it == depth.end() || it->second == 0) continue;
          --it->second;
          events.next() << "{\"ph\":\"E\",\"pid\":" << pid
                        << ",\"tid\":" << rec.tid << ",\"ts\":" << ts
                        << ",\"name\":\"" << name << "\"}";
        } else {
          events.next() << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
                        << ",\"tid\":" << rec.tid << ",\"ts\":" << ts
                        << ",\"name\":\"" << trace_event_name(rec.type)
                        << "\",\"args\":{\"obj\":\"" << rec.obj << "\"";
          site_arg(out, rec.site);
          out << "}}";
        }
      }
    }
  }
  out << "}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRun>& runs) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, runs);
  return out.good();
}

}  // namespace oll::bench
