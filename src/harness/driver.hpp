// Throughput driver: runs the paper's acquire/release loop over any lock,
// in real time or in simulated-topology virtual time (DESIGN.md §3).
#pragma once

#include <memory>

#include "core/factory.hpp"
#include "harness/workload.hpp"
#include "sim/machine.hpp"

namespace oll::bench {

// Run `config` against a freshly-constructed lock of kind `kind`.
//
//  * Mode::kReal — the lock runs on std::atomic; `seconds` is wall time
//    from the start barrier to the last thread's completion.
//  * Mode::kSim  — the lock runs on sim::Atomic over `machine` (a default
//    T5440 is used if null); `seconds` is the maximum per-thread virtual
//    clock, scaled by the 1.4 GHz clock the paper's machine runs at.
//    Simulated thread i sits on chip i/64, mirroring the paper's binding.
RunResult run_workload(LockKind kind, const WorkloadConfig& config, Mode mode,
                       sim::Machine* machine = nullptr);

// Same, against a caller-supplied type-erased lock (real mode only: the
// lock must already be built on the matching memory model).
RunResult run_workload_on(AnyRwLock& lock, const WorkloadConfig& config);

// Simulated run against a caller-supplied lock (which must be built on
// sim::SimMemory) and machine; used by the ablation benches to test variant
// lock configurations the factory does not expose.
RunResult run_sim_workload_on(AnyRwLock& lock, const WorkloadConfig& config,
                              sim::Machine& machine);

}  // namespace oll::bench
