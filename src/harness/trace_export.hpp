// Serialize drained trace rings (platform/trace.hpp) to Chrome-trace JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping: each TraceRun becomes one "process" (pid = run index + 1, named
// by the run label, typically "<lock> t=<threads> r=<read_pct>"); each dense
// thread index becomes a tid.  Paired begin/end records (read/write acquire,
// queue wait) become "B"/"E" duration slices; releases, bias revocations and
// C-SNZI open/close become thread-scoped instants.  Timestamps are scaled
// from record units to the microseconds the format expects.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "platform/trace.hpp"

namespace oll::bench {

struct TraceRun {
  std::string name;   // process label, e.g. "GOLL t=64 r=100"
  TraceDump dump;     // from trace_drain(); records in ascending ts order
  // Record-timestamp units -> microseconds.  Real-time records are in ns
  // (1e-3); sim records are virtual cycles (1e-3 / GHz).
  double ts_scale = 1e-3;
};

void write_chrome_trace(std::ostream& out, const std::vector<TraceRun>& runs);

// Convenience wrapper; returns false if the file could not be opened.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceRun>& runs);

}  // namespace oll::bench
