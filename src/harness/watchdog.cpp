#include "harness/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "platform/assert.hpp"
#include "platform/lock_registry.hpp"
#include "platform/park.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"
#include "platform/trace.hpp"

namespace oll::bench {

Watchdog::Watchdog(AnyRwLock& lock, const WatchdogOptions& opts,
                   std::uint32_t workers)
    : lock_(lock), opts_(opts), slots_(workers) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::begin_acquire(std::uint32_t worker, bool write) {
  OLL_DCHECK(worker < slots_.size());
  Slot& s = slots_[worker];
  s.is_write.store(write ? 1 : 0, std::memory_order_relaxed);
  if (park_compiled_in()) {
    // Key into the park census plus the parked-time baseline, so the
    // monitor can charge only runnable (non-parked) wait against the
    // threshold.
    const std::uint32_t tid = this_thread_index();
    s.tid.store(tid, std::memory_order_relaxed);
    s.parked_base_ns.store(park_thread_state(tid).cum_parked_ns,
                           std::memory_order_relaxed);
  }
  // now_ns() is monotonic-from-epoch and never 0 in practice; 0 stays the
  // "not acquiring" sentinel.
  s.start_ns.store(now_ns(), std::memory_order_relaxed);
}

void Watchdog::end_acquire(std::uint32_t worker) {
  OLL_DCHECK(worker < slots_.size());
  slots_[worker].start_ns.store(0, std::memory_order_relaxed);
}

void Watchdog::start() {
  if (running_) return;
  // Arm the contention census (platform/lock_registry.hpp) so an incident
  // dump can name the lock's holder and queue, not just the stuck worker.
  // Refcounted: coexists with the telemetry exporter.
  registry_census_enable();
  registry_set_coarse_now(now_ns());
  stop_.store(false, std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
  running_ = true;
}

void Watchdog::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  monitor_.join();
  registry_census_disable();
  running_ = false;
}

std::uint64_t Watchdog::threshold_ns() const {
  std::uint64_t t = opts_.floor_ns;
  if (opts_.use_histogram) {
    // Concurrent snapshot is approximate (relaxed counters) — fine for a
    // threshold.  Unit: wall ns whenever latency timing runs in real mode.
    const LockStatsSnapshot s = lock_.stats();
    if (s.writer_wait.count >= opts_.min_histogram_count) {
      const double p99 = s.writer_wait.percentile(99.0);
      t = std::max<std::uint64_t>(
          t, static_cast<std::uint64_t>(p99 * opts_.p99_multiplier));
    }
  }
  return t;
}

Watchdog::ParkView Watchdog::park_view(const Slot& slot, std::uint64_t begin,
                                       std::uint64_t now) const {
  ParkView pv;
  if (!park_compiled_in()) return pv;
  const std::uint32_t tid = slot.tid.load(std::memory_order_relaxed);
  if (tid == kNoTid) return pv;
  const ParkThreadState ps = park_thread_state(tid);
  // Completed parks since the acquisition began (cum counter delta)...
  const std::uint64_t base = slot.parked_base_ns.load(std::memory_order_relaxed);
  if (ps.cum_parked_ns > base) pv.parked_ns = ps.cum_parked_ns - base;
  // ...plus the in-progress park, which cum does not yet include.
  if (ps.parked_since_ns != 0) {
    pv.parked_now = true;
    if (now > ps.parked_since_ns) pv.parked_ns += now - ps.parked_since_ns;
    pv.past_deadline =
        ps.deadline_ns != 0 &&
        now > ps.deadline_ns + opts_.park_deadline_grace_ns;
  }
  // A park that straddles the acquisition start charges pre-acquisition
  // sleep too; harmless — it only makes the watchdog more lenient, and
  // only for the first park of the acquisition.
  if (pv.parked_ns > now - begin) pv.parked_ns = now - begin;
  return pv;
}

void Watchdog::dump_incident(std::uint32_t worker, const Slot& slot,
                             std::uint64_t waited_ns,
                             std::uint64_t threshold, const ParkView& pv) {
  const LockStatsSnapshot s = lock_.stats();
  std::fprintf(stderr,
               "[watchdog] worker %u stuck in %s acquisition for %.1f ms "
               "(runnable %.1f ms, parked %.1f ms; threshold %.1f ms%s)\n",
               worker,
               slot.is_write.load(std::memory_order_relaxed) != 0 ? "write"
                                                                  : "read",
               static_cast<double>(waited_ns) * 1e-6,
               static_cast<double>(waited_ns - pv.parked_ns) * 1e-6,
               static_cast<double>(pv.parked_ns) * 1e-6,
               static_cast<double>(threshold) * 1e-6,
               pv.past_deadline ? "; PARKED PAST DEADLINE" : "");
  if (park_compiled_in()) {
    const ParkStats ps = park_stats();
    std::fprintf(stderr,
                 "[watchdog]   park census: %u threads parked now; parks=%"
                 PRIu64 " unparks=%" PRIu64 " spurious=%" PRIu64
                 " rearm_recoveries=%" PRIu64 "\n",
                 parked_thread_count(), ps.parks, ps.unparks,
                 ps.spurious_wakes, ps.rearm_recoveries);
  }
  std::fprintf(stderr,
               "[watchdog]   lock state: reads=%" PRIu64 " (fast=%" PRIu64
               " queued=%" PRIu64 " bias=%" PRIu64 ") writes=%" PRIu64
               " (fast=%" PRIu64 " queued=%" PRIu64 ")\n",
               s.reads(), s.read_fast, s.read_queued, s.read_bias, s.writes(),
               s.write_fast, s.write_queued);
  std::fprintf(stderr,
               "[watchdog]   timeouts: read=%" PRIu64 " write=%" PRIu64
               " abandons: read=%" PRIu64 " write=%" PRIu64
               " revoke_timeouts=%" PRIu64 " bias_revokes=%" PRIu64 "\n",
               s.read_timeouts, s.write_timeouts, s.read_abandons,
               s.write_abandons, s.revoke_timeouts, s.bias_revoke);
  // In-flight acquisitions across all workers: the closest portable proxy
  // for queue occupancy (the thirteen lock shapes have no common
  // introspection surface).
  std::uint32_t in_read = 0;
  std::uint32_t in_write = 0;
  for (const Slot& other : slots_) {
    if (other.start_ns.load(std::memory_order_relaxed) == 0) continue;
    if (other.is_write.load(std::memory_order_relaxed) != 0) {
      ++in_write;
    } else {
      ++in_read;
    }
  }
  std::fprintf(stderr,
               "[watchdog]   in-flight acquisitions: %u readers, %u writers "
               "(of %zu workers)\n",
               in_read, in_write, slots_.size());
  // Holder/waiter census (platform/lock_registry.hpp): names the write
  // holder's dense thread index and the longest waiter — the attribution
  // the per-worker slots above cannot provide.
  if (registry_compiled_in() && lock_.census() != nullptr) {
    const CensusSnapshot c = lock_.census()->snapshot(now_ns());
    char holder[32];
    if (c.write_held && c.writer_tid != kNoCensusTid) {
      std::snprintf(holder, sizeof(holder), "tid %u (write)", c.writer_tid);
    } else if (c.write_held) {
      std::snprintf(holder, sizeof(holder), "writer (tid unknown)");
    } else if (c.holding_readers != 0) {
      std::snprintf(holder, sizeof(holder), "%u readers", c.holding_readers);
    } else {
      std::snprintf(holder, sizeof(holder), "none observed");
    }
    std::fprintf(stderr,
                 "[watchdog]   census: holder=%s queue_depth=%u "
                 "(waiting readers=%u writers=%u)\n",
                 holder, c.queue_depth(), c.waiting_readers,
                 c.waiting_writers);
    if (c.longest_waiter_tid != kNoCensusTid) {
      std::fprintf(stderr,
                   "[watchdog]   census: longest waiter tid %u, %.1f ms "
                   "(coarse), site id %u\n",
                   c.longest_waiter_tid,
                   static_cast<double>(c.longest_wait_ns) * 1e-6,
                   c.longest_waiter_site);
    }
  }
  if (trace_events_enabled()) {
    // Destructive drain: diagnostics of last resort beat preserving rings.
    const TraceDump dump = trace_drain();
    const std::size_t n = dump.records.size();
    const std::size_t first =
        n > opts_.max_trace_records ? n - opts_.max_trace_records : 0;
    std::fprintf(stderr,
                 "[watchdog]   trace ring tail (%zu of %zu records, %" PRIu64
                 " dropped to wrap):\n",
                 n - first, n, dump.dropped);
    for (std::size_t i = first; i < n; ++i) {
      const TraceRecord& r = dump.records[i];
      std::fprintf(stderr, "[watchdog]     ts=%" PRIu64 " tid=%u %s obj=%p\n",
                   r.ts, r.tid, trace_event_name(r.type), r.obj);
    }
  } else {
    std::fprintf(stderr,
                 "[watchdog]   (event tracing not armed; rerun with --trace "
                 "for ring dumps)\n");
  }
}

void Watchdog::monitor_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.poll_interval_ms));
    if (incidents_.load(std::memory_order_relaxed) >= opts_.max_incidents) {
      continue;  // keep draining time until stop(); no more dumps
    }
    const std::uint64_t threshold = threshold_ns();
    const std::uint64_t now = now_ns();
    // Keep the census coarse clock fresh so waiter ages resolve to the
    // poll interval even when no telemetry exporter is running.
    registry_set_coarse_now(now);
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
      Slot& slot = slots_[w];
      const std::uint64_t begin = slot.start_ns.load(std::memory_order_relaxed);
      if (begin == 0 || now <= begin) continue;
      const std::uint64_t waited = now - begin;
      if (waited < threshold) continue;
      const ParkView pv = park_view(slot, begin, now);
      // Only runnable (non-parked) wait counts against the threshold: a
      // censused sleeper is healthy however long it sleeps.  The one
      // exception is a waiter the substrate failed — parked past its own
      // deadline — which is always an incident.
      if (!pv.past_deadline && waited - pv.parked_ns < threshold) continue;
      if (slot.reported.load(std::memory_order_relaxed) == begin) continue;
      slot.reported.store(begin, std::memory_order_relaxed);
      incidents_.fetch_add(1, std::memory_order_relaxed);
      dump_incident(w, slot, waited, threshold, pv);
    }
  }
}

}  // namespace oll::bench
