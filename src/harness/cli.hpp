// Minimal flag parsing for the bench binaries: --key=value pairs only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace oll::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      // insert_or_assign (rather than operator[]= of a const char*) also
      // sidesteps a GCC 12 -Wrestrict false positive (PR105329).
      if (eq == std::string_view::npos) {
        values_.insert_or_assign(std::string(arg), std::string("1"));
      } else {
        values_.insert_or_assign(std::string(arg.substr(0, eq)),
                                 std::string(arg.substr(eq + 1)));
      }
    }
  }

  std::string get(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::stoull(it->second);
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace oll::bench
