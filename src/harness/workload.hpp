// Workload description and result types for the paper's benchmark (§5.1).
//
// "We evaluated the performance of each lock by making threads repeatedly
//  acquire and release the lock in a tight loop without performing any work
//  within the critical section.  Threads decide whether to acquire the lock
//  for reading or writing using a per-thread private random number generator
//  and a target read percentage. [...] We ran each experiment three times
//  and present the average of the results."
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "locks/cohort_mcs_lock.hpp"
#include "locks/lock_stats.hpp"
#include "platform/topology.hpp"
#include "sim/machine.hpp"

namespace oll::bench {

enum class Mode {
  kReal,  // wall-clock time on the host's std::atomic
  kSim,   // virtual time on the simulated T5440 coherence model
};

struct WorkloadConfig {
  std::uint32_t threads = 4;
  std::uint32_t read_pct = 100;  // 0..100
  std::uint64_t acquires_per_thread = 10000;
  // Busy work inside / outside the critical section, in abstract units
  // (iterations of a dependent computation in real mode; virtual cycles in
  // sim mode).  The paper uses 0 inside ("without performing any work").
  std::uint64_t cs_work = 0;
  std::uint64_t outside_work = 0;
  std::uint64_t seed = 42;
  // Per-thread warmup acquisitions run before the measured loop.  The
  // harness rebases the lock's stats (AnyRwLock::reset_stats) and restarts
  // the wall clock at the phase boundary, so counters, histograms and real
  // throughput cover only the measured phase.  Caveat: in sim mode the
  // virtual clock cannot be rewound mid-run, so RunResult::seconds still
  // spans both phases there.
  std::uint64_t warmup_acquires = 0;
  // C-SNZI tuning overrides (ablations / bench flags).  Unset means the
  // driver's per-mode defaults apply.
  std::optional<LeafMapping> leaf_mapping;
  std::optional<std::uint32_t> sticky_arrivals;
  // Writer-arbitration overrides (metalock ablations).  Unset means the
  // factory default (cohort metalock with its default budget).
  std::optional<MetalockKind> metalock;
  std::optional<std::uint32_t> cohort_budget;
  // Flat-combining/delegation writer mode (DESIGN.md §15).  `combine`
  // enables the lock's combining pool AND routes the loop's write sections
  // through AnyRwLock::with_write (delegation only exists for closure-style
  // writes); kGollCombining implies both regardless.  dwcas_root selects
  // the 16-byte fused C-SNZI root (silently degraded on builds without
  // DWCAS support).  delegate_writes alone routes writes through with_write
  // without touching factory options — non-combining kinds then execute
  // acquire-closure-release, the fair baseline for combining ablations.
  bool combine = false;
  bool dwcas_root = false;
  std::optional<std::uint32_t> combine_budget;
  bool delegate_writes = false;

  // --- robustness knobs (DESIGN.md §11) ----------------------------------
  // Nonzero: acquire with try_lock_for / try_lock_shared_for and this
  // per-operation timeout instead of the blocking paths.  A timed-out
  // acquisition is abandoned (not retried) — that iteration produces no
  // critical section and is reported in RunResult::*_timeouts — so the
  // workload exercises the wait-abandonment protocols under load.
  std::uint64_t timeout_ns = 0;
  // Fault-injection profile armed for the run (platform/fault.hpp):
  // off|jitter|cas|preempt|chaos.  Empty leaves the process-global
  // injection state untouched; the run's seed doubles as the fault seed.
  std::string fault_profile;
  // Stuck-acquisition watchdog (harness/watchdog.hpp).  Real mode only —
  // its thresholds are wall-clock; ignored in sim mode.
  bool watchdog = false;
  // Real mode only: pin worker w to the host CPU at position w (mod count)
  // of the parsed system topology (platform/topology.hpp), the same
  // identity mapping the C-SNZI leaf and cohort domain maps assume.  This
  // is what makes real-hardware series reproducible enough to gate
  // (bench_smoke's realtime.* trajectory); ignored in sim mode, where
  // placement is already deterministic.
  bool pin_threads = false;
};

struct RunResult {
  double seconds = 0.0;  // wall time (real) or virtual time (sim)
  std::uint64_t total_acquires = 0;
  std::uint64_t read_acquires = 0;
  std::uint64_t write_acquires = 0;
  // Timed acquisitions the harness observed failing (timeout_ns != 0 runs).
  // Counted loop-side, so they cover adapter fallbacks (e.g. std-shared)
  // that never touch the lock's own stats.
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  sim::OpCounters counters{};  // sim mode only
  LockStatsSnapshot lock_stats{};  // collected at quiescence after the run

  double throughput() const {
    return seconds > 0 ? static_cast<double>(total_acquires) / seconds : 0.0;
  }
};

inline const char* mode_name(Mode m) {
  return m == Mode::kReal ? "real" : "sim";
}

}  // namespace oll::bench
