// Continuous telemetry exporter over the global lock registry
// (platform/lock_registry.hpp; DESIGN.md §14).
//
// A TelemetryExporter is a background thread that, every interval:
//   1. stores the coarse clock (so census marks can age waiters),
//   2. walks the registry, pinning each live lock to snapshot its raw
//      cumulative LockStats and its holder/waiter census,
//   3. charges every observed waiter's acquire site a wait sample,
//   4. subtracts the previous tick's per-lock snapshot (the same
//      LockStatsSnapshot operator-= the harness uses for warmup rebasing)
//      to get per-interval deltas and rates, ranks the top-K contended
//      locks, and
//   5. renders the result as Prometheus text exposition (atomically
//      replaced file and/or a minimal built-in HTTP endpoint) and as a
//      JSON-lines time series (one object appended per tick).
//
// Long benches therefore stream live series — which locks are hot, who
// is blocking whom, when reader bias flips — instead of one terminal
// blob after the run.  Scrape with:
//
//   scrape_configs:
//     - job_name: oll
//       static_configs: [{targets: ['localhost:9464']}]
//
// The exporter holds registry_census_enable() for its lifetime (opt-out:
// TelemetryOptions::census), so census marks (a few relaxed cache-local
// stores per acquisition) flow only while someone is actually looking.
// Everything here is control-plane: the
// exporter thread never takes a lock a worker thread can hold.
//
// With OLL_REGISTRY=0 the registry walk sees nothing; the exporter runs
// but exports empty series (binaries stay flag-compatible).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "locks/lock_stats.hpp"
#include "platform/lock_registry.hpp"

namespace oll {

struct TelemetryOptions {
  std::uint64_t interval_ms = 100;
  // Prometheus text-exposition file, atomically replaced each tick
  // (write tmp + rename).  Empty: no file.
  std::string prom_path;
  // JSON-lines time series, one object appended per tick.  Empty: no file.
  std::string jsonl_path;
  // Serve the latest Prometheus text over HTTP on this loopback port
  // (GET anything).  -1: no endpoint; 0: pick a free port (bound_port()).
  int http_port = -1;
  std::uint32_t top_k = 5;  // contended locks called out per tick
  // Hold registry_census_enable() for the exporter's lifetime so ticks can
  // report holders/waiters/queue depth and charge acquire sites.  Census
  // marks cost a few relaxed cache-local stores per acquisition (~5 ns) —
  // negligible for real critical sections, measurable on ~25 ns micro ops
  // (EXPERIMENTS.md).  false: counters-only export, zero hot-path cost.
  bool census = true;
};

// One lock's state at one tick: cumulative counters, the delta since the
// previous tick, and the live census.
struct LockTelemetry {
  std::uint64_t id = 0;
  const char* name = "?";
  const char* kind = "?";
  LockSite site{};
  LockStatsSnapshot total{};  // raw cumulative (never rebased)
  LockStatsSnapshot delta{};  // since previous tick (== total on first sight)
  CensusSnapshot census{};
  bool has_census = false;

  // Contention score used for top-K ranking: queued acquisitions and bias
  // revocations this interval, plus anyone waiting right now.
  std::uint64_t contention_score() const {
    return delta.read_queued + delta.write_queued + delta.bias_revoke +
           census.queue_depth();
  }
};

struct TelemetryTick {
  std::uint64_t tick = 0;     // 1-based
  std::uint64_t now_ns = 0;
  std::uint64_t interval_ns = 0;  // actual elapsed since previous tick
  std::vector<LockTelemetry> locks;
  std::vector<std::size_t> top;  // indices into `locks`, most contended first
  std::vector<LockSiteSample> sites;
  // Deregistered locks' final counters (registry_graveyard()), so the
  // exposition never loses the work of a short-lived lock that died
  // between ticks — Prometheus counters must not vanish.
  std::vector<RetiredLockStats> retired;  // sorted by (name, kind)
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions opts);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Spawn the exporter thread (and the HTTP listener when configured).
  // Census marks start flowing here.
  void start();

  // Final tick, then join everything.  Idempotent; the destructor calls it.
  void stop();

  // The HTTP listener's actual port (useful with http_port=0), or -1.
  int bound_port() const { return bound_port_; }

  std::uint64_t ticks() const {
    return tick_count_.load(std::memory_order_relaxed);
  }

  // --- test hooks (usable without start()) -------------------------------
  // Run one collection step synchronously at the given timestamp and
  // return the computed tick (deltas keyed off this exporter's history).
  TelemetryTick collect(std::uint64_t now_ns);
  // Render a tick the way the exporter writes it.
  static std::string render_prometheus(const TelemetryTick& t);
  static std::string render_jsonl(const TelemetryTick& t);

 private:
  void run();
  void http_loop();
  void emit(const TelemetryTick& t);

  TelemetryOptions opts_;
  std::thread thread_;
  std::thread http_thread_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  bool started_ = false;

  std::mutex mu_;  // guards stop_/cv_
  std::condition_variable cv_;
  bool stop_ = false;

  // Collection state (exporter thread or synchronous collect() caller),
  // guarded by its own mutex so the public collect() hook is safe even
  // while the exporter thread is running.
  std::mutex collect_mu_;
  std::uint64_t last_tick_ns_ = 0;
  std::atomic<std::uint64_t> tick_count_{0};
  struct Baseline {
    std::uint64_t id;
    LockStatsSnapshot stats;
  };
  std::vector<Baseline> baselines_;  // sorted by id (registry order)

  std::mutex prom_mu_;       // latest rendered text, served by the endpoint
  std::string latest_prom_;
};

// Shared CLI glue for the bench binaries: parse --telemetry_interval_ms=N,
// --metrics_out=PATH (Prometheus text at PATH, JSONL at PATH.jsonl) and
// --metrics_port=N.  Returns a started exporter, or null when no telemetry
// flag was given.
struct TelemetryFlagValues {
  std::uint64_t interval_ms = 100;
  std::string metrics_out;
  int metrics_port = -1;
  bool any() const { return !metrics_out.empty() || metrics_port >= 0; }
};

std::unique_ptr<TelemetryExporter> make_telemetry_exporter(
    const TelemetryFlagValues& v);

}  // namespace oll
