#include "harness/driver.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "harness/watchdog.hpp"
#include "platform/assert.hpp"
#include "platform/fault.hpp"
#include "platform/lock_registry.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "sim/context.hpp"
#include "sim/memory.hpp"

namespace oll::bench {
namespace {

constexpr double kSimHz = 1.4e9;  // UltraSPARC T2+ clock (§5.1)

// Dependent busy work the optimizer cannot elide.
inline std::uint64_t spin_work(std::uint64_t iters, std::uint64_t x) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 0x9e3779b97f4a7c15ULL + 1;
  }
  return x;
}

struct WorkerTotals {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
};

// The §5.1 loop body, shared by both modes.
//
// In simulated mode the worker yields inside a read critical section and at
// the end of every iteration: on the real 256-hardware-thread machine the
// read sections of concurrently-running threads overlap in time, which is
// what keeps SNZI leaf counts nonzero (and thus the root untouched).  On a
// small host the OS timeslice would otherwise serialize whole
// acquire/release pairs and hide that overlap entirely.
void acquire_release_loop(AnyRwLock& lock, const WorkloadConfig& cfg,
                          std::uint32_t worker, bool simulated,
                          WorkerTotals& totals, Watchdog* watchdog) {
  Xoshiro256ss rng(cfg.seed * 0x9e3779b97f4a7c15ULL + worker + 1);
  std::uint64_t sink = worker;
  const std::chrono::nanoseconds timeout(cfg.timeout_ns);
  // Desynchronize worker phases: under the round-robin interleaving every
  // worker would otherwise hit the same point of the loop in lockstep —
  // all readers releasing simultaneously each round, which zeroes SNZI
  // counts at a rate no real machine exhibits.  Offsetting odd workers by
  // half an iteration keeps roughly half of each core's siblings inside
  // their read section at any instant.
  if (simulated && worker % 2 == 1) std::this_thread::yield();
  for (std::uint64_t i = 0; i < cfg.acquires_per_thread; ++i) {
    const bool read = rng.bernoulli(cfg.read_pct, 100);
    // Timed mode abandons rather than retries a timed-out acquisition: the
    // iteration is lost (no critical section), which is the point — the
    // run exercises the abandonment protocols under the same contention
    // the blocking paths see.
    if (watchdog != nullptr) watchdog->begin_acquire(worker, !read);
    bool acquired = true;
    bool delegated = false;
    if (read) {
      // Acquire-site tag (platform/lock_registry.hpp): trace records and
      // census waits from this acquisition carry the read path's file:line.
      ScopedLockSite site(OLL_LOCK_SITE());
      if (cfg.timeout_ns != 0) {
        acquired = lock.try_lock_shared_for(timeout);
      } else {
        lock.lock_shared();
      }
    } else {
      ScopedLockSite site(OLL_LOCK_SITE());
      if (cfg.timeout_ns != 0) {
        acquired = lock.try_lock_for(timeout);
      } else if (cfg.delegate_writes) {
        // Closure-style write (DESIGN.md §15): combining kinds may execute
        // this on the current holder's thread; everything else degrades to
        // acquire-execute-release.  The critical-section work moves inside
        // the closure — it runs wherever the closure runs.
        struct Ctx {
          std::uint64_t cs_work;
          bool simulated;
          std::uint64_t* sink;
        } c{cfg.cs_work, simulated, &sink};
        lock.with_write(
            [](void* p) {
              Ctx* c = static_cast<Ctx*>(p);
              if (c->cs_work != 0) {
                if (c->simulated) {
                  sim::SimMemory::charge(c->cs_work);
                } else {
                  *c->sink = spin_work(c->cs_work, *c->sink);
                }
              }
              // Same small-host fix as the read sections above: on the real
              // machine competing writers overlap a held write section in
              // time; under round-robin timeslicing a yield-free section
              // completes inside one slice and is never *observed* held, so
              // none of the waiting protocols this mode studies (queueing,
              // delegation, combining) would ever engage.
              if (c->simulated) std::this_thread::yield();
            },
            &c);
        delegated = true;
      } else {
        lock.lock();
      }
    }
    if (watchdog != nullptr) watchdog->end_acquire(worker);
    if (!acquired) {
      if (read) {
        ++totals.read_timeouts;
      } else {
        ++totals.write_timeouts;
      }
    } else if (delegated) {
      ++totals.writes;  // closure ran (possibly remotely); nothing to release
    } else if (read) {
      if (cfg.cs_work != 0) {
        if (simulated) {
          sim::SimMemory::charge(cfg.cs_work);
        } else {
          sink = spin_work(cfg.cs_work, sink);
        }
      }
      if (simulated) {
        std::this_thread::yield();  // overlap read sections
        // Random jitter, spent while holding: decorrelates the round-robin
        // rotation (otherwise consecutive writers of any central lockword
        // would always be ring neighbors, i.e. SMT siblings) while keeping
        // the in-section fraction high enough that SNZI leaf counts almost
        // never drain to zero — matching the overlap statistics of 256
        // genuinely concurrent readers.
        if (rng.bernoulli(1, 2)) std::this_thread::yield();
      }
      lock.unlock_shared();
      ++totals.reads;
    } else {
      if (cfg.cs_work != 0) {
        if (simulated) {
          sim::SimMemory::charge(cfg.cs_work);
        } else {
          sink = spin_work(cfg.cs_work, sink);
        }
      }
      lock.unlock();
      ++totals.writes;
    }
    if (cfg.outside_work != 0) {
      if (simulated) {
        sim::SimMemory::charge(cfg.outside_work);
      } else {
        sink = spin_work(cfg.outside_work, sink);
      }
    }
    if (simulated) {
      std::this_thread::yield();  // fine-grain interleaving
      // Writers jitter outside the critical section (an empty write section
      // should not hold everyone else across extra scheduling rounds).
      if (!read && rng.bernoulli(1, 2)) std::this_thread::yield();
    }
  }
  // Publish the sink so the busy work is observable.
  static std::atomic<std::uint64_t> g_sink{0};
  g_sink.fetch_add(sink, std::memory_order_relaxed);
}

// Timestamp source for simulated runs: the calling thread's virtual clock.
// Harness-side code (drains, exports) runs without a ThreadContext and falls
// back to real time — such records are out-of-band anyway.
std::uint64_t sim_trace_clock() {
  const sim::ThreadContext* ctx = sim::ThreadContext::current();
  return ctx != nullptr ? ctx->clock() : now_ns();
}

RunResult run_threads(AnyRwLock& lock, const WorkloadConfig& cfg,
                      sim::Machine* machine) {
  const bool simulated = machine != nullptr;
  // Traces/histograms must share the time base of the throughput numbers
  // they explain; install the virtual clock before any worker can emit.
  // Sticky across runs: with no ThreadContext the fallback is real time.
  if (simulated) trace_set_clock(&sim_trace_clock);
  // Arm fault injection for the run (quiescent here: no worker exists yet).
  // The run's seed doubles as the fault seed so a cell is reproducible from
  // its own parameters.
  bool faults_armed = false;
  if (!cfg.fault_profile.empty()) {
    FaultProfile profile;
    if (fault_profile_from_name(cfg.fault_profile.c_str(), &profile)) {
      fault_enable(profile, cfg.seed);
      faults_armed = true;
    } else {
      std::fprintf(stderr,
                   "unknown fault profile '%s' "
                   "(want off|jitter|cas|preempt|chaos); running without "
                   "injection\n",
                   cfg.fault_profile.c_str());
    }
  }
  // Stuck-acquisition watchdog: wall-clock thresholds, so real mode only
  // (a sim worker's wall time is dominated by scheduler yields).
  std::unique_ptr<Watchdog> watchdog;
  if (cfg.watchdog && !simulated) {
    watchdog = std::make_unique<Watchdog>(lock, WatchdogOptions{},
                                          cfg.threads);
    watchdog->start();
  }
  Watchdog* wd = watchdog.get();
  const bool warmup = cfg.warmup_acquires > 0;
  std::vector<WorkerTotals> totals(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  // Simple sense barrier: workers check in, then wait for the green flag so
  // the timed region starts with everyone ready.  With a warmup phase there
  // is a second barrier at the phase boundary, where the main thread rebases
  // the lock's stats while every worker is quiescent.
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> warm_done{0};
  std::atomic<bool> go_measured{false};

  for (std::uint32_t w = 0; w < cfg.threads; ++w) {
    threads.emplace_back([&, w] {
      // Pin worker w to dense thread index w so lock-internal thread
      // mappings line up with the simulated placement (chip w/64, core w/8).
      ScopedThreadIndex index(w);
      if (cfg.pin_threads && !simulated) {
        // Bind worker w to the host CPU at position w of the parsed topology
        // — the same identity mapping (dense index -> CPU) the C-SNZI leaf
        // and cohort domain maps assume, so lock-internal locality decisions
        // match actual placement.  Real-hardware series are only gateable
        // (bench_smoke realtime.*) with placement held fixed; fall back
        // silently where affinity is not permitted (containers).
        const auto& topo = Topology::system();
        if (topo.cpu_count() > 0) {
          const std::uint32_t cpu =
              topo.cpu_numbers()[w % topo.cpu_count()];
          cpu_set_t set;
          CPU_ZERO(&set);
          CPU_SET(cpu, &set);
          (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
        }
      }
      std::unique_ptr<sim::ThreadGuard> guard;
      if (simulated) {
        guard = std::make_unique<sim::ThreadGuard>(*machine, w);
        // Virtual time only advances meaningfully if the workers genuinely
        // interleave.  Under the default CFS policy sched_yield() is nearly
        // a no-op, so one worker can run its whole loop alone, which hides
        // all concurrency from the model.  SCHED_RR's yield semantics are a
        // true round-robin rotation; fall back silently if not permitted.
        sched_param prio{};
        prio.sched_priority = 1;
        (void)pthread_setschedparam(pthread_self(), SCHED_RR, &prio);
      }
      ready.fetch_add(1, std::memory_order_acq_rel);
      spin_until([&] { return go.load(std::memory_order_acquire); });
      if (warmup) {
        WorkloadConfig wcfg = cfg;
        wcfg.acquires_per_thread = cfg.warmup_acquires;
        wcfg.seed = cfg.seed ^ 0x7f4a7c15u;  // decorrelate from measured
        WorkerTotals scratch;
        acquire_release_loop(lock, wcfg, w, simulated, scratch, wd);
        warm_done.fetch_add(1, std::memory_order_acq_rel);
        spin_until(
            [&] { return go_measured.load(std::memory_order_acquire); });
      }
      acquire_release_loop(lock, cfg, w, simulated, totals[w], wd);
    });
  }
  spin_until([&] {
    return ready.load(std::memory_order_acquire) == cfg.threads;
  });
  Stopwatch wall;
  go.store(true, std::memory_order_release);
  if (warmup) {
    spin_until([&] {
      return warm_done.load(std::memory_order_acquire) == cfg.threads;
    });
    // Every worker is parked on the phase barrier: the lock is quiescent, so
    // the rebase is exact.  Warmup events stay in the trace rings (the ring
    // wraps toward the newest records anyway).
    lock.reset_stats();
    wall.restart();
    go_measured.store(true, std::memory_order_release);
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.elapsed_s();
  if (watchdog) watchdog->stop();
  if (faults_armed) fault_disable();

  RunResult r;
  for (const auto& t : totals) {
    r.read_acquires += t.reads;
    r.write_acquires += t.writes;
    r.read_timeouts += t.read_timeouts;
    r.write_timeouts += t.write_timeouts;
  }
  r.total_acquires = r.read_acquires + r.write_acquires;
  r.lock_stats = lock.stats();  // quiescent: workers joined
  if (simulated) {
    r.seconds = static_cast<double>(machine->max_clock()) / kSimHz;
    r.counters = machine->counters();
  } else {
    r.seconds = wall_s;
  }
  return r;
}

}  // namespace

RunResult run_workload(LockKind kind, const WorkloadConfig& config, Mode mode,
                       sim::Machine* machine) {
  LockFactoryOptions opts;
  opts.max_threads = std::max<std::uint32_t>(config.threads + 1, 64);
  if (mode == Mode::kSim) {
    // Simulated-topology tuning (DESIGN.md §3): group the 8 SMT siblings of
    // a core onto one C-SNZI leaf (they share an L1, so leaf sharing is
    // nearly free), and treat a single emulated CAS failure as the
    // contention signal — on this model one deterministic failure stands in
    // for the burst of failures real concurrency produces.  The SMT
    // grouping comes from the simulated machine's topology; it reproduces
    // the seed's leaf_shift = 3 mapping exactly (worker w is pinned to
    // simulated cpu w, and cpu w's SMT group is w / 8).
    opts.csnzi.topology = &sim::t5440_cpu_topology();
    opts.csnzi.topology_mapping = LeafMapping::kSmtCluster;
    opts.csnzi.leaves = 64;
    opts.csnzi.root_cas_fail_threshold = 1;
    // Cohort metalock domains come from the same simulated shape (4 chips
    // of 64 threads => 4 LLC domains); worker w is pinned to simulated
    // cpu w, so domain_of(w) is w / 64.
    opts.metalock.topology = &sim::t5440_cpu_topology();
  }
  if (config.leaf_mapping) opts.csnzi.topology_mapping = *config.leaf_mapping;
  if (config.sticky_arrivals) {
    opts.csnzi.sticky_arrivals = *config.sticky_arrivals;
  }
  if (config.metalock) opts.metalock.kind = *config.metalock;
  if (config.cohort_budget) opts.metalock.cohort_budget = *config.cohort_budget;
  if (config.combine) opts.combine = true;
  if (config.dwcas_root) opts.csnzi.dwcas_root = true;
  if (config.combine_budget) opts.combine_budget = *config.combine_budget;
  // Delegation needs the closure-style call; the combining kind (and the
  // --combine override) imply it.
  WorkloadConfig wcfg = config;
  if (config.combine || kind == LockKind::kGollCombining) {
    wcfg.delegate_writes = true;
  }
  if (mode == Mode::kReal) {
    auto lock = make_rwlock<RealMemory>(kind, opts);
    OLL_CHECK(lock != nullptr);
    return run_threads(*lock, wcfg, nullptr);
  }
  std::unique_ptr<sim::Machine> owned;
  if (machine == nullptr) {
    owned = std::make_unique<sim::Machine>(
        sim::t5440_topology(), sim::t5440_costs(),
        std::max<std::uint32_t>(config.threads, 512));
    machine = owned.get();
  }
  machine->reset();
  auto lock = make_rwlock<sim::SimMemory>(kind, opts);
  OLL_CHECK(lock != nullptr);
  return run_threads(*lock, wcfg, machine);
}

RunResult run_workload_on(AnyRwLock& lock, const WorkloadConfig& config) {
  return run_threads(lock, config, nullptr);
}

RunResult run_sim_workload_on(AnyRwLock& lock, const WorkloadConfig& config,
                              sim::Machine& machine) {
  machine.reset();
  return run_threads(lock, config, &machine);
}

}  // namespace oll::bench
