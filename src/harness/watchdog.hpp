// Stuck-acquisition watchdog (DESIGN.md §11).
//
// A background monitor for the bench harness: workers mark the wall-clock
// start of every lock acquisition in a per-worker slot; the monitor thread
// polls the slots and, when an acquisition has been in flight longer than
// an adaptive threshold, dumps a diagnosis to stderr — once per incident.
//
// The threshold adapts to the lock under test: N x the p99 of the lock's
// own writer-wait histogram (locks/lock_stats.hpp), floored so that a thin
// or disabled histogram cannot make the watchdog trigger-happy.  The
// histogram term only applies when its unit is wall nanoseconds (real-mode
// runs with latency timing enabled); sim-mode callers disable it and rely
// on the floor, since virtual cycles do not bound wall time.
//
// The dump contains the stuck worker's identity and wait, the lock's
// counter snapshot (timeouts / abandons / queue mix — the closest portable
// proxy for "owner and queue state" across thirteen lock shapes), and the
// tail of the trace rings when event tracing is armed.  Draining the rings
// is destructive (they are cleared), which is acceptable for a diagnostic
// of last resort.
//
// Off by default; enabled by --watchdog in the fig5 binaries and
// latency_fairness.  Marking an acquisition is two relaxed stores, and the
// loop only performs them when a watchdog is attached, so the measured
// configurations are unaffected.
//
// Parked waiters (platform/park.hpp, DESIGN.md §16): a thread sleeping in
// the parking substrate is healthy, not stuck — incident detection is
// based on "runnable and not progressing", so the wait clock excludes time
// the worker spent parked during the acquisition.  A censused sleeper can
// therefore never trip an incident storm no matter how long a planted
// park lasts.  The exception: a waiter parked PAST the deadline it parked
// with (plus a rearm-slice grace) has been failed by the substrate — that
// IS an incident, dumped with the park census.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "platform/cache_line.hpp"

namespace oll::bench {

struct WatchdogOptions {
  // threshold = max(floor_ns, p99_multiplier * writer_wait.p99) when the
  // histogram term applies, else floor_ns.
  double p99_multiplier = 8.0;
  std::uint64_t floor_ns = 20'000'000;  // 20 ms
  // Consult the lock's writer-wait histogram for the threshold.  Only
  // meaningful when the histogram's unit is wall-clock ns (real mode with
  // latency timing on); sim-mode callers must leave this false.
  bool use_histogram = true;
  std::uint64_t poll_interval_ms = 5;
  // Minimum histogram population before the p99 term is trusted.
  std::uint64_t min_histogram_count = 16;
  // Stop dumping after this many incidents (stderr flood guard).
  std::uint32_t max_incidents = 8;
  // Trace-ring records printed per incident (newest last).
  std::uint32_t max_trace_records = 32;
  // Slack past a parked waiter's own deadline before "parked past
  // deadline" fires: covers one park slice (the substrate's lost-wake
  // rearm bound) plus scheduler noise.
  std::uint64_t park_deadline_grace_ns = 20'000'000;  // 20 ms
};

class Watchdog {
 public:
  Watchdog(AnyRwLock& lock, const WatchdogOptions& opts,
           std::uint32_t workers);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Worker-side marks: wait-free, one relaxed store each.  `worker` is the
  // caller's dense worker index, < the constructor's `workers`.
  void begin_acquire(std::uint32_t worker, bool write);
  void end_acquire(std::uint32_t worker);

  void start();
  void stop();  // idempotent; joins the monitor thread

  std::uint64_t incidents() const {
    return incidents_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kNoTid = ~0u;

  struct alignas(kFalseSharingRange) Slot {
    std::atomic<std::uint64_t> start_ns{0};  // 0 = no acquisition in flight
    std::atomic<std::uint8_t> is_write{0};
    // start_ns value already reported, so one incident = one dump even
    // though the poll loop revisits the same stuck acquisition.
    std::atomic<std::uint64_t> reported{0};
    // Dense thread index of the worker (platform/thread_id.hpp) — the key
    // into the park census — and its cumulative parked ns at acquisition
    // start, so the monitor can subtract park time accrued since.
    std::atomic<std::uint32_t> tid{kNoTid};
    std::atomic<std::uint64_t> parked_base_ns{0};
  };

  // How much of `waited_ns` the worker was parked for, and whether it is
  // parked right now past its own deadline (the substrate-failure case).
  struct ParkView {
    std::uint64_t parked_ns = 0;
    bool parked_now = false;
    bool past_deadline = false;
  };
  ParkView park_view(const Slot& slot, std::uint64_t begin,
                     std::uint64_t now) const;

  void monitor_loop();
  std::uint64_t threshold_ns() const;
  void dump_incident(std::uint32_t worker, const Slot& slot,
                     std::uint64_t waited_ns, std::uint64_t threshold,
                     const ParkView& pv);

  AnyRwLock& lock_;
  WatchdogOptions opts_;
  std::vector<Slot> slots_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> incidents_{0};
  std::thread monitor_;
  bool running_ = false;
};

}  // namespace oll::bench
