#include "harness/sweep.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <ostream>

#include "platform/stats.hpp"
#include "harness/driver.hpp"

namespace oll::bench {

double SweepResult::at(std::uint32_t threads, LockKind k) const {
  for (const auto& c : cells) {
    if (c.threads == threads && c.lock == k) return c.mean_throughput;
  }
  return 0.0;
}

std::vector<std::uint32_t> default_thread_counts(std::uint32_t max_threads) {
  const std::uint32_t candidates[] = {1,  2,  4,  8,   16,  32, 48,
                                      64, 96, 128, 192, 256};
  std::vector<std::uint32_t> out;
  for (std::uint32_t c : candidates) {
    if (c <= max_threads) out.push_back(c);
  }
  if (out.empty() || out.back() != max_threads) out.push_back(max_threads);
  return out;
}

SweepResult run_sweep(const SweepConfig& config, bool verbose) {
  SweepResult result;
  result.config = config;
  for (std::uint32_t threads : config.thread_counts) {
    for (LockKind kind : config.locks) {
      RunningStats stats;
      sim::OpCounters last_counters{};
      LockStatsSnapshot last_stats{};
      std::uint64_t last_total = 1;
      for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
        WorkloadConfig w;
        w.threads = threads;
        w.read_pct = config.read_pct;
        w.acquires_per_thread = config.effective_acquires();
        w.cs_work = config.cs_work;
        w.seed = config.seed + rep;
        w.leaf_mapping = config.leaf_mapping;
        w.sticky_arrivals = config.sticky_arrivals;
        RunResult r = run_workload(kind, w, config.mode);
        stats.add(r.throughput());
        last_counters = r.counters;
        last_stats = r.lock_stats;
        last_total = std::max<std::uint64_t>(r.total_acquires, 1);
      }
      result.cells.push_back(SweepCell{threads, kind, stats.mean(),
                                       stats.stddev()});
      if (verbose) {
        std::cerr << "  [" << lock_kind_name(kind) << " @" << threads
                  << " threads] " << std::scientific << std::setprecision(3)
                  << stats.mean() << " acquires/s";
        if (config.mode == Mode::kSim) {
          const double n = static_cast<double>(last_total);
          std::cerr << std::fixed << std::setprecision(2) << "  per-acq:"
                    << " rmw=" << static_cast<double>(last_counters.rmws) / n
                    << " core="
                    << static_cast<double>(last_counters.samecore_transfers) / n
                    << " chip="
                    << static_cast<double>(last_counters.onchip_transfers) / n
                    << " xchip="
                    << static_cast<double>(last_counters.offchip_transfers) / n
                    << " casfail="
                    << static_cast<double>(
                           last_counters.emulated_cas_failures) / n;
        }
        const CSnziStatsSnapshot& cz = last_stats.csnzi;
        if (cz.arrivals() != 0) {
          // Arrival-path mix (last rep): how much root traffic readers paid.
          const double a = static_cast<double>(cz.arrivals());
          std::cerr << std::fixed << std::setprecision(2) << "  snzi:"
                    << " direct=" << static_cast<double>(cz.direct_arrivals) / a
                    << " tree=" << static_cast<double>(cz.tree_arrivals) / a
                    << " sticky=" << static_cast<double>(cz.sticky_arrivals) / a
                    << " rootread="
                    << static_cast<double>(cz.root_reads) / a
                    << " rootprop="
                    << static_cast<double>(cz.root_propagations) / a;
        }
        std::cerr << "\n";
      }
    }
  }
  return result;
}

void print_series(std::ostream& os, const SweepResult& result) {
  os << "threads";
  for (LockKind k : result.config.locks) os << "," << lock_kind_name(k);
  os << "\n";
  for (std::uint32_t threads : result.config.thread_counts) {
    os << threads;
    for (LockKind k : result.config.locks) {
      os << "," << std::scientific << std::setprecision(6)
         << result.at(threads, k);
    }
    os << "\n";
  }
}

void print_header(std::ostream& os, const std::string& figure_name,
                  const SweepConfig& config) {
  os << "# " << figure_name << "\n"
     << "# read_pct=" << config.read_pct
     << " acquires/thread=" << config.effective_acquires()
     << " reps=" << config.repetitions << " mode=" << mode_name(config.mode);
  if (config.mode == Mode::kSim) {
    os << " machine=T5440(4 chips x 64 hw-threads, shared-L2 on chip)";
  }
  os << "\n";
}

}  // namespace oll::bench
