#include "harness/sweep.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>

#include "platform/stats.hpp"
#include "platform/trace.hpp"
#include "harness/driver.hpp"
#include "harness/trace_export.hpp"

namespace oll::bench {

double SweepResult::at(std::uint32_t threads, LockKind k) const {
  for (const auto& c : cells) {
    if (c.threads == threads && c.lock == k) return c.mean_throughput;
  }
  return 0.0;
}

std::vector<std::uint32_t> default_thread_counts(std::uint32_t max_threads) {
  const std::uint32_t candidates[] = {1,  2,  4,  8,   16,  32, 48,
                                      64, 96, 128, 192, 256};
  std::vector<std::uint32_t> out;
  for (std::uint32_t c : candidates) {
    if (c <= max_threads) out.push_back(c);
  }
  if (out.empty() || out.back() != max_threads) out.push_back(max_threads);
  return out;
}

SweepResult run_sweep(const SweepConfig& config, bool verbose) {
  SweepResult result;
  result.config = config;
  for (std::uint32_t threads : config.thread_counts) {
    for (LockKind kind : config.locks) {
      RunningStats stats;
      sim::OpCounters last_counters{};
      LockStatsSnapshot last_stats{};
      LockStatsSnapshot cell_stats{};
      std::uint64_t last_total = 1;
      for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
        WorkloadConfig w;
        w.threads = threads;
        w.read_pct = config.read_pct;
        w.acquires_per_thread = config.effective_acquires();
        w.cs_work = config.cs_work;
        w.seed = config.seed + rep;
        w.warmup_acquires = config.warmup_acquires;
        w.leaf_mapping = config.leaf_mapping;
        w.sticky_arrivals = config.sticky_arrivals;
        w.metalock = config.metalock;
        w.cohort_budget = config.cohort_budget;
        w.combine = config.combine;
        w.dwcas_root = config.dwcas_root;
        w.combine_budget = config.combine_budget;
        w.delegate_writes = config.delegate_writes;
        w.timeout_ns = config.timeout_ns;
        w.fault_profile = config.fault_profile;
        w.watchdog = config.watchdog;
        w.pin_threads = config.pin_threads;
        RunResult r = run_workload(kind, w, config.mode);
        stats.add(r.throughput());
        last_counters = r.counters;
        last_stats = r.lock_stats;
        last_total = std::max<std::uint64_t>(r.total_acquires, 1);
        cell_stats += r.lock_stats;
      }
      result.cells.push_back(SweepCell{threads, kind, stats.mean(),
                                       stats.stddev(), cell_stats});
      if (verbose) {
        std::cerr << "  [" << lock_kind_name(kind) << " @" << threads
                  << " threads] " << std::scientific << std::setprecision(3)
                  << stats.mean() << " acquires/s";
        if (config.mode == Mode::kSim) {
          const double n = static_cast<double>(last_total);
          std::cerr << std::fixed << std::setprecision(2) << "  per-acq:"
                    << " rmw=" << static_cast<double>(last_counters.rmws) / n
                    << " core="
                    << static_cast<double>(last_counters.samecore_transfers) / n
                    << " chip="
                    << static_cast<double>(last_counters.onchip_transfers) / n
                    << " xchip="
                    << static_cast<double>(last_counters.offchip_transfers) / n
                    << " casfail="
                    << static_cast<double>(
                           last_counters.emulated_cas_failures) / n;
          // Per-order histogram (fence-reduction ablation): the memory-order
          // audit's win shows up as mass shifting from seq_cst toward
          // relaxed/acq_rel at unchanged throughput.
          std::cerr << "  orders:";
          for (std::uint32_t i = 0; i < sim::kMemoryOrderCount; ++i) {
            if (last_counters.order_ops[i] == 0) continue;
            std::cerr << " " << sim::memory_order_name(i) << "="
                      << static_cast<double>(last_counters.order_ops[i]) / n;
          }
        }
        const CSnziStatsSnapshot& cz = last_stats.csnzi;
        if (cz.arrivals() != 0) {
          // Arrival-path mix (last rep): how much root traffic readers paid.
          const double a = static_cast<double>(cz.arrivals());
          std::cerr << std::fixed << std::setprecision(2) << "  snzi:"
                    << " direct=" << static_cast<double>(cz.direct_arrivals) / a
                    << " tree=" << static_cast<double>(cz.tree_arrivals) / a
                    << " sticky=" << static_cast<double>(cz.sticky_arrivals) / a
                    << " rootread="
                    << static_cast<double>(cz.root_reads) / a
                    << " rootprop="
                    << static_cast<double>(cz.root_propagations) / a;
        }
        std::cerr << "\n";
      }
    }
  }
  return result;
}

void print_series(std::ostream& os, const SweepResult& result) {
  os << "threads";
  for (LockKind k : result.config.locks) os << "," << lock_kind_name(k);
  os << "\n";
  for (std::uint32_t threads : result.config.thread_counts) {
    os << threads;
    for (LockKind k : result.config.locks) {
      os << "," << std::scientific << std::setprecision(6)
         << result.at(threads, k);
    }
    os << "\n";
  }
}

void print_header(std::ostream& os, const std::string& figure_name,
                  const SweepConfig& config) {
  os << "# " << figure_name << "\n"
     << "# read_pct=" << config.read_pct
     << " acquires/thread=" << config.effective_acquires()
     << " reps=" << config.repetitions << " mode=" << mode_name(config.mode);
  if (config.timeout_ns != 0) os << " timeout_ns=" << config.timeout_ns;
  if (!config.fault_profile.empty()) {
    os << " fault_profile=" << config.fault_profile;
  }
  if (config.mode == Mode::kSim) {
    os << " machine=T5440(4 chips x 64 hw-threads, shared-L2 on chip)";
  }
  os << "\n";
}

namespace {
constexpr double kSimGhz = 1.4;  // matches the driver's kSimHz
}  // namespace

void write_histogram_json(std::ostream& out, const HistogramSnapshot& h) {
  out << "{\"count\":" << h.count << ",\"mean\":" << h.mean()
      << ",\"p50\":" << h.percentile(50.0)
      << ",\"p95\":" << h.percentile(95.0)
      << ",\"p99\":" << h.percentile(99.0) << ",\"max\":" << h.max
      // Saturation: samples that landed in the last (unbounded) log2
      // bucket, where percentile resolution is gone.  Non-zero means the
      // histogram range was too small for this workload.
      << ",\"overflow\":" << h.buckets[kHistogramBuckets - 1] << "}";
}

void write_lock_stats_json(std::ostream& out, const LockStatsSnapshot& s) {
  out << "\"read_fast\":" << s.read_fast
      << ",\"read_queued\":" << s.read_queued
      << ",\"write_fast\":" << s.write_fast
      << ",\"write_queued\":" << s.write_queued
      << ",\"read_bias\":" << s.read_bias
      << ",\"bias_revoke\":" << s.bias_revoke
      << ",\"meta_handoffs\":" << s.meta_handoffs
      << ",\"meta_cohort_hits\":" << s.meta_cohort_hits
      << ",\"meta_cross_domain\":" << s.meta_cross_domain
      << ",\"wake_cohort_hits\":" << s.wake_cohort_hits
      << ",\"wake_cross_domain\":" << s.wake_cross_domain
      << ",\"read_timeouts\":" << s.read_timeouts
      << ",\"write_timeouts\":" << s.write_timeouts
      << ",\"read_abandons\":" << s.read_abandons
      << ",\"write_abandons\":" << s.write_abandons
      << ",\"revoke_timeouts\":" << s.revoke_timeouts
      << ",\"combined_ops\":" << s.combined_ops
      << ",\"combine_batches\":" << s.combine_batches
      << ",\"combine_handoffs_saved\":" << s.combine_handoffs_saved
      << ",\"opt_reads\":" << s.opt_reads
      << ",\"opt_validation_failures\":" << s.opt_validation_failures
      << ",\"opt_fallbacks\":" << s.opt_fallbacks
      << ",\"parks\":" << s.parks
      << ",\"unparks\":" << s.unparks
      << ",\"spurious_wakes\":" << s.spurious_wakes
      << ",\"read_acquire\":";
  write_histogram_json(out, s.read_acquire);
  out << ",\"write_acquire\":";
  write_histogram_json(out, s.write_acquire);
  out << ",\"writer_wait\":";
  write_histogram_json(out, s.writer_wait);
  out << ",\"timed_acquire\":";
  write_histogram_json(out, s.timed_acquire);
  out << ",\"opt_read\":";
  write_histogram_json(out, s.opt_read);
  out << ",\"park_wait\":";
  write_histogram_json(out, s.park_wait);
}

bool write_stats_json_file(const std::string& path, Mode mode,
                           const char* unit, std::uint32_t threads,
                           std::uint32_t read_pct, std::uint64_t acquires,
                           bool trace_enabled,
                           const std::vector<StatsJsonRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  // Schema documented in docs/STATS_SCHEMA.md; bump schema_version on any
  // breaking change.
  out << "{\"schema_version\":" << kStatsJsonSchemaVersion << ",\"mode\":\""
      << mode_name(mode) << "\",\"unit\":\"" << unit
      << "\",\"threads\":" << threads << ",\"read_pct\":" << read_pct
      << ",\"acquires_per_thread\":" << acquires
      << ",\"trace_enabled\":" << (trace_enabled ? "true" : "false")
      << ",\"locks\":{";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << rows[i].name << "\":{";
    write_lock_stats_json(out, rows[i].stats);
    out << ",\"trace_dropped\":" << rows[i].trace_dropped << "}";
  }
  out << "}}\n";
  return out.good();
}

bool run_observability_pass(std::ostream& os,
                            const ObservabilityConfig& cfg) {
  const SweepConfig& sc = cfg.sweep;
  std::uint32_t threads = cfg.threads;
  if (threads == 0) {
    for (std::uint32_t t : sc.thread_counts) threads = std::max(threads, t);
    if (threads == 0) threads = 4;
  }
  const bool want_trace = !cfg.trace_path.empty();
  // Latency units: ns in real mode, virtual cycles in sim mode (the sim
  // trace clock is the per-thread virtual clock).
  const char* unit = sc.mode == Mode::kSim ? "cycles" : "ns";
  // Perfetto timestamps are microseconds.
  const double ts_scale = sc.mode == Mode::kSim ? 1e-3 / kSimGhz : 1e-3;

  latency_timing_enable();
  if (want_trace) {
    TraceOptions topts;
    topts.ring_capacity = cfg.ring_capacity;
    trace_enable(topts);
  }

  std::vector<StatsJsonRow> rows;
  std::vector<TraceRun> trace_runs;
  for (LockKind kind : sc.locks) {
    WorkloadConfig w;
    w.threads = threads;
    w.read_pct = sc.read_pct;
    w.acquires_per_thread = sc.effective_acquires();
    w.cs_work = sc.cs_work;
    w.seed = sc.seed;
    w.warmup_acquires = sc.warmup_acquires;
    w.leaf_mapping = sc.leaf_mapping;
    w.sticky_arrivals = sc.sticky_arrivals;
    w.metalock = sc.metalock;
    w.cohort_budget = sc.cohort_budget;
    w.combine = sc.combine;
    w.dwcas_root = sc.dwcas_root;
    w.combine_budget = sc.combine_budget;
    w.delegate_writes = sc.delegate_writes;
    w.timeout_ns = sc.timeout_ns;
    w.fault_profile = sc.fault_profile;
    w.watchdog = sc.watchdog;
    w.pin_threads = sc.pin_threads;
    RunResult r = run_workload(kind, w, sc.mode);
    rows.push_back({lock_kind_name(kind), r.lock_stats, 0});
    if (want_trace) {
      // Drain per lock run so each gets its own process in the export.
      TraceRun run;
      run.name = std::string(lock_kind_name(kind)) + " t=" +
                 std::to_string(threads) + " r=" +
                 std::to_string(sc.read_pct);
      run.dump = trace_drain();
      run.ts_scale = ts_scale;
      rows.back().trace_dropped = run.dump.dropped;
      trace_runs.push_back(std::move(run));
    }
  }

  if (want_trace) trace_disable();
  latency_timing_disable();

  os << "# observability pass: threads=" << threads << " read_pct="
     << sc.read_pct << " acquires/thread=" << sc.effective_acquires()
     << " unit=" << unit << "\n"
     << "lock,read_p50,read_p99,write_p50,write_p99,wrwait_p50,wrwait_p99\n";
  for (const StatsJsonRow& row : rows) {
    os << row.name << std::fixed << std::setprecision(0)
       << "," << row.stats.read_acquire.percentile(50.0)
       << "," << row.stats.read_acquire.percentile(99.0)
       << "," << row.stats.write_acquire.percentile(50.0)
       << "," << row.stats.write_acquire.percentile(99.0)
       << "," << row.stats.writer_wait.percentile(50.0)
       << "," << row.stats.writer_wait.percentile(99.0) << "\n";
  }

  bool ok = true;
  if (!cfg.stats_json_path.empty()) {
    ok = write_stats_json_file(cfg.stats_json_path, sc.mode, unit, threads,
                               sc.read_pct, sc.effective_acquires(),
                               want_trace, rows);
  }
  if (want_trace && ok) {
    ok = write_chrome_trace_file(cfg.trace_path, trace_runs);
  }
  return ok;
}

}  // namespace oll::bench
