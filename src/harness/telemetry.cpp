#include "harness/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <tuple>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include "platform/park.hpp"
#include "platform/time.hpp"

namespace oll {

namespace {

// Prometheus label values: escape backslash, double-quote and newline.
std::string escape_label(const char* s) {
  std::string out;
  for (const char* p = s; p != nullptr && *p != '\0'; ++p) {
    switch (*p) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *p;
    }
  }
  return out;
}

// JSON string escaping (names are our own literals, but be safe).
std::string escape_json(const char* s) {
  std::string out;
  for (const char* p = s; p != nullptr && *p != '\0'; ++p) {
    switch (*p) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(*p) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", *p);
          out += buf;
        } else {
          out += *p;
        }
    }
  }
  return out;
}

std::string site_label(const LockSiteSample& s) {
  std::ostringstream os;
  os << (s.file != nullptr ? s.file : "?") << ":" << s.line;
  return os.str();
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions opts)
    : opts_(std::move(opts)) {}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::start() {
  if (started_) return;
  started_ = true;
  if (opts_.census) registry_census_enable();
  registry_set_coarse_now(now_ns());
  last_tick_ns_ = now_ns();
  if (opts_.http_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ >= 0) {
      int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(opts_.http_port));
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof addr) == 0 &&
          ::listen(listen_fd_, 16) == 0) {
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0) {
          bound_port_ = ntohs(bound.sin_port);
        }
        http_thread_ = std::thread([this] { http_loop(); });
      } else {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    }
  }
  thread_ = std::thread([this] { run(); });
}

void TelemetryExporter::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    // Unblock the accept loop, but don't close yet: the listener thread
    // still reads listen_fd_, and once closed the fd number could be
    // recycled by an unrelated open and a late accept() would act on the
    // wrong descriptor.  Close only after the join.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (http_thread_.joinable()) http_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (opts_.census) registry_census_disable();
}

void TelemetryExporter::run() {
  // Sim-mode bench workers run SCHED_RR (driver.cpp) and spin, which can
  // starve a normal-priority thread for entire cells and leave only the
  // final flush with real samples.  The exporter sleeps virtually always,
  // so outranking them costs the workers nothing; fall back silently where
  // realtime scheduling is not permitted.
  sched_param prio{};
  prio.sched_priority = 2;
  (void)pthread_setschedparam(pthread_self(), SCHED_RR, &prio);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lk, std::chrono::milliseconds(opts_.interval_ms),
        [this] { return stop_; });
    // One tick per wakeup; on stop, take a final tick so short runs still
    // export at least one complete snapshot.
    lk.unlock();
    emit(collect(now_ns()));
    lk.lock();
    if (stopping || stop_) return;
  }
}

TelemetryTick TelemetryExporter::collect(std::uint64_t now) {
  std::lock_guard<std::mutex> g(collect_mu_);
  registry_set_coarse_now(now);
  TelemetryTick t;
  t.tick = tick_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  t.now_ns = now;
  t.interval_ns = now > last_tick_ns_ ? now - last_tick_ns_ : 0;
  last_tick_ns_ = now;

  const auto samples = registry_sample(now, /*attribute_sites=*/true);
  t.locks.reserve(samples.size());
  std::vector<Baseline> next_baselines;
  next_baselines.reserve(samples.size());
  std::size_t cursor = 0;  // baselines_ and samples are both sorted by id
  for (const auto& s : samples) {
    LockTelemetry lt;
    lt.id = s.id;
    lt.name = s.name;
    lt.kind = s.kind;
    lt.site = s.site;
    lt.total = s.stats;
    lt.delta = s.stats;
    while (cursor < baselines_.size() && baselines_[cursor].id < s.id) {
      ++cursor;  // lock deregistered since last tick: drop its baseline
    }
    if (cursor < baselines_.size() && baselines_[cursor].id == s.id) {
      lt.delta -= baselines_[cursor].stats;
    }
    lt.census = s.census;
    lt.has_census = s.has_census;
    next_baselines.push_back(Baseline{s.id, s.stats});
    t.locks.push_back(std::move(lt));
  }
  baselines_ = std::move(next_baselines);
  // Deregistered locks fold their final counters into the registry's
  // graveyard at destruction; export the aggregate alongside live rows.
  t.retired = registry_graveyard();

  t.top.resize(t.locks.size());
  for (std::size_t i = 0; i < t.top.size(); ++i) t.top[i] = i;
  std::stable_sort(t.top.begin(), t.top.end(),
                   [&](std::size_t a, std::size_t b) {
                     return t.locks[a].contention_score() >
                            t.locks[b].contention_score();
                   });
  if (t.top.size() > opts_.top_k) t.top.resize(opts_.top_k);

  t.sites = lock_site_table();
  return t;
}

std::string TelemetryExporter::render_prometheus(const TelemetryTick& t) {
  std::ostringstream os;
  const double dt = static_cast<double>(t.interval_ns) * 1e-9;

  os << "# HELP oll_registry_live_locks Locks currently registered.\n"
     << "# TYPE oll_registry_live_locks gauge\n"
     << "oll_registry_live_locks " << t.locks.size() << "\n";
  os << "# HELP oll_telemetry_ticks_total Exporter collection ticks.\n"
     << "# TYPE oll_telemetry_ticks_total counter\n"
     << "oll_telemetry_ticks_total " << t.tick << "\n";
  // Process-wide parking substrate gauge (platform/park.hpp): threads
  // asleep right now, across every lock.  Zero (and parks stay zero) on
  // OLL_PARK=0 builds.
  os << "# HELP oll_parked_threads Threads currently parked in the "
        "spin-then-park substrate.\n"
     << "# TYPE oll_parked_threads gauge\n"
     << "oll_parked_threads " << parked_thread_count() << "\n";
  {
    const ParkStats ps = park_stats();
    os << "# HELP oll_park_events_total Parking substrate events by type.\n"
       << "# TYPE oll_park_events_total counter\n"
       << "oll_park_events_total{event=\"park\"} " << ps.parks << "\n"
       << "oll_park_events_total{event=\"unpark\"} " << ps.unparks << "\n"
       << "oll_park_events_total{event=\"spurious\"} " << ps.spurious_wakes
       << "\n"
       << "oll_park_events_total{event=\"rearm_recovery\"} "
       << ps.rearm_recoveries << "\n";
  }

  auto counter = [&os](const char* metric, const char* help) {
    os << "# HELP " << metric << " " << help << "\n"
       << "# TYPE " << metric << " counter\n";
  };
  auto gauge = [&os](const char* metric, const char* help) {
    os << "# HELP " << metric << " " << help << "\n"
       << "# TYPE " << metric << " gauge\n";
  };
  auto labels = [](const LockTelemetry& l) {
    std::ostringstream ls;
    ls << "{lock=\"" << escape_label(l.name) << "\",kind=\""
       << escape_label(l.kind) << "\",id=\"" << l.id << "\"}";
    return ls.str();
  };

  struct CounterRow {
    const char* metric;
    const char* help;
    std::uint64_t (*get)(const LockStatsSnapshot&);
  };
  static const CounterRow kCounters[] = {
      {"oll_lock_reads_total", "Shared acquisitions (all paths).",
       [](const LockStatsSnapshot& s) { return s.reads(); }},
      {"oll_lock_writes_total", "Exclusive acquisitions (all paths).",
       [](const LockStatsSnapshot& s) { return s.writes(); }},
      {"oll_lock_read_queued_total", "Readers that had to queue.",
       [](const LockStatsSnapshot& s) { return s.read_queued; }},
      {"oll_lock_write_queued_total", "Writers that had to queue.",
       [](const LockStatsSnapshot& s) { return s.write_queued; }},
      {"oll_lock_read_bias_total", "BRAVO bias fast-path reads.",
       [](const LockStatsSnapshot& s) { return s.read_bias; }},
      {"oll_lock_bias_revoke_total", "BRAVO bias revocations.",
       [](const LockStatsSnapshot& s) { return s.bias_revoke; }},
      {"oll_lock_timeouts_total", "Timed acquisitions that timed out.",
       [](const LockStatsSnapshot& s) {
         return s.read_timeouts + s.write_timeouts;
       }},
      {"oll_lock_opt_reads_total", "Validated optimistic reads.",
       [](const LockStatsSnapshot& s) { return s.opt_reads; }},
      {"oll_lock_opt_validation_failures_total",
       "Optimistic reads invalidated by writers.",
       [](const LockStatsSnapshot& s) { return s.opt_validation_failures; }},
      {"oll_lock_opt_fallbacks_total",
       "Optimistic retry loops that fell back to the shared path.",
       [](const LockStatsSnapshot& s) { return s.opt_fallbacks; }},
  };
  for (const auto& row : kCounters) {
    counter(row.metric, row.help);
    for (const auto& l : t.locks) {
      os << row.metric << labels(l) << " " << row.get(l.total) << "\n";
    }
    // Deregistered locks keep their counters, aggregated by (name, kind):
    // Prometheus counters must not vanish, and the end-of-run exposition
    // should account for per-cell bench locks that have been destroyed.
    for (const auto& r : t.retired) {
      os << row.metric << "{lock=\"" << escape_label(r.name.c_str())
         << "\",kind=\"" << escape_label(r.kind.c_str())
         << "\",id=\"retired\"} " << row.get(r.stats) << "\n";
    }
  }

  gauge("oll_lock_acquire_rate", "Acquisitions/s over the last interval.");
  for (const auto& l : t.locks) {
    const double rate =
        dt > 0.0
            ? static_cast<double>(l.delta.reads() + l.delta.writes()) / dt
            : 0.0;
    os << "oll_lock_acquire_rate" << labels(l) << " " << rate << "\n";
  }

  gauge("oll_lock_queue_depth", "Threads currently waiting (census).");
  gauge("oll_lock_waiting_writers", "Writers currently waiting (census).");
  gauge("oll_lock_write_held", "1 when a writer holds the lock (census).");
  gauge("oll_lock_longest_wait_seconds",
        "Age of the oldest current waiter (coarse-clock resolution).");
  gauge("oll_lock_holder_tid",
        "Dense thread index of the current write holder, -1 if none.");
  for (const auto& l : t.locks) {
    if (!l.has_census) continue;
    const std::string ls = labels(l);
    os << "oll_lock_queue_depth" << ls << " " << l.census.queue_depth()
       << "\n";
    os << "oll_lock_waiting_writers" << ls << " " << l.census.waiting_writers
       << "\n";
    os << "oll_lock_write_held" << ls << " " << (l.census.write_held ? 1 : 0)
       << "\n";
    os << "oll_lock_longest_wait_seconds" << ls << " "
       << static_cast<double>(l.census.longest_wait_ns) * 1e-9 << "\n";
    os << "oll_lock_holder_tid" << ls << " "
       << (l.census.writer_tid == kNoCensusTid
               ? -1
               : static_cast<long>(l.census.writer_tid))
       << "\n";
  }

  counter("oll_site_wait_samples_total",
          "Waiters observed at this acquire site at telemetry ticks.");
  counter("oll_site_stalls_total",
          "Acquisitions from this site that spanned a telemetry tick.");
  for (const auto& s : t.sites) {
    const std::string ls =
        "{site=\"" + escape_label(site_label(s).c_str()) + "\"}";
    os << "oll_site_wait_samples_total" << ls << " " << s.wait_samples
       << "\n";
    os << "oll_site_stalls_total" << ls << " " << s.stalls << "\n";
  }
  return os.str();
}

std::string TelemetryExporter::render_jsonl(const TelemetryTick& t) {
  std::ostringstream os;
  os << "{\"tick\":" << t.tick << ",\"ts_ns\":" << t.now_ns
     << ",\"interval_ns\":" << t.interval_ns << ",\"locks\":[";
  for (std::size_t i = 0; i < t.locks.size(); ++i) {
    const auto& l = t.locks[i];
    if (i != 0) os << ",";
    os << "{\"id\":" << l.id << ",\"name\":\"" << escape_json(l.name)
       << "\",\"kind\":\"" << escape_json(l.kind) << "\"";
    if (l.site.known()) {
      os << ",\"site\":\"" << escape_json(l.site.file) << ":" << l.site.line
         << "\"";
    }
    os << ",\"reads\":" << l.total.reads()
       << ",\"writes\":" << l.total.writes()
       << ",\"delta_reads\":" << l.delta.reads()
       << ",\"delta_writes\":" << l.delta.writes()
       << ",\"delta_read_queued\":" << l.delta.read_queued
       << ",\"delta_write_queued\":" << l.delta.write_queued
       << ",\"delta_bias_revoke\":" << l.delta.bias_revoke
       << ",\"delta_opt_reads\":" << l.delta.opt_reads
       << ",\"delta_opt_fallbacks\":" << l.delta.opt_fallbacks;
    if (l.has_census) {
      os << ",\"queue_depth\":" << l.census.queue_depth()
         << ",\"waiting_writers\":" << l.census.waiting_writers
         << ",\"write_held\":" << (l.census.write_held ? "true" : "false")
         << ",\"longest_wait_ns\":" << l.census.longest_wait_ns;
      if (l.census.writer_tid != kNoCensusTid) {
        os << ",\"holder_tid\":" << l.census.writer_tid;
      }
    }
    os << "}";
  }
  os << "],\"top\":[";
  for (std::size_t i = 0; i < t.top.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << escape_json(t.locks[t.top[i]].name) << "\"";
  }
  os << "],\"retired\":[";
  for (std::size_t i = 0; i < t.retired.size(); ++i) {
    const auto& r = t.retired[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << escape_json(r.name.c_str()) << "\",\"kind\":\""
       << escape_json(r.kind.c_str()) << "\",\"reads\":" << r.stats.reads()
       << ",\"writes\":" << r.stats.writes() << "}";
  }
  os << "],\"sites\":[";
  bool first = true;
  for (const auto& s : t.sites) {
    if (s.wait_samples == 0 && s.stalls == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"site\":\"" << escape_json(site_label(s).c_str())
       << "\",\"wait_samples\":" << s.wait_samples
       << ",\"stalls\":" << s.stalls << "}";
  }
  os << "]}";
  return os.str();
}

void TelemetryExporter::emit(const TelemetryTick& t) {
  const std::string prom = render_prometheus(t);
  {
    std::lock_guard<std::mutex> g(prom_mu_);
    latest_prom_ = prom;
  }
  if (!opts_.prom_path.empty()) {
    // tmp + rename so a concurrent scrape of the file never sees a torn
    // exposition.
    const std::string tmp = opts_.prom_path + ".tmp";
    {
      std::ofstream f(tmp, std::ios::trunc);
      f << prom;
    }
    std::rename(tmp.c_str(), opts_.prom_path.c_str());
  }
  if (!opts_.jsonl_path.empty()) {
    std::ofstream f(opts_.jsonl_path, std::ios::app);
    f << render_jsonl(t) << "\n";
  }
}

void TelemetryExporter::http_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down (stop()) or hard error
    {
      std::lock_guard<std::mutex> g(mu_);
      if (stop_) {
        ::close(fd);
        return;
      }
    }
    char buf[1024];
    // Drain whatever request line arrived; we serve the same document for
    // any path, which is all a Prometheus scrape needs.
    (void)::recv(fd, buf, sizeof buf, 0);
    std::string body;
    {
      std::lock_guard<std::mutex> g(prom_mu_);
      body = latest_prom_;
    }
    std::ostringstream os;
    os << "HTTP/1.0 200 OK\r\n"
       << "Content-Type: text/plain; version=0.0.4\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    const std::string resp = os.str();
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off, 0);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

std::unique_ptr<TelemetryExporter> make_telemetry_exporter(
    const TelemetryFlagValues& v) {
  if (!v.any()) return nullptr;
  TelemetryOptions o;
  o.interval_ms = v.interval_ms == 0 ? 1 : v.interval_ms;
  if (!v.metrics_out.empty()) {
    o.prom_path = v.metrics_out;
    o.jsonl_path = v.metrics_out + ".jsonl";
    // A fresh run starts a fresh series.
    std::remove(o.jsonl_path.c_str());
  }
  o.http_port = v.metrics_port;
  auto exp = std::make_unique<TelemetryExporter>(std::move(o));
  exp->start();
  return exp;
}

}  // namespace oll
