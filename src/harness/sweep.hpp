// Figure 5 sweep runner: regenerates the paper's throughput-vs-threads
// series for a given read percentage, across the five plotted locks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "harness/workload.hpp"

namespace oll::bench {

struct SweepConfig {
  std::uint32_t read_pct = 100;
  std::vector<std::uint32_t> thread_counts;
  std::vector<LockKind> locks;
  std::uint64_t acquires_per_thread = 0;  // 0 => pick per paper methodology
  std::uint32_t repetitions = 3;          // §5.1: average of three runs
  std::uint64_t cs_work = 0;
  Mode mode = Mode::kSim;
  std::uint64_t seed = 42;
  // C-SNZI tuning overrides (see workload.hpp); unset keeps mode defaults.
  std::optional<LeafMapping> leaf_mapping;
  std::optional<std::uint32_t> sticky_arrivals;

  // The paper runs 100k acquisitions per thread, reduced to 10k at <=50%
  // reads.  Virtual time is near-deterministic, so we default much lower to
  // keep single-core sim sweeps fast (throughput is a ratio; the series
  // shape is unaffected).  Pass --acquires to any bench binary to raise it.
  std::uint64_t effective_acquires() const {
    if (acquires_per_thread != 0) return acquires_per_thread;
    return (read_pct <= 50) ? 300 : 1000;
  }
};

struct SweepCell {
  std::uint32_t threads = 0;
  LockKind lock{};
  double mean_throughput = 0.0;
  double stddev = 0.0;
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepCell> cells;

  double at(std::uint32_t threads, LockKind k) const;
};

// Paper x-axis: 1..256 on a 4x64 machine, dense enough to show the
// 64-thread cliff.
std::vector<std::uint32_t> default_thread_counts(std::uint32_t max_threads);

SweepResult run_sweep(const SweepConfig& config, bool verbose = true);

// Emit the series as CSV: "threads,GOLL,FOLL,..." — one row per count.
void print_series(std::ostream& os, const SweepResult& result);

// Human-readable header describing the run (figure id, workload, machine).
void print_header(std::ostream& os, const std::string& figure_name,
                  const SweepConfig& config);

}  // namespace oll::bench
