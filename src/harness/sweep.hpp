// Figure 5 sweep runner: regenerates the paper's throughput-vs-threads
// series for a given read percentage, across the five plotted locks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "harness/workload.hpp"

namespace oll::bench {

struct SweepConfig {
  std::uint32_t read_pct = 100;
  std::vector<std::uint32_t> thread_counts;
  std::vector<LockKind> locks;
  std::uint64_t acquires_per_thread = 0;  // 0 => pick per paper methodology
  std::uint32_t repetitions = 3;          // §5.1: average of three runs
  std::uint64_t cs_work = 0;
  Mode mode = Mode::kSim;
  std::uint64_t seed = 42;
  // Per-thread warmup acquisitions before each measured run (see
  // workload.hpp: stats are rebased and the real-mode wall clock restarted
  // at the phase boundary).
  std::uint64_t warmup_acquires = 0;
  // C-SNZI tuning overrides (see workload.hpp); unset keeps mode defaults.
  std::optional<LeafMapping> leaf_mapping;
  std::optional<std::uint32_t> sticky_arrivals;
  // Writer-arbitration overrides (see workload.hpp); unset keeps the
  // factory default (cohort metalock).
  std::optional<MetalockKind> metalock;
  std::optional<std::uint32_t> cohort_budget;
  // Flat-combining / DWCAS-root knobs (see workload.hpp).
  bool combine = false;
  bool dwcas_root = false;
  std::optional<std::uint32_t> combine_budget;
  bool delegate_writes = false;
  // Robustness knobs (see workload.hpp): per-op acquisition timeout (0 =
  // blocking), fault-injection profile name (empty = none), and the
  // stuck-acquisition watchdog (real mode only).
  std::uint64_t timeout_ns = 0;
  std::string fault_profile;
  bool watchdog = false;
  // Real mode only: pin worker threads to host CPUs (workload.hpp).
  bool pin_threads = false;

  // The paper runs 100k acquisitions per thread, reduced to 10k at <=50%
  // reads.  Virtual time is near-deterministic, so we default much lower to
  // keep single-core sim sweeps fast (throughput is a ratio; the series
  // shape is unaffected).  Pass --acquires to any bench binary to raise it.
  std::uint64_t effective_acquires() const {
    if (acquires_per_thread != 0) return acquires_per_thread;
    return (read_pct <= 50) ? 300 : 1000;
  }
};

struct SweepCell {
  std::uint32_t threads = 0;
  LockKind lock{};
  double mean_throughput = 0.0;
  double stddev = 0.0;
  // Operation counters (and, when latency timing was enabled, acquire
  // latency histograms) summed over the cell's repetitions.
  LockStatsSnapshot stats{};
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepCell> cells;

  double at(std::uint32_t threads, LockKind k) const;
};

// Paper x-axis: 1..256 on a 4x64 machine, dense enough to show the
// 64-thread cliff.
std::vector<std::uint32_t> default_thread_counts(std::uint32_t max_threads);

SweepResult run_sweep(const SweepConfig& config, bool verbose = true);

// Emit the series as CSV: "threads,GOLL,FOLL,..." — one row per count.
void print_series(std::ostream& os, const SweepResult& result);

// Human-readable header describing the run (figure id, workload, machine).
void print_header(std::ostream& os, const std::string& figure_name,
                  const SweepConfig& config);

// --- observability pass (DESIGN.md §9) -----------------------------------
//
// A separate, non-gated pass run AFTER a throughput sweep: re-runs each lock
// once at a single thread count with latency timing (and, when a trace path
// is given, event tracing) runtime-enabled, then exports the results.  The
// gated sweep above therefore always executes with every hook disabled.

struct ObservabilityConfig {
  SweepConfig sweep;            // locks / read_pct / mode / seed / warmup...
  std::uint32_t threads = 0;    // 0 => max of sweep.thread_counts
  std::string trace_path;       // non-empty => export Chrome-trace JSON
  std::string stats_json_path;  // non-empty => export per-lock stats JSON
  std::uint32_t ring_capacity = 1u << 13;
};

// Runs the pass, prints a per-lock latency table to `os`, and writes the
// requested export files.  Returns false if an export file could not be
// written.
bool run_observability_pass(std::ostream& os, const ObservabilityConfig& cfg);

// Version of the --stats_json document layout (docs/STATS_SCHEMA.md).
// Bump on any breaking change to field names or meanings.  v2 added
// schema_version itself, trace_enabled, per-lock trace_dropped and
// per-histogram overflow.  v3 added the flat-combining counters
// (combined_ops, combine_batches, combine_handoffs_saved).  v4 added the
// spin-then-park counters (parks, unparks, spurious_wakes) and the
// park_wait histogram (DESIGN.md §16).
inline constexpr int kStatsJsonSchemaVersion = 4;

// JSON fragments shared by the stats exports (the observability pass and
// the latency_fairness bench): {"count":..,"mean":..,"p50":..,...} for a
// histogram, and the full counter + histogram set for a snapshot.
void write_histogram_json(std::ostream& out, const HistogramSnapshot& h);
void write_lock_stats_json(std::ostream& out, const LockStatsSnapshot& s);

// One per-lock entry of a --stats_json document.
struct StatsJsonRow {
  std::string name;
  LockStatsSnapshot stats;
  std::uint64_t trace_dropped = 0;  // ring-wrap losses during the run
};

// Write a complete --stats_json document (layout: docs/STATS_SCHEMA.md,
// version kStatsJsonSchemaVersion).  The single writer behind every stats
// export, so all producers emit the same schema.  Returns false if the
// file could not be written.
bool write_stats_json_file(const std::string& path, Mode mode,
                           const char* unit, std::uint32_t threads,
                           std::uint32_t read_pct, std::uint64_t acquires,
                           bool trace_enabled,
                           const std::vector<StatsJsonRow>& rows);

}  // namespace oll::bench
