// Runtime CPU topology: which hardware threads share an SMT core, a
// last-level cache, and a NUMA node.
//
// The C-SNZI leaf mapping (snzi/csnzi.hpp) wants threads that share a cache
// to share a leaf counter — same-line traffic between L1 siblings is nearly
// free, while the same traffic across sockets is the coherence storm the
// tree exists to avoid (§2.2, §5.1).  The seed hard-coded the UltraSPARC
// T2+ shape as `leaf_shift = 3`; this layer derives the grouping from the
// machine instead:
//
//   * Topology::from_sysfs(root) parses the Linux view
//     (<root>/cpu<N>/topology/thread_siblings_list,
//      <root>/cpu<N>/cache/index*/shared_cpu_list, <root>/cpu<N>/node<M>),
//     tolerating hotplug gaps and missing files.
//   * Topology::synthetic(...) builds a deterministic shape for non-Linux
//     hosts and for the simulator (sim::Machine's T5440 model).
//   * Topology::system() caches the sysfs result for this host, falling
//     back to a synthetic single-socket shape when sysfs is unusable.
//
// LeafMap then turns a Topology plus a LeafMapping policy into the
// `thread_index -> leaf index` function the C-SNZI uses.  Thread indices
// (platform/thread_id.hpp) are dense and assigned in registration order; the
// harness pins worker w to index w, so mapping index -> cpu by identity
// (mod cpu count) mirrors how the benches bind logical threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oll {

// Per-CPU placement: dense ids, each in [0, count-of-that-domain).
struct CpuPlacement {
  std::uint32_t smt_group = 0;   // CPUs sharing a physical core
  std::uint32_t llc_domain = 0;  // CPUs sharing the last-level cache
  std::uint32_t numa_node = 0;   // CPUs on the same memory node
};

class Topology {
 public:
  // Empty topology: cpu_count() == 0.  from_sysfs returns this on failure.
  Topology() = default;

  // Parse a sysfs cpu directory (normally "/sys/devices/system/cpu"; tests
  // point it at fixture directories).  Missing files degrade gracefully:
  // a CPU with no siblings info becomes its own SMT group, a CPU with no
  // cache info falls back to its core_siblings (package) and then to
  // itself, and a CPU with no node<M> entry treats its LLC sibling set as
  // its node (under ids that never alias real node<M> ids, so mixed
  // systems keep distinct nodes distinct).
  static Topology from_sysfs(const std::string& cpu_root);

  // Deterministic synthetic shape: `cpus` hardware threads where
  // consecutive runs of smt_width share a core, llc_width share an LLC and
  // numa_width share a NUMA node.  Widths are clamped to [1, cpus].
  static Topology synthetic(std::uint32_t cpus, std::uint32_t smt_width,
                            std::uint32_t llc_width, std::uint32_t numa_width);

  // This host's topology, parsed once from /sys and cached.  Falls back to
  // synthetic(hardware_concurrency, 1, n, n) when sysfs is unusable.
  static const Topology& system();

  std::uint32_t cpu_count() const {
    return static_cast<std::uint32_t>(placements_.size());
  }
  const CpuPlacement& placement(std::uint32_t cpu) const;

  std::uint32_t smt_groups() const { return smt_groups_; }
  std::uint32_t llc_domains() const { return llc_domains_; }
  std::uint32_t numa_nodes() const { return numa_nodes_; }

  // Original sysfs cpu numbers in parse order (tests; exposes hotplug gaps).
  const std::vector<std::uint32_t>& cpu_numbers() const { return cpu_numbers_; }

  // True when system() could not parse sysfs and synthesized a shape.
  bool synthetic_fallback() const { return synthetic_fallback_; }

 private:
  std::vector<CpuPlacement> placements_;
  std::vector<std::uint32_t> cpu_numbers_;
  std::uint32_t smt_groups_ = 0;
  std::uint32_t llc_domains_ = 0;
  std::uint32_t numa_nodes_ = 0;
  bool synthetic_fallback_ = false;
};

// How the C-SNZI groups thread indices onto leaf counters.
enum class LeafMapping : std::uint8_t {
  kAuto,         // kSmtCluster, unless leaf_shift was set (then kStaticShift)
  kStaticShift,  // (thread_index >> leaf_shift) mod leaves — the seed scheme
  kPerThread,    // thread_index mod leaves (private leaf per thread)
  kSmtCluster,   // threads on one SMT core share a leaf (paper's T2+ mapping)
  kLlcCluster,   // threads under one last-level cache share a leaf
  kNumaCluster,  // threads on one NUMA node share a leaf
};

const char* leaf_mapping_name(LeafMapping m);

// Parses the names used by bench flags: auto|static|thread|smt|llc|numa.
// Returns false (and leaves `out` untouched) on unknown names.
bool parse_leaf_mapping(const std::string& name, LeafMapping& out);

// A resolved thread_index -> leaf function: topology + policy, folded onto
// `leaves` (a power of two) by masking.  Copyable and cheap; the CSnzi
// caches one per instance.  The Topology must outlive the map (system() and
// the simulator's topology are static).
class LeafMap {
 public:
  LeafMap() = default;
  LeafMap(const Topology* topo, LeafMapping mapping, std::uint32_t leaves_pow2,
          std::uint32_t leaf_shift);

  std::uint32_t leaf_of(std::uint32_t thread_index) const {
    switch (mapping_) {
      case LeafMapping::kStaticShift:
        return (thread_index >> shift_) & mask_;
      case LeafMapping::kPerThread:
        return thread_index & mask_;
      default: {
        // Placement-derived: thread index -> cpu by identity mod cpu count
        // (the harness pins worker w to index w).
        const CpuPlacement& p = topo_->placement(thread_index % cpus_);
        if (mapping_ == LeafMapping::kSmtCluster) return p.smt_group & mask_;
        if (mapping_ == LeafMapping::kLlcCluster) return p.llc_domain & mask_;
        return p.numa_node & mask_;
      }
    }
  }

  LeafMapping mapping() const { return mapping_; }

 private:
  const Topology* topo_ = nullptr;
  LeafMapping mapping_ = LeafMapping::kPerThread;
  std::uint32_t mask_ = 0;
  std::uint32_t shift_ = 0;
  std::uint32_t cpus_ = 1;
};

// A resolved thread_index -> LLC-domain function, the writer-side sibling of
// LeafMap: the cohort metalock (locks/cohort_mcs_lock.hpp) and the wait
// queue's NUMA-aware writer handoff group threads by last-level cache so
// consecutive lock holders stay on one socket.  Thread indices map to CPUs
// by identity mod cpu count, exactly as LeafMap does (the harness pins
// worker w to index w).  A null/empty topology degrades to a single domain,
// which turns every cohort policy into plain FIFO behaviour.
class DomainMap {
 public:
  DomainMap() = default;
  explicit DomainMap(const Topology* topo) {
    if (topo != nullptr && topo->cpu_count() > 0) {
      topo_ = topo;
      cpus_ = topo->cpu_count();
      domains_ = topo->llc_domains() > 0 ? topo->llc_domains() : 1;
    }
  }

  std::uint32_t domains() const { return domains_; }

  std::uint32_t domain_of(std::uint32_t thread_index) const {
    if (topo_ == nullptr) return 0;
    return topo_->placement(thread_index % cpus_).llc_domain;
  }

 private:
  const Topology* topo_ = nullptr;
  std::uint32_t cpus_ = 1;
  std::uint32_t domains_ = 1;
};

// Parses a sysfs cpulist ("0-3,8,10-11\n") into cpu numbers.  Malformed
// chunks are skipped rather than fatal — sysfs is advisory input.
std::vector<std::uint32_t> parse_cpu_list(const std::string& text);

}  // namespace oll
