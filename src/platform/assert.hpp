// Lightweight always-on invariant checks for lock internals.
//
// Lock algorithms have invariants whose violation means silent data
// corruption (e.g. a reader node freed twice).  These checks are cheap
// (predictable branches on thread-local data) and stay on in release builds;
// OLL_DCHECK additionally compiles away under NDEBUG for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

#define OLL_CHECK(cond)                                                     \
  do {                                                                      \
    if (__builtin_expect(!(cond), 0)) {                                     \
      std::fprintf(stderr, "OLL_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define OLL_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define OLL_DCHECK(cond) OLL_CHECK(cond)
#endif
