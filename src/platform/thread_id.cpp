#include "platform/thread_id.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace oll {
namespace {

std::atomic<bool> g_slots[kMaxThreads];
std::atomic<std::uint32_t> g_high_water{0};
// Per-index registration epoch; see ThreadRegistry::index_epoch().
std::atomic<std::uint32_t> g_epochs[kMaxThreads];

std::uint32_t claim_slot() {
  for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!g_slots[i].load(std::memory_order_relaxed) &&
        g_slots[i].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      g_epochs[i].fetch_add(1, std::memory_order_relaxed);
      std::uint32_t hw = g_high_water.load(std::memory_order_relaxed);
      while (hw < i + 1 && !g_high_water.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  std::fprintf(stderr,
               "oll::ThreadRegistry: more than %u live threads; aborting\n",
               kMaxThreads);
  std::abort();
}

// RAII slot holder: claims lazily, releases at thread exit.
struct SlotHolder {
  std::uint32_t slot = claim_slot();
  ~SlotHolder() { g_slots[slot].store(false, std::memory_order_release); }
};

}  // namespace

std::uint32_t ThreadRegistry::current_id() {
  thread_local SlotHolder holder;
  return holder.slot;
}

namespace {
thread_local bool g_has_override = false;
thread_local std::uint32_t g_override = 0;
}  // namespace

ScopedThreadIndex::ScopedThreadIndex(std::uint32_t index)
    : saved_(g_override), had_override_(g_has_override) {
  g_has_override = true;
  g_override = index;
  // A pinned index changes owner: advance its epoch so index-keyed caches
  // (C-SNZI sticky state) do not leak across harness workers that reuse
  // the same dense index in successive runs.
  if (index < kMaxThreads) {
    g_epochs[index].fetch_add(1, std::memory_order_relaxed);
  }
}

ScopedThreadIndex::~ScopedThreadIndex() {
  g_has_override = had_override_;
  g_override = saved_;
}

namespace detail {
std::uint32_t thread_index_impl() {
  if (g_has_override) return g_override;
  return ThreadRegistry::current_id();
}
}  // namespace detail

std::uint32_t ThreadRegistry::high_water_mark() {
  return g_high_water.load(std::memory_order_relaxed);
}

bool ThreadRegistry::slot_in_use(std::uint32_t slot) {
  return slot < kMaxThreads && g_slots[slot].load(std::memory_order_relaxed);
}

std::uint32_t ThreadRegistry::index_epoch(std::uint32_t index) {
  if (index >= kMaxThreads) return 0;
  return g_epochs[index].load(std::memory_order_relaxed);
}

}  // namespace oll
