// Streaming statistics (Welford) and simple summaries for benchmark runs.
//
// The paper reports the average of three runs per configuration (§5.1); the
// harness uses RunningStats to aggregate repetitions the same way while also
// exposing spread, which the paper does not plot but which we record in
// EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace oll {

class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return n_ ? max_ : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Sort-once percentile extraction.  Callers that query several percentiles
// of the same sample set (latency_fairness asks for four per row) construct
// one Percentiles and call at() repeatedly; the old free function sorted a
// fresh copy of the vector on every call.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> samples)
      : samples_(std::move(samples)) {
    std::sort(samples_.begin(), samples_.end());
  }

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t count() const noexcept { return samples_.size(); }

  // Nearest-rank with linear interpolation between adjacent order
  // statistics.
  double at(double p) const {
    if (samples_.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
  }

 private:
  std::vector<double> samples_;
};

// One-shot percentile over a copy of the samples (nearest-rank).  For more
// than one percentile of the same set, build a Percentiles instead.
inline double percentile(std::vector<double> samples, double p) {
  return Percentiles(std::move(samples)).at(p);
}

}  // namespace oll
