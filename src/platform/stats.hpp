// Streaming statistics (Welford) and simple summaries for benchmark runs.
//
// The paper reports the average of three runs per configuration (§5.1); the
// harness uses RunningStats to aggregate repetitions the same way while also
// exposing spread, which the paper does not plot but which we record in
// EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace oll {

class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return n_ ? max_ : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile over a copy of the samples (nearest-rank).
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace oll
