// Compact per-process thread identifiers.
//
// The FOLL/ROLL node pool, the big-reader lock, and the C-SNZI leaf mapping
// all need a dense thread index in [0, max_threads).  std::thread::id is
// opaque, so we maintain a registry of reusable slots: a thread claims the
// lowest free slot on first use and releases it when it exits, so long-lived
// programs that churn threads do not exhaust the space.
#pragma once

#include <cstdint>

namespace oll {

// Hard upper bound on concurrently-live registered threads.  The paper's
// largest configuration is 256; we leave generous headroom.
inline constexpr std::uint32_t kMaxThreads = 1024;

class ThreadRegistry {
 public:
  // Dense id of the calling thread, assigned on first call, stable until the
  // thread exits.  Aborts if more than kMaxThreads threads are live at once.
  static std::uint32_t current_id();

  // Number of slots ever observed in use (high-water mark); for sizing
  // diagnostics only.
  static std::uint32_t high_water_mark();

  // Test hook: true if `slot` is currently claimed.
  static bool slot_in_use(std::uint32_t slot);

  // Registration epoch of a dense index: bumped every time the index gains
  // a new owner — a fresh thread claiming the registry slot, or a
  // ScopedThreadIndex pinning a thread onto it.  Consumers that key
  // per-thread caches by dense index (the C-SNZI sticky state) compare
  // epochs to detect recycling and drop state armed by a dead predecessor.
  static std::uint32_t index_epoch(std::uint32_t index);
};

// Scoped override of the calling thread's dense index.  The benchmark
// harness pins worker w to index w so that lock-internal thread mappings
// (C-SNZI leaf choice, FOLL/ROLL default pool nodes) line up with the
// simulated hardware placement (worker w = simulated hardware thread w).
class ScopedThreadIndex {
 public:
  explicit ScopedThreadIndex(std::uint32_t index);
  ~ScopedThreadIndex();
  ScopedThreadIndex(const ScopedThreadIndex&) = delete;
  ScopedThreadIndex& operator=(const ScopedThreadIndex&) = delete;

 private:
  std::uint32_t saved_;
  bool had_override_;
};

namespace detail {
std::uint32_t thread_index_impl();
}  // namespace detail

// Dense index of the calling thread: the active ScopedThreadIndex override
// if one is installed, otherwise the registry slot.
inline std::uint32_t this_thread_index() {
  return detail::thread_index_impl();
}

}  // namespace oll
