// CPU-level spin hints.
#pragma once

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace oll {

// Polite busy-wait hint: tells the pipeline (and an SMT sibling) that we are
// spinning.  Never yields to the OS; see SpinWait for that.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace oll
