// Progressive spin-wait.
//
// All busy-wait loops in this repository must make progress even when the
// machine is heavily oversubscribed (the evaluation host may have a single
// hardware thread, while the paper's workloads run hundreds of software
// threads).  SpinWait spins politely for a short burst and then starts
// yielding to the OS scheduler, so a thread spinning on a flag can never
// starve the thread that is about to set it.
#pragma once

#include <thread>

#include "platform/cpu.hpp"
#include "platform/fault.hpp"

namespace oll {

class SpinWait {
 public:
  // `spin_limit` polite pause iterations before the first yield.
  explicit SpinWait(unsigned spin_limit = kDefaultSpinLimit) noexcept
      : spin_limit_(spin_limit) {}

  // One wait step.  Cheap pause while under the limit, sched yield after.
  // Every spin-wait in the library funnels through here, so this is also
  // the central schedule-perturbation point for the fault harness (one
  // relaxed load + branch when idle; nothing at all under OLL_FAULTS=0).
  void pause() noexcept {
    fault_perturb(FaultSite::kSpinWait);
    if (count_ < spin_limit_) {
      ++count_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  unsigned spins() const noexcept { return count_; }

  static constexpr unsigned kDefaultSpinLimit = 64;

 private:
  unsigned spin_limit_;
  unsigned count_ = 0;
};

// Spin until `pred()` returns true.  `pred` must be a cheap, side-effect-free
// check of an atomic (acquire semantics belong inside the predicate).
template <typename Pred>
inline void spin_until(Pred&& pred,
                       unsigned spin_limit = SpinWait::kDefaultSpinLimit) {
  SpinWait w(spin_limit);
  while (!pred()) {
    w.pause();
  }
}

}  // namespace oll
