// Progressive spin-wait.
//
// All busy-wait loops in this repository must make progress even when the
// machine is heavily oversubscribed (the evaluation host may have a single
// hardware thread, while the paper's workloads run hundreds of software
// threads).  SpinWait spins politely for a short burst and then starts
// yielding to the OS scheduler, so a thread spinning on a flag can never
// starve the thread that is about to set it.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "platform/cpu.hpp"
#include "platform/fault.hpp"
#include "platform/park.hpp"

namespace oll {

// Paper-faithful spin discipline (§5.1's dedicated-hardware-thread
// assumption): when enabled, SpinWait never escalates past cpu_relax — no
// yield, no park — so a preempted flag-setter is waited out by burning
// whole scheduler quanta, exactly as the paper's evaluation spins.  This
// exists so bench/oversubscribe.cpp can measure what that discipline costs
// when threads outnumber cores; nothing enables it by default.  Seeded
// from OLL_PURE_SPIN=1 at first use, switchable at runtime by the bench
// (affects SpinWait objects constructed after the switch).
inline std::atomic<bool>& pure_spin_flag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("OLL_PURE_SPIN");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }());
  return flag;
}

inline bool pure_spin_enabled() {
  return pure_spin_flag().load(std::memory_order_relaxed);
}

inline void set_pure_spin(bool on) {
  pure_spin_flag().store(on, std::memory_order_relaxed);
}

class SpinWait {
 public:
  // `spin_limit` polite pause iterations before the first yield.
  // `park_escalate` arms the park escalation hook (DESIGN.md §16.3) for
  // predicate-only spin sites with no wakeable word (the central lockword
  // CAS loop, BRAVO's revocation scan): after kEscalateYields yields the
  // wait escalates to bounded park_briefly() slices — fully censused
  // sleeps the watchdog and telemetry see — so an oversubscribed host
  // stops burning whole scheduler quanta on a flag that will not change
  // soon.  Never enabled by default; a no-op under OLL_PARK=0.
  explicit SpinWait(unsigned spin_limit = kDefaultSpinLimit,
                    bool park_escalate = false) noexcept
      : spin_limit_(spin_limit),
        park_escalate_(park_escalate && park_compiled_in()),
        pure_(pure_spin_enabled()) {}

  // One wait step.  Cheap pause while under the limit, sched yield after,
  // bounded park slices after that (when escalation is armed).  Every
  // spin-wait in the library funnels through here, so this is also the
  // central schedule-perturbation point for the fault harness (one
  // relaxed load + branch when idle; nothing at all under OLL_FAULTS=0).
  void pause() noexcept {
    fault_perturb(FaultSite::kSpinWait);
    if (pure_) {
      cpu_relax();
      return;
    }
    if (count_ < spin_limit_) {
      ++count_;
      cpu_relax();
      return;
    }
    if (!park_escalate_ || yields_ < kEscalateYields) {
      ++yields_;
      std::this_thread::yield();
      return;
    }
    park_briefly(rounds_);
    ++rounds_;
  }

  void reset() noexcept {
    count_ = 0;
    yields_ = 0;
    rounds_ = 0;
  }

  unsigned spins() const noexcept { return count_; }

  static constexpr unsigned kDefaultSpinLimit = 64;
  // Yields between the spin phase and the first escalated sleep.
  static constexpr unsigned kEscalateYields = 64;

 private:
  unsigned spin_limit_;
  unsigned count_ = 0;
  unsigned yields_ = 0;
  unsigned rounds_ = 0;
  bool park_escalate_ = false;
  bool pure_ = false;
};

// Spin until `pred()` returns true.  `pred` must be a cheap, side-effect-free
// check of an atomic (acquire semantics belong inside the predicate).
// `park_escalate` arms the bounded-slice park escalation (see SpinWait).
template <typename Pred>
inline void spin_until(Pred&& pred,
                       unsigned spin_limit = SpinWait::kDefaultSpinLimit,
                       bool park_escalate = false) {
  SpinWait w(spin_limit, park_escalate);
  while (!pred()) {
    w.pause();
  }
}

}  // namespace oll
