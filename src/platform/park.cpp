// Parking substrate implementation (see park.hpp / DESIGN.md §16).
//
// Two backends share the slice loop in park():
//   * futex (Linux, OLL_PARK_FUTEX=1, the default): FUTEX_WAIT_PRIVATE
//     compares *word == expected inside the kernel, atomically with
//     respect to FUTEX_WAKE — the sleep/wake race is closed by the kernel.
//   * hashed mutex+condvar buckets (everywhere else, and OLL_PARK_FUTEX=0):
//     the parker re-checks the word under the bucket mutex before waiting,
//     and unpark takes the same mutex before notifying, which restores the
//     same no-lost-wake guarantee.  Hash collisions surface as spurious
//     wakes (counted, re-parked) — correct by the kSpurious contract.
#include "platform/park.hpp"

#if OLL_PARK

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "platform/cache_line.hpp"
#include "platform/cpu.hpp"
#include "platform/fault.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"

#ifndef OLL_PARK_FUTEX
#define OLL_PARK_FUTEX 1
#endif

#if OLL_PARK_FUTEX && defined(__linux__)
#define OLL_PARK_USE_FUTEX 1
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#define OLL_PARK_USE_FUTEX 0
#endif

namespace oll {

namespace {

std::atomic<std::uint64_t> g_parks{0};
std::atomic<std::uint64_t> g_unparks{0};
std::atomic<std::uint64_t> g_spurious{0};
std::atomic<std::uint64_t> g_rearm{0};
std::atomic<std::uint64_t> g_inj_spurious{0};
std::atomic<std::uint64_t> g_inj_lost{0};
std::atomic<std::uint64_t> g_inj_delays{0};

// Currently-parked gauge (telemetry + the fuzzer's end-of-run
// zero-lost-wake invariant: nobody may still be parked at quiescence).
std::atomic<std::uint32_t> g_parked_now{0};

// Per-dense-index census slots; single writer (the owning thread),
// relaxed stores, read by the watchdog's monitor thread.
struct Slot {
  std::atomic<std::uint64_t> since{0};     // 0 = not parked
  std::atomic<std::uint64_t> deadline{0};  // 0 = no deadline
  std::atomic<std::uint64_t> cum{0};
};

CacheAligned<Slot> g_slots[kMaxThreads];

// Adaptive spin controller: EWMA (fixed point, <<3) of spins-to-grant
// observed during spin phases.  Grants that arrive via park decay it, so
// oversubscribed hosts converge to near-immediate parking.
std::atomic<std::uint32_t> g_spin_ewma{256u << 3};

inline void stall(std::uint32_t spins) {
  for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
}

inline void sleep_ns(std::uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

// RAII park census: gauge + per-thread slot, bracketing any real sleep.
class ParkScope {
 public:
  explicit ParkScope(std::uint64_t deadline_ns) : t0_(now_ns()) {
    const std::uint32_t idx = this_thread_index();
    slot_ = idx < kMaxThreads ? &g_slots[idx].value : nullptr;
    if (slot_ != nullptr) {
      slot_->deadline.store(deadline_ns, std::memory_order_relaxed);
      slot_->since.store(t0_, std::memory_order_relaxed);
    }
    g_parked_now.fetch_add(1, std::memory_order_relaxed);
  }
  ~ParkScope() {
    g_parked_now.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t dt = now_ns() - t0_;
    if (slot_ != nullptr) {
      slot_->cum.store(slot_->cum.load(std::memory_order_relaxed) + dt,
                       std::memory_order_relaxed);
      slot_->since.store(0, std::memory_order_relaxed);
      slot_->deadline.store(0, std::memory_order_relaxed);
    }
  }
  ParkScope(const ParkScope&) = delete;
  ParkScope& operator=(const ParkScope&) = delete;

 private:
  std::uint64_t t0_;
  Slot* slot_;
};

enum class WaitRc { kWake, kSliceTimeout, kValueChanged };

#if OLL_PARK_USE_FUTEX

WaitRc low_level_wait(const std::atomic<std::uint32_t>& word,
                      std::uint32_t expected, std::uint64_t timeout_ns) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000ull);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000ull);
  // The futex word is the atomic's storage; std::atomic<uint32_t> is
  // lock-free and layout-compatible here (static_asserted below).  The
  // kernel only compares and sleeps — no store through the pointer.
  const long rc = syscall(
      SYS_futex,
      reinterpret_cast<const void*>(std::addressof(word)),
      FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
  if (rc == 0) return WaitRc::kWake;
  if (errno == ETIMEDOUT) return WaitRc::kSliceTimeout;
  if (errno == EAGAIN) return WaitRc::kValueChanged;
  return WaitRc::kWake;  // EINTR and friends: treat as a (spurious) wake
}

void low_level_wake(const std::atomic<std::uint32_t>& word, int n) {
  syscall(SYS_futex, reinterpret_cast<const void*>(std::addressof(word)),
          FUTEX_WAKE_PRIVATE, n, nullptr, nullptr, 0);
}

static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t),
              "futex backend needs a bare-word atomic layout");

#else  // portable fallback: hashed mutex+condvar buckets

struct Bucket {
  std::mutex m;
  std::condition_variable cv;
};

constexpr std::size_t kBucketCount = 257;  // prime, ~16KB of buckets
Bucket g_buckets[kBucketCount];

inline Bucket& bucket_for(const void* p) {
  auto u = reinterpret_cast<std::uintptr_t>(p);
  u ^= u >> 21;
  u *= 0x9e3779b97f4a7c15ull;
  u ^= u >> 33;
  return g_buckets[u % kBucketCount];
}

WaitRc low_level_wait(const std::atomic<std::uint32_t>& word,
                      std::uint32_t expected, std::uint64_t timeout_ns) {
  Bucket& b = bucket_for(std::addressof(word));
  std::unique_lock<std::mutex> g(b.m);
  // Re-check under the bucket mutex: a granter stores the word *before*
  // unpark, and unpark takes this mutex before notifying, so a grant
  // published before we got here is visible now and one published after
  // will find us inside cv.wait — no lost wake.
  if (word.load(std::memory_order_acquire) != expected) {
    return WaitRc::kValueChanged;
  }
  const auto st =
      b.cv.wait_for(g, std::chrono::nanoseconds(timeout_ns));
  return st == std::cv_status::timeout ? WaitRc::kSliceTimeout
                                       : WaitRc::kWake;
}

void low_level_wake(const std::atomic<std::uint32_t>& word, int /*n*/) {
  Bucket& b = bucket_for(std::addressof(word));
  // Empty critical section on purpose: serializes against a parker that
  // has checked the word but not yet entered cv.wait.  notify_all even
  // for unpark_one — waiters multiplex on hashed buckets, and each one
  // re-checks its own word (extra wakeups surface as kSpurious).
  { std::lock_guard<std::mutex> g(b.m); }
  b.cv.notify_all();
}

#endif  // OLL_PARK_USE_FUTEX

}  // namespace

ParkResult park(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                std::uint64_t deadline_ns) {
  if (word.load(std::memory_order_acquire) != expected) {
    return ParkResult::kWoken;
  }
  if (fault_park_spurious()) {
    g_inj_spurious.fetch_add(1, std::memory_order_relaxed);
    g_spurious.fetch_add(1, std::memory_order_relaxed);
    return ParkResult::kSpurious;
  }
  bool deaf = fault_park_lost();
  if (deaf) g_inj_lost.fetch_add(1, std::memory_order_relaxed);

  ParkResult r = ParkResult::kSpurious;
  bool slept = false;
  {
    ParkScope scope(deadline_ns);
    for (;;) {
      const std::uint64_t now = now_ns();
      if (word.load(std::memory_order_acquire) != expected) {
        // Grant discovered at a slice boundary (or before the first
        // sleep).  If we slept to get here, the wake that should have
        // delivered it was lost/missed — the rearm recovered it.
        if (slept) g_rearm.fetch_add(1, std::memory_order_relaxed);
        r = ParkResult::kWoken;
        break;
      }
      if (deadline_ns != 0 && now >= deadline_ns) {
        r = ParkResult::kTimedOut;
        break;
      }
      std::uint64_t slice_end = now + kParkSliceNs;
      if (deadline_ns != 0 && deadline_ns < slice_end) {
        slice_end = deadline_ns;
      }
      if (deaf) {
        // Injected lost wake: sleep without listening for one slice; any
        // real unpark in this window is dropped.  The loop re-check above
        // is the bounded-latency recovery the profile exists to prove.
        sleep_ns(slice_end - now);
        deaf = false;
        slept = true;
        continue;
      }
      const WaitRc rc = low_level_wait(word, expected, slice_end - now);
      if (rc == WaitRc::kValueChanged) {
        r = ParkResult::kWoken;
        break;
      }
      slept = true;
      if (rc == WaitRc::kWake &&
          word.load(std::memory_order_acquire) == expected) {
        // A delivered wake with no grant behind it: report it so the
        // caller's re-check loop (not this slice loop) absorbs it.
        g_spurious.fetch_add(1, std::memory_order_relaxed);
        r = ParkResult::kSpurious;
        break;
      }
      // kWake with the word changed resolves at the top of the loop as
      // kWoken (without charging a rearm — reset the slept marker for the
      // classification only when the wake carried the grant).
      if (rc == WaitRc::kWake) slept = false;
    }
    if (slept || r != ParkResult::kSpurious) {
      g_parks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (r == ParkResult::kWoken) {
    const std::uint32_t d = fault_park_delay();
    if (d != 0) {
      g_inj_delays.fetch_add(1, std::memory_order_relaxed);
      stall(d);
    }
  }
  return r;
}

void unpark_one(const std::atomic<std::uint32_t>& word) {
  g_unparks.fetch_add(1, std::memory_order_relaxed);
  low_level_wake(word, 1);
}

void unpark_all(const std::atomic<std::uint32_t>& word) {
  g_unparks.fetch_add(1, std::memory_order_relaxed);
  low_level_wake(word, 0x7fffffff);
}

// --- packaged protocol ------------------------------------------------------

namespace {

// Shared core of park_wait_u32 / park_wait_until_u32.
bool park_wait_core(std::atomic<std::uint32_t>& word, std::uint32_t wait_val,
                    std::uint32_t parked_val, std::uint64_t deadline_ns,
                    std::uint32_t* terminal, ParkWaitOutcome* o) {
  // Adaptive spin phase.
  const std::uint32_t budget = park_spin_budget();
  std::uint32_t v = word.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < budget; ++i) {
    if (v != wait_val && v != parked_val) {
      park_note_spin_grant(i);
      if (terminal != nullptr) *terminal = v;
      return true;
    }
    cpu_relax();
    fault_perturb(FaultSite::kSpinWait);
    v = word.load(std::memory_order_acquire);
  }
  // Park phase.  The parked marker is sticky: once published it stays
  // until the granter's exchange displaces it (see park.hpp).
  bool parked_once = false;
  for (;;) {
    v = word.load(std::memory_order_acquire);
    if (v != wait_val && v != parked_val) {
      if (parked_once) {
        park_note_park_grant();
      } else {
        park_note_spin_grant(budget);
      }
      if (terminal != nullptr) *terminal = v;
      return true;
    }
    if (v == wait_val) {
      if (!word.compare_exchange_weak(v, parked_val,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        continue;  // raced a grant (or another parker); re-classify
      }
    }
    const std::uint64_t t0 = now_ns();
    const ParkResult r = park(word, parked_val, deadline_ns);
    const std::uint64_t dt = now_ns() - t0;
    parked_once = true;
    if (o != nullptr) {
      ++o->parks;
      o->wait_ns += dt;
      if (r == ParkResult::kSpurious) ++o->spurious;
    }
    if (r == ParkResult::kTimedOut) {
      if (terminal != nullptr) {
        *terminal = word.load(std::memory_order_acquire);
      }
      return false;
    }
    // kWoken resolves at the top; kSpurious re-checks and re-parks.
  }
}

}  // namespace

std::uint32_t park_wait_u32(std::atomic<std::uint32_t>& word,
                            std::uint32_t wait_val, std::uint32_t parked_val,
                            ParkWaitOutcome* o) {
  std::uint32_t terminal = 0;
  (void)park_wait_core(word, wait_val, parked_val, /*deadline_ns=*/0,
                       &terminal, o);
  return terminal;
}

bool park_wait_until_u32(std::atomic<std::uint32_t>& word,
                         std::uint32_t wait_val, std::uint32_t parked_val,
                         std::uint64_t deadline_ns, std::uint32_t* terminal,
                         ParkWaitOutcome* o) {
  return park_wait_core(word, wait_val, parked_val, deadline_ns, terminal, o);
}

std::uint32_t park_grant_u32(std::atomic<std::uint32_t>& word,
                             std::uint32_t grant_val, std::uint32_t parked_val,
                             bool all) {
  const std::uint32_t old =
      word.exchange(grant_val, std::memory_order_acq_rel);
  if (old == parked_val) {
    if (all) {
      unpark_all(word);
    } else {
      unpark_one(word);
    }
  }
  return old;
}

// --- adaptive spin controller -----------------------------------------------

std::uint32_t park_spin_budget() {
  const std::uint32_t ewma = g_spin_ewma.load(std::memory_order_relaxed) >> 3;
  std::uint32_t b = 2 * ewma;
  if (b < kParkMinSpin) b = kParkMinSpin;
  if (b > kParkMaxSpin) b = kParkMaxSpin;
  return b;
}

void park_note_spin_grant(std::uint32_t spins) {
  // ewma += (sample - ewma) / 8, racy-relaxed on purpose: the controller
  // is a hint, and lost updates only slow adaptation.
  const std::uint32_t cur = g_spin_ewma.load(std::memory_order_relaxed);
  const std::int64_t sample = static_cast<std::int64_t>(spins) << 3;
  const std::int64_t next =
      static_cast<std::int64_t>(cur) + ((sample - cur) >> 3);
  g_spin_ewma.store(static_cast<std::uint32_t>(next < 0 ? 0 : next),
                    std::memory_order_relaxed);
}

void park_note_park_grant() {
  // Spinning was wasted: decay toward "park immediately".
  const std::uint32_t cur = g_spin_ewma.load(std::memory_order_relaxed);
  g_spin_ewma.store(cur - (cur >> 3), std::memory_order_relaxed);
}

// --- bounded-slice escalation -----------------------------------------------

void park_briefly(std::uint32_t round) {
  if (fault_park_spurious()) {
    // Spurious "wake" from an escalated sleep: skip the sleep entirely.
    g_inj_spurious.fetch_add(1, std::memory_order_relaxed);
    g_spurious.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t slice = kEscalateMinSliceNs
                        << (round < 8 ? round : 8);
  if (slice > kParkSliceNs) slice = kParkSliceNs;
  ParkScope scope(/*deadline_ns=*/0);
  g_parks.fetch_add(1, std::memory_order_relaxed);
  sleep_ns(slice);
}

// --- stats / census ---------------------------------------------------------

ParkStats park_stats() {
  ParkStats s;
  s.parks = g_parks.load(std::memory_order_relaxed);
  s.unparks = g_unparks.load(std::memory_order_relaxed);
  s.spurious_wakes = g_spurious.load(std::memory_order_relaxed);
  s.rearm_recoveries = g_rearm.load(std::memory_order_relaxed);
  s.injected_spurious = g_inj_spurious.load(std::memory_order_relaxed);
  s.injected_lost = g_inj_lost.load(std::memory_order_relaxed);
  s.injected_delays = g_inj_delays.load(std::memory_order_relaxed);
  return s;
}

void park_stats_reset() {
  g_parks.store(0, std::memory_order_relaxed);
  g_unparks.store(0, std::memory_order_relaxed);
  g_spurious.store(0, std::memory_order_relaxed);
  g_rearm.store(0, std::memory_order_relaxed);
  g_inj_spurious.store(0, std::memory_order_relaxed);
  g_inj_lost.store(0, std::memory_order_relaxed);
  g_inj_delays.store(0, std::memory_order_relaxed);
}

std::uint32_t parked_thread_count() {
  return g_parked_now.load(std::memory_order_relaxed);
}

ParkThreadState park_thread_state(std::uint32_t dense_index) {
  ParkThreadState out;
  if (dense_index >= kMaxThreads) return out;
  const Slot& s = g_slots[dense_index].value;
  out.parked_since_ns = s.since.load(std::memory_order_relaxed);
  out.deadline_ns = s.deadline.load(std::memory_order_relaxed);
  out.cum_parked_ns = s.cum.load(std::memory_order_relaxed);
  return out;
}

}  // namespace oll

#else  // OLL_PARK == 0

namespace oll::park_internal {
void park_compiled_out_anchor() {}
}  // namespace oll::park_internal

#endif  // OLL_PARK
