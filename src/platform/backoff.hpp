// Randomized exponential backoff.
//
// §5.1: "we tuned the exponential back-offs for each lock independently."
// Every lock in src/locks takes a BackoffParams in its options struct so
// the tuning knob the authors describe exists in this implementation too.
#pragma once

#include <cstdint>
#include <thread>

#include "platform/cpu.hpp"
#include "platform/rng.hpp"
#include "platform/thread_id.hpp"

namespace oll {

struct BackoffParams {
  std::uint32_t min_spins = 4;     // first window
  std::uint32_t max_spins = 1024;  // window cap
  // After this many consecutive backoffs, start yielding to the OS so the
  // algorithms stay live under oversubscription.
  std::uint32_t yield_after = 16;
};

class ExponentialBackoff {
 public:
  // Default-constructed instances draw their RNG seed from a per-thread
  // stream keyed by the compact thread id: contending threads (and repeated
  // constructions on one thread) must NOT share a seed, or they back off in
  // lock-step, re-collide every window, and defeat the randomization §5.1
  // tunes for.
  explicit ExponentialBackoff(const BackoffParams& p = {}) noexcept
      : ExponentialBackoff(p, next_default_seed()) {}

  // Explicit seed, for deterministic tests.
  ExponentialBackoff(const BackoffParams& p, std::uint64_t seed) noexcept
      : params_(p), window_(p.min_spins), rng_(seed) {}

  // Wait for a random duration within the current window, then double it.
  // Returns the number of spins performed so tests can observe the sequence.
  std::uint64_t backoff() noexcept {
    const std::uint64_t spins = rng_.next_below(window_) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    if (window_ < params_.max_spins) window_ *= 2;
    if (++rounds_ >= params_.yield_after) std::this_thread::yield();
    return spins;
  }

  void reset() noexcept {
    window_ = params_.min_spins;
    rounds_ = 0;
  }

  std::uint32_t window() const noexcept { return window_; }

 private:
  static std::uint64_t next_default_seed() noexcept {
    thread_local SplitMix64 seeder(
        0x2545F4914F6CDD1DULL ^
        (static_cast<std::uint64_t>(this_thread_index() + 1) << 32));
    return seeder.next();
  }

  BackoffParams params_;
  std::uint32_t window_;
  std::uint32_t rounds_ = 0;
  Xoshiro256ss rng_;
};

}  // namespace oll
