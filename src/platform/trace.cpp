#include "platform/trace.hpp"

#if OLL_TRACE

#include <algorithm>
#include <memory>

#include "platform/cache_line.hpp"
#include "platform/lock_registry.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"

namespace oll {
namespace trace_internal {

std::atomic<std::uint32_t> g_mode{0};

namespace {

std::atomic<TraceClockFn> g_clock{nullptr};
std::atomic<std::uint32_t> g_ring_capacity{TraceOptions{}.ring_capacity};

// A record slot decomposed into atomics: emit stores the fields relaxed and
// publishes via the ring head's release store.  A concurrent drain that
// races a wrap-around overwrite can read a torn record (fields from two
// different events) but never a data race — the exact-at-quiescence
// contract.
struct Slot {
  std::atomic<std::uint64_t> ts{0};
  std::atomic<const void*> obj{nullptr};
  std::atomic<std::uint32_t> type{0};
  std::atomic<std::uint32_t> site{0};
};

struct Ring {
  explicit Ring(std::uint32_t cap)
      : slots(std::make_unique<Slot[]>(cap)), capacity(cap) {}

  std::unique_ptr<Slot[]> slots;
  std::uint32_t capacity;
  // Total records ever appended; slot index is head % capacity.  Monotonic
  // except for the drain reset.
  std::atomic<std::uint64_t> head{0};
};

// One ring pointer per dense thread index, allocated on a thread's first
// emit (pre-allocating kMaxThreads rings would cost hundreds of MB).  The
// dense index has a single live owner (platform/thread_id.hpp), so each
// ring has one writer; index reuse after thread exit splices streams, which
// the per-record tid makes visible but not separable — acceptable for a
// diagnostic trace.
CacheAligned<std::atomic<Ring*>> g_rings[kMaxThreads];

Ring* ring_for(std::uint32_t idx) {
  std::atomic<Ring*>& cell = *g_rings[idx];
  Ring* r = cell.load(std::memory_order_acquire);
  if (r != nullptr) return r;
  auto fresh =
      std::make_unique<Ring>(g_ring_capacity.load(std::memory_order_relaxed));
  Ring* expected = nullptr;
  if (cell.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return fresh.release();
  }
  return expected;  // another thread on this index won the install
}

}  // namespace

std::uint64_t clock_now() {
  TraceClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : now_ns();
}

void emit(TraceEventType type, const void* obj, std::uint64_t ts) {
  const std::uint32_t idx = this_thread_index();
  if (idx >= kMaxThreads) return;
  Ring* r = ring_for(idx);
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[h % r->capacity];
  s.ts.store(ts, std::memory_order_relaxed);
  s.obj.store(obj, std::memory_order_relaxed);
  s.type.store(static_cast<std::uint32_t>(type), std::memory_order_relaxed);
  s.site.store(current_lock_site(), std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);
}

}  // namespace trace_internal

void trace_enable(const TraceOptions& opts) {
  using namespace trace_internal;
  const std::uint32_t cap = std::max<std::uint32_t>(opts.ring_capacity, 1);
  // Quiescent-only: rings sized for a previous capacity are replaced so a
  // re-enable with a different capacity behaves as documented.
  if (cap != g_ring_capacity.load(std::memory_order_relaxed)) {
    g_ring_capacity.store(cap, std::memory_order_relaxed);
    for (auto& cell : g_rings) {
      Ring* r = cell->exchange(nullptr, std::memory_order_acq_rel);
      delete r;
    }
  }
  // seq_cst (here and in the other three mode flips): a full barrier on the
  // quiescent-only control plane costs nothing and keeps the mode word
  // totally ordered against the callers' surrounding ring setup/teardown —
  // the hot-path hooks only ever read it relaxed.
  g_mode.fetch_or(kEventsBit, std::memory_order_seq_cst);
}

void trace_disable() {
  // seq_cst: control plane; see trace_enable.
  trace_internal::g_mode.fetch_and(~trace_internal::kEventsBit,
                                   std::memory_order_seq_cst);
}

void latency_timing_enable() {
  // seq_cst: control plane; see trace_enable.
  trace_internal::g_mode.fetch_or(trace_internal::kTimingBit,
                                  std::memory_order_seq_cst);
}

void latency_timing_disable() {
  // seq_cst: control plane; see trace_enable.
  trace_internal::g_mode.fetch_and(~trace_internal::kTimingBit,
                                   std::memory_order_seq_cst);
}

TraceDump trace_drain() {
  using namespace trace_internal;
  TraceDump dump;
  for (std::uint32_t idx = 0; idx < kMaxThreads; ++idx) {
    Ring* r = g_rings[idx]->load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    if (h == 0) continue;
    const std::uint64_t cap = r->capacity;
    const std::uint64_t n = h < cap ? h : cap;
    dump.dropped += h > cap ? h - cap : 0;
    for (std::uint64_t seq = h - n; seq < h; ++seq) {
      Slot& s = r->slots[seq % cap];
      TraceRecord rec;
      rec.ts = s.ts.load(std::memory_order_relaxed);
      rec.obj = s.obj.load(std::memory_order_relaxed);
      rec.tid = idx;
      rec.site = s.site.load(std::memory_order_relaxed);
      rec.type =
          static_cast<TraceEventType>(s.type.load(std::memory_order_relaxed));
      dump.records.push_back(rec);
    }
    r->head.store(0, std::memory_order_release);
  }
  std::stable_sort(dump.records.begin(), dump.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.ts < b.ts;
                   });
  return dump;
}

void trace_set_clock(TraceClockFn fn) {
  trace_internal::g_clock.store(fn, std::memory_order_relaxed);
}

}  // namespace oll

#endif  // OLL_TRACE
