// Log2-bucketed latency histograms for the observability layer.
//
// The paper's temporal claims (reader overlap, bounded writer waits, ROLL's
// writer-tail trade) are distribution properties, not means, so the stats
// layer records acquisition latencies into fixed-size power-of-two-bucket
// histograms instead of raw sample vectors: constant memory, constant-time
// add, mergeable across threads, and percentile extraction that is exact at
// quiescence up to bucket resolution (a factor of 2).
//
// Two types mirror the LockStats split (see locks/lock_stats.hpp):
//
//   * HistogramSnapshot — plain counters; the aggregation/reporting type.
//     Supports += (merge; associative and commutative, tested) and -=
//     (baseline subtraction for per-phase deltas; `max` stays a high-water
//     mark since a maximum cannot be un-observed).
//   * AtomicHistogram   — the per-thread recording slot.  Single writer per
//     slot; increments are relaxed load+store (no RMW on the hot path) and
//     concurrent snapshots are race-free but approximate, exact at
//     quiescence — the same contract as every counter in LockStats.
//
// Units are whatever the caller measures in (nanoseconds in real mode,
// virtual cycles in sim mode); the histogram itself is unit-agnostic.
#pragma once

#include <atomic>
#include <cstdint>

namespace oll {

// Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i).  48
// buckets cover up to 2^46 (~20 hours in ns, ~9 hours in 1.4 GHz cycles);
// anything larger lands in the last bucket.
inline constexpr std::uint32_t kHistogramBuckets = 48;

// Index of the bucket that holds `v`.
inline std::uint32_t histogram_bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const std::uint32_t log2 =
      63u - static_cast<std::uint32_t>(__builtin_clzll(v));
  const std::uint32_t b = log2 + 1;
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

// Inclusive lower edge of bucket `i`.
inline std::uint64_t histogram_bucket_lo(std::uint32_t i) noexcept {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

// Exclusive upper edge of bucket `i` (the final bucket is open-ended; its
// reported edge is only used as an interpolation bound, clamped to `max`).
inline std::uint64_t histogram_bucket_hi(std::uint32_t i) noexcept {
  return i == 0 ? 1 : (1ULL << i);
}

struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t v) noexcept {
    ++buckets[histogram_bucket_of(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }

  bool empty() const noexcept { return count == 0; }

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  // Percentile via cumulative bucket counts with linear interpolation inside
  // the bucket, clamped to the observed max.  Same nearest-rank convention
  // as oll::percentile() (platform/stats.hpp).
  double percentile(double p) const noexcept {
    if (count == 0) return 0.0;
    // p100 is the one percentile the histogram tracks exactly.
    if (p >= 100.0) return static_cast<double>(max);
    const double rank =
        p / 100.0 * static_cast<double>(count - 1);  // 0-based sample rank
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
      const std::uint64_t n = buckets[i];
      if (n == 0) continue;
      if (rank < static_cast<double>(seen + n)) {
        const double lo = static_cast<double>(histogram_bucket_lo(i));
        const double hi = static_cast<double>(histogram_bucket_hi(i));
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(n);
        const double v = lo + (hi - lo) * frac;
        const double cap = static_cast<double>(max);
        return v > cap ? cap : v;
      }
      seen += n;
    }
    return static_cast<double>(max);
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += o.buckets[i];
    }
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
    return *this;
  }

  // Baseline subtraction (o must be an earlier snapshot of the same
  // histogram, so every counter is >= o's).  `max` keeps the high-water
  // mark: a maximum observed before the baseline cannot be subtracted out.
  HistogramSnapshot& operator-=(const HistogramSnapshot& o) noexcept {
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] -= o.buckets[i];
    }
    count -= o.count;
    sum -= o.sum;
    return *this;
  }
};

class AtomicHistogram {
 public:
  // Single-writer slot: relaxed load+store increments cannot be lost and
  // avoid lock-prefixed RMWs on the acquisition hot path.
  void add(std::uint64_t v) noexcept {
    bump(buckets_[histogram_bucket_of(v)]);
    bump(count_);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  // Accumulate into `out`; approximate under concurrent adds, exact at
  // quiescence.
  void snapshot_into(HistogramSnapshot& out) const noexcept {
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
      out.buckets[i] += buckets_[i].load(std::memory_order_relaxed);
    }
    out.count += count_.load(std::memory_order_relaxed);
    out.sum += sum_.load(std::memory_order_relaxed);
    const std::uint64_t m = max_.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }

  // Call at quiescence only (concurrent adds would interleave with zeroing).
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace oll
