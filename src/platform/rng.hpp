// Small, fast, per-thread pseudo-random number generators.
//
// The paper's workload driver decides read vs. write acquisition "using a
// per-thread private random number generator" (§5.1).  std::mt19937 is both
// large and slow enough to perturb a lock microbenchmark, so we use
// SplitMix64 for seeding and xoshiro256** for the stream, the standard
// choice for simulation workloads.
#pragma once

#include <cstdint>

namespace oll {

// SplitMix64: used to expand a single seed into xoshiro state; also a fine
// standalone generator for non-critical uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: 256-bit state, jumpable, passes BigCrush.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Unbiased uniform integer in [0, bound) via Lemire's multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Bernoulli trial with probability numer/denom (e.g. 99/100 for 99% reads).
  bool bernoulli(std::uint64_t numer, std::uint64_t denom) noexcept {
    return next_below(denom) < numer;
  }

  double next_double() noexcept {
    // 53 random mantissa bits in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace oll
