// Global visible-readers table for BRAVO-style reader bias (Dice & Kogan,
// "BRAVO — Biased Locking for Reader-Writer Locks"; see PAPERS.md).
//
// A biased reader makes itself visible to writers by publishing the lock's
// address in one slot of this table instead of performing an RMW on the
// lock's own shared state; a revoking writer scans the whole table and
// waits for every slot holding its lock to drain.  One process-global table
// is shared by every Bravo<> instance (per memory model): the table is the
// "reader indicator" whose cost is O(1) publication for readers and
// O(table) scan for revoking writers — exactly the asymmetry reader bias
// trades on.
//
// Each slot sits alone on its own false-sharing range: the whole point of
// the bias fast path is that a reader touches a line no other active thread
// is writing, so two threads' slots must never share one.
#pragma once

#include <cstdint>
#include <memory>

#include "platform/cache_line.hpp"
#include "platform/memory.hpp"

namespace oll {

// Power of two.  BRAVO's reference implementation uses 4096 entries; 1024
// padded slots (128 KiB) is plenty for this library's ≤1024 registered
// threads — collisions only cost the colliding reader its fast path.
inline constexpr std::uint32_t kVisibleReaderSlots = 1024;

template <typename M = RealMemory>
class VisibleReadersTable {
 public:
  // A slot holds the address of the Bravo lock whose reader published in
  // it, or null.  const void* rather than a typed pointer: the table is
  // shared by Bravo instantiations over different underlying locks.
  using Slot = typename M::template Atomic<const void*>;

  VisibleReadersTable()
      : slots_(std::make_unique<CacheAligned<Slot>[]>(kVisibleReaderSlots)) {}

  VisibleReadersTable(const VisibleReadersTable&) = delete;
  VisibleReadersTable& operator=(const VisibleReadersTable&) = delete;

  static constexpr std::uint32_t size() noexcept {
    return kVisibleReaderSlots;
  }

  // Slot assignment mixes the dense thread id with the lock address
  // (splitmix-style finalizer) so a thread reading several Bravo locks
  // publishes in distinct slots and threads on one lock spread across the
  // table.  Deterministic per (thread, lock): the reader recomputes it at
  // unlock.
  static std::uint32_t index_of(std::uint32_t thread_index,
                                const void* lock) noexcept {
    std::uint64_t z = (static_cast<std::uint64_t>(thread_index) << 32) ^
                      static_cast<std::uint64_t>(
                          reinterpret_cast<std::uintptr_t>(lock));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>((z ^ (z >> 31)) &
                                      (kVisibleReaderSlots - 1));
  }

  Slot& slot_for(std::uint32_t thread_index, const void* lock) noexcept {
    return slots_[index_of(thread_index, lock)].value;
  }

  Slot& slot(std::uint32_t i) noexcept { return slots_[i].value; }

 private:
  std::unique_ptr<CacheAligned<Slot>[]> slots_;
};

// The process-global table for memory model M (one per model: sim and fuzz
// builds must not share slots with real-memory locks).
template <typename M = RealMemory>
inline VisibleReadersTable<M>& global_visible_readers() {
  static VisibleReadersTable<M> table;
  return table;
}

}  // namespace oll
