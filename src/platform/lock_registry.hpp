// Global lock registry + contention attribution (DESIGN.md §14).
//
// Production lock services need *live* answers to "which locks are hot,
// who is blocking whom, where is the contention coming from" — not the
// post-hoc per-binary stats the harness prints after a sweep.  Three
// cooperating pieces live here:
//
//   * LockRegistry — a process-global, lock-free intrusive list where every
//     factory-created lock (core/factory.hpp) and RwProtected instance
//     self-registers {name, kind, creation site} together with a type-erased
//     raw-stats accessor.  The telemetry exporter (harness/telemetry.hpp)
//     walks it periodically.  Registration nodes are registry-owned and
//     immortal: deregistration marks a node dead and recycles it through a
//     free list, so a snapshot walking the list concurrently with lock
//     destruction never touches freed memory.  A per-node pin count keeps
//     the *lock object* alive while a sampler reads its stats: samplers pin
//     (one fetch_add), deregistration blocks until the pin count drains.
//
//   * ContentionCensus — per-lock holder/waiter attribution: which dense
//     thread holds the write lock, how many threads are waiting (queue
//     depth), and how long the longest waiter has been waiting.  Marks are
//     per-thread cache-aligned slots fed by the AnyRwLock adapter around
//     every acquire/release; they are gated on a process-global enable word
//     (one relaxed load when telemetry is off) and use the *coarse clock*
//     below instead of a syscall so an enabled census costs a few relaxed
//     cache-local stores per acquisition — measured <2% on the uncontended
//     fast path (EXPERIMENTS.md).  The watchdog (harness/watchdog.hpp)
//     reads the census so incident dumps name the lock's holder and queue
//     depth, not just the stuck thread.
//
//   * Acquire-site tags — OLL_LOCK_SITE() registers its file:line once and
//     returns a small site id; ScopedLockSite parks it in a thread-local so
//     trace records (platform/trace.hpp) and census slots carry the call
//     site that initiated the acquisition.  Per-site contention counters
//     are sampled, not per-op: the exporter bumps a site's wait_samples for
//     every waiter observed at a tick, and the census charges a site a
//     `stall` when an acquisition spans a telemetry tick — both zero-cost
//     on the uncontended hot path.
//
// Coarse clock: registry_set_coarse_now() is stored by the telemetry
// exporter (or any census consumer) once per tick; census marks read it
// with one relaxed load.  Waiter ages therefore have tick resolution —
// exactly right for "who has been stuck for seconds", useless for ns
// latencies, which remain the histograms' job.
//
// Compile-out: OLL_REGISTRY=0 (CMake cache variable, mirroring OLL_TRACE /
// OLL_FAULTS) turns every type and hook below into an empty inline — no
// list, no census slots, no thread-local, bit-for-bit oblivious binaries.
//
// Concurrency contract: registration/deregistration and sampling are safe
// from any thread, any time (the one blocking edge: deregistration waits
// for in-flight pins on its own node).  That drain loop has no
// forward-progress guarantee of its own: a steady stream of samplers could
// in principle keep a node pinned and starve the destructor.  Samplers
// mitigate this by checking the dead bit before pinning — so only a pin
// that genuinely raced the death can delay a deregistration, and at
// realistic tick rates (>=1ms apart) the drain is one yield at worst.
// Census marks are wait-free.  Stats read through the registry are the
// usual relaxed aggregate — approximate live, exact at quiescence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "locks/lock_stats.hpp"

#ifndef OLL_REGISTRY
#define OLL_REGISTRY 1
#endif

#if OLL_REGISTRY
#include <atomic>
#include <memory>

#include "platform/cache_line.hpp"
#include "platform/thread_id.hpp"
#endif

namespace oll {

// Source location of a lock's creation (or an acquire site).  `file` is
// expected to outlive the process (string literals via __FILE__).
struct LockSite {
  const char* file = nullptr;
  int line = 0;
  bool known() const { return file != nullptr; }
};

// Type-erased accessor for a registered lock's *raw* (never rebased)
// counters.  Raw, because the harness rebases AnyRwLock::stats() at phase
// boundaries and a telemetry delta computed across a rebase would
// underflow; the exporter keeps its own baselines instead.
using RegistryStatsFn = LockStatsSnapshot (*)(const void* obj);

inline constexpr std::uint32_t kNoCensusTid = ~std::uint32_t{0};

// Point-in-time holder/waiter attribution for one lock.
struct CensusSnapshot {
  std::uint32_t waiting_readers = 0;
  std::uint32_t waiting_writers = 0;
  std::uint32_t holding_readers = 0;
  bool write_held = false;
  std::uint32_t writer_tid = kNoCensusTid;  // dense index of the write holder
  std::uint64_t longest_wait_ns = 0;        // coarse-clock resolution
  std::uint32_t longest_waiter_tid = kNoCensusTid;
  std::uint32_t longest_waiter_site = 0;

  std::uint32_t queue_depth() const { return waiting_readers + waiting_writers; }
};

// Everything the exporter learns about one registered lock at one tick.
struct RegisteredLockSample {
  std::uint64_t id = 0;         // unique per registration (reuse gets a new id)
  const char* name = "?";       // user label (factory kind name by default)
  const char* kind = "?";       // lock algorithm name
  LockSite site{};              // creation site, when the creator tagged one
  LockStatsSnapshot stats{};    // raw cumulative counters
  CensusSnapshot census{};
  bool has_census = false;
};

// One acquire site's identity and sampled contention counters.
struct LockSiteSample {
  const char* file = nullptr;
  int line = 0;
  std::uint64_t wait_samples = 0;  // waiters observed here at telemetry ticks
  std::uint64_t stalls = 0;        // acquisitions that spanned >= 1 tick
};

inline constexpr std::uint32_t kMaxLockSites = 512;

// Final raw counters of deregistered locks, aggregated by (name, kind).
// Deregistration reads the lock's stats one last time while the object is
// still alive, so these totals are exact — the telemetry exporter merges
// them with live samples so counters never vanish when a short-lived lock
// dies between ticks.
struct RetiredLockStats {
  std::string name;
  std::string kind;
  std::uint64_t count = 0;  // deregistrations folded into this row
  LockStatsSnapshot stats{};
};

#if OLL_REGISTRY

inline constexpr bool registry_compiled_in() { return true; }

namespace registry_internal {
// Census marks are armed iff this word is nonzero (refcounted by
// registry_census_enable/disable).  Hot-path gate: one relaxed load.
extern std::atomic<std::uint32_t> g_census_on;
// Bumped every time the census flips from disabled to enabled.  Census
// slots stamp the epoch they were marked under; snapshots ignore slots
// from older epochs.  That lets *every* mark — not just begin_wait — gate
// on g_census_on and return without touching its slot while disabled:
// entries stranded by a mid-acquisition disable go stale harmlessly
// instead of needing an unconditional slot write to clean up.
extern std::atomic<std::uint32_t> g_census_epoch;
// Coarse clock (ns) stored once per telemetry tick; 0 = never set.
extern std::atomic<std::uint64_t> g_coarse_now;
extern thread_local std::uint32_t t_current_site;
void note_site_stall(std::uint32_t site);
}  // namespace registry_internal

inline bool registry_census_enabled() {
  return registry_internal::g_census_on.load(std::memory_order_relaxed) != 0;
}

inline std::uint32_t registry_census_epoch() {
  return registry_internal::g_census_epoch.load(std::memory_order_relaxed);
}

inline std::uint64_t registry_coarse_now() {
  return registry_internal::g_coarse_now.load(std::memory_order_relaxed);
}

// Census/site consumers call these: enable is refcounted so the exporter
// and the watchdog can coexist.  Quiescent with respect to nothing — safe
// any time; marks simply start/stop flowing.
void registry_census_enable();
void registry_census_disable();

// Store the coarse clock (the exporter's tick does this; tests too).
void registry_set_coarse_now(std::uint64_t now_ns);

// --- acquire-site tags ----------------------------------------------------

// Register a site once; returns its id in [1, kMaxLockSites], or 0 when the
// table is full (untagged).  Call through OLL_LOCK_SITE(), which caches the
// id in a function-local static.
std::uint32_t register_lock_site(const char* file, int line);

inline std::uint32_t current_lock_site() {
  return registry_internal::t_current_site;
}

// Charge one observed-waiting sample to a site (exporter tick sampling).
void lock_site_add_wait_sample(std::uint32_t site);

// Snapshot of every registered site (index is site id - 1).
std::vector<LockSiteSample> lock_site_table();

// Park a site id in the calling thread's current-site slot for the duration
// of a scope; trace records and census waits emitted inside carry it.
class ScopedLockSite {
 public:
  explicit ScopedLockSite(std::uint32_t site)
      : saved_(registry_internal::t_current_site) {
    registry_internal::t_current_site = site;
  }
  ~ScopedLockSite() { registry_internal::t_current_site = saved_; }
  ScopedLockSite(const ScopedLockSite&) = delete;
  ScopedLockSite& operator=(const ScopedLockSite&) = delete;

 private:
  std::uint32_t saved_;
};

#define OLL_LOCK_SITE()                                                   \
  ([]() -> std::uint32_t {                                                \
    static const std::uint32_t oll_site_id_ =                             \
        ::oll::register_lock_site(__FILE__, __LINE__);                    \
    return oll_site_id_;                                                  \
  }())

// --- per-lock holder/waiter census ----------------------------------------

class ContentionCensus {
 public:
  // One slot per dense thread index; marks from indices >= max_threads are
  // dropped (bound-checked), so a small census under-counts rather than
  // corrupts.
  explicit ContentionCensus(std::uint32_t max_threads)
      : slots_(std::make_unique<CacheAligned<Slot>[]>(max_threads)),
        size_(max_threads) {}

  // Worker-side marks.  All wait-free, and every one of them — not just
  // begin_wait — gates on the global enable word first, so the disabled
  // cost is one relaxed load of a shared read-mostly line per mark and the
  // thread's own slot is never touched.  A mark stranded by a disable
  // mid-acquisition is left in place; the epoch stamp (bumped on every
  // disabled->enabled flip) makes snapshots ignore it.
  void begin_wait(bool write) {
    if (!registry_census_enabled()) return;
    const std::uint32_t idx = this_thread_index();
    if (idx >= size_) return;
    Slot& s = slots_[idx].value;
    s.epoch.store(registry_census_epoch(), std::memory_order_relaxed);
    s.site.store(current_lock_site(), std::memory_order_relaxed);
    s.begin_ns.store(registry_coarse_now(), std::memory_order_relaxed);
    s.state.store(write ? kWaitWrite : kWaitRead, std::memory_order_relaxed);
  }

  void acquired(bool write) {
    if (!registry_census_enabled()) return;
    const std::uint32_t idx = this_thread_index();
    if (idx >= size_) return;
    Slot& s = slots_[idx].value;
    // No begin_wait mark this epoch (the acquisition started before the
    // census was enabled, or the table is too small): don't fabricate a
    // hold with no recorded start.
    if (s.state.load(std::memory_order_relaxed) == kIdle ||
        s.epoch.load(std::memory_order_relaxed) !=
            registry_census_epoch()) {
      return;
    }
    // The acquisition spanned at least one telemetry tick: charge a stall
    // to the acquire site.  Rare by construction (ticks are ~100ms), so the
    // shared-counter RMW inside is off the fast path.
    const std::uint64_t b = s.begin_ns.load(std::memory_order_relaxed);
    if (b != 0 && b != registry_coarse_now()) {
      registry_internal::note_site_stall(
          s.site.load(std::memory_order_relaxed));
    }
    s.begin_ns.store(0, std::memory_order_relaxed);
    s.state.store(write ? kHoldWrite : kHoldRead, std::memory_order_relaxed);
    if (write) {
      writer_.store(pack_writer(idx, registry_census_epoch()),
                    std::memory_order_relaxed);
    }
  }

  void released() {
    if (!registry_census_enabled()) return;
    const std::uint32_t idx = this_thread_index();
    if (idx >= size_) return;
    Slot& s = slots_[idx].value;
    const std::uint32_t st = s.state.load(std::memory_order_relaxed);
    if (st == kIdle) return;
    if (st == kHoldWrite &&
        (writer_.load(std::memory_order_relaxed) & 0xffffffffu) == idx) {
      writer_.store(kNoWriter, std::memory_order_relaxed);
    }
    s.begin_ns.store(0, std::memory_order_relaxed);
    s.state.store(kIdle, std::memory_order_relaxed);
  }

  // A try/timed acquisition that began a wait but failed.
  void abandoned() {
    if (!registry_census_enabled()) return;
    const std::uint32_t idx = this_thread_index();
    if (idx >= size_) return;
    Slot& s = slots_[idx].value;
    if (s.state.load(std::memory_order_relaxed) == kIdle) return;
    s.begin_ns.store(0, std::memory_order_relaxed);
    s.state.store(kIdle, std::memory_order_relaxed);
  }

  // Aggregate the slots.  Approximate under concurrent marks (relaxed
  // loads), which is the point: a census is a sample, not a ledger.
  CensusSnapshot snapshot(std::uint64_t now_ns) const {
    CensusSnapshot out;
    const std::uint32_t epoch = registry_census_epoch();
    for (std::uint32_t i = 0; i < size_; ++i) {
      const Slot& s = slots_[i].value;
      if (s.epoch.load(std::memory_order_relaxed) != epoch) continue;
      const std::uint32_t st = s.state.load(std::memory_order_relaxed);
      switch (st) {
        case kWaitRead:
        case kWaitWrite: {
          if (st == kWaitRead) {
            ++out.waiting_readers;
          } else {
            ++out.waiting_writers;
          }
          const std::uint64_t b = s.begin_ns.load(std::memory_order_relaxed);
          if (b != 0 && now_ns > b) {
            const std::uint64_t age = now_ns - b;
            if (age > out.longest_wait_ns) {
              out.longest_wait_ns = age;
              out.longest_waiter_tid = i;
              out.longest_waiter_site =
                  s.site.load(std::memory_order_relaxed);
            }
          }
          break;
        }
        case kHoldRead:
          ++out.holding_readers;
          break;
        case kHoldWrite:
          out.write_held = true;
          break;
        default:
          break;
      }
    }
    const std::uint64_t w = writer_.load(std::memory_order_relaxed);
    if (w != kNoWriter && (w >> 32) == epoch) {
      out.write_held = true;
      out.writer_tid = static_cast<std::uint32_t>(w & 0xffffffffu);
    }
    return out;
  }

  // Visit every currently-waiting slot: f(tid, site, begin_ns).  The
  // exporter uses this to charge wait samples to acquire sites.
  template <typename F>
  void for_each_waiting(F&& f) const {
    const std::uint32_t epoch = registry_census_epoch();
    for (std::uint32_t i = 0; i < size_; ++i) {
      const Slot& s = slots_[i].value;
      if (s.epoch.load(std::memory_order_relaxed) != epoch) continue;
      const std::uint32_t st = s.state.load(std::memory_order_relaxed);
      if (st != kWaitRead && st != kWaitWrite) continue;
      f(i, s.site.load(std::memory_order_relaxed),
        s.begin_ns.load(std::memory_order_relaxed));
    }
  }

  std::uint32_t size() const { return size_; }

 private:
  enum : std::uint32_t { kIdle = 0, kWaitRead, kWaitWrite, kHoldRead,
                         kHoldWrite };

  struct Slot {
    std::atomic<std::uint64_t> begin_ns{0};  // coarse wait start; 0 = none
    std::atomic<std::uint32_t> state{kIdle};
    std::atomic<std::uint32_t> site{0};
    std::atomic<std::uint32_t> epoch{~std::uint32_t{0}};  // never current
  };

  // Writer identity packed as (epoch << 32) | tid, so a holder stranded by
  // a disable cannot masquerade as the current writer next epoch.
  static constexpr std::uint64_t kNoWriter = ~std::uint64_t{0};
  static std::uint64_t pack_writer(std::uint32_t tid, std::uint32_t epoch) {
    return (static_cast<std::uint64_t>(epoch) << 32) | tid;
  }

  std::unique_ptr<CacheAligned<Slot>[]> slots_;
  std::uint32_t size_;
  std::atomic<std::uint64_t> writer_{kNoWriter};
};

// --- the registry ---------------------------------------------------------

// RAII registration handle.  The holder (RwLockAdapter, RwProtected) must
// destroy it BEFORE the lock object it describes: the destructor blocks
// until concurrent samplers unpin, after which `obj` is never dereferenced
// through the registry again.
class LockRegistration {
 public:
  LockRegistration() = default;  // unregistered (compile-out / opt-out)
  LockRegistration(const char* name, const char* kind, LockSite site,
                   const void* obj, RegistryStatsFn stats_fn,
                   const ContentionCensus* census);
  ~LockRegistration();

  LockRegistration(const LockRegistration&) = delete;
  LockRegistration& operator=(const LockRegistration&) = delete;

  bool registered() const { return node_ != nullptr; }
  std::uint64_t id() const;  // 0 when unregistered

 private:
  void* node_ = nullptr;
};

// Walk the registry, pinning each live node long enough to read its stats
// and census.  `now_ns` feeds waiter-age computation (pass platform
// now_ns(); tests may pass synthetic time).  With `attribute_sites` set,
// every waiter observed during the walk charges one wait sample to its
// acquire site (the exporter's per-site contention sampling).
std::vector<RegisteredLockSample> registry_sample(
    std::uint64_t now_ns, bool attribute_sites = false);

// Snapshot of the deregistered-locks aggregate, sorted by (name, kind).
std::vector<RetiredLockStats> registry_graveyard();

// Currently-registered lock count (approximate under churn).
std::size_t registry_live_count();

// Total registration events since process start (monotonic; test hook for
// the node-recycling path).
std::uint64_t registry_total_registrations();

#else  // OLL_REGISTRY == 0: every hook is an empty inline, no state at all.

inline constexpr bool registry_compiled_in() { return false; }
inline constexpr bool registry_census_enabled() { return false; }
inline constexpr std::uint32_t registry_census_epoch() { return 0; }
inline constexpr std::uint64_t registry_coarse_now() { return 0; }
inline void registry_census_enable() {}
inline void registry_census_disable() {}
inline void registry_set_coarse_now(std::uint64_t) {}
inline std::uint32_t register_lock_site(const char*, int) { return 0; }
inline constexpr std::uint32_t current_lock_site() { return 0; }
inline void lock_site_add_wait_sample(std::uint32_t) {}
inline std::vector<LockSiteSample> lock_site_table() { return {}; }

class ScopedLockSite {
 public:
  explicit ScopedLockSite(std::uint32_t) {}
};

#define OLL_LOCK_SITE() (std::uint32_t{0})

class ContentionCensus {
 public:
  explicit ContentionCensus(std::uint32_t) {}
  void begin_wait(bool) {}
  void acquired(bool) {}
  void released() {}
  void abandoned() {}
  CensusSnapshot snapshot(std::uint64_t) const { return {}; }
  template <typename F>
  void for_each_waiting(F&&) const {}
  std::uint32_t size() const { return 0; }
};

class LockRegistration {
 public:
  LockRegistration() = default;
  LockRegistration(const char*, const char*, LockSite, const void*,
                   RegistryStatsFn, const ContentionCensus*) {}
  bool registered() const { return false; }
  std::uint64_t id() const { return 0; }
};

inline std::vector<RegisteredLockSample> registry_sample(std::uint64_t,
                                                         bool = false) {
  return {};
}
inline std::vector<RetiredLockStats> registry_graveyard() { return {}; }
inline std::size_t registry_live_count() { return 0; }
inline std::uint64_t registry_total_registrations() { return 0; }

#endif  // OLL_REGISTRY

}  // namespace oll
