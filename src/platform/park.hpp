// Spin-then-park blocking substrate (DESIGN.md §16).
//
// Every lock in this repo was built for the paper's evaluation setup —
// dedicated hardware threads, spin-based condition variables (§5.1).  On an
// oversubscribed host (threads ≫ cores) pure spinning inverts: a preempted
// holder turns every spinner into a scheduler-quantum sink, and throughput
// collapses by the core-to-thread ratio.  This file is the production
// escape hatch: a ParkingLot-style parking facility
//
//     park(word, expected, deadline)   — sleep while *word == expected
//     unpark_one(word) / unpark_all(word)
//
// backed by futexes on Linux (the kernel compares *word == expected
// atomically with respect to wakers, closing the sleep/wake race) and by a
// hashed mutex+condvar bucket table everywhere else (the portable fallback;
// OLL_PARK_FUTEX=0 forces it, which is what the aarch64 CI leg runs).
//
// Three design rules keep the substrate safe to wire into lock-free
// handoff protocols:
//
//  1. `unpark_*` never dereferences the word — the address is only a key
//     (futex uaddr / bucket hash).  A granter may therefore unpark a node
//     whose owning thread has already consumed the grant and destroyed the
//     node: the classic use-after-free of naive parking is structurally
//     impossible.
//
//  2. Parks are sliced: a parker never sleeps more than kParkSliceNs
//     before re-checking the word.  A wake that is genuinely lost (the
//     fault layer's park-lost profile simulates exactly this; a kernel or
//     fallback-table bug would be the real-world cause) degrades to one
//     bounded latency hiccup — counted as a rearm_recovery — never a
//     deadlock.  This is what makes `park-lost` runnable under the
//     fuzzer's progress oracle.
//
//  3. Fault decisions (spurious wake, lost wake, delayed wake) come from
//     the PR 5 deterministic per-thread streams (platform/fault.hpp):
//     (seed, dense thread index, draw counter) fully determine the
//     park/wake fault schedule, so a failing interleaving replays from a
//     one-line repro exactly like the cas/preempt profiles.
//
// The adaptive spin-then-park policy lives here too: park_spin_budget()
// is a global EWMA of recent spin-to-grant latencies — handoffs that
// arrive during the spin phase grow the budget toward 2× the observed
// latency (clamped), handoffs that arrive via park shrink it, so a
// saturated machine converges to "park almost immediately" while a
// lightly-loaded one keeps the paper's spin behavior.
//
// Compile-out: OLL_PARK=0 (CMake cache variable, mirroring OLL_TRACE /
// OLL_FAULTS / OLL_REGISTRY) turns everything here into constexpr no-ops
// and WaitStrategy::kSpinThenPark degrades to kSpin at arm() time — the
// pure-spin paths are bit-for-bit identical to the seed.
#pragma once

#include <atomic>
#include <cstdint>

#ifndef OLL_PARK
#define OLL_PARK 1
#endif

namespace oll {

enum class ParkResult : std::uint8_t {
  kWoken,     // the word no longer holds `expected` (grant observed)
  kTimedOut,  // the deadline passed with the word still == expected
  kSpurious,  // returned with the word still == expected; caller re-checks
              // and re-parks (injected by park-spurious, or an OS-level
              // spurious futex return)
};

// Process-global substrate counters (all parks regardless of lock).
// Per-lock attribution lives in LockStats; these are the ground truth the
// fuzzer's zero-lost-wake check and the telemetry gauge read.
struct ParkStats {
  std::uint64_t parks = 0;             // park() calls that actually slept
  std::uint64_t unparks = 0;           // unpark_one/unpark_all calls
  std::uint64_t spurious_wakes = 0;    // kSpurious returns delivered
  std::uint64_t rearm_recoveries = 0;  // grant discovered at a slice
                                       // boundary instead of via a wake
                                       // (a lost/missed wake, recovered)
  std::uint64_t injected_spurious = 0;  // fault layer: park-spurious hits
  std::uint64_t injected_lost = 0;      // fault layer: park-lost hits
  std::uint64_t injected_delays = 0;    // fault layer: delayed-wake hits
};

// What the watchdog reads about one dense thread index (single-writer
// slots, owner-thread relaxed stores): when the thread parked (0 = not
// parked), the deadline it parked with (0 = none), and its cumulative
// parked nanoseconds — the census that separates "sleeping and healthy"
// from "runnable and not progressing" (DESIGN.md §16).
struct ParkThreadState {
  std::uint64_t parked_since_ns = 0;
  std::uint64_t deadline_ns = 0;
  std::uint64_t cum_parked_ns = 0;
};

#if OLL_PARK

inline constexpr bool park_compiled_in() { return true; }

// Sleep while `word == expected`, in bounded slices, until the word
// changes (kWoken), `deadline_ns` (platform now_ns() clock; 0 = none)
// passes (kTimedOut), or a spurious wake is delivered (kSpurious).  The
// caller must treat kSpurious like a condition-variable spurious wake:
// re-check its predicate and re-park.  Never sleeps if the word already
// differs.  The word is only ever loaded (acquire) — park() performs no
// stores to it; marker transitions (e.g. 0→parked) are the caller's
// protocol (see park_wait_u32 below for the packaged version).
ParkResult park(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                std::uint64_t deadline_ns = 0);

// Wake one / all threads parked on `word`.  Address-as-key only: never
// dereferences, safe after the waiter destroyed the word's storage.
void unpark_one(const std::atomic<std::uint32_t>& word);
void unpark_all(const std::atomic<std::uint32_t>& word);

// --- packaged spin-then-park wait protocol --------------------------------
//
// The repo's node flags all follow "spin on word == wait_val until the
// granter stores something else".  The parked marker makes the sleep
// visible to the granter: the parker CASes wait_val → parked_val before
// parking, and the granter *exchanges* its grant value in — if the old
// value was parked_val it calls unpark (the single-word consume-or-wake
// Dekker pairing, DESIGN.md §16.2).  The marker is sticky: a parker that
// wakes spuriously or times out leaves parked_val in place, so the worst
// case is one superfluous unpark of an empty address, never a lost wake.
//
// Outcome counters accumulate into `o` (plain fields, owned by the
// calling thread) for per-lock LockStats attribution.

struct ParkWaitOutcome {
  std::uint32_t parks = 0;
  std::uint32_t spurious = 0;
  std::uint64_t wait_ns = 0;  // total time spent parked (not spinning)
};

// Adaptive spin phase, then park.  Returns the terminal word value (any
// value other than wait_val / parked_val).  Multiple threads may wait on
// the same word (FOLL/ROLL shared reader nodes): they all converge on
// parked_val and the granter uses unpark_all.
std::uint32_t park_wait_u32(std::atomic<std::uint32_t>& word,
                            std::uint32_t wait_val, std::uint32_t parked_val,
                            ParkWaitOutcome* o = nullptr);

// Deadline-bounded variant: true once the word left {wait_val, parked_val}
// (terminal value in *terminal if non-null), false on timeout — the word
// then still holds wait_val or parked_val and the caller must run its
// abandon-or-consume protocol.  The parked marker is deliberately NOT
// reverted on timeout (see above).
bool park_wait_until_u32(std::atomic<std::uint32_t>& word,
                         std::uint32_t wait_val, std::uint32_t parked_val,
                         std::uint64_t deadline_ns,
                         std::uint32_t* terminal = nullptr,
                         ParkWaitOutcome* o = nullptr);

// Granter half: exchange grant_val in; if the displaced value was
// parked_val, unpark all sleepers on the word.  Returns the displaced
// value so protocol-specific granters (FOLL's orphan forwarding) can
// branch on it.  `all` selects unpark_all (shared reader nodes) vs
// unpark_one (single-waiter flags).
std::uint32_t park_grant_u32(std::atomic<std::uint32_t>& word,
                             std::uint32_t grant_val, std::uint32_t parked_val,
                             bool all = true);

// --- adaptive spin controller ---------------------------------------------

// Current spin budget (iterations) for the spin phase before parking.
std::uint32_t park_spin_budget();
// Feedback: a grant arrived after `spins` spin iterations (no park).
void park_note_spin_grant(std::uint32_t spins);
// Feedback: a grant arrived via park — spinning was wasted; shrink.
void park_note_park_grant();

// --- bounded-slice escalation (predicate-only spin sites) ------------------
//
// For spin loops with no wakeable word (the central lockword CAS loop,
// BRAVO's revocation scan): sleep one short slice, fully accounted as a
// park (gauge + census + stats), then return so the caller re-evaluates
// its predicate.  `round` grows the slice from kEscalateMinSliceNs toward
// kParkSliceNs.  SpinWait::pause() calls this once escalation is enabled
// and the yield phase is exhausted.
void park_briefly(std::uint32_t round);

// --- stats / census --------------------------------------------------------

ParkStats park_stats();
void park_stats_reset();  // test/bench hook; counters are cumulative

// Threads currently parked (telemetry gauge; includes park_briefly).
std::uint32_t parked_thread_count();

// Park census of one dense thread index (platform/thread_id.hpp).
ParkThreadState park_thread_state(std::uint32_t dense_index);

#else  // OLL_PARK == 0: pure-spin binaries, bit-for-bit with the seed.

inline constexpr bool park_compiled_in() { return false; }

// kSpurious, so a caller that somehow reaches a compiled-out park simply
// falls back to its own spin loop instead of wrongly consuming a grant.
inline ParkResult park(const std::atomic<std::uint32_t>&, std::uint32_t,
                       std::uint64_t = 0) {
  return ParkResult::kSpurious;
}
inline void unpark_one(const std::atomic<std::uint32_t>&) {}
inline void unpark_all(const std::atomic<std::uint32_t>&) {}

struct ParkWaitOutcome {
  std::uint32_t parks = 0;
  std::uint32_t spurious = 0;
  std::uint64_t wait_ns = 0;
};

inline std::uint32_t park_wait_u32(std::atomic<std::uint32_t>& word,
                                   std::uint32_t wait_val, std::uint32_t,
                                   ParkWaitOutcome* = nullptr) {
  std::uint32_t v;
  while ((v = word.load(std::memory_order_acquire)) == wait_val) {
  }
  return v;
}
inline bool park_wait_until_u32(std::atomic<std::uint32_t>&, std::uint32_t,
                                std::uint32_t, std::uint64_t,
                                std::uint32_t* = nullptr,
                                ParkWaitOutcome* = nullptr) {
  return false;
}
inline std::uint32_t park_grant_u32(std::atomic<std::uint32_t>& word,
                                    std::uint32_t grant_val, std::uint32_t,
                                    bool = true) {
  return word.exchange(grant_val, std::memory_order_acq_rel);
}

inline constexpr std::uint32_t park_spin_budget() { return 0; }
inline void park_note_spin_grant(std::uint32_t) {}
inline void park_note_park_grant() {}
inline void park_briefly(std::uint32_t) {}

inline constexpr ParkStats park_stats() { return {}; }
inline void park_stats_reset() {}
inline constexpr std::uint32_t parked_thread_count() { return 0; }
inline constexpr ParkThreadState park_thread_state(std::uint32_t) {
  return {};
}

#endif  // OLL_PARK

// Tuning constants, shared with tests (declared for both build flavors so
// test code compiles under OLL_PARK=0; the stub substrate never uses them).
inline constexpr std::uint64_t kParkSliceNs = 10'000'000;      // 10 ms
inline constexpr std::uint64_t kEscalateMinSliceNs = 50'000;   // 50 µs
inline constexpr std::uint32_t kParkMinSpin = 64;
inline constexpr std::uint32_t kParkMaxSpin = 4096;

}  // namespace oll
