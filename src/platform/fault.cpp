#include "platform/fault.hpp"

#if OLL_FAULTS

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>

#include "platform/thread_id.hpp"

namespace oll {

FaultProfile fault_profile_jitter() {
  FaultProfile p;
  p.name = "jitter";
  p.yield_p = 64;
  p.delay_p = 128;
  p.delay_spins = 64;
  return p;
}

FaultProfile fault_profile_cas() {
  FaultProfile p;
  p.name = "cas";
  p.cas_fail_p = 512;
  p.yield_p = 32;
  p.delay_p = 64;
  p.delay_spins = 32;
  return p;
}

FaultProfile fault_profile_preempt() {
  FaultProfile p;
  p.name = "preempt";
  p.yield_p = 32;
  p.preempt_p = 128;
  p.preempt_spins = 4096;
  return p;
}

FaultProfile fault_profile_chaos() {
  FaultProfile p;
  p.name = "chaos";
  p.cas_fail_p = 256;
  p.yield_p = 96;
  p.delay_p = 128;
  p.delay_spins = 128;
  p.preempt_p = 64;
  p.preempt_spins = 2048;
  return p;
}

FaultProfile fault_profile_park_spurious() {
  FaultProfile p;
  p.name = "park-spurious";
  p.park_spurious_p = 256;
  return p;
}

FaultProfile fault_profile_park_lost() {
  FaultProfile p;
  p.name = "park-lost";
  p.park_lost_p = 192;
  p.yield_p = 32;
  return p;
}

FaultProfile fault_profile_park_chaos() {
  FaultProfile p;
  p.name = "park-chaos";
  p.park_spurious_p = 128;
  p.park_lost_p = 96;
  p.park_delay_p = 128;
  p.park_delay_spins = 512;
  p.yield_p = 64;
  p.delay_p = 64;
  p.delay_spins = 64;
  return p;
}

bool fault_profile_from_name(const char* name, FaultProfile* out) {
  if (std::strcmp(name, "off") == 0) {
    *out = FaultProfile{};
    return true;
  }
  if (std::strcmp(name, "jitter") == 0) {
    *out = fault_profile_jitter();
    return true;
  }
  if (std::strcmp(name, "cas") == 0) {
    *out = fault_profile_cas();
    return true;
  }
  if (std::strcmp(name, "preempt") == 0) {
    *out = fault_profile_preempt();
    return true;
  }
  if (std::strcmp(name, "chaos") == 0) {
    *out = fault_profile_chaos();
    return true;
  }
  if (std::strcmp(name, "park-spurious") == 0) {
    *out = fault_profile_park_spurious();
    return true;
  }
  if (std::strcmp(name, "park-lost") == 0) {
    *out = fault_profile_park_lost();
    return true;
  }
  if (std::strcmp(name, "park-chaos") == 0) {
    *out = fault_profile_park_chaos();
    return true;
  }
  return false;
}

namespace fault_internal {

std::atomic<std::uint32_t> g_enabled{0};

namespace {

// Active configuration.  Written only by the quiescent control plane; read
// relaxed from hooks after they observe g_enabled != 0.
FaultProfile g_profile;
std::uint64_t g_seed = 0;
// Bumped by every fault_enable so per-thread streams lazily reseed; a thread
// whose slot generation mismatches re-derives its state from (seed, index).
std::atomic<std::uint32_t> g_generation{0};

std::atomic<std::uint64_t> g_forced_cas_fails{0};
std::atomic<std::uint64_t> g_yields{0};
std::atomic<std::uint64_t> g_delays{0};
std::atomic<std::uint64_t> g_preemptions{0};
std::atomic<std::uint64_t> g_park_spurious{0};
std::atomic<std::uint64_t> g_park_lost{0};
std::atomic<std::uint64_t> g_park_delays{0};

constexpr std::size_t kCacheLine = 64;

struct alignas(kCacheLine) ThreadStream {
  std::uint64_t state = 0;
  std::uint32_t generation = 0;  // matches g_generation when seeded
};

ThreadStream g_streams[kMaxThreads];

inline std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// The calling thread's deterministic stream, reseeded on generation change.
// Single writer per dense index (same contract as the trace rings and the
// LockStats slots): concurrent dense-index aliasing is a harness bug.
inline ThreadStream& my_stream() {
  const std::uint32_t idx = this_thread_index() % kMaxThreads;
  ThreadStream& ts = g_streams[idx];
  const std::uint32_t gen =
      g_generation.load(std::memory_order_acquire);
  if (ts.generation != gen) {
    ts.state = g_seed ^ (0x5851f42d4c957f2dull * (idx + 1));
    ts.generation = gen;
  }
  return ts;
}

// One draw in [0, 1024).
inline std::uint32_t draw_p(ThreadStream& ts) {
  return static_cast<std::uint32_t>(splitmix64(ts.state) & 1023u);
}

inline void stall(std::uint32_t spins) {
  for (std::uint32_t i = 0; i < spins; ++i) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    // seq_cst signal fence: a compiler-only barrier standing in for the
    // pause instruction — keeps the loop from being folded away without
    // emitting any hardware fence.
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
  std::this_thread::yield();
}

}  // namespace

bool cas_should_fail(FaultSite /*site*/) {
  ThreadStream& ts = my_stream();
  if (g_profile.cas_fail_p == 0) return false;
  if (draw_p(ts) >= g_profile.cas_fail_p) return false;
  g_forced_cas_fails.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void perturb(FaultSite /*site*/) {
  ThreadStream& ts = my_stream();
  const std::uint32_t r = draw_p(ts);
  if (g_profile.delay_p != 0 && r < g_profile.delay_p) {
    g_delays.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t spins =
        g_profile.delay_spins == 0
            ? 0
            : static_cast<std::uint32_t>(splitmix64(ts.state) %
                                         g_profile.delay_spins) +
                  1;
    stall(spins);
    return;
  }
  if (g_profile.yield_p != 0 && r < g_profile.delay_p + g_profile.yield_p) {
    g_yields.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void preempt_window(FaultSite site) {
  ThreadStream& ts = my_stream();
  if (g_profile.preempt_p != 0 && draw_p(ts) < g_profile.preempt_p) {
    g_preemptions.fetch_add(1, std::memory_order_relaxed);
    stall(g_profile.preempt_spins);
    return;
  }
  // A release point is also a fine place for ordinary jitter.
  perturb(site);
}

bool park_spurious() {
  if (g_profile.park_spurious_p == 0) return false;
  ThreadStream& ts = my_stream();
  if (draw_p(ts) >= g_profile.park_spurious_p) return false;
  g_park_spurious.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool park_lost() {
  if (g_profile.park_lost_p == 0) return false;
  ThreadStream& ts = my_stream();
  if (draw_p(ts) >= g_profile.park_lost_p) return false;
  g_park_lost.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint32_t park_delay() {
  if (g_profile.park_delay_p == 0) return 0;
  ThreadStream& ts = my_stream();
  if (draw_p(ts) >= g_profile.park_delay_p) return 0;
  g_park_delays.fetch_add(1, std::memory_order_relaxed);
  if (g_profile.park_delay_spins == 0) return 0;
  return static_cast<std::uint32_t>(splitmix64(ts.state) %
                                    g_profile.park_delay_spins) +
         1;
}

}  // namespace fault_internal

void fault_enable(const FaultProfile& profile, std::uint64_t seed) {
  using namespace fault_internal;
  g_profile = profile;
  g_seed = seed;
  g_forced_cas_fails.store(0, std::memory_order_relaxed);
  g_yields.store(0, std::memory_order_relaxed);
  g_delays.store(0, std::memory_order_relaxed);
  g_preemptions.store(0, std::memory_order_relaxed);
  g_park_spurious.store(0, std::memory_order_relaxed);
  g_park_lost.store(0, std::memory_order_relaxed);
  g_park_delays.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
  g_enabled.store(1, std::memory_order_release);
}

void fault_disable() {
  fault_internal::g_enabled.store(0, std::memory_order_release);
}

FaultCounters fault_counters() {
  using namespace fault_internal;
  FaultCounters c;
  c.forced_cas_fails = g_forced_cas_fails.load(std::memory_order_relaxed);
  c.yields = g_yields.load(std::memory_order_relaxed);
  c.delays = g_delays.load(std::memory_order_relaxed);
  c.preemptions = g_preemptions.load(std::memory_order_relaxed);
  c.park_spurious = g_park_spurious.load(std::memory_order_relaxed);
  c.park_lost = g_park_lost.load(std::memory_order_relaxed);
  c.park_delays = g_park_delays.load(std::memory_order_relaxed);
  return c;
}

}  // namespace oll

#else  // OLL_FAULTS == 0

// The header provides inline no-ops; nothing to define.  Keep the TU
// non-empty for toolchains that warn on empty objects.
namespace oll::fault_internal {
void fault_compiled_out_anchor() {}
}  // namespace oll::fault_internal

#endif  // OLL_FAULTS
