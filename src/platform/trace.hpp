// Lock event tracing: per-thread ring buffers of typed, timestamped records.
//
// The hot-path contract has three tiers:
//
//   * OLL_TRACE=0 (compile-time kill switch, a CMake cache variable): every
//     hook below is an empty constexpr inline function.  No code, no branch,
//     no atomic load — the binary is bit-for-bit oblivious to tracing.
//   * Compiled in, runtime-disabled (the default): each hook is one relaxed
//     load of a process-global mode word and a predictable branch.  In sim
//     builds this costs zero *virtual* time (only sim::Atomic ops are
//     charged), so the fig5 trajectory gate is unaffected by construction.
//   * Runtime-enabled: events append to a fixed-capacity per-thread ring
//     (cache-aligned slots, single writer per dense thread index, release
//     publication), wrapping on overflow with a drop count.  Latency timing
//     (the histogram feed, locks/lock_stats.hpp) is a separate runtime bit
//     so benches can collect percentiles without filling rings.
//
// Timestamps come from a pluggable clock (trace_set_clock): real builds use
// platform/time.hpp's monotonic now_ns(); the bench harness installs the
// simulated per-thread virtual clock for sim runs, so traces and histograms
// are in the same time base as the throughput numbers they explain.
//
// Concurrency contract: emit is wait-free and safe from any registered
// thread; trace_drain() may run concurrently with emitters (all ring state
// is atomic, so a concurrent drain is merely approximate — it can observe a
// torn view of a record being overwritten); enable/disable/set_clock are
// quiescent-only operations.  Exact drains require quiescence, the same
// contract as every stats snapshot in this repository.
#pragma once

#include <cstdint>
#include <vector>

#ifndef OLL_TRACE
#define OLL_TRACE 1
#endif

#if OLL_TRACE
#include <atomic>
#endif

namespace oll {

enum class TraceEventType : std::uint8_t {
  kReadAcquireBegin = 0,
  kReadAcquireEnd,
  kWriteAcquireBegin,
  kWriteAcquireEnd,
  kReadRelease,
  kWriteRelease,
  kQueueEnter,  // thread started waiting (queue node / spin flag / revoke)
  kQueueExit,   // thread granted after waiting
  kBiasRevoke,  // BRAVO writer revoked reader bias
  kCsnziClose,  // a C-SNZI transitioned open -> closed
  kCsnziOpen,   // a C-SNZI transitioned closed -> open
  // Optimistic read mode (locks/versioned_rwlock.hpp).  Begin/End bracket
  // one begin-to-validate attempt (successful or not); ValidationFail and
  // Fallback are instants at the failing validate / the retry loop's
  // surrender to the pessimistic path.
  kOptReadBegin,
  kOptReadEnd,
  kOptValidationFail,
  kOptFallback,
  // Delegated/combined writer path (locks/combining.hpp).  Publish marks a
  // writer handing its closure to the combining pool; Begin/End bracket one
  // holder's drain batch (the slice covers every closure it executed for
  // other threads before releasing).
  kCombinePublish,
  kCombineBegin,
  kCombineEnd,
};

inline constexpr std::uint32_t kTraceEventTypeCount = 18;

inline const char* trace_event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kReadAcquireBegin: return "read_acquire_begin";
    case TraceEventType::kReadAcquireEnd: return "read_acquire_end";
    case TraceEventType::kWriteAcquireBegin: return "write_acquire_begin";
    case TraceEventType::kWriteAcquireEnd: return "write_acquire_end";
    case TraceEventType::kReadRelease: return "read_release";
    case TraceEventType::kWriteRelease: return "write_release";
    case TraceEventType::kQueueEnter: return "queue_enter";
    case TraceEventType::kQueueExit: return "queue_exit";
    case TraceEventType::kBiasRevoke: return "bias_revoke";
    case TraceEventType::kCsnziClose: return "csnzi_close";
    case TraceEventType::kCsnziOpen: return "csnzi_open";
    case TraceEventType::kOptReadBegin: return "opt_read_begin";
    case TraceEventType::kOptReadEnd: return "opt_read_end";
    case TraceEventType::kOptValidationFail: return "opt_validation_fail";
    case TraceEventType::kOptFallback: return "opt_fallback";
    case TraceEventType::kCombinePublish: return "combine_publish";
    case TraceEventType::kCombineBegin: return "combine_begin";
    case TraceEventType::kCombineEnd: return "combine_end";
  }
  return "?";
}

struct TraceRecord {
  std::uint64_t ts = 0;       // trace-clock units (ns real / cycles sim)
  const void* obj = nullptr;  // the lock (or C-SNZI) the event concerns
  std::uint32_t tid = 0;      // dense thread index at emit time
  // Acquire-site tag active at emit time (platform/lock_registry.hpp:
  // OLL_LOCK_SITE via ScopedLockSite); 0 = untagged.  Lets the trace
  // export attribute events to the call site that initiated them.
  std::uint32_t site = 0;
  TraceEventType type{};
};

struct TraceOptions {
  // Records per thread ring.  On overflow the ring wraps (newest records
  // win) and the overwritten count is reported by trace_drain().
  std::uint32_t ring_capacity = 1u << 13;
};

struct TraceDump {
  std::vector<TraceRecord> records;  // ascending timestamp order
  std::uint64_t dropped = 0;         // records lost to ring wrap, all threads
};

using TraceClockFn = std::uint64_t (*)();

// Acquire-latency timer returned by obs_begin.  `armed` is true iff latency
// timing was runtime-enabled at begin; with OLL_TRACE=0 it is constexpr
// false, so `if (t.armed) record(...)` call sites fold away entirely.
struct ObsTimer {
  std::uint64_t begin = 0;
  bool armed = false;
};

#if OLL_TRACE

namespace trace_internal {
inline constexpr std::uint32_t kEventsBit = 1u;
inline constexpr std::uint32_t kTimingBit = 2u;
// bit 0: event rings live; bit 1: latency timing (histograms) live.
extern std::atomic<std::uint32_t> g_mode;
std::uint64_t clock_now();
void emit(TraceEventType type, const void* obj, std::uint64_t ts);
}  // namespace trace_internal

inline bool trace_events_enabled() {
  return (trace_internal::g_mode.load(std::memory_order_relaxed) &
          trace_internal::kEventsBit) != 0;
}

inline bool latency_timing_enabled() {
  return (trace_internal::g_mode.load(std::memory_order_relaxed) &
          trace_internal::kTimingBit) != 0;
}

// Fire-and-forget instantaneous event (releases, revocations, C-SNZI state
// flips).
inline void trace_event(TraceEventType type, const void* obj) {
  if ((trace_internal::g_mode.load(std::memory_order_relaxed) &
       trace_internal::kEventsBit) == 0) {
    return;
  }
  trace_internal::emit(type, obj, trace_internal::clock_now());
}

// Paired begin/end hooks around an acquisition (or a wait).  obs_end always
// emits the end event when events are enabled; its return value is the
// elapsed time iff `t.armed`, else 0.
inline ObsTimer obs_begin(TraceEventType type, const void* obj) {
  const std::uint32_t m =
      trace_internal::g_mode.load(std::memory_order_relaxed);
  if (m == 0) return {};
  const std::uint64_t ts = trace_internal::clock_now();
  if ((m & trace_internal::kEventsBit) != 0) {
    trace_internal::emit(type, obj, ts);
  }
  return {ts, (m & trace_internal::kTimingBit) != 0};
}

inline std::uint64_t obs_end(TraceEventType type, const void* obj,
                             const ObsTimer& t) {
  const std::uint32_t m =
      trace_internal::g_mode.load(std::memory_order_relaxed);
  if (m == 0 && !t.armed) return 0;
  const std::uint64_t ts = trace_internal::clock_now();
  if ((m & trace_internal::kEventsBit) != 0) {
    trace_internal::emit(type, obj, ts);
  }
  if (!t.armed) return 0;
  return ts >= t.begin ? ts - t.begin : 0;
}

// --- control plane (quiescent-only, except trace_drain) -------------------

void trace_enable(const TraceOptions& opts = {});
void trace_disable();
void latency_timing_enable();
void latency_timing_disable();

// Collect and clear every thread's ring.  Safe concurrently with emitters
// (approximate); exact at quiescence.
TraceDump trace_drain();

// Install the timestamp source (nullptr restores the real-time default).
void trace_set_clock(TraceClockFn fn);

#else  // OLL_TRACE == 0: every hook is an empty inline, no code at all.

inline constexpr bool trace_events_enabled() { return false; }
inline constexpr bool latency_timing_enabled() { return false; }
inline constexpr void trace_event(TraceEventType, const void*) {}
inline constexpr ObsTimer obs_begin(TraceEventType, const void*) {
  return {};
}
inline constexpr std::uint64_t obs_end(TraceEventType, const void*,
                                       const ObsTimer&) {
  return 0;
}
inline void trace_enable(const TraceOptions& = {}) {}
inline void trace_disable() {}
inline void latency_timing_enable() {}
inline void latency_timing_disable() {}
inline TraceDump trace_drain() { return {}; }
inline void trace_set_clock(TraceClockFn) {}

#endif  // OLL_TRACE

}  // namespace oll
