#include "platform/topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "platform/assert.hpp"

namespace oll {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kNoValue = 0xffffffffu;

// Reads a small sysfs file; returns false when absent/unreadable.
bool read_text(const fs::path& p, std::string& out) {
  std::ifstream in(p);
  if (!in) return false;
  std::getline(in, out);
  return true;
}

// "cpu17" -> 17; anything else -> kNoValue.
std::uint32_t parse_cpu_dir_name(const std::string& name) {
  if (name.size() <= 3 || name.compare(0, 3, "cpu") != 0) return kNoValue;
  std::uint32_t v = 0;
  for (std::size_t i = 3; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return kNoValue;
    v = v * 10 + static_cast<std::uint32_t>(name[i] - '0');
  }
  return v;
}

// Sibling-set key: the smallest cpu number in the set, so every member of
// the set derives the same key without coordination.
std::uint32_t list_key(const std::string& text) {
  const std::vector<std::uint32_t> cpus = parse_cpu_list(text);
  if (cpus.empty()) return kNoValue;
  return *std::min_element(cpus.begin(), cpus.end());
}

// The LLC sibling set for one cpu: the shared_cpu_list of the deepest
// data/unified cache under cache/index*.
std::uint32_t llc_key(const fs::path& cpu_dir) {
  std::error_code ec;
  const fs::path cache_dir = cpu_dir / "cache";
  if (!fs::is_directory(cache_dir, ec)) return kNoValue;
  int best_level = -1;
  std::uint32_t best_key = kNoValue;
  for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, 5, "index") != 0) continue;
    std::string level_text, type_text, shared_text;
    if (!read_text(entry.path() / "level", level_text)) continue;
    if (read_text(entry.path() / "type", type_text) &&
        type_text == "Instruction") {
      continue;
    }
    if (!read_text(entry.path() / "shared_cpu_list", shared_text)) continue;
    const int level = std::atoi(level_text.c_str());
    const std::uint32_t key = list_key(shared_text);
    if (key == kNoValue) continue;
    if (level > best_level) {
      best_level = level;
      best_key = key;
    }
  }
  return best_key;
}

// NUMA node of one cpu: the node<M> symlink/dir inside the cpu directory.
std::uint32_t numa_key(const fs::path& cpu_dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 4 || name.compare(0, 4, "node") != 0) continue;
    std::uint32_t v = 0;
    bool ok = true;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        ok = false;
        break;
      }
      v = v * 10 + static_cast<std::uint32_t>(name[i] - '0');
    }
    if (ok) return v;
  }
  return kNoValue;
}

// Renumbers arbitrary keys into dense ids in order of first appearance.
class Densifier {
 public:
  std::uint32_t id_of(std::uint32_t key) {
    auto [it, inserted] = ids_.try_emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }
  std::uint32_t count() const { return next_; }

 private:
  std::map<std::uint32_t, std::uint32_t> ids_;
  std::uint32_t next_ = 0;
};

}  // namespace

std::vector<std::uint32_t> parse_cpu_list(const std::string& text) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && !std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= n) break;
    std::uint64_t lo = 0;
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
      lo = lo * 10 + static_cast<std::uint64_t>(text[i] - '0');
      ++i;
    }
    std::uint64_t hi = lo;
    if (i < n && text[i] == '-') {
      ++i;
      if (i >= n || !std::isdigit(static_cast<unsigned char>(text[i]))) {
        continue;  // trailing "3-" — skip the malformed range
      }
      hi = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
        hi = hi * 10 + static_cast<std::uint64_t>(text[i] - '0');
        ++i;
      }
    }
    for (std::uint64_t v = lo; v <= hi && v < kNoValue; ++v) {
      out.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return out;
}

Topology Topology::from_sysfs(const std::string& cpu_root) {
  Topology t;
  std::error_code ec;
  const fs::path root(cpu_root);
  if (!fs::is_directory(root, ec)) return t;

  // Collect present cpu numbers (cpu<N> directories with a topology/ or at
  // least a per-cpu dir; "cpufreq", "cpuidle" etc. don't parse as numbers).
  std::vector<std::uint32_t> cpus;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::uint32_t n = parse_cpu_dir_name(entry.path().filename().string());
    if (n != kNoValue) cpus.push_back(n);
  }
  std::sort(cpus.begin(), cpus.end());
  if (cpus.empty()) return t;

  Densifier smt, llc, numa;
  for (const std::uint32_t cpu : cpus) {
    const fs::path cpu_dir = root / ("cpu" + std::to_string(cpu));
    CpuPlacement p;

    std::string sib_text;
    std::uint32_t smt_k = kNoValue;
    if (read_text(cpu_dir / "topology" / "thread_siblings_list", sib_text) ||
        read_text(cpu_dir / "topology" / "core_cpus_list", sib_text)) {
      smt_k = list_key(sib_text);
    }
    if (smt_k == kNoValue) smt_k = cpu;  // no siblings info: own core
    p.smt_group = smt.id_of(smt_k);

    std::uint32_t llc_k = llc_key(cpu_dir);
    if (llc_k == kNoValue) {
      // No cache description: approximate the LLC by the package.
      std::string pkg_text;
      if (read_text(cpu_dir / "topology" / "core_siblings_list", pkg_text) ||
          read_text(cpu_dir / "topology" / "package_cpus_list", pkg_text)) {
        llc_k = list_key(pkg_text);
      }
    }
    if (llc_k == kNoValue) llc_k = smt_k;
    p.llc_domain = llc.id_of(llc_k);

    std::uint32_t numa_k = numa_key(cpu_dir);
    if (numa_k == kNoValue) {
      // No node<M> entry: approximate the node by the LLC sibling set, but
      // resolve it through the same numa Densifier under a key space
      // disjoint from real node numbers (which are small) so a fallback id
      // can never alias a real node's dense id on mixed systems.
      numa_k = kNoValue - 1 - llc_k;
    }
    p.numa_node = numa.id_of(numa_k);

    t.placements_.push_back(p);
    t.cpu_numbers_.push_back(cpu);
  }
  t.smt_groups_ = smt.count();
  t.llc_domains_ = llc.count();
  t.numa_nodes_ = numa.count();
  return t;
}

Topology Topology::synthetic(std::uint32_t cpus, std::uint32_t smt_width,
                             std::uint32_t llc_width,
                             std::uint32_t numa_width) {
  Topology t;
  if (cpus == 0) cpus = 1;
  smt_width = std::clamp(smt_width, 1u, cpus);
  llc_width = std::clamp(llc_width, 1u, cpus);
  numa_width = std::clamp(numa_width, 1u, cpus);
  t.placements_.reserve(cpus);
  t.cpu_numbers_.reserve(cpus);
  for (std::uint32_t c = 0; c < cpus; ++c) {
    t.placements_.push_back(
        CpuPlacement{c / smt_width, c / llc_width, c / numa_width});
    t.cpu_numbers_.push_back(c);
  }
  t.smt_groups_ = (cpus + smt_width - 1) / smt_width;
  t.llc_domains_ = (cpus + llc_width - 1) / llc_width;
  t.numa_nodes_ = (cpus + numa_width - 1) / numa_width;
  return t;
}

const Topology& Topology::system() {
  static const Topology topo = [] {
    Topology t = from_sysfs("/sys/devices/system/cpu");
    if (t.cpu_count() == 0) {
      std::uint32_t n = std::thread::hardware_concurrency();
      if (n == 0) n = 1;
      t = synthetic(n, 1, n, n);
      t.synthetic_fallback_ = true;
    }
    return t;
  }();
  return topo;
}

const CpuPlacement& Topology::placement(std::uint32_t cpu) const {
  OLL_CHECK(cpu < placements_.size());
  return placements_[cpu];
}

const char* leaf_mapping_name(LeafMapping m) {
  switch (m) {
    case LeafMapping::kAuto: return "auto";
    case LeafMapping::kStaticShift: return "static";
    case LeafMapping::kPerThread: return "thread";
    case LeafMapping::kSmtCluster: return "smt";
    case LeafMapping::kLlcCluster: return "llc";
    case LeafMapping::kNumaCluster: return "numa";
  }
  return "?";
}

bool parse_leaf_mapping(const std::string& name, LeafMapping& out) {
  if (name == "auto") out = LeafMapping::kAuto;
  else if (name == "static") out = LeafMapping::kStaticShift;
  else if (name == "thread") out = LeafMapping::kPerThread;
  else if (name == "smt") out = LeafMapping::kSmtCluster;
  else if (name == "llc") out = LeafMapping::kLlcCluster;
  else if (name == "numa") out = LeafMapping::kNumaCluster;
  else return false;
  return true;
}

LeafMap::LeafMap(const Topology* topo, LeafMapping mapping,
                 std::uint32_t leaves_pow2, std::uint32_t leaf_shift)
    : topo_(topo),
      mapping_(mapping),
      mask_(leaves_pow2 - 1),
      shift_(leaf_shift),
      cpus_(topo != nullptr && topo->cpu_count() > 0 ? topo->cpu_count() : 1) {
  OLL_CHECK(leaves_pow2 != 0 && (leaves_pow2 & (leaves_pow2 - 1)) == 0);
  // kAuto must be resolved by CSnziOptions::normalize(); a placement-derived
  // mapping without a topology degrades to per-thread leaves.
  if (mapping_ == LeafMapping::kAuto) mapping_ = LeafMapping::kPerThread;
  if (mapping_ != LeafMapping::kStaticShift &&
      mapping_ != LeafMapping::kPerThread &&
      (topo_ == nullptr || topo_->cpu_count() == 0)) {
    mapping_ = LeafMapping::kPerThread;
  }
}

}  // namespace oll
