// TestMemory: a memory-model policy that perturbs thread interleavings.
//
// On a small host the OS scheduler produces very coarse interleavings (a
// thread runs thousands of lock operations per timeslice), so many races
// simply never fire.  TestMemory wraps std::atomic and, before every
// atomic operation, yields to the scheduler with a per-thread pseudo-random
// probability.  Running a scenario a few thousand times under different
// seeds explores a far richer set of interleavings — a lightweight,
// portable cousin of a systematic concurrency tester.
//
// Usage (see tests/race_fuzz_test.cpp):
//   FuzzYield::set_seed(round_seed);   // per thread, before the scenario
//   FollLock<TestMemory> lock;         // locks run on perturbed atomics
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "platform/rng.hpp"

namespace oll {

// Per-thread yield controller for TestMemory.  Yield probability is
// 1/kYieldDenominator per atomic access; 0 seed disables perturbation.
class FuzzYield {
 public:
  static constexpr std::uint64_t kYieldDenominator = 4;

  static void set_seed(std::uint64_t seed) {
    tls_enabled() = seed != 0;
    tls_rng() = Xoshiro256ss(seed);
  }

  static void maybe_yield() {
    if (!tls_enabled()) return;
    if (tls_rng().next_below(kYieldDenominator) == 0) {
      std::this_thread::yield();
    }
  }

 private:
  static bool& tls_enabled() {
    thread_local bool enabled = false;
    return enabled;
  }
  static Xoshiro256ss& tls_rng() {
    thread_local Xoshiro256ss rng(1);
    return rng;
  }
};

namespace detail {

template <typename T>
class FuzzAtomic {
 public:
  FuzzAtomic() noexcept : value_{} {}
  /* implicit */ FuzzAtomic(T v) noexcept : value_(v) {}

  FuzzAtomic(const FuzzAtomic&) = delete;
  FuzzAtomic& operator=(const FuzzAtomic&) = delete;

  // Orders are MANDATORY (no seq_cst default), mirroring sim::Atomic: the
  // fuzz build must exercise exactly the orders the real build runs, not a
  // silently-upgraded seq_cst version of them.
  T load(std::memory_order mo) const noexcept {
    FuzzYield::maybe_yield();
    return value_.load(mo);
  }

  void store(T v, std::memory_order mo) noexcept {
    FuzzYield::maybe_yield();
    value_.store(v, mo);
  }

  T exchange(T v, std::memory_order mo) noexcept {
    FuzzYield::maybe_yield();
    return value_.exchange(v, mo);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo) noexcept {
    FuzzYield::maybe_yield();
    return value_.compare_exchange_strong(expected, desired, mo);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order succ,
                               std::memory_order fail) noexcept {
    FuzzYield::maybe_yield();
    return value_.compare_exchange_strong(expected, desired, succ, fail);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo) noexcept {
    FuzzYield::maybe_yield();
    return value_.compare_exchange_weak(expected, desired, mo);
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order succ,
                             std::memory_order fail) noexcept {
    FuzzYield::maybe_yield();
    return value_.compare_exchange_weak(expected, desired, succ, fail);
  }

  T fetch_add(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    FuzzYield::maybe_yield();
    return value_.fetch_add(v, mo);
  }

  T fetch_sub(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    FuzzYield::maybe_yield();
    return value_.fetch_sub(v, mo);
  }

  T fetch_or(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    FuzzYield::maybe_yield();
    return value_.fetch_or(v, mo);
  }

  T fetch_and(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    FuzzYield::maybe_yield();
    return value_.fetch_and(v, mo);
  }

  // No operator T() / operator=: implicit conversions would reintroduce
  // the seq_cst default this model exists to forbid.

 private:
  std::atomic<T> value_;
};

}  // namespace detail

struct TestMemory {
  template <typename T>
  using Atomic = detail::FuzzAtomic<T>;

  static constexpr bool kSimulated = false;

  static void charge(std::uint64_t /*cycles*/) noexcept {}
};

}  // namespace oll
