// Cache-line geometry and padding helpers.
//
// Every shared word a lock algorithm spins on or CASes must live on its own
// cache line, or the coherence traffic the paper is about to measure gets
// polluted by false sharing.  All lock modules in this repository use the
// helpers below rather than sprinkling alignas() by hand.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oll {

// Hardware destructive interference size.  We deliberately hard-code 64/128
// rather than using std::hardware_destructive_interference_size, whose value
// is an ABI hazard (it may differ between TUs compiled with different
// tuning flags).  128 covers adjacent-line prefetchers on x86.
inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kFalseSharingRange = 128;

// A T padded out to occupy an integral number of false-sharing ranges and
// aligned to one, so that two adjacent CacheAligned<T> never share a line.
template <typename T>
struct alignas(kFalseSharingRange) CacheAligned {
  T value{};

  CacheAligned() = default;

  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(CacheAligned<char>) == kFalseSharingRange);
static_assert(sizeof(CacheAligned<char>) == kFalseSharingRange);

// Trailing padding that rounds a struct whose hot fields come first up to a
// full false-sharing range.  Usage:
//   struct Node { Hot hot; Pad<sizeof(Hot)> pad_; };
template <std::size_t UsedBytes>
struct Pad {
  static constexpr std::size_t kPadBytes =
      (UsedBytes % kFalseSharingRange == 0)
          ? kFalseSharingRange
          : kFalseSharingRange - (UsedBytes % kFalseSharingRange);
  char pad[kPadBytes];
};

}  // namespace oll
