#include "platform/lock_registry.hpp"

#if OLL_REGISTRY

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <tuple>

namespace oll {

namespace registry_internal {
std::atomic<std::uint32_t> g_census_on{0};
std::atomic<std::uint32_t> g_census_epoch{0};
std::atomic<std::uint64_t> g_coarse_now{0};
thread_local std::uint32_t t_current_site = 0;
}  // namespace registry_internal

namespace {

// One registry node per *registration*.  Nodes are immortal: once linked
// into the all-nodes list they are never unlinked or freed, only marked
// dead and recycled through a free list.  That makes the sampler's walk
// safe without hazard pointers or epochs — the only lifetime it must
// protect is the registered lock object's, which the pin protocol below
// covers.
//
// state word: bit 0 = dead, bits 1.. = pin count (in units of 2).
//   sample:      fetch_add(2, acquire); if dead, fetch_sub(2) and skip;
//                else read payload, fetch_sub(2, release).
//   deregister:  fetch_or(1, acq_rel) then spin until state == 1 (dead,
//                no pins).  After that no sampler can reach the payload:
//                new pinners see the dead bit and back off.
//   register:    fetch_and(~1, release) — clear ONLY the dead bit.  A
//                sampler may be mid-back-off on this very node (it pinned,
//                saw dead, and has not yet fetch_sub'd); an unconditional
//                store(0) would erase that transient pin and the back-off
//                decrement would underflow the count, wedging the next
//                deregistration's drain loop forever.
struct Node {
  std::atomic<std::uint64_t> state{1};  // born dead; resurrected on register
  std::atomic<Node*> next{nullptr};     // all-nodes link, immutable once set
  Node* free_next = nullptr;            // free-list link, guarded by g_reg_mu

  // Payload: plain fields, written only while dead (exclusive) and
  // published by the release store that clears the dead bit.
  std::uint64_t id = 0;
  const char* name = "?";
  const char* kind = "?";
  LockSite site{};
  const void* obj = nullptr;
  RegistryStatsFn stats_fn = nullptr;
  const ContentionCensus* census = nullptr;
};

std::atomic<Node*> g_head{nullptr};  // all nodes ever created (push-only)
std::atomic<std::uint64_t> g_next_id{1};
std::atomic<std::uint64_t> g_total{0};
std::atomic<std::size_t> g_live{0};

// Control plane only (register/deregister recycle path).  Samplers never
// take it, so telemetry cannot stall lock creation and vice versa — the
// hot sample walk stays lock-free.
std::mutex g_reg_mu;
Node* g_free = nullptr;  // dead nodes available for reuse

// Graveyard: final raw counters of deregistered locks, aggregated by
// (name, kind) under g_reg_mu.  Deregistration reads stats_fn one last
// time while the lock object is still alive, so the aggregate is exact —
// unlike a telemetry baseline, which is only as fresh as the last tick.
std::vector<RetiredLockStats>* g_graveyard = nullptr;  // leaked, never freed

constexpr std::uint64_t kDeadBit = 1;
constexpr std::uint64_t kPinUnit = 2;

// Deregistration drain bounds (~LockRegistration): yield-spins before
// falling back to 1 ms sleeps, sleep time before the first starvation
// warning, and the re-warn interval after it.
constexpr std::uint32_t kDeregSpinBudget = 4096;
constexpr std::uint64_t kDeregWarnInitialMs = 100;
constexpr std::uint64_t kDeregRewarnMs = 1000;

// Per-site contention table.  Fixed capacity, append-only: a site id is an
// index+1 into this array, handed out once per OLL_LOCK_SITE() expansion.
struct SiteEntry {
  std::atomic<const char*> file{nullptr};  // publish gate: non-null = ready
  std::atomic<int> line{0};
  std::atomic<std::uint64_t> wait_samples{0};
  std::atomic<std::uint64_t> stalls{0};
};
SiteEntry g_sites[kMaxLockSites];
std::atomic<std::uint32_t> g_site_next{0};

std::atomic<std::uint32_t> g_census_refs{0};

}  // namespace

namespace registry_internal {
void note_site_stall(std::uint32_t site) {
  if (site == 0 || site > kMaxLockSites) return;
  g_sites[site - 1].stalls.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace registry_internal

void registry_census_enable() {
  if (g_census_refs.fetch_add(1, std::memory_order_acq_rel) == 0) {
    // New epoch before arming: slots stranded by the previous disable
    // (marks gate on g_census_on and skip cleanup while off) carry an
    // older stamp and are ignored by this epoch's snapshots.
    registry_internal::g_census_epoch.fetch_add(1,
                                                std::memory_order_relaxed);
    registry_internal::g_census_on.store(1, std::memory_order_seq_cst);
  }
}

void registry_census_disable() {
  if (g_census_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    registry_internal::g_census_on.store(0, std::memory_order_seq_cst);
  }
}

void registry_set_coarse_now(std::uint64_t now_ns) {
  registry_internal::g_coarse_now.store(now_ns, std::memory_order_relaxed);
}

std::uint32_t register_lock_site(const char* file, int line) {
  const std::uint32_t idx =
      g_site_next.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxLockSites) return 0;  // table full: fall back to untagged
  SiteEntry& e = g_sites[idx];
  e.line.store(line, std::memory_order_relaxed);
  e.file.store(file, std::memory_order_release);
  return idx + 1;
}

void lock_site_add_wait_sample(std::uint32_t site) {
  if (site == 0 || site > kMaxLockSites) return;
  g_sites[site - 1].wait_samples.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LockSiteSample> lock_site_table() {
  const std::uint32_t n = std::min(
      g_site_next.load(std::memory_order_acquire), kMaxLockSites);
  std::vector<LockSiteSample> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const SiteEntry& e = g_sites[i];
    LockSiteSample s;
    s.file = e.file.load(std::memory_order_acquire);
    if (s.file == nullptr) {
      // Slot claimed but not yet published by a racing register; report a
      // placeholder so ids stay positional.
      s.file = "?";
    }
    s.line = e.line.load(std::memory_order_relaxed);
    s.wait_samples = e.wait_samples.load(std::memory_order_relaxed);
    s.stalls = e.stalls.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

LockRegistration::LockRegistration(const char* name, const char* kind,
                                   LockSite site, const void* obj,
                                   RegistryStatsFn stats_fn,
                                   const ContentionCensus* census) {
  Node* n = nullptr;
  {
    std::lock_guard<std::mutex> g(g_reg_mu);
    if (g_free != nullptr) {
      n = g_free;
      g_free = n->free_next;
      n->free_next = nullptr;
    }
  }
  const bool fresh = (n == nullptr);
  if (fresh) n = new Node;

  // Dead (exclusive) — fill the payload with plain stores.
  n->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  n->name = name != nullptr ? name : "?";
  n->kind = kind != nullptr ? kind : "?";
  n->site = site;
  n->obj = obj;
  n->stats_fn = stats_fn;
  n->census = census;

  if (fresh) {
    // Link into the all-nodes list before resurrecting, so a sampler that
    // finds the node sees either dead or the fully-published payload.
    Node* head = g_head.load(std::memory_order_relaxed);
    do {
      n->next.store(head, std::memory_order_relaxed);
    } while (!g_head.compare_exchange_weak(head, n,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  }

  // Resurrect: clear the dead bit, publishing the payload.  Must preserve
  // the pin count — a sampler that pinned the dead node may still be
  // backing off, and its pending fetch_sub must stay balanced.
  n->state.fetch_and(~kDeadBit, std::memory_order_release);
  g_total.fetch_add(1, std::memory_order_relaxed);
  g_live.fetch_add(1, std::memory_order_relaxed);
  node_ = n;
}

LockRegistration::~LockRegistration() {
  if (node_ == nullptr) return;
  Node* n = static_cast<Node*>(node_);
  // Final stats read, while the lock object is certainly alive (we run
  // before the holder's other members are destroyed).
  LockStatsSnapshot last{};
  const bool have_last = n->stats_fn != nullptr;
  if (have_last) last = n->stats_fn(n->obj);
  // Mark dead; late pinners will see the bit and back off without touching
  // the payload.
  n->state.fetch_or(kDeadBit, std::memory_order_acq_rel);
  // Drain in-flight pins: a sampler may be inside stats_fn(obj) right now,
  // and obj dies when our holder's destructor proceeds past us.  The WAIT
  // is necessarily unbounded (proceeding while pinned is a use-after-free),
  // but the SPINNING is not: after a short yield budget we escalate to
  // millisecond sleeps and a loud watchdog-style warning naming the lock,
  // so a wedged or descheduled sampler shows up in stderr instead of as an
  // anonymous 100%-CPU core.  Re-warns once a second while still blocked.
  {
    std::uint64_t state;
    std::uint32_t spins = 0;
    std::uint64_t slept_ms = 0;
    std::uint64_t next_warn_ms = kDeregWarnInitialMs;
    while ((state = n->state.load(std::memory_order_acquire)) != kDeadBit) {
      if (spins < kDeregSpinBudget) {
        ++spins;
        std::this_thread::yield();
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (++slept_ms >= next_warn_ms) {
        std::fprintf(stderr,
                     "[oll] lock registry: deregistration of \"%s\" (%s) "
                     "blocked ~%llu ms on %llu in-flight sampler pin(s); "
                     "possible stuck sampler\n",
                     n->name, n->kind,
                     static_cast<unsigned long long>(slept_ms),
                     static_cast<unsigned long long>(state / kPinUnit));
        next_warn_ms = slept_ms + kDeregRewarnMs;
      }
    }
  }
  g_live.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(g_reg_mu);
    if (have_last) {
      if (g_graveyard == nullptr) {
        g_graveyard = new std::vector<RetiredLockStats>;
      }
      auto it = std::find_if(g_graveyard->begin(), g_graveyard->end(),
                             [&](const RetiredLockStats& r) {
                               return r.name == n->name && r.kind == n->kind;
                             });
      if (it == g_graveyard->end()) {
        RetiredLockStats fresh;
        fresh.name = n->name;
        fresh.kind = n->kind;
        it = g_graveyard->insert(g_graveyard->end(), std::move(fresh));
      }
      it->stats += last;
      ++it->count;
    }
    n->free_next = g_free;
    g_free = n;
  }
  node_ = nullptr;
}

std::vector<RetiredLockStats> registry_graveyard() {
  std::lock_guard<std::mutex> g(g_reg_mu);
  if (g_graveyard == nullptr) return {};
  std::vector<RetiredLockStats> out = *g_graveyard;
  std::sort(out.begin(), out.end(),
            [](const RetiredLockStats& a, const RetiredLockStats& b) {
              return std::tie(a.name, a.kind) < std::tie(b.name, b.kind);
            });
  return out;
}

std::uint64_t LockRegistration::id() const {
  return node_ != nullptr ? static_cast<Node*>(node_)->id : 0;
}

std::vector<RegisteredLockSample> registry_sample(std::uint64_t now_ns,
                                                  bool attribute_sites) {
  std::vector<RegisteredLockSample> out;
  out.reserve(g_live.load(std::memory_order_relaxed));
  for (Node* n = g_head.load(std::memory_order_acquire); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    // Check-then-pin: skip nodes that already look dead without touching
    // their state word, so samplers only contend with a deregistration's
    // pin-drain loop when the death genuinely raced the pin below.
    if ((n->state.load(std::memory_order_acquire) & kDeadBit) != 0) {
      continue;
    }
    // Pin.  If the node was already dead, undo and move on; if it dies
    // while we hold the pin, the deregistering thread waits for us.
    const std::uint64_t prev =
        n->state.fetch_add(kPinUnit, std::memory_order_acquire);
    if ((prev & kDeadBit) != 0) {
      n->state.fetch_sub(kPinUnit, std::memory_order_relaxed);
      continue;
    }
    RegisteredLockSample s;
    s.id = n->id;
    s.name = n->name;
    s.kind = n->kind;
    s.site = n->site;
    if (n->stats_fn != nullptr) s.stats = n->stats_fn(n->obj);
    if (n->census != nullptr) {
      s.census = n->census->snapshot(now_ns);
      s.has_census = true;
      if (attribute_sites) {
        n->census->for_each_waiting(
            [](std::uint32_t, std::uint32_t site, std::uint64_t) {
              lock_site_add_wait_sample(site);
            });
      }
    }
    n->state.fetch_sub(kPinUnit, std::memory_order_release);
    out.push_back(s);
  }
  // The all-nodes list is newest-first (head pushes) with recycled nodes
  // scattered arbitrarily; present registration order instead.
  std::sort(out.begin(), out.end(),
            [](const RegisteredLockSample& a, const RegisteredLockSample& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t registry_live_count() {
  return g_live.load(std::memory_order_relaxed);
}

std::uint64_t registry_total_registrations() {
  return g_total.load(std::memory_order_relaxed);
}

}  // namespace oll

#endif  // OLL_REGISTRY
