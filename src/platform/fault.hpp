// Deterministic fault injection + schedule perturbation for lock code.
//
// Lock algorithms are full of windows that only open under adversarial
// scheduling: a CAS that must retry, a hand-off racing an abandonment, a
// holder preempted between its last store and the successor's load.  The
// hooks below let a test harness force those windows open *deterministically*
// — every decision derives from (global seed, dense thread index, per-thread
// draw counter), so a failing run is reproduced by replaying the same seed
// with the same thread placement (the fault_fuzz binary pins worker w to
// dense index w exactly like the bench harness).
//
// The hot-path contract copies platform/trace.hpp's three tiers:
//
//   * OLL_FAULTS=0 (CMake cache variable): every hook is an empty constexpr
//     inline; production binaries are bit-for-bit oblivious to the harness.
//   * Compiled in, runtime-disabled (the default): one relaxed load of a
//     process-global mode word and a predictable branch per hook.
//   * Runtime-enabled: hooks consult a per-thread splitmix64 stream and may
//     (a) report that a CAS attempt should be treated as failed, (b) yield
//     or spin briefly to shear thread interleavings apart, or (c) stall for
//     a long "preemption window" at a hand-off/release point, simulating a
//     descheduled lock holder.
//
// Sites are coarse categories, not per-callsite ids: the sweep in fault_fuzz
// varies (seed × profile), and coarse categories keep decisions independent
// of incidental code layout so seeds stay meaningful across small refactors.
//
// Concurrency contract: the three query hooks are wait-free and safe from
// any thread; fault_enable/fault_disable are quiescent-only, same as the
// trace control plane.  Injection counters are relaxed and approximate.
#pragma once

#include <cstdint>
#include <initializer_list>

#ifndef OLL_FAULTS
#define OLL_FAULTS 1
#endif

#if OLL_FAULTS
#include <atomic>
#endif

namespace oll {

enum class FaultSite : std::uint8_t {
  kCasRetry = 0,       // a compare-exchange attempt in a retry loop
  kQueueHandoff,       // granting/signalling a queued successor
  kSpinWait,           // a bounded or unbounded spin-wait iteration
  kHolderPreemption,   // lock holder about to publish a release
};

inline constexpr std::uint32_t kFaultSiteCount = 4;

inline const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kCasRetry: return "cas_retry";
    case FaultSite::kQueueHandoff: return "queue_handoff";
    case FaultSite::kSpinWait: return "spin_wait";
    case FaultSite::kHolderPreemption: return "holder_preemption";
  }
  return "?";
}

// All probabilities are in units of 1/1024 (0 = never, 1024 = always); spin
// counts are iterations of a relaxed pause loop plus a yield.
struct FaultProfile {
  const char* name = "off";
  std::uint32_t cas_fail_p = 0;    // forced CAS-failure probability
  std::uint32_t yield_p = 0;       // sched-yield probability at any site
  std::uint32_t delay_p = 0;       // short-delay probability at any site
  std::uint32_t delay_spins = 64;  // max spins of one injected delay
  std::uint32_t preempt_p = 0;     // holder-preemption window probability
  std::uint32_t preempt_spins = 4096;  // length of a preemption window
  // Parking faults (DESIGN.md §16.4), consumed by platform/park.cpp:
  std::uint32_t park_spurious_p = 0;  // park() returns without wake/grant
  std::uint32_t park_lost_p = 0;      // park() goes deaf for one slice —
                                      // real unparks in the window are lost
  std::uint32_t park_delay_p = 0;     // delayed wake: stall after a grant
  std::uint32_t park_delay_spins = 256;  // length of one delayed wake
};

// The named profiles the fault_fuzz sweep and --fault_profile understand.
//   off           — no injection (enabled-but-inert; useful as a control)
//   jitter        — light random yields/delays, no forced failures
//   cas           — aggressive forced CAS failures + mild jitter
//   preempt       — long holder-preemption windows at release points
//   chaos         — everything at once, the widest schedule net
//   park-spurious — frequent spurious park() returns (wake-with-no-grant)
//   park-lost     — parkers go deaf to wakes; the bounded-slice rearm must
//                   recover every one (progress-oracle food)
//   park-chaos    — spurious + lost + delayed wakes + mild jitter
// Declared in both build flavors (at OLL_FAULTS=0 the parser still
// validates names — so CLI flags behave identically — but the profiles it
// hands back drive no-op hooks).
FaultProfile fault_profile_jitter();
FaultProfile fault_profile_cas();
FaultProfile fault_profile_preempt();
FaultProfile fault_profile_chaos();
FaultProfile fault_profile_park_spurious();
FaultProfile fault_profile_park_lost();
FaultProfile fault_profile_park_chaos();

// Parse a profile name; returns false (and leaves *out alone) on unknown
// names.  "off" parses to the all-zero profile.
bool fault_profile_from_name(const char* name, FaultProfile* out);

struct FaultCounters {
  std::uint64_t forced_cas_fails = 0;
  std::uint64_t yields = 0;
  std::uint64_t delays = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t park_spurious = 0;
  std::uint64_t park_lost = 0;
  std::uint64_t park_delays = 0;
};

#if OLL_FAULTS

namespace fault_internal {
extern std::atomic<std::uint32_t> g_enabled;  // 0 = every hook early-outs
bool cas_should_fail(FaultSite site);
void perturb(FaultSite site);
void preempt_window(FaultSite site);
bool park_spurious();
bool park_lost();
std::uint32_t park_delay();
}  // namespace fault_internal

inline bool fault_injection_enabled() {
  return fault_internal::g_enabled.load(std::memory_order_relaxed) != 0;
}

// True iff the calling CAS-retry iteration should be treated as a failed
// attempt (reload and retry) even if the real CAS would have succeeded.
// Callers must only consult this where a genuine spurious failure
// (compare_exchange_weak) would also have been handled.
inline bool fault_cas_fail(FaultSite site) {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return fault_internal::cas_should_fail(site);
}

// Maybe yield or stall briefly; shears apart lock-step interleavings.
inline void fault_perturb(FaultSite site) {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) return;
  fault_internal::perturb(site);
}

// Maybe stall for a long window.  Placed where a lock holder is about to
// publish a release/hand-off, this simulates the holder being preempted
// with waiters already committed to waiting.
inline void fault_preempt_point(FaultSite site) {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) return;
  fault_internal::preempt_window(site);
}

// --- parking faults (consumed by platform/park.cpp) -----------------------
// Same per-thread deterministic streams as the hooks above: (seed, dense
// index, draw counter) fully determine the park/wake fault schedule.

// True iff this park() call should return kSpurious without sleeping.
inline bool fault_park_spurious() {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return fault_internal::park_spurious();
}

// True iff this park() call should go deaf for one bounded slice (real
// unparks in that window are dropped; the slice re-check recovers).
inline bool fault_park_lost() {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return fault_internal::park_lost();
}

// Spins to stall after a grant-carrying wake (0 = none) — models the
// scheduler delaying a woken thread's first run.
inline std::uint32_t fault_park_delay() {
  if (fault_internal::g_enabled.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  return fault_internal::park_delay();
}

// --- control plane (quiescent-only) ---------------------------------------

// Arm injection with `profile` and a global seed.  Per-thread decision
// streams are derived from (seed, dense thread index) and reset here, so
// two runs with identical seeds and thread placement draw identically.
void fault_enable(const FaultProfile& profile, std::uint64_t seed);
void fault_disable();

// Relaxed snapshot of injections performed since fault_enable.
FaultCounters fault_counters();

#else  // OLL_FAULTS == 0: every hook is an empty inline, no code at all.

inline constexpr bool fault_injection_enabled() { return false; }
inline constexpr bool fault_cas_fail(FaultSite) { return false; }
inline constexpr void fault_perturb(FaultSite) {}
inline constexpr void fault_preempt_point(FaultSite) {}
inline constexpr bool fault_park_spurious() { return false; }
inline constexpr bool fault_park_lost() { return false; }
inline constexpr std::uint32_t fault_park_delay() { return 0; }
inline void fault_enable(const FaultProfile&, std::uint64_t) {}
inline void fault_disable() {}
inline FaultCounters fault_counters() { return {}; }

inline FaultProfile fault_profile_jitter() { return {"jitter"}; }
inline FaultProfile fault_profile_cas() { return {"cas"}; }
inline FaultProfile fault_profile_preempt() { return {"preempt"}; }
inline FaultProfile fault_profile_chaos() { return {"chaos"}; }
inline FaultProfile fault_profile_park_spurious() { return {"park-spurious"}; }
inline FaultProfile fault_profile_park_lost() { return {"park-lost"}; }
inline FaultProfile fault_profile_park_chaos() { return {"park-chaos"}; }

inline bool fault_profile_from_name(const char* name, FaultProfile* out) {
  for (const char* known : {"off", "jitter", "cas", "preempt", "chaos",
                            "park-spurious", "park-lost", "park-chaos"}) {
    const char* a = name;
    const char* b = known;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') {
      *out = FaultProfile{};
      out->name = known;
      return true;
    }
  }
  return false;
}

#endif  // OLL_FAULTS

}  // namespace oll
