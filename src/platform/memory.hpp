// Memory-model policy: the lock templates are parameterized on a policy that
// supplies the atomic type they run on.
//
//   * RealMemory  — plain std::atomic; the locks run natively.
//   * sim::SimMemory (src/sim/memory.hpp) — instrumented atomics that charge
//     virtual cycles against a simulated multi-chip cache-coherence model,
//     used to reproduce the paper's 256-hardware-thread results on a small
//     host (see DESIGN.md §3).
//
// A policy provides:
//   template <class T> using Atomic = ...;   // std::atomic-compatible
//   static void charge(uint64_t cycles);     // account virtual work (no-op
//                                            // for RealMemory)
#pragma once

#include <atomic>
#include <cstdint>

namespace oll {

struct RealMemory {
  template <typename T>
  using Atomic = std::atomic<T>;

  static constexpr bool kSimulated = false;

  static void charge(std::uint64_t /*cycles*/) noexcept {}
};

}  // namespace oll
