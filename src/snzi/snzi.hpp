// Plain SNZI (Ellen–Lev–Luchangco–Moir, PODC'07) as used by the paper's
// §2.2 discussion: Arrive / Depart / Query with no Close.
//
// Implemented as a C-SNZI that is never closed — the closable algorithm in
// csnzi.hpp degenerates to exactly the simplified Lev et al. SNZI when the
// OPEN bit never changes, so there is one tree algorithm to test and tune.
#pragma once

#include "platform/memory.hpp"
#include "snzi/csnzi.hpp"

namespace oll {

template <typename M = RealMemory>
class Snzi {
 public:
  using Ticket = typename CSnzi<M>::Ticket;

  explicit Snzi(const CSnziOptions& opts = {}) : impl_(opts) {}

  // Arrive always succeeds on a plain SNZI.
  Ticket arrive() {
    Ticket t = impl_.arrive();
    OLL_DCHECK(t.arrived());
    return t;
  }

  // Requires a surplus (ticket from a prior arrive).
  void depart(const Ticket& t) { impl_.depart(t); }

  // True iff there have been more arrivals than departures.
  bool query() const { return impl_.query().nonzero; }

  std::uint64_t root_word() const { return impl_.root_word(); }
  bool tree_allocated() const { return impl_.tree_allocated(); }

 private:
  CSnzi<M> impl_;
};

}  // namespace oll
