// C-SNZI: closable scalable nonzero indicator (paper §2, Figure 2).
//
// A SNZI object lets threads Arrive and Depart and answers only "is there a
// surplus of arrivals?".  The closable variant adds Open/Close so a writer
// can atomically forbid further arrivals — the key to the OLL reader-writer
// locks: readers Arrive/Depart, writers Close/Open.
//
// Implementation follows the simplified Lev et al. algorithm reproduced in
// Figure 2 of the paper:
//
//   * The root is a single CAS-able 64-bit word holding the surplus and the
//     OPEN/CLOSED bit.  Per the tuning note in §5.1, the root keeps TWO
//     counters: one for arrivals made directly at the root and one for
//     arrivals propagated up from the tree.  This both implements the
//     root-contention optimization the authors used and provides exactly the
//     information needed for write-upgrade (§3.2.1).
//   * Below the root sits an optional tree of counter nodes.  An Arrive at a
//     node only touches its parent when the node's count might change from
//     zero ("first arrival"), and symmetrically for Depart ("last
//     departure"), so under heavy read contention most arrivals stay on a
//     leaf the arriving thread effectively owns.
//   * A thread Arrives at the root unless it keeps losing the root CAS or
//     sees that other threads are already using the tree
//     (ShouldArriveAtTree, §5.1); the tree is allocated lazily on first use
//     so uncontended C-SNZIs pay no space (§2.2).
//   * Threads are mapped onto leaves by a topology-derived LeafMap
//     (platform/topology.hpp): SMT siblings sharing an L1 share a leaf by
//     default, so the leaf line ping-pongs only between nearly-free
//     neighbours.  The seed's static `leaf_shift` survives as an override.
//   * Sticky arrivals: once an adaptive thread has switched to the tree it
//     goes straight to its cached leaf for the next `sticky_arrivals`
//     arrivals without loading the root word at all.  This is legal by the
//     §2.2 linearization rule — a tree arrival fails only at a CLOSED root
//     with zero surplus, a condition tree_arrive() itself detects when the
//     leaf's first arrival propagates — so the root check was always
//     advisory on this path.  Hysteresis: a sticky window that propagated
//     to the root more than `sticky_decay_propagations` times means the
//     leaf keeps draining (reader traffic is low), so the thread decays
//     back to direct root arrivals and the uncontended 1-CAS fast path is
//     restored.  At read saturation the leaf never drains and the window
//     re-arms for free, but only `sticky_rearm_windows` times in a row:
//     the next re-arm re-reads the root and refuses to re-arm if the
//     C-SNZI has been closed.  Without that bound, sticky readers sharing
//     a hot leaf could keep arriving forever after Close — each success
//     keeps the leaf nonzero for the next — and a writer waiting for the
//     surplus to drain would starve.  The periodic read (one load per
//     `sticky_rearm_windows * sticky_arrivals` arrivals, of a line that
//     stays in shared state) caps a closing writer's wait at one window
//     burst per reader while keeping steady-state root traffic ~zero.
//
// Linearization subtlety faithfully preserved (§2.2): an arrival through the
// tree may increment a leaf whose count is nonzero without touching the
// root, even if a Close has happened in between; such an Arrive linearizes
// at the earlier point where the thread saw the C-SNZI open.  Consequently a
// tree arrival propagating to the root only fails when the root is CLOSED
// with zero total surplus.  Sticky arrivals lean on exactly this rule: the
// "saw the C-SNZI open" point is the root access that armed the window.
//
// Root width (DESIGN.md §15): by default the root is the single CAS-able
// 64-bit word above.  CSnziOptions::dwcas_root selects a 16-byte fused root
// packing {count word, state, version} and updated with one double-width
// CAS (x86-64 cmpxchg16b through libatomic; CASP on AArch64): every
// OPEN<->CLOSED flip stamps a fresh version in the same atomic step that
// moves the counts, so a reader's count CAS can never succeed blindly
// across a close/open pair (the open-bit ABA the 64-bit root tolerates),
// and state+version observation is one load instead of a multi-word read
// protocol.  When the build lacks 16-byte atomics — or OLL_DWCAS=0, the
// forced "-mcx16-less" CI leg — the option silently degrades to the
// pointer-width root; dwcas_active() reports the outcome and
// root_version() reads 0 in fallback mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/fault.hpp"
#include "platform/memory.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "platform/trace.hpp"
#include "snzi/csnzi_stats.hpp"

// Build-time capability for the 16-byte root: the OLL_DWCAS kill switch
// (CMake cache var; the link probe there downgrades it when 16-byte atomics
// will not link) plus an __int128 toolchain.  Kept as a macro so the
// fallback build contains no 16-byte atomic instantiation at all.
#ifndef OLL_DWCAS
#define OLL_DWCAS 1
#endif
#if OLL_DWCAS && defined(__SIZEOF_INT128__)
#define OLL_DWCAS_CAPABLE 1
#else
#define OLL_DWCAS_CAPABLE 0
#endif

namespace oll {

// Where Arrive should try first; kAdaptive is the paper's policy, the other
// two exist for the ablation benchmarks.
enum class ArrivalPolicy : std::uint8_t {
  kAdaptive,    // root until contention is observed (§5.1)
  kAlwaysRoot,  // degenerate: central counter
  kAlwaysTree,  // always pay the tree path
};

struct CSnziOptions {
  // Number of leaf counter nodes (rounded up to a power of two).  64 leaves
  // comfortably spread 256 threads, matching the evaluation machine.
  std::uint32_t leaves = 64;
  // Levels of counter nodes below the root.  1 reproduces Figure 2's
  // root+leaves shape; deeper trees trade latency for less root traffic.
  std::uint32_t levels = 1;
  // Fan-in of internal levels when levels > 1.
  std::uint32_t fanout = 8;
  // Consecutive root-CAS failures before switching to the tree.
  std::uint32_t root_cas_fail_threshold = 2;
  // Allocate the tree on first tree arrival instead of up front (§2.2).
  bool lazy_tree = true;
  ArrivalPolicy policy = ArrivalPolicy::kAdaptive;
  // Static fallback locality: leaf index = (thread_index >> leaf_shift)
  // mod leaves.  Only used when topology_mapping resolves to kStaticShift;
  // setting it nonzero under kAuto selects kStaticShift for backward
  // compatibility.  normalize() clamps it so the shift cannot collapse
  // every registerable thread onto leaf 0 (unless leaves == 1, which is an
  // explicit request for a single leaf).
  std::uint32_t leaf_shift = 0;
  // How thread indices map onto leaves.  kAuto resolves to kSmtCluster on
  // the topology below (or kStaticShift when leaf_shift was set).
  LeafMapping topology_mapping = LeafMapping::kAuto;
  // Topology the mapping is derived from; nullptr means Topology::system().
  // The simulator passes its synthetic T5440 shape instead.  Must outlive
  // the C-SNZI.
  const Topology* topology = nullptr;
  // Sticky window length: tree arrivals made without a root read after an
  // adaptive switch to the tree.  0 disables the sticky fast path (every
  // arrival re-reads the root, the seed behaviour).
  std::uint32_t sticky_arrivals = 64;
  // Hysteresis: decay back to direct root arrivals when a sticky window
  // propagated to the root more than this many times (the leaf kept
  // draining, so tree arrivals are paying root traffic anyway).
  std::uint32_t sticky_decay_propagations = 8;
  // Consecutive root-free window re-arms allowed before a re-arm must
  // re-read the root word and drop the window if the C-SNZI was closed.
  // Bounds how long sticky readers on a shared hot leaf can keep a closing
  // writer waiting (see file comment); 0 checks the root on every re-arm.
  std::uint32_t sticky_rearm_windows = 4;
  // Upper bound on dense thread indices that will use this instance; sizes
  // the per-thread state array.  0 means kMaxThreads; locks plumb their own
  // max_threads through.
  std::uint32_t max_threads = 0;
  // Fused 16-byte {count, state, version} root (see file comment).
  // normalize() clears it when the build cannot do a 16-byte CAS, so callers
  // may request it unconditionally; dwcas_active() reports the outcome.
  bool dwcas_root = false;
};

// Result of Query: (surplus != 0, state == OPEN).
struct SnziQuery {
  bool nonzero;
  bool open;
};

template <typename M = RealMemory>
class CSnzi {
 public:
  // --- root word layout -------------------------------------------------
  // bits [0, 28)   direct-arrival surplus
  // bits [28, 56)  tree-propagated surplus
  // bit  56        OPEN flag
  static constexpr std::uint64_t kDirectShift = 0;
  static constexpr std::uint64_t kTreeShift = 28;
  static constexpr std::uint64_t kCountMask = (1ULL << 28) - 1;
  static constexpr std::uint64_t kOpenBit = 1ULL << 56;
  static constexpr std::uint64_t kDirectOne = 1ULL << kDirectShift;
  static constexpr std::uint64_t kTreeOne = 1ULL << kTreeShift;

  static constexpr std::uint64_t direct_count(std::uint64_t w) noexcept {
    return (w >> kDirectShift) & kCountMask;
  }
  static constexpr std::uint64_t tree_count(std::uint64_t w) noexcept {
    return (w >> kTreeShift) & kCountMask;
  }
  static constexpr std::uint64_t total_count(std::uint64_t w) noexcept {
    return direct_count(w) + tree_count(w);
  }
  static constexpr bool is_open(std::uint64_t w) noexcept {
    return (w & kOpenBit) != 0;
  }
  static constexpr std::uint64_t make_root(std::uint64_t direct,
                                           std::uint64_t tree,
                                           bool open) noexcept {
    return (direct << kDirectShift) | (tree << kTreeShift) |
           (open ? kOpenBit : 0);
  }

  // --- tree node ---------------------------------------------------------
  struct alignas(kFalseSharingRange) Node {
    typename M::template Atomic<std::uint64_t> cnt{0};
    Node* parent = nullptr;  // nullptr => parent is the root word
  };

  // Opaque handle naming the node an Arrive landed on; must be passed back
  // to Depart.  A default-constructed / failed ticket answers false to
  // arrived().
  class Ticket {
   public:
    Ticket() = default;

    bool arrived() const noexcept { return kind_ != Kind::kNone; }
    bool is_direct() const noexcept { return kind_ == Kind::kRoot; }

   private:
    friend class CSnzi;
    enum class Kind : std::uint8_t { kNone, kRoot, kNode };
    explicit Ticket(Kind k, Node* n = nullptr) : kind_(k), node_(n) {}

    Kind kind_ = Kind::kNone;
    Node* node_ = nullptr;
  };

  explicit CSnzi(const CSnziOptions& opts = {})
      : opts_(normalize(opts)),
        leaf_map_(opts_.topology, opts_.topology_mapping, opts_.leaves,
                  opts_.leaf_shift) {
    use_dwcas_ = opts_.dwcas_root;
    root_.store(make_root(0, 0, true), std::memory_order_relaxed);
#if OLL_DWCAS_CAPABLE
    root16_.store(pack16(make_root(0, 0, true), 0),
                  std::memory_order_relaxed);
#endif
    if (!opts_.lazy_tree) ensure_tree();
  }

  ~CSnzi() {
    delete[] tree_storage_.load(std::memory_order_acquire);
    delete[] thread_state_.load(std::memory_order_acquire);
  }

  CSnzi(const CSnzi&) = delete;
  CSnzi& operator=(const CSnzi&) = delete;

  // --- C-SNZI operations (Figure 1 specification) ------------------------

  // Arrive: increments the surplus iff the C-SNZI is open (with the tree
  // linearization subtlety described above).  Returns a ticket; a failed
  // arrival (closed C-SNZI) returns a ticket with arrived() == false.
  Ticket arrive() {
    ThreadState& ts = thread_state();
    if (ts.sticky > 0) {
      // Sticky fast path: recently switched to the tree; go straight to the
      // cached leaf.  No root access of any kind happens here unless the
      // leaf's count is zero (first arrival propagates; see file comment).
      --ts.sticky;
      Node* leaf = ts.leaf;
      if (tree_arrive(leaf, &ts)) {
        bump(ts.tree_arrivals);
        bump(ts.sticky_arrivals);
        if (ts.sticky == 0) rearm_or_decay(ts);
        return Ticket{Ticket::Kind::kNode, leaf};
      }
      // Closed with zero surplus: the window is over either way.
      ts.sticky = 0;
      ts.window_propagations = 0;
      return Ticket{};
    }
    std::uint32_t root_failures = 0;
    RootView old = root_load(std::memory_order_acquire);
    bump(ts.root_reads);
    while (true) {
      if (!is_open(old.word)) return Ticket{};
      if (!should_arrive_at_tree(old.word, root_failures)) {
        if (fault_cas_fail(FaultSite::kCasRetry)) {
          // Injected spurious failure: legal wherever compare_exchange_weak
          // may fail spuriously.  Reload and retry like a genuine miss.
          old = root_load(std::memory_order_acquire);
          ++root_failures;
          bump(ts.root_cas_failures);
          continue;
        }
        if (root_cas_weak(old, old.word + kDirectOne)) {
          bump(ts.direct_arrivals);
          return Ticket{Ticket::Kind::kRoot};
        }
        ++root_failures;  // the failed CAS reloaded `old` for us
        bump(ts.root_cas_failures);
      } else {
        Node* leaf = leaf_for_thread(ts);
        arm_sticky(ts, leaf);
        if (tree_arrive(leaf, &ts)) {
          bump(ts.tree_arrivals);
          return Ticket{Ticket::Kind::kNode, leaf};
        }
        ts.sticky = 0;
        ts.window_propagations = 0;
        return Ticket{};
      }
    }
  }

  // Depart: decrements the surplus.  Returns false iff the resulting state
  // is CLOSED with zero surplus (the "last departure" a lock uses to detect
  // that it must hand over to a waiting writer).  Requires a ticket from a
  // successful arrival (or direct_ticket() backed by open_with_arrivals).
  bool depart(const Ticket& t) {
    OLL_DCHECK(t.arrived());
    if (t.kind_ == Ticket::Kind::kRoot) return root_depart_direct();
    return tree_depart(t.node_);
  }

  // Query: (surplus > 0, open).  A single root read — the whole point of
  // SNZI is that this is accurate without touching the tree.
  SnziQuery query() const {
    const std::uint64_t w = root_load(std::memory_order_acquire).word;
    return SnziQuery{total_count(w) > 0, is_open(w)};
  }

  // Close: transitions OPEN -> CLOSED regardless of surplus.  Returns true
  // iff the C-SNZI was open with zero surplus (i.e. the caller atomically
  // "acquired" the empty indicator).
  bool close() {
    RootView old = root_load(std::memory_order_acquire);
    while (true) {
      if (!is_open(old.word)) return false;
      const std::uint64_t desired = old.word & ~kOpenBit;
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        old = root_load(std::memory_order_acquire);
        continue;
      }
      if (root_cas_weak(old, desired)) {
        trace_event(TraceEventType::kCsnziClose, this);
        return total_count(desired) == 0;
      }
    }
  }

  // CloseIfEmpty (§2.1): close only when open with zero surplus.  Returns
  // true iff the state changed OPEN->CLOSED (writers use this as their
  // uncontended fast path).
  bool close_if_empty() {
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      // The fused root needs the current version in `expected`, so this
      // path pays one root load the pointer-width blind CAS below avoids;
      // in exchange the successful close stamps version+1 in the same
      // 16-byte CAS that flips the state.
      unsigned __int128 cur = root16_.load(std::memory_order_acquire);
      while (lo64(cur) == make_root(0, 0, true)) {
        if (root16_.compare_exchange_weak(
                cur, pack16(make_root(0, 0, false), hi64(cur) + 1),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          trace_event(TraceEventType::kCsnziClose, this);
          return true;
        }
      }
      return false;
    }
#endif
    std::uint64_t old = make_root(0, 0, true);
    if (root_.compare_exchange_strong(old, make_root(0, 0, false),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      trace_event(TraceEventType::kCsnziClose, this);
      return true;
    }
    return false;
  }

  // Open: requires CLOSED with zero surplus (lock is write-held by caller).
  void open() {
    OLL_DCHECK(!is_open(root_load(std::memory_order_relaxed).word));
    OLL_DCHECK(total_count(root_load(std::memory_order_relaxed).word) == 0);
    trace_event(TraceEventType::kCsnziOpen, this);
    root_store_exclusive(make_root(0, 0, true));
  }

  // OpenWithArrivals (§2.1): atomically open, perform `count` arrivals
  // (credited to the direct counter — the waiting readers were handed
  // direct tickets), and optionally close again (writers still queued).
  // Requires CLOSED with zero surplus.
  void open_with_arrivals(std::uint64_t count, bool then_close) {
    OLL_DCHECK(!is_open(root_load(std::memory_order_relaxed).word));
    OLL_DCHECK(total_count(root_load(std::memory_order_relaxed).word) == 0);
    OLL_DCHECK(count <= kCountMask);
    if (!then_close) trace_event(TraceEventType::kCsnziOpen, this);
    root_store_exclusive(make_root(count, 0, !then_close));
  }

  // A ticket departing directly from the root; used by lock code when a
  // releasing writer pre-arrives on behalf of sleeping readers
  // (OpenWithArrivals), who then each depart with a direct ticket.
  Ticket direct_ticket() const { return Ticket{Ticket::Kind::kRoot}; }

  // Abort support (timed acquisition, DESIGN.md §11): forget the calling
  // thread's sticky window and cached leaf in this instance.  A reader that
  // abandons a timed wait may release its dense index immediately after
  // returning (worker teardown, ScopedThreadIndex destruction), and the
  // index_epoch recycling guard in thread_state() only fires when the NEXT
  // holder of the index touches this instance through arrive() — an armed
  // window must not sit in the slot counting on that.  Draining here makes
  // abandonment self-contained: the slot an abandoning thread leaves behind
  // is indistinguishable from a fresh one.
  void drain_thread_sticky() {
    ThreadState* arr = thread_state_.load(std::memory_order_acquire);
    if (arr == nullptr) return;
    const std::uint32_t idx = this_thread_index();
    if (idx >= opts_.max_threads) return;
    ThreadState& ts = arr[idx];
    ts.epoch = ThreadRegistry::index_epoch(idx);
    ts.leaf = nullptr;
    ts.sticky = 0;
    ts.window_propagations = 0;
    ts.root_free_rearms = 0;
  }

  // --- write-upgrade support (§3.2.1) ------------------------------------
  //
  // try_upgrade_exclusive: the caller holds one arrival (ticket t).  If it
  // is the *sole* surplus and the C-SNZI is open, atomically close with zero
  // surplus (the caller now "owns" the closed indicator — write-acquired in
  // lock terms) and return true.  Otherwise return false; on return the
  // caller still holds exactly one arrival, though t may have been traded
  // for a direct-root ticket (the paper's counter trade).
  bool try_upgrade_exclusive(Ticket& t) {
    OLL_DCHECK(t.arrived());
    if (t.kind_ == Ticket::Kind::kNode) {
      // Trade the tree arrival for a direct arrival at the root, then test.
      if (!root_arrive_direct()) return false;  // closed: writer waiting
      tree_depart(t.node_);  // cannot be last: our direct arrival counts
      t = Ticket{Ticket::Kind::kRoot};
    }
    // Sole holder iff direct == 1 and tree == 0.  The fused root also pins
    // the version: a close/open epoch between the load and the CAS makes
    // the upgrade fail (conservatively — the sole surplus then predates the
    // reopen), where the 64-bit word would ABA straight through.
    RootView expected{make_root(1, 0, true), 0};
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      expected.version = root_load(std::memory_order_acquire).version;
    }
#endif
    return root_cas_strong(expected, make_root(0, 0, false));
  }

  // Inverse of the above for lock downgrade: caller owns the closed, empty
  // indicator and converts it to a single direct arrival.
  Ticket downgrade_shared() {
    open_with_arrivals(1, /*then_close=*/false);
    return Ticket{Ticket::Kind::kRoot};
  }

  // --- introspection (tests / diagnostics) -------------------------------
  std::uint64_t root_word() const {
    return root_load(std::memory_order_acquire).word;
  }
  // Version stamp of the fused root: bumps exactly when the OPEN bit flips.
  // Always 0 in pointer-width mode.
  std::uint64_t root_version() const {
    return root_load(std::memory_order_acquire).version;
  }
  // Whether the 16-byte root is live (dwcas_root requested AND the build is
  // capable); false means the pointer-width fallback is running.
  bool dwcas_active() const { return use_dwcas_; }
  bool tree_allocated() const {
    return tree_storage_.load(std::memory_order_acquire) != nullptr;
  }
  std::uint32_t leaf_count() const { return opts_.leaves; }
  const CSnziOptions& options() const { return opts_; }

  // Which leaf index the mapping assigns to a dense thread index.
  std::uint32_t leaf_index_of(std::uint32_t thread_index) const {
    return leaf_map_.leaf_of(thread_index);
  }

  // Arrival-path counters summed over threads; approximate while arrivals
  // are in flight, exact at quiescence (see csnzi_stats.hpp).
  CSnziStatsSnapshot stats() const {
    CSnziStatsSnapshot total;
    const ThreadState* arr = thread_state_.load(std::memory_order_acquire);
    if (arr == nullptr) return total;
    for (std::uint32_t i = 0; i < opts_.max_threads; ++i) {
      const ThreadState& ts = arr[i];
      total.root_reads += ts.root_reads.load(std::memory_order_relaxed);
      total.direct_arrivals +=
          ts.direct_arrivals.load(std::memory_order_relaxed);
      total.tree_arrivals += ts.tree_arrivals.load(std::memory_order_relaxed);
      total.sticky_arrivals +=
          ts.sticky_arrivals.load(std::memory_order_relaxed);
      total.root_cas_failures +=
          ts.root_cas_failures.load(std::memory_order_relaxed);
      total.root_propagations +=
          ts.root_propagations.load(std::memory_order_relaxed);
      total.redundant_undos +=
          ts.redundant_undos.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  // Per-(thread, instance) state: the cached leaf and sticky window (owner
  // thread only — plain fields) plus the arrival counters (single-writer
  // relaxed atomics so stats() may read them concurrently, same scheme as
  // locks/lock_stats.hpp).  These are plain std::atomic even in simulated
  // builds: observability must not distort the virtual-time cost model.
  struct alignas(kFalseSharingRange) ThreadState {
    Node* leaf = nullptr;
    std::uint32_t sticky = 0;
    std::uint32_t window_propagations = 0;
    std::uint32_t root_free_rearms = 0;
    // Registration epoch of the dense thread index this slot was last used
    // under (platform/thread_id.hpp).  Dense indices are recycled when a
    // thread exits (or when the harness re-pins a new worker via
    // ScopedThreadIndex); a successor must not inherit its predecessor's
    // armed window or cached leaf, so thread_state() resets the slot on an
    // epoch mismatch.  The cumulative stats counters survive recycling.
    std::uint32_t epoch = 0;
    std::atomic<std::uint64_t> root_reads{0};
    std::atomic<std::uint64_t> direct_arrivals{0};
    std::atomic<std::uint64_t> tree_arrivals{0};
    std::atomic<std::uint64_t> sticky_arrivals{0};
    std::atomic<std::uint64_t> root_cas_failures{0};
    std::atomic<std::uint64_t> root_propagations{0};
    std::atomic<std::uint64_t> redundant_undos{0};
  };

  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  static CSnziOptions normalize(CSnziOptions o) {
    if (o.leaves == 0) o.leaves = 1;
    // Round leaves up to a power of two for cheap masking.
    std::uint32_t p = 1;
    while (p < o.leaves) p <<= 1;
    o.leaves = p;
    if (o.levels == 0) o.levels = 1;
    if (o.fanout < 2) o.fanout = 2;
    if (o.max_threads == 0 || o.max_threads > kMaxThreads) {
      o.max_threads = kMaxThreads;
    }
    // Clamp leaf_shift: a shift that sends every thread index this instance
    // can see (bounded by the just-defaulted max_threads) to leaf 0 is
    // always a misconfiguration when more than one leaf was requested
    // (leaves == 1 is the explicit way to ask for one leaf).
    if (o.leaves > 1 && o.max_threads > 1) {
      std::uint32_t max_shift = 0;
      while (((o.max_threads - 1) >> (max_shift + 1)) != 0) ++max_shift;
      if (o.leaf_shift > max_shift) o.leaf_shift = max_shift;
    }
    if (o.topology_mapping == LeafMapping::kAuto) {
      // A caller who set leaf_shift asked for the seed's static scheme.
      o.topology_mapping = o.leaf_shift != 0 ? LeafMapping::kStaticShift
                                             : LeafMapping::kSmtCluster;
    }
    if (o.topology == nullptr) o.topology = &Topology::system();
#if !OLL_DWCAS_CAPABLE
    o.dwcas_root = false;  // pointer-width fallback (see file comment)
#endif
    return o;
  }

  // --- root access: one logical view over both widths ---------------------
  // The packed 64-bit count/state word plus the version stamp (always 0 in
  // pointer-width mode).  Every root CAS loop runs on this view so the two
  // widths share one control flow.
  struct RootView {
    std::uint64_t word;
    std::uint64_t version;
  };

#if OLL_DWCAS_CAPABLE
  static constexpr unsigned __int128 pack16(std::uint64_t word,
                                            std::uint64_t version) noexcept {
    return (static_cast<unsigned __int128>(version) << 64) | word;
  }
  static constexpr std::uint64_t lo64(unsigned __int128 v) noexcept {
    return static_cast<std::uint64_t>(v);
  }
  static constexpr std::uint64_t hi64(unsigned __int128 v) noexcept {
    return static_cast<std::uint64_t>(v >> 64);
  }
#endif

  RootView root_load(std::memory_order mo) const {
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      const unsigned __int128 v = root16_.load(mo);
      return RootView{lo64(v), hi64(v)};
    }
#endif
    return RootView{root_.load(mo), 0};
  }

  // Weak CAS on the root view; on failure `old` holds the fresh view, like
  // compare_exchange_weak.  In DWCAS mode an OPEN-bit flip stamps version+1
  // inside the same 16-byte CAS — state, count and version move in one
  // atomic step, which is the entire point of the fused root.
  bool root_cas_weak(RootView& old, std::uint64_t desired) {
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      const std::uint64_t ver =
          old.version + (is_open(old.word) != is_open(desired) ? 1 : 0);
      unsigned __int128 expected = pack16(old.word, old.version);
      if (root16_.compare_exchange_weak(expected, pack16(desired, ver),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return true;
      }
      old = RootView{lo64(expected), hi64(expected)};
      return false;
    }
#endif
    return root_.compare_exchange_weak(old.word, desired,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  bool root_cas_strong(RootView& old, std::uint64_t desired) {
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      const std::uint64_t ver =
          old.version + (is_open(old.word) != is_open(desired) ? 1 : 0);
      unsigned __int128 expected = pack16(old.word, old.version);
      if (root16_.compare_exchange_strong(expected, pack16(desired, ver),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return true;
      }
      old = RootView{lo64(expected), hi64(expected)};
      return false;
    }
#endif
    return root_.compare_exchange_strong(old.word, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  // Plain release store of a new root word; caller owns the root
  // exclusively (CLOSED with zero surplus), so no concurrent update can
  // succeed between our load of the version and the store.
  void root_store_exclusive(std::uint64_t word) {
#if OLL_DWCAS_CAPABLE
    if (use_dwcas_) {
      const unsigned __int128 cur =
          root16_.load(std::memory_order_relaxed);
      const std::uint64_t ver =
          hi64(cur) + (is_open(lo64(cur)) != is_open(word) ? 1 : 0);
      root16_.store(pack16(word, ver), std::memory_order_release);
      return;
    }
#endif
    root_.store(word, std::memory_order_release);
  }

  bool should_arrive_at_tree(std::uint64_t root_word,
                             std::uint32_t failures) const {
    switch (opts_.policy) {
      case ArrivalPolicy::kAlwaysRoot:
        return false;
      case ArrivalPolicy::kAlwaysTree:
        return true;
      case ArrivalPolicy::kAdaptive:
        // §5.1: favor direct arrivals until we lose the root CAS repeatedly
        // or see that other threads have already moved to the tree.
        return failures >= opts_.root_cas_fail_threshold ||
               tree_count(root_word) > 0;
    }
    return false;
  }

  // --- sticky window management ------------------------------------------
  void arm_sticky(ThreadState& ts, Node* leaf) {
    if (opts_.sticky_arrivals == 0 ||
        opts_.policy != ArrivalPolicy::kAdaptive) {
      return;
    }
    ts.leaf = leaf;
    ts.sticky = opts_.sticky_arrivals;
    ts.window_propagations = 0;
    ts.root_free_rearms = 0;
  }

  void rearm_or_decay(ThreadState& ts) {
    // A noisy window means the leaf kept draining, so tree arrivals were
    // paying root traffic anyway — decay to the direct path (ts.sticky
    // stays 0).
    if (ts.window_propagations > opts_.sticky_decay_propagations) {
      ts.window_propagations = 0;
      ts.root_free_rearms = 0;
      return;
    }
    ts.window_propagations = 0;
    // A quiet window means the leaf stayed hot: stay in the tree.  Re-arm
    // without touching the root at most sticky_rearm_windows times in a
    // row; then re-read the root so a Close demotes this thread to the
    // root-reading path instead of letting it feed the leaf forever (the
    // writer-starvation bound described in the file comment).
    if (ts.root_free_rearms < opts_.sticky_rearm_windows) {
      ++ts.root_free_rearms;
      ts.sticky = opts_.sticky_arrivals;
      return;
    }
    ts.root_free_rearms = 0;
    const std::uint64_t w = root_load(std::memory_order_acquire).word;
    bump(ts.root_reads);
    if (is_open(w)) ts.sticky = opts_.sticky_arrivals;
  }

  // --- direct root arrival/departure -------------------------------------
  bool root_arrive_direct() {
    RootView old = root_load(std::memory_order_acquire);
    while (true) {
      if (!is_open(old.word)) return false;
      if (root_cas_weak(old, old.word + kDirectOne)) return true;
      // The failed CAS stored the current view into `old`; loop on it.
    }
  }

  bool root_depart_direct() {
    RootView old = root_load(std::memory_order_acquire);
    while (true) {
      OLL_DCHECK(direct_count(old.word) > 0);
      const std::uint64_t desired = old.word - kDirectOne;
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        old = root_load(std::memory_order_acquire);
        continue;
      }
      if (root_cas_weak(old, desired)) {
        return !(total_count(desired) == 0 && !is_open(desired));
      }
    }
  }

  // --- tree arrival/departure: root base cases (Figure 2) ----------------
  // Fails only when CLOSED with zero total surplus; see file comment.
  bool root_arrive_tree(ThreadState* ts) {
    if (ts != nullptr) {
      ++ts->window_propagations;
      bump(ts->root_propagations);
    }
    RootView old = root_load(std::memory_order_acquire);
    while (true) {
      if (!is_open(old.word) && total_count(old.word) == 0) return false;
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        old = root_load(std::memory_order_acquire);
        continue;
      }
      if (root_cas_weak(old, old.word + kTreeOne)) return true;
      if (ts != nullptr) bump(ts->root_cas_failures);
    }
  }

  bool root_depart_tree() {
    RootView old = root_load(std::memory_order_acquire);
    while (true) {
      OLL_DCHECK(tree_count(old.word) > 0);
      const std::uint64_t desired = old.word - kTreeOne;
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        old = root_load(std::memory_order_acquire);
        continue;
      }
      if (root_cas_weak(old, desired)) {
        return !(total_count(desired) == 0 && !is_open(desired));
      }
    }
  }

  // --- tree arrival/departure: counter nodes (Figure 2) ------------------
  bool tree_arrive(Node* node, ThreadState* ts) {
    bool arrived_at_parent = false;
    std::uint64_t x = node->cnt.load(std::memory_order_acquire);
    while (true) {
      if (x == 0 && !arrived_at_parent) {
        const bool ok = node->parent ? tree_arrive(node->parent, ts)
                                     : root_arrive_tree(ts);
        if (!ok) return false;
        arrived_at_parent = true;
        x = node->cnt.load(std::memory_order_acquire);  // re-read before CAS
        continue;
      }
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        x = node->cnt.load(std::memory_order_acquire);
        continue;
      }
      if (node->cnt.compare_exchange_weak(x, x + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        break;
      }
      // The failed CAS stored the current count into `x`; loop on it.
    }
    if (arrived_at_parent && x != 0) {
      // Someone else created the surplus between our check and our CAS; undo
      // the redundant parent arrival.
      if (ts != nullptr) bump(ts->redundant_undos);
      if (node->parent) {
        tree_depart(node->parent);
      } else {
        root_depart_tree();
      }
    }
    return true;
  }

  bool tree_depart(Node* node) {
    std::uint64_t x = node->cnt.load(std::memory_order_acquire);
    while (true) {
      OLL_DCHECK(x > 0);
      if (fault_cas_fail(FaultSite::kCasRetry)) {
        x = node->cnt.load(std::memory_order_acquire);
        continue;
      }
      if (node->cnt.compare_exchange_weak(x, x - 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        break;
      }
    }
    if (x == 1) {
      return node->parent ? tree_depart(node->parent) : root_depart_tree();
    }
    return true;
  }

  // --- tree construction --------------------------------------------------
  // Layout in one array: [leaves][level above leaves]...[level below root].
  // total nodes = leaves + leaves/fanout + ... for levels-1 internal tiers.
  std::uint32_t total_nodes() const {
    std::uint32_t total = opts_.leaves;
    std::uint32_t width = opts_.leaves;
    for (std::uint32_t l = 1; l < opts_.levels; ++l) {
      width = (width + opts_.fanout - 1) / opts_.fanout;
      total += width;
    }
    return total;
  }

  Node* ensure_tree() {
    Node* existing = tree_storage_.load(std::memory_order_acquire);
    if (existing) return existing;
    const std::uint32_t n = total_nodes();
    Node* fresh = new Node[n];
    // Wire parents: leaves occupy [0, leaves); each subsequent tier follows.
    std::uint32_t tier_base = 0;
    std::uint32_t tier_width = opts_.leaves;
    for (std::uint32_t l = 1; l < opts_.levels; ++l) {
      const std::uint32_t next_width =
          (tier_width + opts_.fanout - 1) / opts_.fanout;
      const std::uint32_t next_base = tier_base + tier_width;
      for (std::uint32_t i = 0; i < tier_width; ++i) {
        fresh[tier_base + i].parent = &fresh[next_base + i / opts_.fanout];
      }
      tier_base = next_base;
      tier_width = next_width;
    }
    // Topmost tier's parent is the root word (nullptr sentinel).
    for (std::uint32_t i = 0; i < tier_width; ++i) {
      fresh[tier_base + i].parent = nullptr;
    }
    Node* expected = nullptr;
    if (tree_storage_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return fresh;
    }
    delete[] fresh;  // another thread won the publication race
    return expected;
  }

  ThreadState& thread_state() {
    ThreadState* arr = thread_state_.load(std::memory_order_acquire);
    if (arr == nullptr) arr = ensure_thread_state();
    const std::uint32_t idx = this_thread_index();
    OLL_CHECK(idx < opts_.max_threads);
    ThreadState& ts = arr[idx];
    // Dense indices are recycled; drop sticky state armed by a previous
    // thread that held this index (see the ThreadState comment).
    const std::uint32_t epoch = ThreadRegistry::index_epoch(idx);
    if (ts.epoch != epoch) {
      ts.epoch = epoch;
      ts.leaf = nullptr;
      ts.sticky = 0;
      ts.window_propagations = 0;
      ts.root_free_rearms = 0;
    }
    return ts;
  }

  ThreadState* ensure_thread_state() {
    ThreadState* fresh = new ThreadState[opts_.max_threads];
    ThreadState* expected = nullptr;
    if (thread_state_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return fresh;
    }
    delete[] fresh;  // another thread won the publication race
    return expected;
  }

  Node* leaf_for_thread(ThreadState& ts) {
    if (ts.leaf == nullptr) {
      Node* tree = ensure_tree();
      ts.leaf = &tree[leaf_map_.leaf_of(this_thread_index())];
    }
    return ts.leaf;
  }

  CSnziOptions opts_;
  LeafMap leaf_map_;
  typename M::template Atomic<std::uint64_t> root_;
#if OLL_DWCAS_CAPABLE
  // 16-byte fused root, live instead of root_ when use_dwcas_ is set.
  // Sharing root_'s cache line is deliberate: exactly one of the two is
  // ever touched after construction.
  typename M::template Atomic<unsigned __int128> root16_{0};
#endif
  // Resolved at construction from opts_.dwcas_root (normalize() already
  // cleared it on incapable builds); read-only afterwards.
  bool use_dwcas_ = false;
  char pad_[kFalseSharingRange - sizeof(typename M::template Atomic<std::uint64_t>) %
                kFalseSharingRange];
  // Owned tree storage; published lock-free, freed in the destructor.  This
  // is a std::atomic even in simulated builds: tree publication is a
  // once-per-lock event, not a contended hot path we want to model.
  std::atomic<Node*> tree_storage_{nullptr};
  // Lazily-allocated per-thread state array (same publication scheme).
  std::atomic<ThreadState*> thread_state_{nullptr};
};

}  // namespace oll
