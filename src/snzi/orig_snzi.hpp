// The ORIGINAL SNZI algorithm (Ellen, Lev, Luchangco & Moir, PODC'07),
// reconstructed: hierarchical nodes whose counters take the intermediate
// value 1/2 during a first arrival.
//
// Why this exists in a C-SNZI repository: the paper (§2.2) deliberately does
// NOT use this algorithm — it uses the simplified Lev et al. variant
// because "an Arrive operation that invokes Arrive on the parent does not
// modify the child node before doing so", which is the property that makes
// the closable extension trivial (no cleanup when the parent arrival fails
// on a closed root).  The original algorithm *does* publish the half state
// at the child before arriving at the parent, so closing it would need undo
// machinery.  Implementing both lets the test suite and the microbenchmarks
// substantiate that design choice instead of taking it on faith.
//
// Protocol at a non-root node (counter c ∈ {0, 1/2, 1, 3/2(never), 2, ...},
// stored in half units, paired with a version number bumped on 0 -> 1/2):
//
//   Arrive(X):
//     loop:
//       (c, v) = X
//       if c >= 1   and CAS(X, (c,v), (c+1,v)):    done, no parent visit
//       if c == 0   and CAS(X, (0,v), (1/2,v+1)):  we own the half-arrival
//       if c == 1/2:                               (ours or someone else's)
//         Arrive(parent)
//         if CAS(X, (1/2,v), (1,v)): done          our parent visit "lands"
//         else: remember one surplus parent arrival to undo
//     undo the accumulated extra parent arrivals with Depart(parent)
//
//   Depart(X):
//     loop:
//       (c, v) = X                                  // c >= 1 guaranteed
//       if CAS(X, (c,v), (c-1,v)):
//         if c == 1: Depart(parent)
//         return
//
// The root here is a plain counter (arrivals/departures at the top level).
// The PODC'07 paper additionally splits the root's query answer into an
// out-of-band indicator bit written under a version check, so that Query is
// one boolean read; our Query is one 64-bit root read, which serves the
// same purpose, so that machinery is intentionally omitted (documented
// deviation).  This object supports Arrive/Depart/Query only — no Close;
// see the file comment for why closing this algorithm is not practical.
#pragma once

#include <cstdint>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/memory.hpp"
#include "platform/thread_id.hpp"
#include "snzi/csnzi.hpp"  // reuses CSnziOptions for shape configuration

namespace oll {

template <typename M = RealMemory>
class OrigSnzi {
 public:
  // Node word layout: [0,32) counter in HALF units; [32,64) version.
  static constexpr std::uint64_t kHalf = 1;               // c == 1/2
  static constexpr std::uint64_t kOne = 2;                // c == 1
  static constexpr std::uint64_t kCounterMask = 0xffffffffULL;
  static constexpr std::uint64_t kVersionOne = 1ULL << 32;

  static constexpr std::uint64_t counter_halves(std::uint64_t w) noexcept {
    return w & kCounterMask;
  }
  static constexpr std::uint64_t version(std::uint64_t w) noexcept {
    return w >> 32;
  }
  static constexpr std::uint64_t make_word(std::uint64_t halves,
                                           std::uint64_t ver) noexcept {
    return (ver << 32) | halves;
  }

  struct alignas(kFalseSharingRange) Node {
    typename M::template Atomic<std::uint64_t> word{0};
    Node* parent = nullptr;  // nullptr => the root counter
  };

  class Ticket {
   public:
    Ticket() = default;
    bool arrived() const noexcept { return valid_; }

   private:
    friend class OrigSnzi;
    explicit Ticket(Node* n) : node_(n), valid_(true) {}
    Node* node_ = nullptr;  // nullptr with valid_: direct root arrival
    bool valid_ = false;
  };

  explicit OrigSnzi(const CSnziOptions& opts = {}) : opts_(normalize(opts)) {
    const std::uint32_t n = total_nodes();
    nodes_ = std::make_unique<Node[]>(n);
    wire_parents();
  }

  OrigSnzi(const OrigSnzi&) = delete;
  OrigSnzi& operator=(const OrigSnzi&) = delete;

  // Arrive at this thread's leaf (always succeeds; plain SNZI is unclosable).
  Ticket arrive() {
    Node* leaf = leaf_for_thread();
    node_arrive(leaf);
    return Ticket(leaf);
  }

  void depart(const Ticket& t) {
    OLL_DCHECK(t.arrived());
    if (t.node_ != nullptr) {
      node_depart(t.node_);
    } else {
      root_depart();
    }
  }

  bool query() const {
    return root_.load(std::memory_order_acquire) > 0;
  }

  // --- introspection ------------------------------------------------------
  std::uint64_t root_count() const {
    return root_.load(std::memory_order_acquire);
  }
  std::uint32_t leaf_count() const { return opts_.leaves; }

 private:
  static CSnziOptions normalize(CSnziOptions o) {
    if (o.leaves == 0) o.leaves = 1;
    std::uint32_t p = 1;
    while (p < o.leaves) p <<= 1;
    o.leaves = p;
    if (o.levels == 0) o.levels = 1;
    if (o.fanout < 2) o.fanout = 2;
    return o;
  }

  void node_arrive(Node* node) {
    if (node == nullptr) {
      root_arrive();
      return;
    }
    std::uint32_t undo_arrivals = 0;
    bool succeeded = false;
    while (!succeeded) {
      std::uint64_t w = node->word.load(std::memory_order_acquire);
      const std::uint64_t c = counter_halves(w);
      if (c >= kOne) {
        if (node->word.compare_exchange_weak(
                w, make_word(c + kOne, version(w)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          succeeded = true;
        }
      } else if (c == 0) {
        // Claim the half state, bumping the version so that stale 1/2
        // observations from previous zero-crossings cannot be completed.
        if (node->word.compare_exchange_weak(
                w, make_word(kHalf, version(w) + 1),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          // fall through: next iteration sees our own 1/2
        }
      } else {  // c == 1/2: someone (maybe us) must push the parent arrival
        const std::uint64_t v = version(w);
        node_arrive(node->parent);
        if (node->word.compare_exchange_strong(
                w, make_word(kOne, v), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          succeeded = true;
        } else {
          // Another helper's parent arrival landed first (or the state
          // moved on); ours is surplus and must be undone afterwards.
          ++undo_arrivals;
        }
      }
    }
    while (undo_arrivals > 0) {
      node_depart(node->parent);
      --undo_arrivals;
    }
  }

  void node_depart(Node* node) {
    if (node == nullptr) {
      root_depart();
      return;
    }
    while (true) {
      std::uint64_t w = node->word.load(std::memory_order_acquire);
      const std::uint64_t c = counter_halves(w);
      OLL_DCHECK(c >= kOne);
      if (node->word.compare_exchange_weak(
              w, make_word(c - kOne, version(w)),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        if (c == kOne) node_depart(node->parent);
        return;
      }
    }
  }

  void root_arrive() { root_.fetch_add(1, std::memory_order_acq_rel); }

  void root_depart() {
    const std::uint64_t before =
        root_.fetch_sub(1, std::memory_order_acq_rel);
    OLL_DCHECK(before > 0);
    (void)before;
  }

  std::uint32_t total_nodes() const {
    std::uint32_t total = opts_.leaves;
    std::uint32_t width = opts_.leaves;
    for (std::uint32_t l = 1; l < opts_.levels; ++l) {
      width = (width + opts_.fanout - 1) / opts_.fanout;
      total += width;
    }
    return total;
  }

  void wire_parents() {
    std::uint32_t tier_base = 0;
    std::uint32_t tier_width = opts_.leaves;
    for (std::uint32_t l = 1; l < opts_.levels; ++l) {
      const std::uint32_t next_width =
          (tier_width + opts_.fanout - 1) / opts_.fanout;
      const std::uint32_t next_base = tier_base + tier_width;
      for (std::uint32_t i = 0; i < tier_width; ++i) {
        nodes_[tier_base + i].parent = &nodes_[next_base + i / opts_.fanout];
      }
      tier_base = next_base;
      tier_width = next_width;
    }
    for (std::uint32_t i = 0; i < tier_width; ++i) {
      nodes_[tier_base + i].parent = nullptr;
    }
  }

  Node* leaf_for_thread() {
    return &nodes_[(this_thread_index() >> opts_.leaf_shift) &
                   (opts_.leaves - 1)];
  }

  CSnziOptions opts_;
  typename M::template Atomic<std::uint64_t> root_{0};
  char pad_[kFalseSharingRange - sizeof(std::uint64_t)];
  std::unique_ptr<Node[]> nodes_;
};

}  // namespace oll
