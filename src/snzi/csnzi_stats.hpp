// Arrival-path counters for one C-SNZI (or the sum over a lock's C-SNZIs).
//
// These make the §5.1 adaptivity and the sticky fast path measurable
// instead of asserted: at read saturation `root_reads` must stop growing
// (steady-state arrivals never touch the root word), while an uncontended
// lock must show pure `direct_arrivals` with zero tree traffic.  Counters
// are collected from per-thread single-writer relaxed slots, so a snapshot
// taken during a run is approximate; at quiescence it is exact.
#pragma once

#include <cstdint>

namespace oll {

struct CSnziStatsSnapshot {
  std::uint64_t root_reads = 0;        // root-word loads on the arrive path
  std::uint64_t direct_arrivals = 0;   // arrivals CASed into the root word
  std::uint64_t tree_arrivals = 0;     // arrivals landing on a tree leaf
  std::uint64_t sticky_arrivals = 0;   // tree arrivals that skipped the root read
  std::uint64_t root_cas_failures = 0; // failed root CASes (direct + propagate)
  std::uint64_t root_propagations = 0; // first-arrivals propagated to the root
  std::uint64_t redundant_undos = 0;   // parent arrivals undone (Figure 2 race)

  std::uint64_t arrivals() const { return direct_arrivals + tree_arrivals; }

  CSnziStatsSnapshot& operator+=(const CSnziStatsSnapshot& o) {
    root_reads += o.root_reads;
    direct_arrivals += o.direct_arrivals;
    tree_arrivals += o.tree_arrivals;
    sticky_arrivals += o.sticky_arrivals;
    root_cas_failures += o.root_cas_failures;
    root_propagations += o.root_propagations;
    redundant_undos += o.redundant_undos;
    return *this;
  }

  // Baseline subtraction for per-phase deltas (o must be an earlier
  // snapshot of the same counters).
  CSnziStatsSnapshot& operator-=(const CSnziStatsSnapshot& o) {
    root_reads -= o.root_reads;
    direct_arrivals -= o.direct_arrivals;
    tree_arrivals -= o.tree_arrivals;
    sticky_arrivals -= o.sticky_arrivals;
    root_cas_failures -= o.root_cas_failures;
    root_propagations -= o.root_propagations;
    redundant_undos -= o.redundant_undos;
    return *this;
  }
};

}  // namespace oll
