// Simulated machine: topology + cache-coherence cost model.
//
// The paper's results were produced on a Sun SPARC Enterprise T5440: four
// UltraSPARC T2+ chips, 64 hardware threads per chip sharing a 4 MB L2, with
// four XBR coherency hubs between chips.  "Inter-thread communication
// overhead increases significantly when running more than 64 threads, at
// which point not all threads can communicate via a shared L2 cache" (§5.1).
//
// We model exactly the aspect that drives every curve in Figure 5: the cost
// of migrating ownership of a contended cache line between hardware threads,
// which depends on whether the current owner sits on the same chip (shared
// L2) or a different chip (through a coherency hub).  The model is a
// directory of last-writer per line plus Lamport-style virtual clocks per
// thread; see src/sim/atomic.hpp for the charging rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/assert.hpp"
#include "platform/cache_line.hpp"
#include "platform/topology.hpp"

namespace oll::sim {

struct Topology {
  // UltraSPARC T2+: 8 hardware threads (SMT) per core share an L1; 8 cores
  // per chip share a 4 MB L2; 4 chips connected by coherency hubs.
  std::uint32_t threads_per_core = 8;
  std::uint32_t threads_per_chip = 64;
  std::uint32_t chips = 4;

  std::uint32_t total_threads() const noexcept {
    return threads_per_chip * chips;
  }

  // Simulated threads are laid out the way the paper binds them: fill one
  // core, then the next core on the chip, then spill to the next chip —
  // so ≤64 threads stay on-chip.
  std::uint32_t chip_of(std::uint32_t tid) const noexcept {
    return (tid / threads_per_chip) % chips;
  }

  std::uint32_t core_of(std::uint32_t tid) const noexcept {
    return tid / threads_per_core;  // globally unique core id
  }
};

// Virtual-cycle costs.  These are order-of-magnitude latencies for a 1.4 GHz
// part (≈0.7 ns/cycle), not calibrated SPARC measurements; the reproduction
// targets curve shape, not absolute acquires/s (DESIGN.md §3).
//
// Loads that hit the thread's cached copy cost 0: a spinning thread's
// virtual clock must not advance with its (host-scheduling-dependent) probe
// count — it resumes at the releasing writer's timestamp plus a transfer,
// which is exactly the handoff latency.
struct CostModel {
  std::uint64_t load_hit = 0;            // re-read of an unchanged line
  std::uint64_t local_rmw = 30;          // atomic RMW on a line we own
  std::uint64_t local_clean = 30;        // first touch, no other owner
  std::uint64_t samecore_transfer = 12;  // owner is an SMT sibling (same L1)
  std::uint64_t onchip_transfer = 80;    // owner on same chip (shared L2)
  std::uint64_t offchip_transfer = 750;  // owner on another chip (via hub)
  // Extra serialization charge per ownership migration of a line that a
  // different thread wrote: queuing at the coherence point.  This is what
  // makes "every thread CASes the tail pointer" collapse.
  std::uint64_t migration_penalty = 50;
  // A CAS that must migrate a line whose recent writers were all different
  // threads ("hot" line) is failed once before succeeding, emulating the
  // interleaving a real concurrent competitor would cause.  Only
  // compare_exchange_weak is ever failed this way (the C++ contract already
  // permits weak CAS to fail spuriously); see sim/atomic.hpp.
  std::uint32_t hot_line_streak = 2;
  bool emulate_cas_failure = true;
};

inline Topology t5440_topology() { return Topology{}; }
inline CostModel t5440_costs() { return CostModel{}; }

// The simulated machine's shape expressed as a platform topology, for the
// C-SNZI LeafMap: 8 SMT threads share a core/L1, 64 threads share a chip's
// L2, and each chip is one memory node.  Static so options may keep a
// pointer to it for the lifetime of the process.
inline const oll::Topology& t5440_cpu_topology() {
  static const oll::Topology topo = oll::Topology::synthetic(
      Topology{}.total_threads(), Topology{}.threads_per_core,
      Topology{}.threads_per_chip, Topology{}.threads_per_chip);
  return topo;
}

// Number of distinct std::memory_order values (relaxed, consume, acquire,
// release, acq_rel, seq_cst) — the per-order histogram below is indexed by
// static_cast<int>(order).
inline constexpr std::uint32_t kMemoryOrderCount = 6;

inline const char* memory_order_name(std::uint32_t idx) {
  switch (idx) {
    case 0: return "relaxed";
    case 1: return "consume";
    case 2: return "acquire";
    case 3: return "release";
    case 4: return "acq_rel";
    case 5: return "seq_cst";
  }
  return "?";
}

// Per-thread event counters, aggregated by Machine::counters().
struct OpCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t rmws = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t local_misses = 0;
  std::uint64_t samecore_transfers = 0;
  std::uint64_t onchip_transfers = 0;
  std::uint64_t offchip_transfers = 0;
  std::uint64_t emulated_cas_failures = 0;
  // Atomic operations by requested memory order (fence-reduction ablations:
  // the memory-order audit's win is this histogram shifting from seq_cst
  // toward relaxed/acq_rel with identical throughput curves).  Indexed by
  // static_cast<int>(std::memory_order); CAS counts its success order.
  std::uint64_t order_ops[kMemoryOrderCount] = {};

  std::uint64_t seq_cst_ops() const noexcept { return order_ops[5]; }

  OpCounters& operator+=(const OpCounters& o) noexcept {
    loads += o.loads;
    stores += o.stores;
    rmws += o.rmws;
    l1_hits += o.l1_hits;
    local_misses += o.local_misses;
    samecore_transfers += o.samecore_transfers;
    onchip_transfers += o.onchip_transfers;
    offchip_transfers += o.offchip_transfers;
    emulated_cas_failures += o.emulated_cas_failures;
    for (std::uint32_t i = 0; i < kMemoryOrderCount; ++i) {
      order_ops[i] += o.order_ops[i];
    }
    return *this;
  }
};

// One simulated machine run.  Threads attach via sim::ThreadGuard
// (src/sim/context.hpp), execute lock code on sim::Atomic variables, and on
// detach deposit their final virtual clock here.  Throughput for a run is
// total operations / max_clock(), mirroring how the paper divides total
// acquisitions by wall time.
class Machine {
 public:
  explicit Machine(Topology topo = t5440_topology(),
                   CostModel costs = t5440_costs(),
                   std::uint32_t max_threads = 512)
      : topo_(topo), costs_(costs), clocks_(max_threads), counters_(max_threads) {
    reset();
  }

  const Topology& topology() const noexcept { return topo_; }
  const CostModel& costs() const noexcept { return costs_; }

  std::uint32_t max_threads() const noexcept {
    return static_cast<std::uint32_t>(clocks_.size());
  }

  void deposit(std::uint32_t tid, std::uint64_t clock, const OpCounters& c) {
    OLL_CHECK(tid < clocks_.size());
    clocks_[tid].value.store(clock, std::memory_order_relaxed);
    counters_[tid].value = c;
  }

  std::uint64_t max_clock() const {
    std::uint64_t m = 0;
    for (const auto& c : clocks_) {
      const std::uint64_t v = c.value.load(std::memory_order_relaxed);
      if (v > m) m = v;
    }
    return m;
  }

  OpCounters counters() const {
    OpCounters total;
    for (const auto& c : counters_) total += c.value;
    return total;
  }

  void reset() {
    for (auto& c : clocks_) c.value.store(0, std::memory_order_relaxed);
    for (auto& c : counters_) c.value = OpCounters{};
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Epoch counter lets per-thread line caches detect stale entries across
  // Machine::reset() without a global flush.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  Topology topo_;
  CostModel costs_;
  std::vector<CacheAligned<std::atomic<std::uint64_t>>> clocks_;
  std::vector<CacheAligned<OpCounters>> counters_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace oll::sim
