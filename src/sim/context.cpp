#include "sim/context.hpp"

namespace oll::sim {

constinit thread_local ThreadContext* ThreadContext::tls_current_ = nullptr;

}  // namespace oll::sim
