// SimMemory: the memory-model policy that routes lock code onto the
// instrumented atomics.  See platform/memory.hpp for the policy contract.
#pragma once

#include <cstdint>

#include "sim/atomic.hpp"
#include "sim/context.hpp"

namespace oll::sim {

struct SimMemory {
  template <typename T>
  using Atomic = sim::Atomic<T>;

  static constexpr bool kSimulated = true;

  // Account virtual compute work (e.g. a simulated critical section body).
  static void charge(std::uint64_t cycles) noexcept {
    if (ThreadContext* ctx = ThreadContext::current()) ctx->advance(cycles);
  }
};

}  // namespace oll::sim
