// Instrumented atomic<T>: std::atomic semantics plus virtual-cycle charging
// against the owning thread's simulation context.
//
// Each Atomic models one cache line with a tiny directory entry:
//   owner    — simulated thread that last gained exclusive ownership (+1; 0
//              means untouched),
//   version  — bumped on every exclusive acquisition (store/RMW, including
//              failed CAS, which still invalidates other copies),
//   ts       — the owner's virtual clock at that point.
//
// Charging rules (see DESIGN.md §3):
//   load, cached version current      → l1_hit
//   load, stale                       → transfer cost by owner distance, and
//                                       the reader's clock is advanced past
//                                       the writer's timestamp (causality)
//   store/RMW, we already own it      → l1_hit
//   store/RMW, owned elsewhere        → transfer cost + migration penalty
//
// The directory fields are plain relaxed atomics: benign races merely
// perturb the cost estimate by one transfer, never correctness — the value
// itself always lives in a real std::atomic.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/context.hpp"
#include "sim/machine.hpp"

namespace oll::sim {

namespace detail {

struct LineDirectory {
  std::atomic<std::uint32_t> owner{0};  // tid + 1; 0 = none
  std::atomic<std::uint32_t> streak{0};  // consecutive distinct-owner writes
  std::atomic<std::uint64_t> version{0};
  std::atomic<std::uint64_t> ts{0};
};

}  // namespace detail

template <typename T>
class Atomic {
 public:
  Atomic() noexcept : value_{} {}
  /* implicit */ Atomic(T v) noexcept : value_(v) {}

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  // Every operation takes a MANDATORY memory_order: lock code is templated
  // over the memory model, so a call site that omitted the order here would
  // compile against std::atomic (seq_cst) in release builds while the sim
  // and fuzz builds silently upgraded it too — leaving the relaxation
  // untested anywhere.  Making the parameter required turns the repo's
  // memory-order audit (DESIGN.md §12) into a compile-time check.
  T load(std::memory_order mo) const noexcept {
    charge_read(mo);
    return value_.load(mo);
  }

  void store(T v, std::memory_order mo) noexcept {
    charge_write(mo);
    value_.store(v, mo);
  }

  T exchange(T v, std::memory_order mo) noexcept {
    charge_write(mo);
    return value_.exchange(v, mo);
  }

  // Strong CAS: never fails spuriously — lock algorithms legitimately infer
  // "someone else acted" from a strong-CAS failure (e.g. MCS's "a successor
  // is linking"), so the model must not inject failures here.
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo) noexcept {
    charge_write(mo);  // even a failed CAS takes the line exclusive
    return value_.compare_exchange_strong(expected, desired, mo);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order succ,
                               std::memory_order fail) noexcept {
    charge_write(succ);
    return value_.compare_exchange_strong(expected, desired, succ, fail);
  }

  // Weak CAS: the C++ contract allows spurious failure, and retry loops are
  // required to tolerate it.  We exploit that to emulate contention on a
  // single-core host: a weak CAS that migrates a HOT line (recent writers
  // all distinct) is failed once — the caller's CAS loop then observes
  // exactly what a real interleaved competitor would have caused, which is
  // what drives the paper's adaptive arrive-at-root-until-contention policy
  // (§5.1) on this model.  `expected` is left untouched, as the value did
  // not change.
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo) noexcept {
    if (charge_write(mo, /*may_fail=*/true)) return false;
    return value_.compare_exchange_weak(expected, desired, mo);
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order succ,
                             std::memory_order fail) noexcept {
    if (charge_write(succ, /*may_fail=*/true)) return false;
    return value_.compare_exchange_weak(expected, desired, succ, fail);
  }

  T fetch_add(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    charge_write(mo);
    return value_.fetch_add(v, mo);
  }

  T fetch_sub(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    charge_write(mo);
    return value_.fetch_sub(v, mo);
  }

  T fetch_or(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    charge_write(mo);
    return value_.fetch_or(v, mo);
  }

  T fetch_and(T v, std::memory_order mo) noexcept
    requires std::is_integral_v<T>
  {
    charge_write(mo);
    return value_.fetch_and(v, mo);
  }

  // No operator T() / operator=: the implicit conversions were seq_cst
  // back doors around the mandatory-order API above.

 private:
  static void count_order(OpCounters& c, std::memory_order mo) noexcept {
    const auto idx = static_cast<std::uint32_t>(mo);
    if (idx < kMemoryOrderCount) ++c.order_ops[idx];
  }

  void charge_read(std::memory_order mo) const noexcept {
    ThreadContext* ctx = ThreadContext::current();
    if (!ctx) return;
    ctx->flush_if_stale();
    OpCounters& c = ctx->counters();
    ++c.loads;
    count_order(c, mo);
    const std::uint64_t ver = dir_.version.load(std::memory_order_relaxed);
    if (ctx->cache_hit(&dir_, ver)) {
      ++c.l1_hits;
      ctx->advance(ctx->machine().costs().load_hit);
      return;
    }
    const std::uint32_t owner = dir_.owner.load(std::memory_order_relaxed);
    const std::uint64_t ts = dir_.ts.load(std::memory_order_relaxed);
    ctx->sync_and_advance(ts, transfer_cost(*ctx, owner, /*exclusive=*/false));
    ctx->cache_store(&dir_, ver);
  }

  // Account an exclusive (store/RMW) access.  With `may_fail` (weak CAS
  // only), returns true to direct an emulated failure: the access is charged
  // but ownership is NOT taken (the imagined real competitor kept the line),
  // and a per-thread pass is recorded so the caller's immediate retry on the
  // unchanged line goes through — CAS loops stay terminating.
  bool charge_write(std::memory_order mo, bool may_fail = false) const noexcept {
    ThreadContext* ctx = ThreadContext::current();
    if (!ctx) return false;
    ctx->flush_if_stale();
    const CostModel& costs = ctx->machine().costs();
    OpCounters& c = ctx->counters();
    ++c.rmws;
    count_order(c, mo);
    const std::uint32_t me = ctx->tid() + 1;
    const std::uint32_t owner = dir_.owner.load(std::memory_order_relaxed);
    if (owner == me) {
      ++c.l1_hits;
      ctx->advance(costs.local_rmw);
      dir_.streak.store(0, std::memory_order_relaxed);
    } else {
      const std::uint64_t ts = dir_.ts.load(std::memory_order_relaxed);
      const std::uint64_t ver = dir_.version.load(std::memory_order_relaxed);
      ctx->sync_and_advance(ts,
                            transfer_cost(*ctx, owner, /*exclusive=*/true));
      if (may_fail && owner != 0 && costs.emulate_cas_failure &&
          dir_.streak.load(std::memory_order_relaxed) + 1 >=
              costs.hot_line_streak &&
          !ctx->consume_cas_failure_pass(&dir_, ver)) {
        ctx->note_cas_failure(&dir_, ver);
        ++c.emulated_cas_failures;
        return true;
      }
      dir_.streak.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t ver =
        dir_.version.fetch_add(1, std::memory_order_relaxed) + 1;
    dir_.owner.store(me, std::memory_order_relaxed);
    dir_.ts.store(ctx->clock(), std::memory_order_relaxed);
    ctx->cache_store(&dir_, ver);
    return false;
  }

  std::uint64_t transfer_cost(ThreadContext& ctx, std::uint32_t owner,
                              bool exclusive) const noexcept {
    const CostModel& costs = ctx.machine().costs();
    OpCounters& c = ctx.counters();
    std::uint64_t cost;
    if (owner == 0) {
      ++c.local_misses;
      cost = costs.local_clean;
    } else if (owner == ctx.tid() + 1) {
      // We wrote it but our read cache was evicted: still local.
      ++c.l1_hits;
      cost = exclusive ? costs.local_rmw : costs.load_hit;
    } else if (ctx.machine().topology().core_of(owner - 1) ==
               ctx.machine().topology().core_of(ctx.tid())) {
      ++c.samecore_transfers;
      cost = costs.samecore_transfer;
    } else if (ctx.machine().topology().chip_of(owner - 1) == ctx.chip()) {
      ++c.onchip_transfers;
      cost = costs.onchip_transfer;
    } else {
      ++c.offchip_transfers;
      cost = costs.offchip_transfer;
    }
    // Serialization penalty applies only when ownership leaves the core:
    // SMT siblings share an L1, so their line ping-pong has no coherence
    // queuing to speak of.
    if (exclusive && owner != 0 && owner != ctx.tid() + 1 &&
        ctx.machine().topology().core_of(owner - 1) !=
            ctx.machine().topology().core_of(ctx.tid())) {
      cost += costs.migration_penalty;
    }
    return cost;
  }

  std::atomic<T> value_;
  mutable detail::LineDirectory dir_;
};

}  // namespace oll::sim
