// Per-thread simulation context: virtual clock, simulated placement, and a
// small cache of line versions this thread has already observed.
//
// A real OS thread attaches to a Machine as simulated hardware thread `tid`
// for the duration of a ThreadGuard.  Every sim::Atomic operation it then
// performs consults the line's directory entry, charges virtual cycles to
// the thread's clock, and advances the clock past the writer's timestamp
// (Lamport-style), so virtual time is causally consistent even though the
// host may run the threads one at a time.
#pragma once

#include <cstdint>
#include <cstring>

#include "platform/assert.hpp"
#include "sim/machine.hpp"

namespace oll::sim {

class ThreadContext {
 public:
  // Open-addressed line-version cache.  Power-of-two size; entries are
  // (line address, version, machine epoch).  It is a cache: on probe-limit
  // overflow we simply overwrite, which can only make the model charge an
  // extra miss.
  static constexpr std::uint32_t kCacheSlots = 4096;
  static constexpr std::uint32_t kProbeLimit = 8;

  ThreadContext(Machine& m, std::uint32_t tid)
      : machine_(&m),
        tid_(tid),
        chip_(m.topology().chip_of(tid)),
        epoch_(m.epoch()) {
    OLL_CHECK(tid < m.max_threads());
    std::memset(keys_, 0, sizeof(keys_));
  }

  Machine& machine() noexcept { return *machine_; }
  std::uint32_t tid() const noexcept { return tid_; }
  std::uint32_t chip() const noexcept { return chip_; }
  std::uint64_t clock() const noexcept { return clock_; }
  OpCounters& counters() noexcept { return counters_; }

  void advance(std::uint64_t cycles) noexcept { clock_ += cycles; }

  // Causal sync against a writer timestamp, then pay `cycles`.
  void sync_and_advance(std::uint64_t writer_ts, std::uint64_t cycles) noexcept {
    if (writer_ts > clock_) clock_ = writer_ts;
    clock_ += cycles;
  }

  // Returns true iff this thread's cached view of `line` is `version`.
  bool cache_hit(const void* line, std::uint64_t version) noexcept {
    const std::uint32_t slot = find_slot(line);
    return keys_[slot] == line && versions_[slot] == version &&
           epochs_[slot] == epoch_;
  }

  void cache_store(const void* line, std::uint64_t version) noexcept {
    const std::uint32_t slot = find_slot(line);
    keys_[slot] = line;
    versions_[slot] = version;
    epochs_[slot] = epoch_;
  }

  void flush_if_stale() noexcept {
    const std::uint64_t e = machine_->epoch();
    if (e != epoch_) epoch_ = e;  // entries with old epoch become misses
  }

  // Emulated-CAS-failure bookkeeping (see sim/atomic.hpp): after failing a
  // weak CAS on (line, version) once, the immediate retry must be allowed
  // through so CAS loops terminate deterministically.
  void note_cas_failure(const void* line, std::uint64_t version) noexcept {
    last_fail_line_ = line;
    last_fail_version_ = version;
  }

  bool consume_cas_failure_pass(const void* line,
                                std::uint64_t version) noexcept {
    if (last_fail_line_ == line && last_fail_version_ == version) {
      last_fail_line_ = nullptr;
      return true;
    }
    return false;
  }

  // -- thread_local current-context plumbing ---------------------------
  static ThreadContext* current() noexcept { return tls_current_; }

 private:
  friend class ThreadGuard;

  std::uint32_t find_slot(const void* line) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(line);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ULL;
    std::uint32_t slot = static_cast<std::uint32_t>(h >> 32) & (kCacheSlots - 1);
    for (std::uint32_t probe = 0; probe < kProbeLimit; ++probe) {
      const std::uint32_t s = (slot + probe) & (kCacheSlots - 1);
      if (keys_[s] == line || keys_[s] == nullptr) return s;
    }
    return slot;  // evict
  }

  // constinit matters beyond style: it lets every TU see there is no dynamic
  // TLS initializer, so GCC skips the init-wrapper branch whose flags a
  // GCC 12 -O2 -fsanitize=undefined bug reuses for the store null-check
  // (making UBSan report "store to null pointer" here on every thread).
  static constinit thread_local ThreadContext* tls_current_;

  Machine* machine_;
  std::uint32_t tid_;
  std::uint32_t chip_;
  std::uint64_t epoch_;
  std::uint64_t clock_ = 0;
  OpCounters counters_{};
  const void* last_fail_line_ = nullptr;
  std::uint64_t last_fail_version_ = 0;

  const void* keys_[kCacheSlots];
  std::uint64_t versions_[kCacheSlots];
  std::uint64_t epochs_[kCacheSlots];
};

// RAII attachment of the calling OS thread to a simulated hardware thread.
// On destruction the final clock and counters are deposited in the Machine.
class ThreadGuard {
 public:
  ThreadGuard(Machine& m, std::uint32_t tid) : ctx_(m, tid) {
    OLL_CHECK(ThreadContext::tls_current_ == nullptr);
    ThreadContext::tls_current_ = &ctx_;
  }

  ~ThreadGuard() {
    ctx_.machine().deposit(ctx_.tid(), ctx_.clock(), ctx_.counters());
    ThreadContext::tls_current_ = nullptr;
  }

  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

  ThreadContext& context() noexcept { return ctx_; }

 private:
  ThreadContext ctx_;
};

}  // namespace oll::sim
