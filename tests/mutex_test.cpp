// Tests for the mutex substrates: TATAS, ticket lock, MCS queue mutex —
// exclusion, try-lock semantics, FIFO behavior where guaranteed.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "locks/mcs_lock.hpp"
#include "locks/tatas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "platform/spin.hpp"

namespace oll {
namespace {

template <typename Lock>
void exclusion_stress(Lock& lock, int threads, int iters) {
  std::uint64_t unprotected = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        std::lock_guard<Lock> g(lock);
        ++unprotected;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(unprotected, static_cast<std::uint64_t>(threads) * iters);
}

TEST(Tatas, Exclusion) {
  TatasLock<> lock;
  exclusion_stress(lock, 4, 3000);
}

TEST(Tatas, TryLock) {
  TatasLock<> lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Tatas, WorksWithScopedLock) {
  TatasLock<> a, b;
  std::scoped_lock guard(a, b);
  EXPECT_FALSE(a.try_lock());
  EXPECT_FALSE(b.try_lock());
}

TEST(Ticket, Exclusion) {
  TicketLock<> lock;
  exclusion_stress(lock, 4, 3000);
}

TEST(Ticket, TryLockOnlyWhenFree) {
  TicketLock<> lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Ticket, AllQueuedThreadsEnterExactlyOnce) {
  // Queue three threads while holding; `order` is mutated inside the lock,
  // so with correct exclusion each thread appears exactly once.  (Strict
  // FIFO order cannot be asserted from outside: the window between a
  // thread's start signal and its internal ticket grab is unsynchronized.)
  TicketLock<> lock;
  lock.lock();
  std::vector<int> order;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      spin_until([&] { return started.load() == t; });
      started.fetch_add(1);
      lock.lock();
      order.push_back(t);
      lock.unlock();
    });
  }
  spin_until([&] { return started.load() == 3; });
  for (int i = 0; i < 1000; ++i) std::this_thread::yield();
  lock.unlock();
  for (auto& th : threads) th.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
  EXPECT_NE(order[0], order[2]);
}

TEST(Mcs, ExclusionWithExplicitNodes) {
  McsLock<> lock;
  std::uint64_t unprotected = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        McsLock<>::QNode node;
        lock.lock(node);
        ++unprotected;
        lock.unlock(node);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(unprotected, 4u * 3000u);
}

TEST(Mcs, GuardRaii) {
  McsLock<> lock;
  std::uint64_t unprotected = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        McsLock<>::Guard g(lock);
        ++unprotected;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(unprotected, 4u * 2000u);
}

TEST(Mcs, TryLockOnlyWhenQueueEmpty) {
  McsLock<> lock;
  McsLock<>::QNode a, b;
  EXPECT_TRUE(lock.try_lock(a));
  EXPECT_FALSE(lock.try_lock(b));
  lock.unlock(a);
  EXPECT_TRUE(lock.try_lock(b));
  lock.unlock(b);
}

TEST(Mcs, FifoHandoff) {
  McsLock<> lock;
  McsLock<>::QNode main_node;
  lock.lock(main_node);
  std::vector<int> order;
  std::atomic<int> queued{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      spin_until([&] { return queued.load() == t; });
      McsLock<>::QNode node;
      // The FAS in lock() serializes arrival order == t order, but we must
      // bump `queued` only after our node is actually in the queue, which
      // lock() doesn't expose; approximate by bumping first and yielding.
      queued.fetch_add(1);
      lock.lock(node);
      order.push_back(t);
      lock.unlock(node);
    });
  }
  spin_until([&] { return queued.load() == 3; });
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  lock.unlock(main_node);
  for (auto& th : threads) th.join();
  ASSERT_EQ(order.size(), 3u);
  // MCS is strictly FIFO in enqueue order; thread t enqueues only after
  // thread t-1 signalled `queued`, but t-1's FAS may still be in flight, so
  // we allow any order yet require all three distinct entries.
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
  EXPECT_NE(order[0], order[2]);
}

TEST(Backoff, TatasUnderHeavyContention) {
  TatasLock<> lock(BackoffParams{8, 256, 4});
  exclusion_stress(lock, 8, 1000);
}

}  // namespace
}  // namespace oll
