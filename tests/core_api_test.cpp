// Public-API tests: guards, RwProtected, the factory/registry, concepts,
// and interoperability with the standard library's lock adapters.
#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oll.hpp"
#include "sim/memory.hpp"

namespace oll {
namespace {

// --- concepts -----------------------------------------------------------------

static_assert(SharedLockable<GollLock<>>);
static_assert(SharedLockable<FollLock<>>);
static_assert(SharedLockable<RollLock<>>);
static_assert(SharedLockable<KsuhRwLock<>>);
static_assert(SharedLockable<SolarisRwLock<>>);
static_assert(SharedLockable<McsRwLock<>>);
static_assert(SharedLockable<BigReaderRwLock<>>);
static_assert(SharedLockable<CentralRwLock<>>);
static_assert(SharedLockable<std::shared_mutex>);
static_assert(TrySharedLockable<GollLock<>>);
static_assert(TrySharedLockable<SolarisRwLock<>>);
static_assert(TrySharedLockable<CentralRwLock<>>);
static_assert(UpgradableLockable<GollLock<>>);
static_assert(!UpgradableLockable<FollLock<>>);
static_assert(BasicLockable<TatasLock<>>);
static_assert(BasicLockable<TicketLock<>>);

// --- guards --------------------------------------------------------------------

TEST(Guards, ReadGuardRaii) {
  GollLock<> lock;
  {
    ReadGuard g(lock);
    EXPECT_TRUE(g.owns_lock());
    EXPECT_TRUE(lock.state().nonzero);
  }
  EXPECT_FALSE(lock.state().nonzero);
}

TEST(Guards, WriteGuardRaii) {
  GollLock<> lock;
  {
    WriteGuard g(lock);
    EXPECT_TRUE(g.owns_lock());
    EXPECT_FALSE(lock.state().open);
  }
  EXPECT_TRUE(lock.state().open);
}

TEST(Guards, EarlyUnlock) {
  GollLock<> lock;
  ReadGuard g(lock);
  g.unlock();
  EXPECT_FALSE(g.owns_lock());
  EXPECT_FALSE(lock.state().nonzero);
  // Destructor must not double-unlock (the DCHECKs inside depart would
  // fire on surplus underflow in debug builds).
}

TEST(Guards, MoveTransfersOwnership) {
  GollLock<> lock;
  {
    WriteGuard a(lock);
    WriteGuard b(std::move(a));
    EXPECT_FALSE(a.owns_lock());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.owns_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Guards, WorkWithStdSharedMutex) {
  std::shared_mutex m;
  {
    ReadGuard g(m);
  }
  {
    WriteGuard g(m);
  }
}

TEST(Guards, StdSharedLockOverOurLocks) {
  // Our locks satisfy the standard SharedMutex requirements used by
  // std::shared_lock / std::unique_lock.
  FollLock<> lock;
  {
    std::shared_lock g(lock);
  }
  {
    std::unique_lock g(lock);
  }
  SolarisRwLock<> s;
  {
    std::shared_lock g(s);
  }
}

// --- RwProtected -----------------------------------------------------------------

TEST(RwProtected, ReadAndWrite) {
  RwProtected<std::string, FollLock<>> value("hello");
  EXPECT_EQ(value.read([](const std::string& s) { return s.size(); }), 5u);
  value.write([](std::string& s) { s += " world"; });
  EXPECT_EQ(value.snapshot(), "hello world");
}

TEST(RwProtected, ReturnsReferenceResults) {
  RwProtected<std::vector<int>, GollLock<>> v;
  v.write([](std::vector<int>& x) { x = {1, 2, 3}; });
  const int sum = v.read([](const std::vector<int>& x) {
    int s = 0;
    for (int i : x) s += i;
    return s;
  });
  EXPECT_EQ(sum, 6);
}

TEST(RwProtected, ConcurrentAccessIsExclusive) {
  RwProtected<std::uint64_t, RollLock<>> counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        counter.write([](std::uint64_t& c) { ++c; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.snapshot(), 4u * 2000u);
}

// --- factory -----------------------------------------------------------------------

TEST(Factory, AllKindsConstructible) {
  for (LockKind kind : all_lock_kinds()) {
    auto lock = make_rwlock(kind);
    ASSERT_NE(lock, nullptr) << lock_kind_name(kind);
    lock->lock();
    lock->unlock();
    lock->lock_shared();
    lock->unlock_shared();
  }
}

TEST(Factory, SimKindsConstructible) {
  for (LockKind kind : all_lock_kinds()) {
    auto lock = make_rwlock<sim::SimMemory>(kind);
    if (kind == LockKind::kStdShared) {
      EXPECT_EQ(lock, nullptr);  // cannot instrument std::shared_mutex
      continue;
    }
    ASSERT_NE(lock, nullptr) << lock_kind_name(kind);
    lock->lock();
    lock->unlock();
  }
}

TEST(Factory, NamesRoundTrip) {
  EXPECT_EQ(parse_lock_kind("goll"), LockKind::kGoll);
  EXPECT_EQ(parse_lock_kind("FOLL"), LockKind::kFoll);
  EXPECT_EQ(parse_lock_kind("roll"), LockKind::kRoll);
  EXPECT_EQ(parse_lock_kind("ksuh"), LockKind::kKsuh);
  EXPECT_EQ(parse_lock_kind("solaris"), LockKind::kSolarisLike);
  EXPECT_EQ(parse_lock_kind("mcs-rw"), LockKind::kMcsRw);
  EXPECT_EQ(parse_lock_kind("bigreader"), LockKind::kBigReader);
  EXPECT_EQ(parse_lock_kind("central"), LockKind::kCentral);
  EXPECT_EQ(parse_lock_kind("std"), LockKind::kStdShared);
  EXPECT_FALSE(parse_lock_kind("nonsense").has_value());
}

TEST(Factory, Figure5LegendOrder) {
  const auto kinds = figure5_lock_kinds();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_STREQ(lock_kind_name(kinds[0]), "GOLL");
  EXPECT_STREQ(lock_kind_name(kinds[1]), "FOLL");
  EXPECT_STREQ(lock_kind_name(kinds[2]), "ROLL");
  EXPECT_STREQ(lock_kind_name(kinds[3]), "KSUH");
  EXPECT_STREQ(lock_kind_name(kinds[4]), "Solaris-like");
}

TEST(Factory, AdapterExposesUnderlying) {
  RwLockAdapter<GollLock<>> adapter("GOLL", GollOptions{});
  adapter.lock_shared();
  EXPECT_TRUE(adapter.underlying().state().nonzero);
  adapter.unlock_shared();
  EXPECT_STREQ(adapter.name(), "GOLL");
}

// --- other baselines -----------------------------------------------------------------

TEST(BigReader, WriterTakesAllSlots) {
  BigReaderRwLock<> lock;
  lock.lock();
  std::thread reader([&] {
    EXPECT_FALSE(lock.try_lock_shared());
  });
  reader.join();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST(BigReader, TryLockBacksOutCleanly) {
  BigReaderRwLock<> lock;
  std::thread reader_holding([&] {
    lock.lock_shared();
    // Writer try_lock must fail and release every slot it claimed.
    std::thread writer([&] { EXPECT_FALSE(lock.try_lock()); });
    writer.join();
    lock.unlock_shared();
  });
  reader_holding.join();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Central, WriterPreferenceBlocksNewReaders) {
  CentralRwLock<> lock;
  lock.lock_shared();
  std::atomic<bool> writer_started{false};
  std::thread writer([&] {
    writer_started.store(true);
    lock.lock();  // sets writerWanted, then waits for the reader
    lock.unlock();
  });
  while (!writer_started.load()) std::this_thread::yield();
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  // With the wanted bit set, new readers must be refused.
  if ((lock.lockword() & CentralRwLock<>::kWriterWanted) != 0) {
    EXPECT_FALSE(lock.try_lock_shared());
  }
  lock.unlock_shared();
  writer.join();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST(Solaris, LockwordEncodesState) {
  SolarisRwLock<> lock;
  EXPECT_EQ(lock.lockword(), 0u);
  lock.lock_shared();
  EXPECT_EQ(SolarisRwLock<>::readers(lock.lockword()), 1u);
  lock.unlock_shared();
  lock.lock();
  EXPECT_NE(lock.lockword() & SolarisRwLock<>::kWriteLocked, 0u);
  lock.unlock();
  EXPECT_EQ(lock.lockword(), 0u);
}

}  // namespace
}  // namespace oll
