// Model-based checking of C-SNZI against the paper's Figure 1 reference
// specification: a trivially-correct sequential model (integer surplus +
// OPEN/CLOSED flag) is driven with the same random operation sequence as
// the real implementation, and every return value and query must agree.
//
// This pins the implementation to the SPECIFICATION (Figure 1), while
// csnzi_test.cpp pins it to hand-picked cases and snzi_stress_test.cpp to
// concurrent invariants.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "platform/memory.hpp"
#include "platform/rng.hpp"
#include "snzi/csnzi.hpp"

namespace oll {
namespace {

// Figure 1, verbatim.
class ReferenceCSnzi {
 public:
  bool arrive() {  // returns arrived?
    if (!open_) return false;
    ++surplus_;
    return true;
  }

  bool depart() {  // requires surplus > 0
    --surplus_;
    return !(surplus_ == 0 && !open_);
  }

  // (nonzero, open)
  std::pair<bool, bool> query() const { return {surplus_ > 0, open_}; }

  bool close() {
    if (open_) {
      open_ = false;
      return surplus_ == 0;
    }
    return false;
  }

  void open() {
    ASSERT_OK();
    open_ = true;
  }

  bool close_if_empty() {
    if (open_ && surplus_ == 0) {
      open_ = false;
      return true;
    }
    return false;
  }

  void open_with_arrivals(std::uint64_t n, bool then_close) {
    ASSERT_OK();
    surplus_ = static_cast<std::int64_t>(n);
    open_ = !then_close;
  }

  std::int64_t surplus() const { return surplus_; }
  bool is_open() const { return open_; }

 private:
  void ASSERT_OK() const {
    // Open/OpenWithArrivals preconditions (Figure 1).
    ASSERT_FALSE(open_);
    ASSERT_EQ(surplus_, 0);
  }

  std::int64_t surplus_ = 0;
  bool open_ = true;
};

struct Hold {
  CSnzi<RealMemory>::Ticket ticket;
};

class CSnziModelCheck : public ::testing::TestWithParam<ArrivalPolicy> {};

TEST_P(CSnziModelCheck, RandomSequencesAgreeWithFigure1) {
  CSnziOptions opts;
  opts.policy = GetParam();
  opts.leaves = 8;
  opts.levels = 2;
  opts.fanout = 4;

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    CSnzi<RealMemory> impl(opts);
    ReferenceCSnzi model;
    Xoshiro256ss rng(seed);
    std::vector<Hold> holds;        // arrivals not yet departed
    std::uint64_t pre_arrivals = 0; // direct tickets from open_with_arrivals

    for (int step = 0; step < 4000; ++step) {
      // Queries must agree at every step.
      const auto q = impl.query();
      const auto [m_nonzero, m_open] = model.query();
      ASSERT_EQ(q.nonzero, m_nonzero) << "seed " << seed << " step " << step;
      ASSERT_EQ(q.open, m_open) << "seed " << seed << " step " << step;

      switch (rng.next_below(6)) {
        case 0:    // arrive
        case 1: {  // (weighted)
          auto t = impl.arrive();
          const bool m = model.arrive();
          ASSERT_EQ(t.arrived(), m) << "seed " << seed << " step " << step;
          if (t.arrived()) holds.push_back(Hold{t});
          break;
        }
        case 2: {  // depart (tree/root ticket first, then pre-arrivals)
          if (!holds.empty()) {
            const std::size_t i = rng.next_below(holds.size());
            const bool r = impl.depart(holds[i].ticket);
            holds.erase(holds.begin() + static_cast<std::ptrdiff_t>(i));
            ASSERT_EQ(r, model.depart()) << "seed " << seed << " step "
                                         << step;
          } else if (pre_arrivals > 0) {
            --pre_arrivals;
            const bool r = impl.depart(impl.direct_ticket());
            ASSERT_EQ(r, model.depart()) << "seed " << seed << " step "
                                         << step;
          }
          break;
        }
        case 3: {  // close
          ASSERT_EQ(impl.close(), model.close())
              << "seed " << seed << " step " << step;
          break;
        }
        case 4: {  // close_if_empty
          ASSERT_EQ(impl.close_if_empty(), model.close_if_empty())
              << "seed " << seed << " step " << step;
          break;
        }
        case 5: {  // open / open_with_arrivals (only when precondition holds)
          if (!model.is_open() && model.surplus() == 0) {
            if (rng.bernoulli(1, 2)) {
              impl.open();
              model.open();
            } else {
              const std::uint64_t n = rng.next_below(5);
              const bool then_close = rng.bernoulli(1, 3);
              impl.open_with_arrivals(n, then_close);
              model.open_with_arrivals(n, then_close);
              pre_arrivals += n;
            }
          }
          break;
        }
      }
    }
    // Drain and verify the final state agrees.
    while (!holds.empty()) {
      ASSERT_EQ(impl.depart(holds.back().ticket), model.depart());
      holds.pop_back();
    }
    while (pre_arrivals > 0) {
      ASSERT_EQ(impl.depart(impl.direct_ticket()), model.depart());
      --pre_arrivals;
    }
    ASSERT_EQ(impl.query().nonzero, model.query().first);
    ASSERT_EQ(impl.query().open, model.query().second);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CSnziModelCheck,
                         ::testing::Values(ArrivalPolicy::kAdaptive,
                                           ArrivalPolicy::kAlwaysRoot,
                                           ArrivalPolicy::kAlwaysTree),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArrivalPolicy::kAdaptive: return "adaptive";
                             case ArrivalPolicy::kAlwaysRoot: return "root";
                             case ArrivalPolicy::kAlwaysTree: return "tree";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace oll
