// VersionedRwLock / optimistic read mode (DESIGN.md §13): the wrapper's
// stamp protocol, the OptGuard and RwProtected::read_optimistic surfaces,
// the retry/fallback policy, stats plumbing — and the PR's acceptance
// evidence: under the simulated coherence model an uncontended optimistic
// read performs ZERO shared-line stores and zero RMWs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "core/guards.hpp"
#include "core/rw_protected.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/versioned_rwlock.hpp"
#include "platform/fault.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace oll {
namespace {

using VCentral = VersionedRwLock<CentralRwLock<>>;

TEST(VersionedRwLock, SatisfiesOptimisticConcept) {
  static_assert(OptimisticSharedLockable<VCentral>);
  static_assert(OptimisticSharedLockable<VersionedRwLock<GollLock<>>>);
  // The erased surface satisfies it too (defaults), so generic retry loops
  // over AnyRwLock compile and go straight to the pessimistic path for
  // kinds without the mode.
  static_assert(OptimisticSharedLockable<AnyRwLock>);
  static_assert(!OptimisticSharedLockable<CentralRwLock<>>);
}

TEST(VersionedRwLock, StampProtocolBasics) {
  VCentral lock;
  const std::uint64_t s1 = lock.opt_read_begin();
  ASSERT_NE(s1, kInvalidOptStamp);
  EXPECT_TRUE(lock.opt_read_validate(s1));

  // A writer bumps the stamp twice (odd while held, even after release).
  const std::uint64_t s2 = lock.opt_read_begin();
  lock.lock();
  EXPECT_EQ(lock.opt_read_begin(), kInvalidOptStamp);  // odd: dead on arrival
  lock.unlock();
  EXPECT_FALSE(lock.opt_read_validate(s2));

  // Readers (pessimistic or optimistic) never perturb the stamp.
  const std::uint64_t s3 = lock.opt_read_begin();
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.opt_read_validate(s3));
  EXPECT_EQ(lock.opt_read_begin(), s3);
}

TEST(VersionedRwLock, TimedAndTryWritersBumpTheStamp) {
  // Interop with the timed-acquisition surface (DESIGN.md §11): every
  // writer path must run the stamp protocol, not just lock()/unlock().
  VCentral lock;
  const std::uint64_t s1 = lock.opt_read_begin();
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
  EXPECT_FALSE(lock.opt_read_validate(s1));

  const std::uint64_t s2 = lock.opt_read_begin();
  ASSERT_TRUE(lock.try_lock_for(std::chrono::milliseconds(50)));
  lock.unlock();
  EXPECT_FALSE(lock.opt_read_validate(s2));

  // Shared paths must NOT bump it.
  const std::uint64_t s3 = lock.opt_read_begin();
  ASSERT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
  ASSERT_TRUE(lock.try_lock_shared_for(std::chrono::milliseconds(50)));
  lock.unlock_shared();
  EXPECT_TRUE(lock.opt_read_validate(s3));
}

TEST(VersionedRwLock, StatsCountAndMerge) {
  VCentral lock;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t s = lock.opt_read_begin();
    EXPECT_TRUE(lock.opt_read_validate(s));
  }
  const std::uint64_t failed = lock.opt_read_begin();
  lock.lock();
  lock.unlock();
  EXPECT_FALSE(lock.opt_read_validate(failed));
  lock.lock_shared();
  lock.unlock_shared();
  lock.count_opt_fallback();

  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.opt_reads, 10u);
  EXPECT_EQ(s.opt_validation_failures, 1u);
  EXPECT_EQ(s.opt_fallbacks, 1u);
  // Merged from the underlying lock: the pessimistic traffic.
  EXPECT_EQ(s.writes(), 1u);
  EXPECT_EQ(s.reads(), 1u);
}

TEST(VersionedRwLock, InvalidBeginCountsOnceNotTwice) {
  VCentral lock;
  lock.lock();
  const std::uint64_t s = lock.opt_read_begin();  // counted here
  EXPECT_EQ(s, kInvalidOptStamp);
  EXPECT_FALSE(lock.opt_read_validate(s));  // early-out: not counted again
  lock.unlock();
  EXPECT_EQ(lock.stats().opt_validation_failures, 1u);
}

TEST(OptGuard, ValidateAndRestart) {
  VCentral lock;
  OptGuard<VCentral> g(lock);
  ASSERT_TRUE(g.started());
  EXPECT_TRUE(g.validate());

  OptGuard<VCentral> g2(lock);
  lock.lock();
  lock.unlock();
  EXPECT_FALSE(g2.validate());
  g2.restart();
  ASSERT_TRUE(g2.started());
  EXPECT_TRUE(g2.validate());
}

TEST(OptGuard, WorksOverErasedSurface) {
  // AnyRwLock's default optimistic surface: a kind without the mode begins
  // dead-on-arrival, so a generic guard loop immediately goes pessimistic.
  auto plain = make_rwlock(LockKind::kGoll);
  EXPECT_FALSE(plain->supports_optimistic());
  OptGuard<AnyRwLock> dead(*plain);
  EXPECT_FALSE(dead.started());
  EXPECT_FALSE(dead.validate());
  EXPECT_EQ(plain->opt_max_retries(), 0u);

  auto opt = make_rwlock(LockKind::kOptGoll);
  EXPECT_TRUE(opt->supports_optimistic());
  OptGuard<AnyRwLock> live(*opt);
  ASSERT_TRUE(live.started());
  EXPECT_TRUE(live.validate());
}

TEST(RwProtected, ReadOptimisticReturnsValueAndCounts) {
  RwProtected<int, VCentral> box(41);
  box.write([](int& v) { v = 42; });
  const int got = box.read_optimistic([](const int& v) { return v; });
  EXPECT_EQ(got, 42);
  EXPECT_GE(box.mutex().stats().opt_reads, 1u);
  EXPECT_EQ(box.mutex().stats().opt_fallbacks, 0u);
  // void-returning closures compile and validate too.
  int copy = 0;
  box.read_optimistic([&](const int& v) { copy = v; });
  EXPECT_EQ(copy, 42);
}

TEST(RwProtected, ReadOptimisticRetriesThenFallsBack) {
  // A writer intervenes in every optimistic window: after the retry budget
  // the call must complete pessimistically (under lock_shared) and count
  // exactly one fallback.  The interfering closure runs lock()/unlock()
  // while NO lock is held (optimistic sections are lock-free); it stops
  // interfering once the budget is spent so the pessimistic pass cannot
  // self-deadlock.
  RwProtected<int, VCentral> box(7);
  const std::uint32_t attempts = box.mutex().opt_max_retries() + 1;
  std::uint32_t calls = 0;
  const int got = box.read_optimistic([&](const int& v) {
    if (++calls <= attempts) {
      box.mutex().lock();
      box.mutex().unlock();
    }
    return v;
  });
  EXPECT_EQ(got, 7);
  EXPECT_EQ(calls, attempts + 1);  // every attempt + the pessimistic pass
  const LockStatsSnapshot s = box.mutex().stats();
  EXPECT_EQ(s.opt_fallbacks, 1u);
  EXPECT_EQ(s.opt_validation_failures, attempts);
  EXPECT_EQ(s.opt_reads, 0u);
}

TEST(RwProtected, ReadOptimisticOnPlainLockIsJustRead) {
  // Statically degrades: no optimistic surface, no counters, same result.
  RwProtected<int, CentralRwLock<>> box(9);
  EXPECT_EQ(box.read_optimistic([](const int& v) { return v; }), 9);
}

TEST(VersionedRwLock, ConcurrentOptimisticReadersSeeConsistentPairs) {
  // The payload follows the documented copy discipline: optimistic windows
  // read concurrently-mutable members as relaxed atomics (the loads race
  // with writers by design; validation discards torn results).
  struct Pair {
    std::atomic<std::uint64_t> first{0};
    std::atomic<std::uint64_t> second{0};
  };
  RwProtected<Pair, VCentral> box;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto pair = box.read_optimistic([](const Pair& p) {
          const std::uint64_t a = p.first.load(std::memory_order_relaxed);
          const std::uint64_t b = p.second.load(std::memory_order_relaxed);
          return std::make_pair(a, b);
        });
        if (pair.first != pair.second) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 5000; ++i) {
    box.write([](Pair& p) {
      p.first.store(p.first.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
      std::this_thread::yield();
      p.second.store(p.second.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    });
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(inconsistent.load(), 0u);
}

// --- the acceptance evidence ----------------------------------------------

// Under the simulated coherence model every M::Atomic access is charged to
// the per-thread OpCounters.  An uncontended optimistic read must charge
// two loads and NOTHING else: no stores, no RMWs — the zero-shared-line
// read path the mode exists for.  (LockStats/tracing live on private
// plain-atomic lines the model does not instrument, mirroring their cost
// class on real hardware: private, never contended.)
TEST(VersionedRwLockSim, UncontendedOptimisticReadIsStoreFree) {
  auto machine = std::make_unique<sim::Machine>();
  VersionedRwLock<CentralRwLock<sim::SimMemory>, sim::SimMemory> lock;
  sim::ThreadGuard guard(*machine, 0);
  // The attached context accumulates the counters locally and deposits at
  // detach; snapshot it directly for live deltas.
  sim::ThreadContext* ctx = sim::ThreadContext::current();
  ASSERT_NE(ctx, nullptr);

  // Warm the version line into this thread's cache, then measure.
  const std::uint64_t warm = lock.opt_read_begin();
  ASSERT_TRUE(lock.opt_read_validate(warm));
  const sim::OpCounters before = ctx->counters();
  constexpr int kReads = 100;
  for (int i = 0; i < kReads; ++i) {
    const std::uint64_t s = lock.opt_read_begin();
    ASSERT_NE(s, kInvalidOptStamp);
    ASSERT_TRUE(lock.opt_read_validate(s));
  }
  const sim::OpCounters after = ctx->counters();
  EXPECT_EQ(after.stores - before.stores, 0u);
  EXPECT_EQ(after.rmws - before.rmws, 0u);
  EXPECT_EQ(after.loads - before.loads, 2u * kReads);

  // Contrast: the wrapped pessimistic read path does perform RMWs.
  const sim::OpCounters p0 = ctx->counters();
  lock.lock_shared();
  lock.unlock_shared();
  const sim::OpCounters p1 = ctx->counters();
  EXPECT_GT(p1.rmws - p0.rmws, 0u);
}

// Same evidence through the factory's erased surface for every opt-* kind:
// the adapter virtuals must not reintroduce shared stores.
TEST(VersionedRwLockSim, AllOptKindsStoreFreeThroughAnyRwLock) {
  for (LockKind kind : opt_lock_kinds()) {
    auto machine = std::make_unique<sim::Machine>();
    LockFactoryOptions o;
    o.max_threads = 8;
    auto lock = make_rwlock<sim::SimMemory>(kind, o);
    ASSERT_NE(lock, nullptr);
    sim::ThreadGuard guard(*machine, 0);
    sim::ThreadContext* ctx = sim::ThreadContext::current();
    ASSERT_NE(ctx, nullptr);
    const std::uint64_t warm = lock->opt_read_begin();
    ASSERT_TRUE(lock->opt_read_validate(warm)) << lock->name();
    const sim::OpCounters before = ctx->counters();
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t s = lock->opt_read_begin();
      ASSERT_TRUE(lock->opt_read_validate(s)) << lock->name();
    }
    const sim::OpCounters after = ctx->counters();
    EXPECT_EQ(after.stores - before.stores, 0u) << lock->name();
    EXPECT_EQ(after.rmws - before.rmws, 0u) << lock->name();
  }
}

}  // namespace
}  // namespace oll
