// Litmus harness for the memory-order audit (DESIGN.md §12).
//
// Each relaxation cluster in the audit is backed here by the classic litmus
// shape its correctness argument reduces to, run as a many-round two/three-
// thread loop under the schedule-perturbation layers the repo already has:
// per-thread fuzz yields (platform/test_memory.hpp) plus the fault layer's
// chaos profile (platform/fault.hpp) to shear the windows open.  The shapes:
//
//   * store-buffering (SB) — the Dekker quartets that deliberately stay
//     seq_cst: KSUH's activation race, BRAVO's publish/revoke, and GOLL's
//     metalock-eliding release (fence flavor).  Postcondition: the "both
//     sides miss each other" outcome is forbidden.
//   * message-passing (MP) — the release/acquire publication clusters the
//     audit downgraded from seq_cst: KSUH's link/splice stores, the tail
//     hand-offs.  Postcondition: observing the flag implies observing the
//     payload.
//   * grant-handoff — a lock holder publishes its critical section and
//     grants via a state store; the woken waiter must see the payload.
//     Also covers the idempotent double-activation the KSUH argument leans
//     on.
//
// On x86 (TSO) the SB shapes cannot fail even with wrong orders — they are
// semantic regression tripwires here; the AArch64 CI job is what runs them
// on a genuinely weak model.  The MP/handoff shapes run the exact order
// pairs the relaxed code uses, so TSan flags any pairing that no longer
// establishes happens-before.  The final section runs the two most-relaxed
// locks (KSUH, BRAVO) whole, under chaos faults, against a non-atomic
// payload — exclusion bugs surface as TSan races or torn reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "locks/bravo.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/ksuh_rwlock.hpp"
#include "locks/versioned_rwlock.hpp"
#include "platform/fault.hpp"
#include "platform/test_memory.hpp"
#include "platform/thread_id.hpp"

namespace oll {
namespace {

using Cell = TestMemory::Atomic<std::uint32_t>;

// TSan multiplies every yield/draw by ~10x; keep rounds modest so the whole
// suite stays in seconds under sanitizers.
constexpr int kRounds = 1500;

// Run one litmus round: spawn a body per entry, each pinned to a dense
// thread index (deterministic fault-layer streams) with fuzz yields seeded
// per (round, thread).
template <typename... Body>
void litmus_round(std::uint64_t round, Body&&... bodies) {
  std::vector<std::thread> threads;
  std::uint32_t idx = 0;
  (threads.emplace_back([&bodies, round, i = idx++] {
    ScopedThreadIndex pin(i);
    FuzzYield::set_seed(round * 6364136223846793005ULL + i + 1);
    bodies();
    FuzzYield::set_seed(0);
  }),
   ...);
  for (auto& t : threads) t.join();
}

class LitmusTest : public ::testing::Test {
 protected:
  void SetUp() override { fault_enable(fault_profile_chaos(), 1337); }
  void TearDown() override { fault_disable(); }
};

// --- store-buffering: the seq_cst Dekker quartets -------------------------

// KSUH activation (ksuh_rwlock.hpp acquire()/cascade()): linker publishes
// next then reads state; activator stores state then reads next.  Both
// reading the initial value would lose the wakeup.
TEST_F(LitmusTest, StoreBufferingKsuhActivation) {
  for (int r = 0; r < kRounds; ++r) {
    Cell next{0};
    Cell state{0};
    std::uint32_t linker_saw_state = 99;
    std::uint32_t activator_saw_next = 99;
    litmus_round(
        r,
        [&] {  // linker
          next.store(1, std::memory_order_seq_cst);  // S_next
          fault_perturb(FaultSite::kSpinWait);
          linker_saw_state = state.load(std::memory_order_seq_cst);  // L_state
        },
        [&] {  // activator
          state.store(1, std::memory_order_seq_cst);  // S_state
          fault_perturb(FaultSite::kSpinWait);
          activator_saw_next = next.load(std::memory_order_seq_cst);  // L_next
        });
    // At least one side must observe the other; both missing is the lost
    // wakeup the seq_cst quartet forbids.
    ASSERT_FALSE(linker_saw_state == 0 && activator_saw_next == 0)
        << "round " << r;
  }
}

// BRAVO publish/revoke (bravo.hpp): reader publishes its slot then re-checks
// the bias flag; writer clears the flag then scans the slot.  A reader that
// passed the re-check must be visible to the scanning writer.
TEST_F(LitmusTest, StoreBufferingBravoPublishRevoke) {
  for (int r = 0; r < kRounds; ++r) {
    Cell slot{0};
    Cell rbias{1};
    std::uint32_t reader_saw_bias = 99;
    std::uint32_t writer_saw_slot = 99;
    litmus_round(
        r,
        [&] {  // bias-path reader
          std::uint32_t expected = 0;
          // Publish (CAS success is the seq_cst Dekker op in the real code).
          slot.compare_exchange_strong(expected, 1,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
          fault_perturb(FaultSite::kSpinWait);
          reader_saw_bias = rbias.load(std::memory_order_seq_cst);  // re-check
        },
        [&] {  // revoking writer
          rbias.store(0, std::memory_order_seq_cst);  // clear
          fault_perturb(FaultSite::kSpinWait);
          writer_saw_slot = slot.load(std::memory_order_seq_cst);  // scan
        });
    // reader on bias path && writer saw an empty table = invisible reader.
    ASSERT_FALSE(reader_saw_bias == 1 && writer_saw_slot == 0)
        << "round " << r;
  }
}

// GOLL metalock-eliding release (goll_lock.hpp): release opens the C-SNZI,
// fences, re-checks the waiters flag; enqueuer sets the flag, fences,
// re-checks open.  Both missing = a waiter parked behind an open lock.
TEST_F(LitmusTest, StoreBufferingGollElidingRelease) {
  for (int r = 0; r < kRounds; ++r) {
    Cell open{0};
    Cell waiters{0};
    std::uint32_t release_saw_waiters = 99;
    std::uint32_t enqueuer_saw_open = 99;
    litmus_round(
        r,
        [&] {  // eliding release
          open.store(1, std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_seq_cst);
          fault_perturb(FaultSite::kHolderPreemption);
          release_saw_waiters = waiters.load(std::memory_order_relaxed);
        },
        [&] {  // enqueuer
          waiters.store(1, std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_seq_cst);
          fault_perturb(FaultSite::kQueueHandoff);
          enqueuer_saw_open = open.load(std::memory_order_relaxed);
        });
    ASSERT_FALSE(release_saw_waiters == 0 && enqueuer_saw_open == 0)
        << "round " << r;
  }
}

// --- message-passing: the downgraded release/acquire clusters -------------

// KSUH link/splice publication (prev/next stores downgraded from seq_cst to
// release, re-read with acquire): observing the link implies observing the
// node fields published before it.
TEST_F(LitmusTest, MessagePassingKsuhLinkPublication) {
  for (int r = 0; r < kRounds; ++r) {
    std::uint32_t payload = 0;  // non-atomic: TSan proves the hb edge
    Cell link{0};
    litmus_round(
        r,
        [&] {  // linker: init node fields, then publish the link
          payload = 42;
          link.store(1, std::memory_order_release);
        },
        [&] {  // neighbor: sees the link -> must see the fields
          if (link.load(std::memory_order_acquire) == 1) {
            ASSERT_EQ(payload, 42u) << "round " << r;
          }
        });
  }
}

// Tail hand-off (KSUH release_as_head's release tail-CAS paired with the
// next FASer's acquire): the departing head's critical section must be
// visible to the thread that acquires on the emptied queue.
TEST_F(LitmusTest, MessagePassingTailHandoff) {
  for (int r = 0; r < kRounds; ++r) {
    std::uint32_t cs_data = 0;
    TestMemory::Atomic<void*> tail{&cs_data};
    litmus_round(
        r,
        [&] {  // departing head: write CS, retreat tail to null
          cs_data = 7;
          void* expected = &cs_data;
          tail.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
        },
        [&] {  // next acquirer: FAS the tail; null = lock was free
          std::uint32_t me = 1;
          if (tail.exchange(&me, std::memory_order_acq_rel) == nullptr) {
            ASSERT_EQ(cs_data, 7u) << "round " << r;
          }
        });
  }
}

// Versioned stamp publication (versioned_rwlock.hpp writer_exit paired
// with opt_read_begin): the writer's even release-store of the version is
// the only edge that makes its critical-section stores visible to an
// optimistic reader, whose begin is a plain acquire load.  Non-atomic
// payload: TSan proves the happens-before.
TEST_F(LitmusTest, MessagePassingVersionStampPublication) {
  for (int r = 0; r < kRounds; ++r) {
    std::uint32_t payload = 0;
    Cell version{0};
    litmus_round(
        r,
        [&] {  // writer: enter (odd), mutate, exit (even, release)
          version.store(1, std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_release);
          payload = 42;
          fault_perturb(FaultSite::kHolderPreemption);
          version.store(2, std::memory_order_release);
        },
        [&] {  // optimistic reader: even stamp -> writer's stores visible
          const std::uint32_t v =
              version.load(std::memory_order_acquire);  // opt_read_begin
          if (v == 2) {
            ASSERT_EQ(payload, 42u) << "round " << r;
          }
        });
  }
}

// Versioned stamp validation, fence flavor (writer_enter's relaxed store +
// release fence paired with opt_read_validate's acquire fence + relaxed
// reload): a reader whose validate still sees the PRE-writer stamp cannot
// have observed any of the writer's payload stores.  The payload is a
// relaxed atomic — exactly the copy discipline rw_protected.hpp requires
// inside optimistic sections, because these loads intentionally race.
TEST_F(LitmusTest, MessagePassingVersionStampValidate) {
  for (int r = 0; r < kRounds; ++r) {
    Cell payload{0};
    Cell version{0};
    litmus_round(
        r,
        [&] {  // writer: odd stamp BEFORE any payload store
          version.store(1, std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_release);
          fault_perturb(FaultSite::kHolderPreemption);
          payload.store(7, std::memory_order_relaxed);
          version.store(2, std::memory_order_release);
        },
        [&] {  // reader: begin with stamp 0, read, validate
          if (version.load(std::memory_order_acquire) != 0) return;
          const std::uint32_t seen =
              payload.load(std::memory_order_relaxed);
          fault_perturb(FaultSite::kSpinWait);
          std::atomic_thread_fence(std::memory_order_acquire);  // validate
          if (version.load(std::memory_order_relaxed) == 0) {
            // Validated against stamp 0: the window was writer-free, so the
            // writer's store must not have been visible inside it.
            ASSERT_EQ(seen, 0u) << "round " << r;
          }
        });
  }
}

// --- grant-handoff --------------------------------------------------------

// A holder publishes its critical section and grants by storing kActive;
// the waiter spins with acquire and must see the payload.  The cascading
// second activator exercises the idempotent double-activation the KSUH
// argument allows: it probes the waiter's state *relaxed* (a stale read
// only causes a redundant grant), but — exactly as in the real cascade —
// it has first observed its OWN activation with acquire, so its re-grant
// carries the payload's visibility via granter -> cascader -> waiter.
// (An earlier version had the cascader re-grant off the relaxed probe
// alone, with no acquire edge of its own; TSan correctly flagged the
// waiter's payload read — the relaxed probe may only gate the store, it
// must never be the source of the happens-before.)
TEST_F(LitmusTest, GrantHandoffWithDoubleActivation) {
  for (int r = 0; r < kRounds; ++r) {
    std::uint32_t granted_payload = 0;
    Cell cascader_state{0};
    Cell state{0};
    litmus_round(
        r,
        [&] {  // granting holder: activates both successors directly
          granted_payload = 5;
          fault_perturb(FaultSite::kQueueHandoff);
          cascader_state.store(1, std::memory_order_seq_cst);
          state.store(1, std::memory_order_seq_cst);
        },
        [&] {  // cascading activator: own activation first, then re-grant
          while (cascader_state.load(std::memory_order_acquire) != 1) {
            std::this_thread::yield();
          }
          if (state.load(std::memory_order_relaxed) == 0) {
            state.store(1, std::memory_order_seq_cst);  // idempotent re-grant
          }
        },
        [&] {  // waiter: woken by either activator
          while (state.load(std::memory_order_acquire) != 1) {
            std::this_thread::yield();
          }
          ASSERT_EQ(granted_payload, 5u) << "round " << r;
        });
  }
}

// --- whole-lock litmus under chaos ----------------------------------------

// The two most-relaxed locks run end-to-end against a non-atomic counter.
// Exclusion bugs from a wrong downgrade surface as TSan races (writer vs
// writer, writer vs reader) or as torn/odd observations asserted below.
template <typename Lock>
void whole_lock_litmus(Lock& lock, int writers, int readers, int iters) {
  std::uint64_t counter = 0;  // non-atomic on purpose
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      ScopedThreadIndex pin(static_cast<std::uint32_t>(w));
      FuzzYield::set_seed(0x9e37 + w);
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        counter += 2;  // even step: readers must never see an odd value
        lock.unlock();
      }
      FuzzYield::set_seed(0);
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      ScopedThreadIndex pin(static_cast<std::uint32_t>(writers + r));
      FuzzYield::set_seed(0x79b9 + r);
      for (int i = 0; i < iters; ++i) {
        lock.lock_shared();
        const std::uint64_t a = counter;
        const std::uint64_t b = counter;
        lock.unlock_shared();
        ASSERT_EQ(a, b);
        ASSERT_EQ(a % 2, 0u);
      }
      FuzzYield::set_seed(0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(writers) * iters * 2);
}

TEST_F(LitmusTest, WholeLockKsuhUnderChaos) {
  KsuhRwLock<TestMemory> lock;
  whole_lock_litmus(lock, /*writers=*/2, /*readers=*/2, /*iters=*/3000);
}

TEST_F(LitmusTest, WholeLockBravoUnderChaos) {
  Bravo<CentralRwLock<TestMemory>, TestMemory> lock;
  whole_lock_litmus(lock, /*writers=*/2, /*readers=*/2, /*iters=*/3000);
}

// The versioned wrapper end-to-end under chaos: writers mutate a two-word
// payload under the lock; readers use raw begin/validate windows with the
// relaxed-atomic copy discipline.  A validated window observing the pair
// inconsistent means the stamp protocol's fences are wrong; TSan
// additionally checks every edge the two MP shapes above isolate.
TEST_F(LitmusTest, WholeLockVersionedOptimisticUnderChaos) {
  VersionedRwLock<CentralRwLock<TestMemory>, TestMemory> lock;
  Cell a{0};
  Cell b{0};
  std::vector<std::thread> threads;
  constexpr int kIters = 3000;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      ScopedThreadIndex pin(static_cast<std::uint32_t>(w));
      FuzzYield::set_seed(0x9e37 + w);
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        a.store(a.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        fault_perturb(FaultSite::kHolderPreemption);
        b.store(b.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        lock.unlock();
      }
      FuzzYield::set_seed(0);
    });
  }
  std::atomic<std::uint64_t> torn{0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      ScopedThreadIndex pin(static_cast<std::uint32_t>(2 + r));
      FuzzYield::set_seed(0x79b9 + r);
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t stamp = lock.opt_read_begin();
        if (stamp == kInvalidOptStamp) continue;
        const std::uint32_t va = a.load(std::memory_order_relaxed);
        const std::uint32_t vb = b.load(std::memory_order_relaxed);
        if (lock.opt_read_validate(stamp) && va != vb) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
      FuzzYield::set_seed(0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0u) << "validated window saw a torn payload";
  EXPECT_EQ(a.load(std::memory_order_relaxed), 2u * kIters);
}

}  // namespace
}  // namespace oll
