// Mechanism tests: use the per-lock statistics to assert the paper's causal
// claims directly, not just their throughput consequences.
//
//   §3.2  "the mutex is never accessed for read-only workloads"   (GOLL)
//   §4.2  "read-only workloads avoid writing the tail pointer
//          entirely" — readers share the existing node               (FOLL)
//   §4.3  readers overtake waiting writers by joining waiting
//          reader groups                                             (ROLL)
//
// Also covers the blocking (condition-variable) wait strategy added for
// production use (paper §1: real deployments deschedule waiting threads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/roll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "platform/spin.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;
using test::run_mixed_workload;

// --- §3.2: GOLL read-only workloads never queue ------------------------------

TEST(Mechanism, GollReadOnlyNeverTouchesQueue) {
  GollLock<> lock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  for (auto& th : threads) th.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_fast, 8u * 3000u);
  EXPECT_EQ(s.read_queued, 0u);  // the §3.2 claim, verified causally
  EXPECT_EQ(s.writes(), 0u);
}

TEST(Mechanism, GollWritersForceQueueing) {
  GollLock<> lock;
  lock.lock();  // held for writing
  std::thread reader([&] {
    lock.lock_shared();
    lock.unlock_shared();
  });
  // Wait until the reader has demonstrably queued (the counter is bumped
  // right before it parks), so the assertion below cannot race.
  spin_until([&] { return lock.stats().read_queued == 1; });
  lock.unlock();
  reader.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.write_fast, 1u);
  EXPECT_EQ(s.read_queued, 1u);  // the reader had to sleep in the queue
}

// --- DESIGN.md §15: a combined write performs zero metalock handoffs --------

// One delegation round: the main thread holds the lock for writing, a
// delegator publishes a closure via with_write, and the holder's unlock
// drains it.  Returns false (caller retries) if the delegator's bounded spin
// expired before the drain and it fell back to a conventional acquire — the
// stats then show a queued write rather than a combined op, so a false round
// can never fake the assertion.
bool combined_round(GollLock<>& lock, LockStatsSnapshot& before,
                    LockStatsSnapshot& after) {
  lock.lock();
  before = lock.stats();
  std::atomic<bool> ran{false};
  std::thread delegator([&] {
    lock.with_write(
        [](void* p) {
          static_cast<std::atomic<bool>*>(p)->store(
              true, std::memory_order_release);
        },
        &ran);
  });
  // Wait (bounded) for the closure to appear in the combining pool.  No
  // spin_until: if the delegator already gave up and queued, pending stays
  // zero forever and we must release the lock to let it through.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (!lock.combining_pending() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  before = lock.stats();  // re-snapshot: nothing combined yet, publish done
  lock.unlock();          // drains the pool while still exclusive
  delegator.join();
  after = lock.stats();
  EXPECT_TRUE(ran.load(std::memory_order_acquire));
  return after.combined_ops == before.combined_ops + 1;
}

TEST(Mechanism, GollCombinedWriteSkipsMetalockAndQueue) {
  GollOptions opts;
  opts.combine = true;
  GollLock<> lock(opts);
  for (int attempt = 0; attempt < 50; ++attempt) {
    LockStatsSnapshot before, after;
    if (!combined_round(lock, before, after)) continue;  // raced; retry
    // The delegated op was executed by the holder's pre-release drain:
    EXPECT_EQ(after.combine_batches, before.combine_batches + 1);
    EXPECT_EQ(after.combine_handoffs_saved,
              before.combine_handoffs_saved + 1);
    // ...and the delegator itself never took ownership: no metalock
    // handoff, no queue transit, no write acquisition of its own.  This is
    // the counter-level proof behind the fig5f throughput win.
    EXPECT_EQ(after.meta_handoffs, before.meta_handoffs);
    EXPECT_EQ(after.write_queued, before.write_queued);
    EXPECT_EQ(after.writes(), before.writes());
    return;
  }
  FAIL() << "no round produced a combined op in 50 attempts";
}

// --- §4.2: FOLL readers share one node ----------------------------------------

TEST(Mechanism, FollReadOnlySharesFirstNode) {
  FollLock<> lock;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  for (auto& th : threads) th.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.reads(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Read-only: no reader ever waits (every group it joins is active).
  EXPECT_EQ(s.read_queued, 0u);
}

TEST(Mechanism, FollReadersBehindWriterCountAsQueued) {
  FollLock<> lock;
  lock.lock();
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock.lock_shared();
      lock.unlock_shared();
    });
  }
  // All three must have joined the queue (counters bump pre-wait).
  spin_until([&] {
    return lock.stats().reads() == static_cast<std::uint64_t>(kReaders);
  });
  lock.unlock();
  for (auto& th : readers) th.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.reads(), static_cast<std::uint64_t>(kReaders));
  EXPECT_GE(s.read_queued, 1u);  // at least the node-enqueuing reader waited
  EXPECT_EQ(s.write_fast, 1u);
}

// --- §4.3: ROLL reader preference ------------------------------------------------

TEST(Mechanism, RollOvertakingReaderCountsAsQueuedJoin) {
  RollLock<> lock;
  lock.lock();  // W0
  std::thread r1([&] {
    lock.lock_shared();
    lock.unlock_shared();
  });
  spin_until([&] { return lock.stats().read_queued == 1; });
  std::thread w1([&] {
    lock.lock();
    lock.unlock();
  });
  spin_until([&] { return lock.stats().write_queued == 1; });
  std::thread r2([&] {
    lock.lock_shared();  // overtakes w1 by joining r1's waiting node
    lock.unlock_shared();
  });
  spin_until([&] { return lock.stats().read_queued == 2; });
  lock.unlock();
  r1.join();
  r2.join();
  w1.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.reads(), 2u);
  EXPECT_EQ(s.read_queued, 2u);  // both readers waited (in ONE group)
  EXPECT_EQ(s.write_queued, 1u);
  EXPECT_EQ(s.write_fast, 1u);  // W0
}

TEST(Mechanism, StatsConsistentUnderMixedLoad) {
  GollLock<> goll;
  FollLock<> foll;
  RollLock<> roll;
  auto drive = [](auto& lock) {
    ExclusionChecker checker;
    run_mixed_workload(lock, checker, 6, 800, 80);
    EXPECT_EQ(checker.violations(), 0u);
    const LockStatsSnapshot s = lock.stats();
    EXPECT_EQ(s.reads() + s.writes(), 6u * 800u);
  };
  drive(goll);
  drive(foll);
  drive(roll);
}

// --- blocking wait strategy --------------------------------------------------------

TEST(BlockingWaiters, GollExclusionWithParkedThreads) {
  GollOptions o;
  o.wait_strategy = WaitStrategy::kBlocking;
  GollLock<> lock(o);
  ExclusionChecker checker;
  const auto writes = run_mixed_workload(lock, checker, 6, 1000, 70);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST(BlockingWaiters, SolarisExclusionWithParkedThreads) {
  SolarisOptions o;
  o.wait_strategy = WaitStrategy::kBlocking;
  SolarisRwLock<> lock(o);
  ExclusionChecker checker;
  const auto writes = run_mixed_workload(lock, checker, 6, 1000, 70);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST(BlockingWaiters, ParkedReaderGroupWakesTogether) {
  GollOptions o;
  o.wait_strategy = WaitStrategy::kBlocking;
  GollLock<> lock(o);
  lock.lock();
  constexpr int kReaders = 4;
  std::atomic<int> through{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock.lock_shared();  // parks on the condition variable
      through.fetch_add(1);
      lock.unlock_shared();
    });
  }
  for (int i = 0; i < 4000; ++i) std::this_thread::yield();
  lock.unlock();
  for (auto& th : readers) th.join();
  EXPECT_EQ(through.load(), kReaders);
}

TEST(BlockingWaiters, WriterParkAndHandoff) {
  GollOptions o;
  o.wait_strategy = WaitStrategy::kBlocking;
  GollLock<> lock(o);
  lock.lock_shared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    lock.lock();  // parks until the reader departs
    writer_done.store(true);
    lock.unlock();
  });
  for (int i = 0; i < 4000; ++i) std::this_thread::yield();
  EXPECT_FALSE(writer_done.load());
  lock.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

}  // namespace
}  // namespace oll
