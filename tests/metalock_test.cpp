// Tests for the selectable metalocks (locks/cohort_mcs_lock.hpp): mutual
// exclusion for all three kinds, the cohort lock's two-level behavior on
// synthetic multi-domain topologies (bounded cross-domain wait, handoff
// accounting, single-domain degradation), and the GOLL try paths' freedom
// from the metalock while contended writers hold it.
#include "locks/cohort_mcs_lock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "locks/goll_lock.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "fake_topology.hpp"

namespace oll {
namespace {

using test::FakeSysfs;

// Pins worker w to dense thread index w so DomainMap places it on cpu w of
// the synthetic topology; increments a counter that only exclusion protects.
// A start barrier makes the workers actually overlap — without it the loop
// is short enough that staggered thread creation serializes them and the
// lock never sees contention (or produces a single handoff).
template <typename Lock>
void exclusion_stress(Lock& lock, unsigned threads, unsigned iters) {
  std::uint64_t unprotected = 0;
  std::atomic<unsigned> ready{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedThreadIndex idx(t);
      ready.fetch_add(1);
      while (ready.load(std::memory_order_relaxed) < threads) {
        std::this_thread::yield();
      }
      for (unsigned i = 0; i < iters; ++i) {
        lock.lock();
        ++unprotected;
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(unprotected, static_cast<std::uint64_t>(threads) * iters);
}

TEST(MetalockKindNames, RoundTrip) {
  for (MetalockKind k :
       {MetalockKind::kTatas, MetalockKind::kMcs, MetalockKind::kCohort}) {
    const auto parsed = parse_metalock_kind(metalock_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_metalock_kind("bogus").has_value());
}

TEST(MetalockDispatch, ExclusionForEveryKind) {
  for (MetalockKind k :
       {MetalockKind::kTatas, MetalockKind::kMcs, MetalockKind::kCohort}) {
    MetalockOptions o;
    o.kind = k;
    o.max_threads = 16;
    Metalock<> lock(o);
    EXPECT_EQ(lock.kind(), k);
    exclusion_stress(lock, 4, 3000);
  }
}

TEST(McsMetalock, ExclusionAndReuseAcrossAcquisitions) {
  McsMetalock<> lock(16);
  exclusion_stress(lock, 4, 5000);
}

TEST(CohortMetalock, MultiDomainExclusion) {
  // 8 cpus, SMT off, 4 cpus per LLC => 2 domains; workers 0-3 are domain 0,
  // workers 4-7 domain 1.
  const Topology topo = Topology::synthetic(8, 1, 4, 4);
  MetalockOptions o;
  o.kind = MetalockKind::kCohort;
  o.cohort_budget = 2;
  o.topology = &topo;
  o.max_threads = 16;
  CohortMcsLock<> lock(o);
  ASSERT_EQ(lock.domains(), 2u);
  exclusion_stress(lock, 8, 2000);
  // A free-running stress proves nothing about the counters on a small or
  // single-cpu host (threads may never overlap); see the orchestrated
  // HandoffAccounting test for those.
  const MetalockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.handoffs, s.cohort_hits + s.cross_domain);
}

TEST(CohortMetalock, HandoffAccountingWithQueuedWaiters) {
  // Deterministic contention: the main thread (domain 0) holds the lock
  // while two more domain-0 threads and one domain-1 thread demonstrably
  // queue (they have a long sleep to get there, and enqueueing precedes
  // their spin).  Releasing must then hand off through the queues:
  //   main -> d0 leader        global pass        (cross_domain)
  //   d0 leader -> d0 second   intra-domain pass  (cohort_hit, budget 2)
  //   d0 second -> d1 thread   global pass        (cross_domain)
  // (The d1 thread may instead slot in ahead of d0's leader — the global
  // FAS order is a race — but every schedule yields at least one
  // intra-domain pass and at least one cross-domain pass.)
  const Topology topo = Topology::synthetic(8, 1, 4, 4);
  MetalockOptions o;
  o.kind = MetalockKind::kCohort;
  o.cohort_budget = 2;
  o.topology = &topo;
  o.max_threads = 16;
  CohortMcsLock<> lock(o);
  ASSERT_EQ(lock.domains(), 2u);

  ScopedThreadIndex main_idx(0);  // domain 0
  lock.lock();
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (unsigned idx : {1u, 2u, 4u}) {  // cpus 1,2: domain 0; cpu 4: domain 1
    waiters.emplace_back([&, idx] {
      ScopedThreadIndex i(idx);
      lock.lock();
      lock.unlock();
      done.fetch_add(1);
    });
  }
  // All three must be queued before the release chain starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  lock.unlock();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(done.load(), 3);

  const MetalockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.handoffs, s.cohort_hits + s.cross_domain);
  EXPECT_GE(s.handoffs, 3u);
  EXPECT_GE(s.cohort_hits, 1u);
  EXPECT_GE(s.cross_domain, 1u);
}

TEST(CohortMetalock, CrossDomainWaiterIsNotStarved) {
  // Three domain-0 threads keep the local queue non-empty indefinitely; the
  // cohort budget must still force a global release so the domain-1 waiter
  // gets in.  The failsafe bounds the test if the budget is broken (the
  // hammers would otherwise spin until the 300s ctest timeout).
  const Topology topo = Topology::synthetic(8, 1, 4, 4);
  MetalockOptions o;
  o.kind = MetalockKind::kCohort;
  o.cohort_budget = 2;
  o.topology = &topo;
  o.max_threads = 16;
  CohortMcsLock<> lock(o);
  ASSERT_EQ(lock.domains(), 2u);

  constexpr std::uint64_t kFailsafe = 20'000'000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> d0_acquires{0};
  std::vector<std::thread> hammers;
  for (unsigned t = 0; t < 3; ++t) {
    hammers.emplace_back([&, t] {
      ScopedThreadIndex idx(t);  // cpus 0-2: domain 0
      while (!stop.load(std::memory_order_relaxed) &&
             d0_acquires.load(std::memory_order_relaxed) < kFailsafe) {
        lock.lock();
        d0_acquires.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  std::thread cross([&] {
    ScopedThreadIndex idx(4);  // cpu 4: domain 1
    // Let the hammers saturate the domain-0 queue first.
    while (d0_acquires.load(std::memory_order_relaxed) < 10'000) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 100; ++i) {
      lock.lock();
      lock.unlock();
    }
    stop.store(true);
  });
  cross.join();
  for (auto& h : hammers) h.join();
  EXPECT_LT(d0_acquires.load(), kFailsafe)
      << "cross-domain waiter starved until the failsafe tripped";
  // No cross_domain > 0 assertion: on a single-CPU host (and under TSan's
  // serializing scheduler) the domain-1 thread can take the uncontended
  // bypass for every acquisition, so the counter may legitimately stay 0.
  // Deterministic cross-domain accounting is covered by
  // HandoffAccountingWithQueuedWaiters.
  const auto s = lock.stats();
  EXPECT_EQ(s.handoffs, s.cohort_hits + s.cross_domain);
}

TEST(CohortMetalock, SingleDomainDegradesToLocalQueue) {
  // One LLC domain: the global level arbitrates between nobody and the lock
  // must behave as a plain FIFO MCS queue — every handoff intra-domain.
  const Topology topo = Topology::synthetic(4, 1, 4, 4);
  MetalockOptions o;
  o.kind = MetalockKind::kCohort;
  o.topology = &topo;
  o.max_threads = 16;
  CohortMcsLock<> lock(o);
  ASSERT_EQ(lock.domains(), 1u);
  exclusion_stress(lock, 4, 3000);

  // Orchestrated handoff chain (robust on a single-cpu host, where a free
  // stress may never queue anyone): hold, let two threads queue, release.
  ScopedThreadIndex main_idx(0);
  lock.lock();
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (unsigned idx : {1u, 2u}) {
    waiters.emplace_back([&, idx] {
      ScopedThreadIndex i(idx);
      lock.lock();
      lock.unlock();
      done.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  lock.unlock();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(done.load(), 2);

  const MetalockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.cross_domain, 0u);
  EXPECT_EQ(s.handoffs, s.cohort_hits);
  EXPECT_GE(s.handoffs, 2u);
}

TEST(CohortMetalock, WorksOnSysfsParsedTopology) {
  // The same two-socket fake sysfs shape topology_test parses; the cohort
  // lock must consume a from_sysfs topology as readily as a synthetic one.
  FakeSysfs sysfs;
  sysfs.add_cpu(0, "0", "0-1", 0);
  sysfs.add_cpu(1, "1", "0-1", 0);
  sysfs.add_cpu(2, "2", "2-3", 1);
  sysfs.add_cpu(3, "3", "2-3", 1);
  const Topology topo = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(topo.llc_domains(), 2u);
  MetalockOptions o;
  o.kind = MetalockKind::kCohort;
  o.cohort_budget = 4;
  o.topology = &topo;
  o.max_threads = 16;
  CohortMcsLock<> lock(o);
  ASSERT_EQ(lock.domains(), 2u);
  exclusion_stress(lock, 4, 2000);
  const MetalockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.handoffs, s.cohort_hits + s.cross_domain);
}

// --- GOLL try paths against a held metalock --------------------------------
//
// try_lock / try_lock_shared / try_upgrade never touch the metalock (they
// are single C-SNZI operations), so they must stay non-blocking and give
// correct answers while contended writers are queued under an MCS or cohort
// metalock.

class GollTryPathsVsMetalock : public ::testing::TestWithParam<MetalockKind> {
 protected:
  GollLock<> make() {
    GollOptions g;
    g.max_threads = 16;
    g.metalock.kind = GetParam();
    return GollLock<>(g);
  }
};

TEST_P(GollTryPathsVsMetalock, TryPathsFailWhileWriterQueued) {
  GollLock<> lock = make();
  lock.lock();  // main holds the write lock
  std::atomic<bool> blocked_ran{false};
  std::thread blocked([&] {
    ScopedThreadIndex idx(1);
    lock.lock();  // queues under the metalock until main releases
    blocked_ran.store(true);
    lock.unlock();
  });
  // Give the writer time to reach the queue; the try paths below must be
  // correct in either phase (still spinning toward the queue or queued).
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  EXPECT_FALSE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  blocked.join();
  EXPECT_TRUE(blocked_ran.load());
  // Quiescent again: the try path must succeed without help.
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST_P(GollTryPathsVsMetalock, TryUpgradeFailsWhileWriterQueued) {
  GollLock<> lock = make();
  lock.lock_shared();  // main is the sole reader
  std::atomic<bool> closed_seen{false};
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    ScopedThreadIndex idx(1);
    lock.lock();  // closes the C-SNZI, then waits for main to depart
    lock.unlock();
    writer_done.store(true);
  });
  // A third thread probes until the writer's close is visible (main cannot
  // probe: it already holds a read ticket in its per-thread slot).
  std::thread probe([&] {
    ScopedThreadIndex idx(2);
    while (lock.try_lock_shared()) {
      lock.unlock_shared();
      std::this_thread::yield();
    }
    closed_seen.store(true);
  });
  probe.join();
  ASSERT_TRUE(closed_seen.load());
  // Sole reader, but a writer is waiting: the upgrade must refuse (it may
  // not jump the queued writer) and leave the read hold intact.
  EXPECT_FALSE(lock.try_upgrade());
  lock.unlock_shared();  // last departure hands off to the queued writer
  writer.join();
  EXPECT_TRUE(writer_done.load());
  // The upgrade works once no writer waits.
  lock.lock_shared();
  EXPECT_TRUE(lock.try_upgrade());
  lock.unlock();
}

INSTANTIATE_TEST_SUITE_P(MetalockKinds, GollTryPathsVsMetalock,
                         ::testing::Values(MetalockKind::kTatas,
                                           MetalockKind::kMcs,
                                           MetalockKind::kCohort),
                         [](const ::testing::TestParamInfo<MetalockKind>& i) {
                           return metalock_kind_name(i.param);
                         });

}  // namespace
}  // namespace oll
