// BRAVO wrapper specifics that the generic conformance/stress sweeps cannot
// see: the bias fast path actually bypasses the underlying lock (LockStats
// bias counters), writer-side revocation and the timed re-enable policy,
// hash-collision fallback in the visible-readers table, and exclusion
// between a bias-path reader and a writer (which the underlying lock alone
// cannot provide).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "locks/bravo.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/goll_lock.hpp"
#include "platform/thread_id.hpp"
#include "platform/visible_readers.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;
using test::run_mixed_workload;

using BravoCentral = Bravo<CentralRwLock<>>;
using BravoGoll = Bravo<GollLock<>>;

// --- bias fast path and counters -------------------------------------------

TEST(Bravo, SingleThreadReadsTakeBiasPath) {
  BravoCentral lock;
  ASSERT_TRUE(lock.read_biased());
  for (int i = 0; i < 100; ++i) {
    lock.lock_shared();
    lock.unlock_shared();
  }
  const LockStatsSnapshot s = lock.stats();
  // Every read published in a private table slot; none touched the central
  // reader count.
  EXPECT_EQ(s.read_bias, 100u);
  EXPECT_EQ(s.read_fast, 0u);
  EXPECT_EQ(s.bias_revoke, 0u);
}

// The acceptance check for the wrapper's whole purpose: at 100% reads,
// BRAVO over the central lock performs almost no RMWs on the shared reader
// counter — the bias counter dominates the slow-path counter.
TEST(Bravo, ReadOnlyWorkloadMostlyAvoidsUnderlyingRmw) {
  BravoCentral lock;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kIters = 2000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (unsigned i = 0; i < kIters; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  for (auto& w : workers) w.join();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_bias + s.read_fast, kThreads * kIters);
  // No writer ever ran, so the only slow-path reads are table-slot hash
  // collisions; with 4 threads in 1024 slots the bias path must dominate.
  EXPECT_GT(s.read_bias, s.read_fast);
  EXPECT_GE(s.read_bias, (kThreads * kIters) * 9 / 10);
  EXPECT_EQ(s.bias_revoke, 0u);
}

// --- revocation and the inhibit window --------------------------------------

TEST(Bravo, WriterRevokesBiasAndInhibitKeepsItOff) {
  BravoOptions o;
  o.inhibit_multiplier = 1'000'000;  // effectively "never re-arm"
  Bravo<CentralRwLock<>> lock(o);
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_EQ(lock.stats().read_bias, 1u);

  lock.lock();
  lock.unlock();
  const LockStatsSnapshot after_write = lock.stats();
  EXPECT_EQ(after_write.bias_revoke, 1u);
  EXPECT_FALSE(lock.read_biased());

  // With the bias inhibited, reads fall through to the underlying lock and
  // further writes have nothing to revoke.
  for (int i = 0; i < 50; ++i) {
    lock.lock_shared();
    lock.unlock_shared();
  }
  lock.lock();
  lock.unlock();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_bias, 1u);
  EXPECT_EQ(s.read_fast, 50u);
  EXPECT_EQ(s.bias_revoke, 1u);
}

TEST(Bravo, SlowPathReaderRearmsBiasAfterWindowExpires) {
  BravoOptions o;
  o.inhibit_multiplier = 0;  // window expires immediately
  Bravo<CentralRwLock<>> lock(o);
  lock.lock();
  lock.unlock();
  EXPECT_FALSE(lock.read_biased());

  // This read goes to the underlying lock and re-arms the bias on its way.
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.read_biased());
  lock.lock_shared();
  lock.unlock_shared();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_fast, 1u);
  EXPECT_EQ(s.read_bias, 1u);
}

TEST(Bravo, StartUnbiasedOption) {
  BravoOptions o;
  o.start_biased = false;
  o.inhibit_multiplier = 1'000'000;
  Bravo<CentralRwLock<>> lock(o);
  EXPECT_FALSE(lock.read_biased());
  // inhibit_until_ starts at 0, so the very first slow-path read re-arms
  // regardless of the multiplier.
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_TRUE(lock.read_biased());
}

// --- exclusion across the bias path ------------------------------------------

// The underlying lock never sees a bias-path reader, so writer/reader
// exclusion rests entirely on the revocation scan.  A writer must block
// until the published reader drains.
TEST(Bravo, WriterWaitsForBiasPathReader) {
  BravoCentral lock;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_released{false};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> violation{false};

  std::thread reader([&] {
    lock.lock_shared();
    reader_in.store(true);
    // Hold long enough for the writer to start its revocation scan.
    for (int i = 0; i < 20000; ++i) {
      if (writer_done.load()) violation.store(true);
      std::this_thread::yield();
    }
    reader_released.store(true);
    lock.unlock_shared();
  });

  while (!reader_in.load()) std::this_thread::yield();
  std::thread writer([&] {
    lock.lock();
    if (!reader_released.load()) violation.store(true);
    writer_done.store(true);
    lock.unlock();
  });

  reader.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_FALSE(violation.load());
  // The reader entered before the writer, so it must have used the bias
  // path and the writer must have revoked.
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_bias, 1u);
  EXPECT_EQ(s.bias_revoke, 1u);
}

TEST(Bravo, MixedWorkloadExclusionOverGoll) {
  BravoGoll lock;
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(lock, checker, 4, 800, /*read_pct=*/80);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.reads() + writes, 4u * 800u);
}

// --- visible-readers table edge cases ---------------------------------------

// Pre-occupying the exact slot the calling thread would publish in forces
// the CAS to fail: the reader must degrade to the underlying lock (and its
// unlock must release the underlying lock, not someone else's slot).
TEST(Bravo, SlotCollisionFallsBackToUnderlyingLock) {
  BravoCentral lock;
  auto& slot =
      global_visible_readers<>().slot_for(this_thread_index(), &lock);
  int dummy;
  slot.store(&dummy, std::memory_order_seq_cst);

  lock.lock_shared();
  lock.unlock_shared();
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_bias, 0u);
  EXPECT_EQ(s.read_fast, 1u);
  EXPECT_EQ(slot.load(std::memory_order_seq_cst), &dummy);

  slot.store(nullptr, std::memory_order_seq_cst);
  // With the slot free again the bias path works; bias stayed armed
  // throughout (a collision must not flip the flag).
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_EQ(lock.stats().read_bias, 1u);
}

TEST(Bravo, DistinctLocksUseDistinctSlots) {
  // Two locks read by the same thread at once: each publication must land
  // in its own slot, keyed by (thread, lock).
  BravoCentral a;
  BravoCentral b;
  a.lock_shared();
  b.lock_shared();
  EXPECT_EQ(a.stats().read_bias, 1u);
  EXPECT_EQ(b.stats().read_bias, 1u);
  b.unlock_shared();
  a.unlock_shared();
}

// --- try / timed paths -------------------------------------------------------

TEST(Bravo, TryLockSharedUsesBiasPath) {
  BravoCentral lock;
  ASSERT_TRUE(lock.try_lock_shared());
  EXPECT_EQ(lock.stats().read_bias, 1u);
  lock.unlock_shared();
}

TEST(Bravo, TryLockRevokesOnSuccess) {
  BravoCentral lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_EQ(lock.stats().bias_revoke, 1u);
  EXPECT_FALSE(lock.read_biased());
  lock.unlock();
}

TEST(Bravo, TimedLockRespectsDeadlineUnderReader) {
  using namespace std::chrono_literals;
  BravoOptions o;
  o.inhibit_multiplier = 1'000'000;
  Bravo<CentralRwLock<>> lock(o);
  // Push the lock off the bias path first so the held read below lives in
  // the underlying lock and try_lock can fail cleanly instead of spinning
  // in a revocation scan.
  lock.lock();
  lock.unlock();

  lock.lock_shared();
  std::thread writer([&] {
    EXPECT_FALSE(lock.try_lock_for(20ms));
  });
  writer.join();
  lock.unlock_shared();
  ASSERT_TRUE(lock.try_lock_for(100ms));
  lock.unlock();
}

}  // namespace
}  // namespace oll
