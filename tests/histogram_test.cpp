// Log2-bucketed latency histogram tests (platform/histogram.hpp): bucket
// boundary placement, merge/subtract algebra, percentile behavior at
// quiescence, and the Percentiles helper in platform/stats.hpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "platform/histogram.hpp"
#include "platform/stats.hpp"

namespace oll {
namespace {

// --- bucket boundaries -------------------------------------------------------

TEST(HistogramBuckets, ZeroGetsBucketZero) {
  EXPECT_EQ(histogram_bucket_of(0), 0u);
}

TEST(HistogramBuckets, PowersOfTwoStartNewBuckets) {
  // Bucket i (i >= 1) covers [2^(i-1), 2^i).
  EXPECT_EQ(histogram_bucket_of(1), 1u);
  EXPECT_EQ(histogram_bucket_of(2), 2u);
  EXPECT_EQ(histogram_bucket_of(3), 2u);
  EXPECT_EQ(histogram_bucket_of(4), 3u);
  EXPECT_EQ(histogram_bucket_of(7), 3u);
  EXPECT_EQ(histogram_bucket_of(8), 4u);
  for (std::uint32_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    const std::uint64_t lo = 1ULL << (i - 1);
    EXPECT_EQ(histogram_bucket_of(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(histogram_bucket_of(2 * lo - 1), i) << "hi of bucket " << i;
  }
}

TEST(HistogramBuckets, HugeValuesClampToLastBucket) {
  EXPECT_EQ(histogram_bucket_of(~0ULL), kHistogramBuckets - 1);
}

TEST(HistogramBuckets, LoHiRoundTrip) {
  for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_of(histogram_bucket_lo(i)), i);
    if (i + 1 < kHistogramBuckets) {
      // hi is the exclusive edge: the last value in the bucket is hi - 1.
      EXPECT_EQ(histogram_bucket_of(histogram_bucket_hi(i) - 1), i);
      EXPECT_EQ(histogram_bucket_of(histogram_bucket_hi(i)), i + 1);
    }
  }
}

// --- snapshot algebra --------------------------------------------------------

HistogramSnapshot make_snapshot(const std::vector<std::uint64_t>& xs) {
  HistogramSnapshot h;
  for (std::uint64_t x : xs) h.add(x);
  return h;
}

TEST(HistogramSnapshot, CountSumMax) {
  HistogramSnapshot h = make_snapshot({1, 10, 100, 1000});
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 1111u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1111.0 / 4.0);
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  HistogramSnapshot a = make_snapshot({1, 2, 3});
  HistogramSnapshot b = make_snapshot({100, 200});
  HistogramSnapshot c = make_snapshot({5000});

  HistogramSnapshot ab_c = a;
  ab_c += b;
  ab_c += c;
  HistogramSnapshot a_bc = b;
  a_bc += c;
  a_bc += a;

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.max, a_bc.max);
  for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(ab_c.buckets[i], a_bc.buckets[i]) << "bucket " << i;
  }
}

TEST(HistogramSnapshot, SubtractRemovesBaseline) {
  HistogramSnapshot warm = make_snapshot({8, 16});
  HistogramSnapshot total = warm;
  total.add(1000);
  total.add(2000);
  total -= warm;
  EXPECT_EQ(total.count, 2u);
  EXPECT_EQ(total.sum, 3000u);
  // max stays a high-water mark (documented; it cannot be un-observed).
  EXPECT_EQ(total.max, 2000u);
  EXPECT_EQ(total.buckets[histogram_bucket_of(8)], 0u);
}

// --- percentiles -------------------------------------------------------------

TEST(HistogramSnapshot, PercentileEmptyIsZero) {
  HistogramSnapshot h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(HistogramSnapshot, PercentileSingleValue) {
  HistogramSnapshot h = make_snapshot({42});
  // Every percentile of a single sample lies within its bucket, clamped to
  // the observed max.
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.percentile(p), histogram_bucket_lo(histogram_bucket_of(42)));
    EXPECT_LE(h.percentile(p), 42.0);
  }
}

TEST(HistogramSnapshot, PercentilesAreMonotoneAndBoundedByMax) {
  HistogramSnapshot h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i);
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_LE(v, 1000.0) << "p" << p;
    prev = v;
  }
  // With a log2 histogram the p50 of uniform 1..1000 must land in the
  // [512, 1000] region's bucket neighborhood — loose sanity bound.
  EXPECT_GE(h.percentile(50), 256.0);
}

TEST(HistogramSnapshot, P100IsObservedMax) {
  HistogramSnapshot h = make_snapshot({3, 17, 900});
  EXPECT_DOUBLE_EQ(h.percentile(100), 900.0);
}

// --- AtomicHistogram ---------------------------------------------------------

TEST(AtomicHistogram, SnapshotAccumulates) {
  AtomicHistogram h;
  h.add(5);
  h.add(500);
  HistogramSnapshot s;
  h.snapshot_into(s);
  h.snapshot_into(s);  // accumulating into the same target doubles it
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.max, 500u);
}

TEST(AtomicHistogram, ResetClears) {
  AtomicHistogram h;
  h.add(5);
  h.reset();
  HistogramSnapshot s;
  h.snapshot_into(s);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(AtomicHistogram, QuiescentExactUnderSingleWriterPerSlot) {
  // The LockStats contract: each slot has one writer; a quiescent snapshot
  // is exact.  Model it with one AtomicHistogram per thread, merged after
  // joining.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<AtomicHistogram> hists(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        hists[t].add(i % 1024);
      }
    });
  }
  for (auto& w : workers) w.join();
  HistogramSnapshot s;
  for (auto& h : hists) h.snapshot_into(s);
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.max, 1023u);
}

// --- Percentiles helper (platform/stats.hpp) --------------------------------

TEST(Percentiles, MatchesLegacyFreeFunction) {
  std::vector<double> xs = {5, 1, 9, 3, 7, 2, 8, 4, 6, 10};
  Percentiles p(xs);
  for (double q : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(p.at(q), percentile(xs, q)) << "p" << q;
  }
}

TEST(Percentiles, SortsOnceAndInterpolates) {
  Percentiles p({10.0, 20.0});
  EXPECT_DOUBLE_EQ(p.at(0), 10.0);
  EXPECT_DOUBLE_EQ(p.at(50), 15.0);
  EXPECT_DOUBLE_EQ(p.at(100), 20.0);
  EXPECT_EQ(p.count(), 2u);
  EXPECT_TRUE(Percentiles({}).empty());
}

}  // namespace
}  // namespace oll
