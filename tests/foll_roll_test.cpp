// FOLL- and ROLL-specific behavior: reader-node sharing, the node pool and
// its recycling invariants (§4.2.1), writer inheritance of an emptied reader
// node, and ROLL's reader-preference joining and hint (§4.3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/foll_lock.hpp"
#include "locks/roll_lock.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"

namespace oll {
namespace {

// --- node pool invariants ---------------------------------------------------

TEST(FollPool, QuiescentLockUsesNoNodes) {
  FollLock<> lock;
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
  lock.lock_shared();
  EXPECT_EQ(lock.pool_nodes_in_use(), 1u);  // the shared reader node
  lock.unlock_shared();
  // A node stays allocated while in the queue; it is recycled when a writer
  // closes it or the last reader departs *and* hands off.  After a write
  // acquisition flushes the queue, everything must be free again.
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(FollPool, ConcurrentReadersShareOneNode) {
  FollLock<> lock;
  constexpr int kReaders = 6;
  std::atomic<int> in{0};
  std::atomic<std::uint32_t> peak_nodes{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      lock.lock_shared();
      in.fetch_add(1);
      spin_until([&] { return in.load() == kReaders; });
      std::uint32_t nodes = lock.pool_nodes_in_use();
      std::uint32_t p = peak_nodes.load();
      while (nodes > p && !peak_nodes.compare_exchange_weak(p, nodes)) {
      }
      lock.unlock_shared();
    });
  }
  for (auto& th : threads) th.join();
  // All six readers shared the single queue node (the defining property of
  // FOLL: successive readers do not enqueue separate nodes).
  EXPECT_EQ(peak_nodes.load(), 1u);
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(FollPool, PoolDrainsAfterHeavyChurn) {
  FollLock<> lock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 600; ++i) {
        if ((i + t) % 5 == 0) {
          lock.lock();
          lock.unlock();
        } else {
          lock.lock_shared();
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Quiesce: a final write acquisition recycles any node left at the head.
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(RollPool, PoolDrainsAfterHeavyChurn) {
  RollLock<> lock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 600; ++i) {
        if ((i + t) % 5 == 0) {
          lock.lock();
          lock.unlock();
        } else {
          lock.lock_shared();
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

// --- FOLL queue-discipline scenarios -----------------------------------------

TEST(Foll, WriterInheritsEmptiedReaderNode) {
  // A reader node whose readers all departed before the writer's Close must
  // be recycled by the writer (the Close-returns-true path of Fig. 4).
  FollLock<> lock;
  for (int i = 0; i < 200; ++i) {
    lock.lock_shared();
    lock.unlock_shared();
    lock.lock();  // tail is the (possibly drained) reader node
    lock.unlock();
  }
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(Foll, ReadersBehindWriterFormOneGroup) {
  FollLock<> lock;
  lock.lock();  // writer holds
  constexpr int kReaders = 4;
  std::atomic<int> in{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock.lock_shared();
      int now = in.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::yield();
      in.fetch_sub(1);
      lock.unlock_shared();
    });
  }
  for (int i = 0; i < 3000; ++i) std::this_thread::yield();
  lock.unlock();
  for (auto& th : readers) th.join();
  // They shared one node behind the writer, so they ran concurrently.
  EXPECT_GE(peak.load(), 2);
}

TEST(Foll, WriterAfterWriterAfterReaders) {
  FollLock<> lock;
  std::atomic<std::uint64_t> cs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock();
        cs.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cs.load(), 3u * 500u);
}

// --- ROLL-specific ------------------------------------------------------------

TEST(Roll, ReaderOvertakesWaitingWriterToJoinWaitingGroup) {
  // Build the queue shape [active writer][reader node (waiting)][writer];
  // a late reader must join the waiting reader group even though a writer
  // is queued behind it — that is ROLL's reader preference.
  RollLock<> lock;
  lock.lock();  // W0 active

  std::atomic<bool> r1_done{false};
  std::thread r1([&] {
    lock.lock_shared();  // enqueues the reader node, waits
    r1_done.store(true);
    spin_until([&] { return r1_done.load(); });  // trivially true
    lock.unlock_shared();
  });
  for (int i = 0; i < 3000; ++i) std::this_thread::yield();

  std::atomic<bool> w1_done{false};
  std::thread w1([&] {
    lock.lock();  // queues behind the reader node
    w1_done.store(true);
    lock.unlock();
  });
  for (int i = 0; i < 3000; ++i) std::this_thread::yield();

  // Late reader: under FIFO it would queue behind w1; under ROLL it joins
  // r1's waiting node and completes as soon as W0 releases.
  std::atomic<bool> r2_done{false};
  std::thread r2([&] {
    lock.lock_shared();
    r2_done.store(true);
    lock.unlock_shared();
  });
  for (int i = 0; i < 3000; ++i) std::this_thread::yield();

  EXPECT_FALSE(r1_done.load());
  EXPECT_FALSE(r2_done.load());
  lock.unlock();  // W0 releases: the reader group (r1+r2) runs, then w1
  r1.join();
  r2.join();
  w1.join();
  EXPECT_TRUE(r1_done.load());
  EXPECT_TRUE(r2_done.load());
  EXPECT_TRUE(w1_done.load());
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(Roll, WorksWithHintDisabled) {
  RollOptions o;
  o.use_hint = false;
  RollLock<> lock(o);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> cs{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        if ((i + t) % 4 == 0) {
          lock.lock();
          cs.fetch_add(1, std::memory_order_relaxed);
          lock.unlock();
        } else {
          lock.lock_shared();
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cs.load(), 4u * 100u);
}

TEST(Roll, WorksWithTraversalDisabled) {
  RollOptions o;
  o.max_scan_hops = 0;
  RollLock<> lock(o);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        if ((i + t) % 4 == 0) {
          lock.lock();
          lock.unlock();
        } else {
          lock.lock_shared();
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

TEST(Roll, ReadersShareTailNode) {
  RollLock<> lock;
  constexpr int kReaders = 5;
  std::atomic<int> in{0};
  std::atomic<std::uint32_t> peak_nodes{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      lock.lock_shared();
      in.fetch_add(1);
      spin_until([&] { return in.load() == kReaders; });
      std::uint32_t nodes = lock.pool_nodes_in_use();
      std::uint32_t p = peak_nodes.load();
      while (nodes > p && !peak_nodes.compare_exchange_weak(p, nodes)) {
      }
      lock.unlock_shared();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(peak_nodes.load(), 1u);
}

}  // namespace
}  // namespace oll
